//! Property-based tests of the staged artifact pipeline's incremental
//! paths: for *arbitrary* corpus deltas and cluster-count changes,
//! `extend` and `refit` must be indistinguishable from a from-scratch
//! `fit` — while demonstrably skipping the profiling stage.

use flare::prelude::*;
use proptest::prelude::*;

/// Strategy: a small scenario delta (1..=4 entries, each 1..=6 containers
/// drawn from all job types, with 1..=5 observations).
fn delta_strategy() -> impl Strategy<Value = Vec<(Scenario, u32)>> {
    prop::collection::vec(
        (
            prop::collection::vec(0usize..JobName::ALL.len(), 1..=6),
            1u32..=5,
        ),
        1..=4,
    )
    .prop_map(|entries| {
        entries
            .into_iter()
            .map(|(picks, obs)| {
                let instances: Vec<JobInstance> = picks
                    .into_iter()
                    .map(|i| JobInstance::new(JobName::ALL[i]))
                    .collect();
                (Scenario::from_instances(&instances), obs)
            })
            .collect()
    })
}

fn small_corpus() -> Corpus {
    Corpus::generate(&CorpusConfig {
        machines: 3,
        days: 1.0,
        tick_minutes: 30.0,
        ..CorpusConfig::default()
    })
}

fn config(k: usize) -> FlareConfig {
    FlareConfig {
        cluster_count: ClusterCountRule::Fixed(k),
        ..FlareConfig::default()
    }
}

/// Snapshot JSON is the byte-level oracle: two models that serialize
/// identically are identical in every field the pipeline persists.
fn snapshot_json(flare: &Flare) -> String {
    serde_json::to_string(&flare.to_snapshot()).expect("snapshot serializes")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// `fit(corpus ∪ Δ).snapshot == fit(corpus).extend(Δ).snapshot`, byte
    /// for byte — incremental profiling of the delta must be
    /// indistinguishable from profiling the grown corpus from scratch.
    #[test]
    fn extend_matches_full_fit_byte_identically(delta in delta_strategy()) {
        let corpus = small_corpus();
        let fitted = Flare::fit(corpus.clone(), config(6)).expect("fit");

        let extended = fitted.extend(delta.clone()).expect("extend");
        prop_assert_eq!(extended.fit_report().profile, StageOutcome::Extended);
        prop_assert_eq!(extended.fit_report().scenarios_profiled, delta.len());

        let grown = corpus.extended(delta).expect("extended corpus");
        let full = Flare::fit(grown, config(6)).expect("full fit");
        prop_assert_eq!(full.fit_report().scenarios_profiled, full.corpus().len());

        prop_assert_eq!(snapshot_json(&extended), snapshot_json(&full));
    }

    /// A clustering-only refit never touches the profiler: the profile,
    /// repair, and featurize artifacts are reused, zero scenarios are
    /// profiled, and the result still matches a from-scratch fit byte for
    /// byte.
    #[test]
    fn clustering_only_refit_never_profiles(k in 3usize..=9) {
        let corpus = small_corpus();
        let fitted = Flare::fit(corpus.clone(), config(6)).expect("fit");

        let refitted = fitted.refit(config(k)).expect("refit");
        let report = refitted.fit_report();
        prop_assert_eq!(report.scenarios_profiled, 0);
        prop_assert_eq!(report.profile, StageOutcome::Reused);
        prop_assert_eq!(report.repair, StageOutcome::Reused);
        prop_assert_eq!(report.featurize, StageOutcome::Reused);

        let full = Flare::fit(corpus, config(k)).expect("full fit");
        prop_assert_eq!(snapshot_json(&refitted), snapshot_json(&full));
    }

    /// Chaining the two paths — extend then refit — still matches a
    /// single from-scratch fit of the grown corpus at the final config.
    #[test]
    fn extend_then_refit_matches_full_fit(delta in delta_strategy(), k in 3usize..=9) {
        let corpus = small_corpus();
        let fitted = Flare::fit(corpus.clone(), config(6)).expect("fit");
        let chained = fitted
            .extend(delta.clone())
            .expect("extend")
            .refit(config(k))
            .expect("refit");
        prop_assert_eq!(chained.fit_report().scenarios_profiled, 0);

        let grown = corpus.extended(delta).expect("extended corpus");
        let full = Flare::fit(grown, config(k)).expect("full fit");
        prop_assert_eq!(snapshot_json(&chained), snapshot_json(&full));
    }
}
