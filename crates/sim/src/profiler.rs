//! The Profiler: synthesizes the 100+ raw observable metrics (Fig. 6) for
//! a colocation scenario.
//!
//! The paper's Profiler daemon samples `perf`, top-down counters and
//! `/proc` on every server. Our substitute derives the same observables
//! analytically from the interference model's per-instance outcomes, then
//! applies small seeded measurement noise — preserving both the two-level
//! structure (machine vs HP) and the *built-in redundancies* (bandwidth =
//! misses × line size, CPI = 1/IPC, …) the refinement step must discover.

use crate::faults::multiplicative_noise;
use crate::interference::MachinePerf;
use crate::kernel::{EvalCache, EvalScratch, ProfileTable};
use crate::machine::MachineConfig;
use crate::scenario::Scenario;
use flare_metrics::schema::{Level, MetricKind, MetricSchema};
use flare_workloads::job::JobName;
use flare_workloads::profile::JobProfile;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::OnceLock;

/// Relative standard deviation of the multiplicative measurement noise.
const NOISE_REL_STD: f64 = 0.012;

/// The canonical schema, built once per process — `MetricSchema::canonical`
/// allocates, and the profiler consults it for every synthesized vector.
fn canonical_schema() -> &'static MetricSchema {
    static SCHEMA: OnceLock<MetricSchema> = OnceLock::new();
    SCHEMA.get_or_init(MetricSchema::canonical)
}

/// Synthesizes the full canonical metric vector for `scenario` evaluated
/// as `perf` on `config`.
///
/// The vector is aligned with [`MetricSchema::canonical`] (all kinds at
/// machine level, then all kinds at HP level). `noise_seed` makes the
/// measurement noise deterministic per scenario; pass a distinct seed per
/// (corpus, scenario) pair.
pub fn synthesize(
    scenario: &Scenario,
    perf: &MachinePerf,
    config: &MachineConfig,
    noise_seed: u64,
) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(noise_seed);
    clean_vector(scenario, perf, config)
        .into_iter()
        .map(|v| multiplicative_noise(v, NOISE_REL_STD, &mut rng))
        .collect()
}

/// The noise-free canonical metric vector for one evaluated scenario.
fn clean_vector(scenario: &Scenario, perf: &MachinePerf, config: &MachineConfig) -> Vec<f64> {
    let schema = canonical_schema();
    let machine = LevelAggregate::compute(scenario, perf, config, LevelSel::Machine);
    let hp = LevelAggregate::compute(scenario, perf, config, LevelSel::HpOnly);
    schema
        .ids()
        .iter()
        .map(|id| match id.level {
            Level::Machine => machine.value(id.kind),
            Level::Hp => hp.value(id.kind),
        })
        .collect()
}

/// Synthesizes the **temporally enriched** metric vector (§4.1): the
/// scenario is observed over `phases` load phases (diurnal-style demand
/// swings within its lifetime); every canonical metric is recorded as its
/// across-phase mean followed by its across-phase standard deviation,
/// aligned with [`MetricSchema::canonical_enriched`].
///
/// # Errors
///
/// Returns a message if `phases == 0` (the caller-facing
/// `FlareConfig::validate` rejects `temporal_phases == Some(0)` with a
/// typed `InvalidParameter` before this can trigger).
pub fn synthesize_enriched(
    scenario: &Scenario,
    config: &MachineConfig,
    phases: usize,
    noise_seed: u64,
) -> Result<Vec<f64>, String> {
    crate::kernel::with_scratch(|scratch| {
        synthesize_enriched_scratch(scenario, config, phases, noise_seed, scratch)
    })
}

/// [`synthesize_enriched`] with every per-phase interference solve routed
/// through a shared [`EvalCache`]. The cache keys on
/// `(mix multiset, config fingerprint, load bits)`, so re-synthesizing the
/// same `(scenario, config, noise_seed)` — a refit, a repeated baseline
/// pass, a second fit over an unchanged corpus — hits for every phase after
/// one warm pass and returns the solver's bit-identical `MachinePerf`.
///
/// Note the threaded corpus pass in `datacenter.rs` deliberately does
/// *not* share a per-pass cache: each corpus entry draws its own random
/// phase offset from `noise_seed`, so cross-entry phase loads never
/// coincide within a single pass and a shared cache there would be pure
/// lookup/insert overhead. Caching pays off across *repeat* syntheses,
/// which is what this entry point serves.
///
/// # Errors
///
/// Returns a message if `phases == 0`.
pub fn synthesize_enriched_cached(
    scenario: &Scenario,
    config: &MachineConfig,
    phases: usize,
    noise_seed: u64,
    cache: &EvalCache,
) -> Result<Vec<f64>, String> {
    crate::kernel::with_scratch(|scratch| {
        synthesize_enriched_with(scenario, config, phases, noise_seed, Some(cache), scratch)
    })
}

/// [`synthesize_enriched`] against a caller-owned [`EvalScratch`] — the
/// form corpus-profiling workers call so each chunk reuses one arena for
/// all of its per-phase interference solves.
///
/// # Errors
///
/// Returns a message if `phases == 0`.
pub(crate) fn synthesize_enriched_scratch(
    scenario: &Scenario,
    config: &MachineConfig,
    phases: usize,
    noise_seed: u64,
    scratch: &mut EvalScratch,
) -> Result<Vec<f64>, String> {
    synthesize_enriched_with(scenario, config, phases, noise_seed, None, scratch)
}

/// Shared core of the enriched synthesis: solves one interference problem
/// per load phase — through `cache` when one is supplied, directly into
/// `scratch` otherwise — then folds the per-phase clean vectors into the
/// (mean, std) enriched layout. Cached and uncached paths are byte-identical
/// because [`EvalCache::evaluate_at_load`] memoizes the very same solver.
fn synthesize_enriched_with(
    scenario: &Scenario,
    config: &MachineConfig,
    phases: usize,
    noise_seed: u64,
    cache: Option<&EvalCache>,
    scratch: &mut EvalScratch,
) -> Result<Vec<f64>, String> {
    if phases == 0 {
        return Err("temporal enrichment requires at least one phase".into());
    }
    let mut rng = StdRng::seed_from_u64(noise_seed);
    // Deterministic per-scenario phase pattern: a sinusoidal demand swing
    // with a random phase offset and ±25 % amplitude.
    let offset: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
    let phase_vectors: Vec<Vec<f64>> = (0..phases)
        .map(|i| {
            let angle = offset + std::f64::consts::TAU * i as f64 / phases as f64;
            let load = 1.0 + 0.25 * angle.sin();
            match cache {
                Some(cache) => {
                    let perf = cache.evaluate_at_load(scenario, config, load, scratch);
                    clean_vector(scenario, &perf, config)
                }
                None => {
                    let perf =
                        crate::kernel::evaluate_at_load_scratch(scenario, config, load, scratch);
                    clean_vector(scenario, &perf, config)
                }
            }
        })
        .collect();

    let n = canonical_schema().len();
    let mut out = Vec::with_capacity(2 * n);
    for j in 0..n {
        let series: Vec<f64> = phase_vectors.iter().map(|v| v[j]).collect();
        let mean = series.iter().sum::<f64>() / phases as f64;
        let var = series.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / phases as f64;
        out.push(multiplicative_noise(mean, NOISE_REL_STD, &mut rng));
        out.push(multiplicative_noise(var.sqrt(), NOISE_REL_STD, &mut rng));
    }
    Ok(out)
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum LevelSel {
    Machine,
    HpOnly,
}

/// All per-level aggregate observables, computed once then indexed by
/// metric kind.
struct LevelAggregate {
    mips: f64,
    ipc: f64,
    freq_ghz: f64,
    frontend: f64,
    fetch_latency: f64,
    bad_spec: f64,
    backend: f64,
    memory_bound: f64,
    core_bound: f64,
    alu: f64,
    div: f64,
    l1d: f64,
    l1d_apki: f64,
    l1i: f64,
    l2: f64,
    llc_mpki: f64,
    llc_occupancy: f64,
    mem_bw: f64,
    mem_lat_ns: f64,
    dram_util: f64,
    itlb: f64,
    dtlb: f64,
    branch_mpki: f64,
    cpu_util: f64,
    vcpus_active: f64,
    ctx_switches: f64,
    runqueue: f64,
    smt_coresidency: f64,
    disk_rd: f64,
    disk_wr: f64,
    iowait: f64,
    net_rx: f64,
    net_tx: f64,
    tcp_retrans: f64,
    rss: f64,
    major_faults: f64,
    syscalls: f64,
    job_counts: [f64; 8],
}

impl LevelAggregate {
    fn compute(
        scenario: &Scenario,
        perf: &MachinePerf,
        config: &MachineConfig,
        sel: LevelSel,
    ) -> Self {
        let table = ProfileTable::catalog();
        let selected: Vec<(&crate::interference::InstanceOutcome, &'static JobProfile)> = perf
            .instances
            .iter()
            .filter(|o| match sel {
                LevelSel::Machine => true,
                LevelSel::HpOnly => JobName::HIGH_PRIORITY.contains(&o.job),
            })
            .map(|o| (o, table.get(o.job)))
            .collect();

        if selected.is_empty() {
            return LevelAggregate::idle(perf, config);
        }

        // Instruction weights for intensive (per-instruction) metrics.
        let total_mips: f64 = selected.iter().map(|(o, _)| o.mips).sum();
        let wmean = |f: &dyn Fn(&crate::interference::InstanceOutcome, &JobProfile) -> f64| -> f64 {
            selected.iter().map(|(o, p)| o.mips * f(o, p)).sum::<f64>() / total_mips
        };
        let sum = |f: &dyn Fn(&crate::interference::InstanceOutcome, &JobProfile) -> f64| -> f64 {
            selected.iter().map(|(o, p)| f(o, p)).sum()
        };

        let pairing = perf.smt_pairing_probability;
        let busy_vcpus = sum(&|_, p| 4.0 * p.cpu_util);
        let alloc_vcpus = match sel {
            LevelSel::Machine => scenario.total_vcpus() as f64,
            LevelSel::HpOnly => scenario.hp_vcpus() as f64,
        };

        // Per-instance observables.
        let ipc = wmean(&|o, p| {
            let busy = 4.0 * p.cpu_util;
            if busy <= 0.0 {
                0.0
            } else {
                o.mips / (busy * o.freq_ghz * 1000.0)
            }
        });
        let frontend = wmean(&|_, p| (p.frontend_bound * (1.0 + 0.25 * pairing)).min(0.9));
        let bad_spec = wmean(&|_, p| p.bad_speculation);
        let memory_bound = wmean(&|o, p| {
            ((1.0 - o.mem_factor * o.bw_factor) * 0.9 + p.latency_sensitivity * 0.08)
                .clamp(0.0, 0.85)
        });
        let core_bound = wmean(&|_, p| p.alu_stall_pct + p.div_stall_pct);
        let backend = (memory_bound + core_bound).min(0.95);
        let l1i = wmean(&|_, p| p.base_l1i_mpki * (1.0 + 0.3 * pairing));
        let dtlb = wmean(&|o, p| {
            let pressure = (p.working_set_mb / o.llc_share_mb.max(0.25)).max(1.0);
            p.dtlb_mpki * pressure.powf(0.3)
        });
        let llc_mpki = wmean(&|o, _| o.llc_mpki);
        let l2 = wmean(&|_, p| p.base_l2_mpki);

        let disk_rd = sum(&|o, p| p.disk_read_mbps * o.io_factor);
        let disk_wr = sum(&|o, p| p.disk_write_mbps * o.io_factor);
        let net_rx = sum(&|o, p| p.net_rx_mbps * o.io_factor);
        let net_tx = sum(&|o, p| p.net_tx_mbps * o.io_factor);
        let total_disk_demand: f64 = sum(&|_, p| p.disk_read_mbps + p.disk_write_mbps);
        let syscalls = sum(&|o, p| p.syscalls_ps * o.normalized_perf);

        // §5.3 per-job mix columns: instance counts of each HP service
        // among the selected instances (identical at both levels for HP
        // jobs; the machine-level copy is pruned by refinement).
        let mut job_counts = [0.0f64; 8];
        for (o, _) in &selected {
            if let Some(pos) = JobName::HIGH_PRIORITY.iter().position(|&j| j == o.job) {
                job_counts[pos] += 1.0;
            }
        }

        LevelAggregate {
            mips: total_mips,
            ipc,
            freq_ghz: perf.freq_ghz,
            frontend,
            fetch_latency: frontend * 0.6,
            bad_spec,
            backend,
            memory_bound,
            core_bound,
            alu: wmean(&|_, p| p.alu_stall_pct),
            div: wmean(&|_, p| p.div_stall_pct),
            l1d: wmean(&|_, p| p.base_l1d_mpki),
            l1d_apki: wmean(&|_, p| p.base_l1d_mpki * 12.0),
            l1i,
            l2,
            llc_mpki,
            llc_occupancy: sum(&|o, _| o.llc_share_mb),
            mem_bw: sum(&|o, _| o.mem_bw_gbps),
            mem_lat_ns: 80.0 * perf.latency_inflation,
            dram_util: perf.dram_utilization.min(1.0),
            itlb: wmean(&|_, p| p.itlb_mpki * (1.0 + 0.2 * pairing)),
            dtlb,
            branch_mpki: wmean(&|_, p| p.branch_mpki),
            cpu_util: if alloc_vcpus > 0.0 {
                (busy_vcpus / alloc_vcpus).min(1.0)
            } else {
                0.0
            },
            vcpus_active: busy_vcpus,
            ctx_switches: selected.len() as f64 * 2000.0 * (1.0 + 2.0 * pairing),
            runqueue: (perf.active_vcpus - config.schedulable_vcpus() as f64).max(0.0),
            smt_coresidency: pairing,
            disk_rd,
            disk_wr,
            iowait: (total_disk_demand / config.shape.disk_mbps).min(1.0) * 0.3,
            net_rx,
            net_tx,
            tcp_retrans: (net_rx + net_tx) * 0.002,
            rss: sum(&|_, p| p.rss_gb),
            major_faults: sum(&|_, p| (p.disk_read_mbps + p.disk_write_mbps) * 0.2),
            syscalls,
            job_counts,
        }
    }

    fn idle(perf: &MachinePerf, _config: &MachineConfig) -> Self {
        LevelAggregate {
            mips: 0.0,
            ipc: 0.0,
            freq_ghz: perf.freq_ghz,
            frontend: 0.0,
            fetch_latency: 0.0,
            bad_spec: 0.0,
            backend: 0.0,
            memory_bound: 0.0,
            core_bound: 0.0,
            alu: 0.0,
            div: 0.0,
            l1d: 0.0,
            l1d_apki: 0.0,
            l1i: 0.0,
            l2: 0.0,
            llc_mpki: 0.0,
            llc_occupancy: 0.0,
            mem_bw: 0.0,
            mem_lat_ns: 80.0,
            dram_util: 0.0,
            itlb: 0.0,
            dtlb: 0.0,
            branch_mpki: 0.0,
            cpu_util: 0.0,
            vcpus_active: 0.0,
            ctx_switches: 0.0,
            runqueue: 0.0,
            smt_coresidency: 0.0,
            disk_rd: 0.0,
            disk_wr: 0.0,
            iowait: 0.0,
            net_rx: 0.0,
            net_tx: 0.0,
            tcp_retrans: 0.0,
            rss: 0.0,
            major_faults: 0.0,
            syscalls: 0.0,
            job_counts: [0.0; 8],
        }
    }

    /// Maps a metric kind to its (clean) value; derived metrics are
    /// computed here from the primaries — reproducing the redundancy the
    /// refinement step prunes.
    fn value(&self, kind: MetricKind) -> f64 {
        use MetricKind::*;
        match kind {
            Mips => self.mips,
            Ipc => self.ipc,
            Cpi => {
                if self.ipc > 0.0 {
                    1.0 / self.ipc
                } else {
                    0.0
                }
            }
            UopsPerCycle => self.ipc * 1.33,
            FreqGhz => self.freq_ghz,
            FrontendBound => self.frontend,
            FetchLatency => self.fetch_latency,
            FetchBandwidth => (self.frontend - self.fetch_latency).max(0.0),
            BadSpeculation => self.bad_spec,
            BackendBound => self.backend,
            MemoryBound => self.memory_bound,
            CoreBound => self.core_bound,
            Retiring => (1.0 - self.frontend - self.bad_spec - self.backend).max(0.02),
            AluStalls => self.alu,
            DivStalls => self.div,
            L1dMpki => self.l1d,
            L1dApki => self.l1d_apki,
            L1iMpki => self.l1i,
            L2Mpki => self.l2,
            L2Apki => self.l1d * 1.05, // L2 accesses ≈ L1D misses (+prefetch)
            LlcMpki => self.llc_mpki,
            LlcApki => self.l2 * 1.02, // LLC accesses ≈ L2 misses
            LlcHitRate => {
                let apki = self.l2 * 1.02;
                if apki > 0.0 {
                    (1.0 - self.llc_mpki / apki).clamp(0.0, 1.0)
                } else {
                    0.0
                }
            }
            LlcOccupancyMb => self.llc_occupancy,
            MemBwReadGbps => self.mem_bw * 0.7,
            MemBwWriteGbps => self.mem_bw * 0.3,
            MemBwTotalGbps => self.mem_bw,
            MemLatencyNs => self.mem_lat_ns,
            DramUtil => self.dram_util,
            ItlbMpki => self.itlb,
            DtlbMpki => self.dtlb,
            PageWalkPct => (self.itlb + self.dtlb) * 0.01,
            BranchMpki => self.branch_mpki,
            BranchMissRate => self.branch_mpki / 200.0,
            CpuUtil => self.cpu_util,
            VcpusActive => self.vcpus_active,
            ContextSwitchesPs => self.ctx_switches,
            RunqueueLen => self.runqueue,
            SmtCoresidency => self.smt_coresidency,
            PreemptionsPs => self.ctx_switches * 0.1,
            DiskReadMbps => self.disk_rd,
            DiskWriteMbps => self.disk_wr,
            DiskIops => (self.disk_rd + self.disk_wr) / 0.1,
            IowaitPct => self.iowait,
            NetRxMbps => self.net_rx,
            NetTxMbps => self.net_tx,
            NetPps => (self.net_rx + self.net_tx) * 700.0,
            TcpRetransPs => self.tcp_retrans,
            RssGb => self.rss,
            MajorFaultsPs => self.major_faults,
            MinorFaultsPs => self.rss * 1000.0,
            AnonFraction => {
                if self.rss > 0.0 {
                    0.6
                } else {
                    0.0
                }
            }
            SyscallsPs => self.syscalls,
            InstancesDa => self.job_counts[0],
            InstancesDc => self.job_counts[1],
            InstancesDs => self.job_counts[2],
            InstancesGa => self.job_counts[3],
            InstancesIa => self.job_counts[4],
            InstancesMs => self.job_counts[5],
            InstancesWsc => self.job_counts[6],
            InstancesWsv => self.job_counts[7],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interference::evaluate;
    use crate::machine::MachineShape;
    use flare_metrics::schema::MetricId;

    fn setup(counts: &[(JobName, u32)]) -> (Scenario, MachinePerf, MachineConfig) {
        let config = MachineShape::default_shape().baseline_config();
        let scenario = Scenario::from_counts(counts.iter().copied());
        let perf = evaluate(&scenario, &config);
        (scenario, perf, config)
    }

    fn metric(vec: &[f64], kind: MetricKind, level: Level) -> f64 {
        let schema = MetricSchema::canonical();
        let idx = schema.index_of(MetricId::new(kind, level)).unwrap();
        vec[idx]
    }

    #[test]
    fn vector_matches_canonical_schema_length() {
        let (s, p, c) = setup(&[(JobName::DataCaching, 2)]);
        let v = synthesize(&s, &p, &c, 1);
        assert_eq!(v.len(), MetricSchema::canonical().len());
        assert!(v.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn deterministic_given_seed() {
        let (s, p, c) = setup(&[(JobName::WebSearch, 3), (JobName::Mcf, 2)]);
        assert_eq!(synthesize(&s, &p, &c, 42), synthesize(&s, &p, &c, 42));
        assert_ne!(synthesize(&s, &p, &c, 42), synthesize(&s, &p, &c, 43));
    }

    #[test]
    fn two_level_split_hp_vs_machine() {
        // HP job + LP job: machine MIPS > HP MIPS; HP-only metrics exclude mcf.
        let (s, p, c) = setup(&[(JobName::DataCaching, 2), (JobName::Mcf, 4)]);
        let v = synthesize(&s, &p, &c, 7);
        let machine_mips = metric(&v, MetricKind::Mips, Level::Machine);
        let hp_mips = metric(&v, MetricKind::Mips, Level::Hp);
        assert!(machine_mips > hp_mips * 1.5);
        // mcf's huge LLC MPKI shows at machine level, not HP level.
        let machine_mpki = metric(&v, MetricKind::LlcMpki, Level::Machine);
        let hp_mpki = metric(&v, MetricKind::LlcMpki, Level::Hp);
        assert!(
            machine_mpki > hp_mpki * 2.0,
            "machine {machine_mpki} hp {hp_mpki}"
        );
    }

    #[test]
    fn lp_only_scenario_zeroes_hp_metrics() {
        let (s, p, c) = setup(&[(JobName::Sjeng, 3)]);
        let v = synthesize(&s, &p, &c, 3);
        assert_eq!(metric(&v, MetricKind::Mips, Level::Hp), 0.0);
        assert_eq!(metric(&v, MetricKind::CpuUtil, Level::Hp), 0.0);
        assert!(metric(&v, MetricKind::Mips, Level::Machine) > 0.0);
    }

    #[test]
    fn derived_metrics_are_consistent_with_primaries() {
        let (s, p, c) = setup(&[(JobName::GraphAnalytics, 4), (JobName::DataServing, 2)]);
        let v = synthesize(&s, &p, &c, 11);
        // Noise is multiplicative and small, so ratios hold within ~6 σ.
        let bw_total = metric(&v, MetricKind::MemBwTotalGbps, Level::Machine);
        let bw_rd = metric(&v, MetricKind::MemBwReadGbps, Level::Machine);
        assert!((bw_rd / bw_total - 0.7).abs() < 0.1);
        let ipc = metric(&v, MetricKind::Ipc, Level::Machine);
        let cpi = metric(&v, MetricKind::Cpi, Level::Machine);
        assert!((ipc * cpi - 1.0).abs() < 0.1);
    }

    #[test]
    fn topdown_fractions_sane() {
        let (s, p, c) = setup(&[(JobName::WebSearch, 4), (JobName::Libquantum, 4)]);
        let v = synthesize(&s, &p, &c, 5);
        for kind in [
            MetricKind::FrontendBound,
            MetricKind::BackendBound,
            MetricKind::BadSpeculation,
            MetricKind::Retiring,
        ] {
            let x = metric(&v, kind, Level::Machine);
            assert!((0.0..=1.0).contains(&x), "{kind:?} = {x}");
        }
    }

    #[test]
    fn noise_is_small() {
        let (s, p, c) = setup(&[(JobName::InMemoryAnalytics, 3)]);
        // Average many seeds: mean should approach the clean value.
        let schema = MetricSchema::canonical();
        let idx = schema
            .index_of(MetricId::new(MetricKind::Mips, Level::Machine))
            .unwrap();
        let n = 300;
        let mean: f64 = (0..n)
            .map(|seed| synthesize(&s, &p, &c, seed)[idx])
            .sum::<f64>()
            / n as f64;
        let one = synthesize(&s, &p, &c, 0)[idx];
        assert!((one - mean).abs() / mean < 0.05);
    }

    #[test]
    fn enriched_vector_matches_enriched_schema() {
        let (s, _, c) = setup(&[(JobName::DataCaching, 2), (JobName::GraphAnalytics, 2)]);
        let v = synthesize_enriched(&s, &c, 6, 42).unwrap();
        assert_eq!(v.len(), MetricSchema::canonical_enriched().len());
        assert!(v.iter().all(|x| x.is_finite() && *x >= 0.0));
        // Deterministic per seed.
        assert_eq!(v, synthesize_enriched(&s, &c, 6, 42).unwrap());
        assert_ne!(v, synthesize_enriched(&s, &c, 6, 43).unwrap());
        // Zero phases is a typed error, not a panic.
        assert!(synthesize_enriched(&s, &c, 0, 42).is_err());
    }

    #[test]
    fn phase_load_solves_hit_after_one_warm_pass() {
        let (s, _, c) = setup(&[(JobName::WebSearch, 2), (JobName::Sjeng, 3)]);
        let phases = 6;
        let uncached = synthesize_enriched(&s, &c, phases, 42).unwrap();

        let cache = EvalCache::new();
        let cold = synthesize_enriched_cached(&s, &c, phases, 42, &cache).unwrap();
        assert!(
            uncached
                .iter()
                .zip(&cold)
                .all(|(a, b)| a.to_bits() == b.to_bits()),
            "cached synthesis must be byte-identical to the uncached path"
        );
        let after_cold = cache.stats();
        assert_eq!(
            after_cold.hits + after_cold.misses,
            phases as u64,
            "every phase solve must go through the cache"
        );

        let warm = synthesize_enriched_cached(&s, &c, phases, 42, &cache).unwrap();
        assert!(warm
            .iter()
            .zip(&cold)
            .all(|(a, b)| a.to_bits() == b.to_bits()));
        let after_warm = cache.stats();
        assert_eq!(
            after_warm.misses, after_cold.misses,
            "a warm pass must not re-solve any phase load"
        );
        assert_eq!(
            after_warm.hits,
            after_cold.hits + phases as u64,
            "all {phases} phase-load solves must hit after one warm pass"
        );
    }

    #[test]
    fn enriched_means_track_plain_synthesis() {
        // The across-phase mean of a load-swung metric should be close to
        // (not exactly) the load-1.0 value.
        let (s, p, c) = setup(&[(JobName::WebServing, 3)]);
        let plain = synthesize(&s, &p, &c, 1);
        let enriched = synthesize_enriched(&s, &c, 8, 1).unwrap();
        let schema = MetricSchema::canonical();
        let mips_idx = schema
            .index_of(MetricId::new(MetricKind::Mips, Level::Machine))
            .unwrap();
        // Enriched layout interleaves mean/std.
        let enriched_mean = enriched[2 * mips_idx];
        assert!(
            (enriched_mean - plain[mips_idx]).abs() / plain[mips_idx] < 0.15,
            "phase mean {enriched_mean} vs plain {}",
            plain[mips_idx]
        );
    }

    #[test]
    fn enriched_std_reflects_load_sensitivity() {
        // A scenario whose performance depends on load (heavy colocation)
        // must show non-zero temporal std-dev on MIPS.
        let (s, _, c) = setup(&[(JobName::GraphAnalytics, 6), (JobName::Mcf, 6)]);
        let v = synthesize_enriched(&s, &c, 8, 5).unwrap();
        let schema = MetricSchema::canonical();
        let mips_idx = schema
            .index_of(MetricId::new(MetricKind::Mips, Level::Machine))
            .unwrap();
        let std = v[2 * mips_idx + 1];
        let mean = v[2 * mips_idx];
        assert!(std > 0.0, "temporal std must be positive");
        assert!(std < mean, "std below mean for a stable scenario");
    }

    #[test]
    fn contention_shifts_memory_bound_topdown() {
        let (s1, p1, c) = setup(&[(JobName::GraphAnalytics, 1)]);
        let v1 = synthesize(&s1, &p1, &c, 1);
        let (s2, p2, c2) = setup(&[(JobName::GraphAnalytics, 1), (JobName::Mcf, 8)]);
        let v2 = synthesize(&s2, &p2, &c2, 1);
        let mb1 = metric(&v1, MetricKind::MemoryBound, Level::Hp);
        let mb2 = metric(&v2, MetricKind::MemoryBound, Level::Hp);
        assert!(mb2 > mb1, "contended memory-bound {mb2} <= solo {mb1}");
    }
}
