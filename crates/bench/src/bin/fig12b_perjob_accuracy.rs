//! Fig. 12b: per-HP-job impact — datacenter truth vs sampling (95 % CI)
//! vs FLARE, for the three features.

use flare_baselines::fulldc::full_datacenter_job_impact;
use flare_baselines::sampling::{sampling_job_distribution, SamplingConfig};
use flare_bench::{banner, ExperimentContext};
use flare_core::replayer::SimTestbed;
use flare_sim::feature::Feature;
use flare_workloads::job::JobName;

fn main() {
    banner(
        "Per-HP-job impact: datacenter vs sampling (95% CI) vs FLARE",
        "Fig. 12b",
    );
    let ctx = ExperimentContext::standard();
    let n_reps = ctx.flare.n_representatives();
    let order = ["GA", "WSV", "DA", "DS", "IA", "MS", "DC", "WSC"];

    for (fi, feature) in Feature::paper_features().iter().enumerate() {
        let fc = feature.apply(&ctx.baseline);
        println!("\n[Feature {} — {}]", fi + 1, feature.label());
        println!(
            "  {:<5} {:>9} {:>9} {:>8} {:>9} {:>17}",
            "job", "truth %", "FLARE %", "err pp", "sample %", "sampling 95% CI"
        );
        let mut flare_errs = Vec::new();
        for abbrev in order {
            let job: JobName = abbrev.parse().expect("paper abbreviation");
            let truth =
                full_datacenter_job_impact(&ctx.corpus, &SimTestbed, job, &ctx.baseline, &fc, true)
                    .expect("job in corpus");
            let flare_est = ctx.flare.evaluate_job(job, feature).expect("estimate");
            let dist = sampling_job_distribution(
                &ctx.corpus,
                &SimTestbed,
                job,
                &ctx.baseline,
                &fc,
                &SamplingConfig {
                    n_samples: n_reps,
                    trials: 1000,
                    ..SamplingConfig::default()
                },
            )
            .expect("population");
            let err = (flare_est.impact_pct - truth).abs();
            flare_errs.push(err);
            println!(
                "  {:<5} {:>9.2} {:>9.2} {:>8.2} {:>9.2} [{:>6.2}, {:>6.2}]",
                abbrev,
                truth,
                flare_est.impact_pct,
                err,
                dist.summary.mean,
                dist.summary.p2_5,
                dist.summary.p97_5,
            );
        }
        let mean: f64 = flare_errs.iter().sum::<f64>() / flare_errs.len() as f64;
        let max = flare_errs.iter().cloned().fold(0.0, f64::max);
        println!("  FLARE per-job error: mean {mean:.2}pp, max {max:.2}pp");
    }
    println!(
        "\npaper's observations: sampling is decent per-job (smaller populations, robust jobs);\n\
         FLARE is occasionally less accurate per-job because clusters are built from general,\n\
         not per-job, characteristics (§5.3)."
    );
}
