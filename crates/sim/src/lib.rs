//! # flare-sim
//!
//! The datacenter substrate for the FLARE reproduction: machine shapes
//! (Tables 2/5), shape-preserving features (Table 4), a colocation
//! interference model, the greedy no-overcommit scheduler, a diurnal job
//! submission driver, and a profiler that synthesizes the 100+ raw metrics
//! of Fig. 6 for every job-colocation scenario.
//!
//! The paper evaluates FLARE against a physical 3-rack datacenter; this
//! simulator is the closest synthetic equivalent (see DESIGN.md for the
//! substitution argument). FLARE itself only ever consumes the per-scenario
//! metric vectors and replayed measurements this crate produces.
//!
//! ## Example
//!
//! ```
//! use flare_sim::datacenter::{Corpus, CorpusConfig};
//! use flare_sim::feature::Feature;
//!
//! let mut cfg = CorpusConfig::default();
//! cfg.days = 1.0; // keep the doctest fast
//! let corpus = Corpus::generate(&cfg);
//! assert!(!corpus.is_empty());
//!
//! // Ground-truth impact of the paper's Feature 1 on the first scenario:
//! let baseline = &cfg.machine_config;
//! let feature = Feature::paper_feature1().apply(baseline);
//! let id = corpus.hp_entries()[0].id;
//! let before = corpus.evaluate_scenario(id, baseline).unwrap();
//! let after = corpus.evaluate_scenario(id, &feature).unwrap();
//! assert!(after.hp_mips() <= before.hp_mips());
//! ```

#![warn(missing_docs)]

pub mod datacenter;
pub mod faults;
pub mod feature;
pub mod interference;
pub mod kernel;
pub mod machine;
pub mod profiler;
pub mod scenario;
pub mod scheduler;
