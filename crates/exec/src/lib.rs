//! # flare-exec
//!
//! Deterministic parallel execution primitives for the FLARE pipeline.
//!
//! Every hot path in FLARE — corpus profiling, k-means restarts, the
//! cluster-count sweep, full-datacenter ground truth — is a fan-out over
//! independent work items whose results must not depend on how many
//! threads happened to run them. This crate provides that fan-out once,
//! with a hard guarantee: **the output of [`par_map_indexed`] is exactly
//! the output of the equivalent serial loop**, element for element, no
//! matter the thread count.
//!
//! The guarantee holds because:
//!
//! 1. work items are split into *contiguous* chunks, one per worker;
//! 2. each worker maps its chunk in order and returns a `Vec` of results;
//! 3. chunk results are concatenated in chunk order, which is input order.
//!
//! Thread interleaving can therefore change wall-clock time only, never a
//! result. Callers that need randomness derive a fresh RNG per item from
//! `seed + item_index` (see `flare-cluster`'s k-means restarts), so the
//! byte-for-byte determinism survives stochastic workloads too.
//!
//! Built on [`std::thread::scope`]: no external dependencies, and borrowed
//! inputs can be shared with workers without `'static` bounds.

#![warn(missing_docs)]

use std::num::NonZeroUsize;

/// Resolves a thread-count knob to a concrete worker count.
///
/// - `None` — use the machine's available parallelism (at least 1).
/// - `Some(n)` — use exactly `n` workers; `Some(0)` is clamped to 1 so a
///   misconfigured knob degrades to serial execution instead of panicking
///   (configs reject `Some(0)` at validation time; this is the backstop).
pub fn resolve_threads(threads: Option<usize>) -> usize {
    match threads {
        Some(n) => n.max(1),
        None => std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1),
    }
}

/// Maps `f` over `items` across worker threads, returning results in input
/// order.
///
/// `f` receives each item's index alongside the item, so callers can
/// derive per-item deterministic state (RNG seeds, IDs) that is identical
/// under any thread count. With `threads == Some(1)` (or a single item)
/// the map runs inline on the calling thread — the serial baseline the
/// parallel output is guaranteed to match byte for byte.
///
/// # Panics
///
/// Propagates a panic from `f` (the scope joins all workers first).
///
/// # Examples
///
/// ```
/// use flare_exec::par_map_indexed;
///
/// let items = vec![10u64, 20, 30, 40, 50];
/// let serial = par_map_indexed(&items, Some(1), |i, x| i as u64 * 1000 + x);
/// let parallel = par_map_indexed(&items, Some(4), |i, x| i as u64 * 1000 + x);
/// assert_eq!(serial, parallel);
/// assert_eq!(serial, vec![10, 1020, 2030, 3040, 4050]);
/// ```
pub fn par_map_indexed<T, R, F>(items: &[T], threads: Option<usize>, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = resolve_threads(threads).min(n);
    if workers == 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let chunk = n.div_ceil(workers);
    let per_chunk: Vec<Vec<R>> = std::thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = items
            .chunks(chunk)
            .enumerate()
            .map(|(ci, slice)| {
                scope.spawn(move || {
                    let base = ci * chunk;
                    slice
                        .iter()
                        .enumerate()
                        .map(|(j, t)| f(base + j, t))
                        .collect::<Vec<R>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("flare-exec worker panicked"))
            .collect()
    });
    // Chunks are contiguous and iterated in order, so concatenation
    // restores exact input order.
    per_chunk.into_iter().flatten().collect()
}

/// Chunked variant of [`par_map_range`]: splits `0..n` into contiguous
/// ranges of at least `min_chunk` indices, maps `f` over each range on a
/// worker thread, and concatenates the per-range outputs in range order.
///
/// This is the right shape for blocked kernels (e.g. the k-means
/// assignment step) where per-item closure dispatch would dominate: the
/// worker receives a whole contiguous index range and can walk flat memory
/// with a tight loop. `min_chunk` bounds the fan-out so tiny inputs never
/// pay thread-spawn overhead — with `n <= min_chunk` (or one worker) the
/// map runs inline on the calling thread.
///
/// # Determinism
///
/// If `f(range)` returns exactly the per-index results of `range` in
/// ascending order (i.e. `f` is a pure per-index function applied over the
/// range), the concatenated output is identical for **every** thread count
/// and every `min_chunk`: ranges are contiguous, disjoint, cover `0..n`,
/// and are concatenated in ascending order.
///
/// # Panics
///
/// Propagates a panic from `f` (the scope joins all workers first).
///
/// # Examples
///
/// ```
/// use flare_exec::par_map_chunks;
///
/// let serial = par_map_chunks(10, Some(1), 1, |r| r.map(|i| i * 2).collect());
/// let chunked = par_map_chunks(10, Some(3), 2, |r| r.map(|i| i * 2).collect());
/// assert_eq!(serial, chunked);
/// ```
pub fn par_map_chunks<R, F>(n: usize, threads: Option<usize>, min_chunk: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(std::ops::Range<usize>) -> Vec<R> + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    let min_chunk = min_chunk.max(1);
    let workers = resolve_threads(threads).min(n.div_ceil(min_chunk)).max(1);
    if workers == 1 {
        return f(0..n);
    }
    let chunk = n.div_ceil(workers);
    let per_chunk: Vec<Vec<R>> = std::thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = (0..n)
            .step_by(chunk)
            .map(|start| {
                let end = (start + chunk).min(n);
                scope.spawn(move || f(start..end))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("flare-exec worker panicked"))
            .collect()
    });
    per_chunk.into_iter().flatten().collect()
}

/// Deterministic two-level fold: computes one partial per index of `0..n`
/// in parallel (via [`par_map_range`]), then combines the partials **in
/// index order** on the calling thread. Returns `None` when `n == 0`.
///
/// This is the shape of FLARE's shard-parallel moment passes: each shard
/// produces a partial accumulator (column sums, cross-moments, projected
/// blocks), and the combine step is a strictly ordered left-fold seeded
/// with partial 0. Because the combine order is fixed — never "whoever
/// finishes first" — the result is **bitwise identical for every thread
/// count**, including the serial baseline (`threads == Some(1)` runs the
/// identical two-level structure inline). Note the guarantee is serial ≡
/// parallel for a *fixed* partition; folds over different partitions of
/// the same data may differ in float rounding, which is why the dense
/// single-pass oracles stay in-tree as tolerance-based differential tests.
///
/// # Panics
///
/// Propagates a panic from `partial` or `combine`.
///
/// # Examples
///
/// ```
/// use flare_exec::par_fold_ordered;
///
/// let serial = par_fold_ordered(5, Some(1), |i| vec![i], |mut a, b| { a.extend(b); a });
/// let parallel = par_fold_ordered(5, Some(4), |i| vec![i], |mut a, b| { a.extend(b); a });
/// assert_eq!(serial, parallel);
/// assert_eq!(serial, Some(vec![0, 1, 2, 3, 4]));
/// ```
pub fn par_fold_ordered<R, F, G>(
    n: usize,
    threads: Option<usize>,
    partial: F,
    combine: G,
) -> Option<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
    G: Fn(R, R) -> R,
{
    let partials = par_map_range(n, threads, partial);
    partials.into_iter().reduce(combine)
}

/// Index-only variant of [`par_map_indexed`]: maps `f` over `0..n` with the
/// same ordering and determinism guarantees. The natural shape for
/// fan-outs whose work is defined by an index alone (k-means restarts,
/// seeded trials).
///
/// # Examples
///
/// ```
/// use flare_exec::par_map_range;
///
/// let squares = par_map_range(6, None, |i| i * i);
/// assert_eq!(squares, vec![0, 1, 4, 9, 16, 25]);
/// ```
pub fn par_map_range<R, F>(n: usize, threads: Option<usize>, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let indices: Vec<usize> = (0..n).collect();
    par_map_indexed(&indices, threads, |_, &i| f(i))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn resolve_threads_contract() {
        assert_eq!(resolve_threads(Some(1)), 1);
        assert_eq!(resolve_threads(Some(7)), 7);
        assert_eq!(resolve_threads(Some(0)), 1, "Some(0) degrades to serial");
        assert!(resolve_threads(None) >= 1);
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let out: Vec<i32> = par_map_indexed(&[] as &[i32], Some(4), |_, &x| x);
        assert!(out.is_empty());
        let out: Vec<usize> = par_map_range(0, None, |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn preserves_input_order_for_all_thread_counts() {
        let items: Vec<usize> = (0..257).collect();
        let expected: Vec<usize> = items.iter().map(|&x| x * 3 + 1).collect();
        for threads in [
            Some(1),
            Some(2),
            Some(3),
            Some(4),
            Some(16),
            Some(1000),
            None,
        ] {
            let got = par_map_indexed(&items, threads, |_, &x| x * 3 + 1);
            assert_eq!(got, expected, "threads = {threads:?}");
        }
    }

    #[test]
    fn indices_match_positions() {
        let items = vec!["a", "b", "c", "d", "e"];
        for threads in [Some(1), Some(2), Some(5), Some(64)] {
            let got = par_map_indexed(&items, threads, |i, s| format!("{i}:{s}"));
            assert_eq!(got, vec!["0:a", "1:b", "2:c", "3:d", "4:e"]);
        }
    }

    #[test]
    fn range_variant_matches_slice_variant() {
        let slice: Vec<usize> = (0..100).collect();
        let a = par_map_indexed(&slice, Some(7), |i, _| i * i);
        let b = par_map_range(100, Some(7), |i| i * i);
        assert_eq!(a, b);
    }

    #[test]
    fn actually_uses_multiple_threads() {
        // Thread-id diversity: with more items than workers and a brief
        // stall per item, at least two distinct threads must participate.
        use std::collections::HashSet;
        use std::sync::Mutex;
        let ids: Mutex<HashSet<std::thread::ThreadId>> = Mutex::new(HashSet::new());
        par_map_range(8, Some(4), |_| {
            ids.lock().unwrap().insert(std::thread::current().id());
            std::thread::sleep(std::time::Duration::from_millis(5));
        });
        assert!(ids.lock().unwrap().len() >= 2);
    }

    #[test]
    fn every_item_mapped_exactly_once() {
        let calls = AtomicUsize::new(0);
        let out = par_map_range(1000, Some(8), |i| {
            calls.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(calls.load(Ordering::Relaxed), 1000);
        assert_eq!(out, (0..1000).collect::<Vec<_>>());
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        let got = par_map_indexed(&[1, 2], Some(64), |_, &x| x * 10);
        assert_eq!(got, vec![10, 20]);
    }

    #[test]
    fn chunked_map_matches_serial_for_all_shapes() {
        let expected: Vec<usize> = (0..533).map(|i| i * 7 + 3).collect();
        for threads in [Some(1), Some(2), Some(3), Some(16), None] {
            for min_chunk in [1, 2, 64, 256, 1000] {
                let got =
                    par_map_chunks(533, threads, min_chunk, |r| r.map(|i| i * 7 + 3).collect());
                assert_eq!(got, expected, "threads={threads:?} min_chunk={min_chunk}");
            }
        }
    }

    #[test]
    fn chunked_map_small_input_runs_inline() {
        // n <= min_chunk must not spawn: the closure sees the whole range.
        let got = par_map_chunks(5, Some(8), 256, |r| {
            assert_eq!(r, 0..5);
            r.map(|i| i + 1).collect()
        });
        assert_eq!(got, vec![1, 2, 3, 4, 5]);
        let empty: Vec<usize> = par_map_chunks(0, Some(4), 1, |r| r.collect());
        assert!(empty.is_empty());
    }

    #[test]
    fn chunked_ranges_are_contiguous_and_cover_input() {
        use std::sync::Mutex;
        let ranges: Mutex<Vec<std::ops::Range<usize>>> = Mutex::new(Vec::new());
        let _ = par_map_chunks(100, Some(4), 1, |r| {
            ranges.lock().unwrap().push(r.clone());
            r.collect::<Vec<_>>()
        });
        let mut rs = ranges.lock().unwrap().clone();
        rs.sort_by_key(|r| r.start);
        assert_eq!(rs.first().unwrap().start, 0);
        assert_eq!(rs.last().unwrap().end, 100);
        for w in rs.windows(2) {
            assert_eq!(w[0].end, w[1].start, "ranges must tile 0..n");
        }
    }

    #[test]
    fn ordered_fold_is_thread_invariant_and_ordered() {
        // Non-commutative combine (string concat) exposes any out-of-order
        // combination immediately.
        let serial = par_fold_ordered(9, Some(1), |i| i.to_string(), |a, b| a + &b);
        assert_eq!(serial.as_deref(), Some("012345678"));
        for threads in [Some(2), Some(3), Some(8), None] {
            let parallel = par_fold_ordered(9, threads, |i| i.to_string(), |a, b| a + &b);
            assert_eq!(serial, parallel, "threads={threads:?}");
        }
        let empty: Option<u64> = par_fold_ordered(0, Some(4), |i| i as u64, |a, b| a + b);
        assert_eq!(empty, None);
    }

    #[test]
    fn parallel_equals_serial_with_per_index_seeding() {
        // The pattern k-means restarts rely on: derive per-item state from
        // the index, never from shared mutable state.
        let seeded = |i: usize| -> u64 {
            let mut x = 0x9E37_79B9u64.wrapping_add(i as u64);
            for _ in 0..8 {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
            }
            x
        };
        let serial = par_map_range(64, Some(1), seeded);
        let parallel = par_map_range(64, Some(6), seeded);
        assert_eq!(serial, parallel);
    }
}
