//! Job-colocation scenarios (§4.1).
//!
//! "Every new combination of jobs defines a new scenario": a scenario is
//! the multiset of job instances co-resident on one machine. The corpus
//! driver deduplicates the combinations it observes over time and counts
//! occurrences (the observation weight).

use flare_workloads::job::{JobInstance, JobName};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A job-colocation scenario: the multiset of containers on one machine.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Scenario {
    /// Instance count per job, sorted by job for canonical ordering.
    counts: BTreeMap<JobName, u32>,
}

impl Scenario {
    /// Builds a scenario from a list of running instances.
    ///
    /// # Examples
    ///
    /// ```
    /// use flare_sim::scenario::Scenario;
    /// use flare_workloads::job::{JobInstance, JobName};
    ///
    /// let s = Scenario::from_instances(&[
    ///     JobInstance::new(JobName::DataCaching),
    ///     JobInstance::new(JobName::DataCaching),
    ///     JobInstance::new(JobName::Mcf),
    /// ]);
    /// assert_eq!(s.instances_of(JobName::DataCaching), 2);
    /// assert_eq!(s.total_instances(), 3);
    /// ```
    pub fn from_instances(instances: &[JobInstance]) -> Self {
        let mut counts = BTreeMap::new();
        for inst in instances {
            *counts.entry(inst.job).or_insert(0) += 1;
        }
        Scenario { counts }
    }

    /// Builds a scenario from `(job, count)` pairs; zero counts are
    /// dropped.
    pub fn from_counts<I: IntoIterator<Item = (JobName, u32)>>(pairs: I) -> Self {
        let mut counts = BTreeMap::new();
        for (job, n) in pairs {
            if n > 0 {
                *counts.entry(job).or_insert(0) += n;
            }
        }
        Scenario { counts }
    }

    /// The empty scenario (an idle machine).
    pub fn empty() -> Self {
        Scenario {
            counts: BTreeMap::new(),
        }
    }

    /// `true` if no instances are running.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Number of instances of `job`.
    pub fn instances_of(&self, job: JobName) -> u32 {
        self.counts.get(&job).copied().unwrap_or(0)
    }

    /// `true` if the scenario contains at least one instance of `job`.
    pub fn has_job(&self, job: JobName) -> bool {
        self.instances_of(job) > 0
    }

    /// Total container count.
    pub fn total_instances(&self) -> u32 {
        self.counts.values().sum()
    }

    /// Total vCPUs demanded (containers × 4).
    pub fn total_vcpus(&self) -> u32 {
        self.total_instances() * JobInstance::CONTAINER_VCPUS
    }

    /// vCPUs demanded by High-Priority containers only.
    pub fn hp_vcpus(&self) -> u32 {
        self.counts
            .iter()
            .filter(|(j, _)| JobName::HIGH_PRIORITY.contains(j))
            .map(|(_, &n)| n * JobInstance::CONTAINER_VCPUS)
            .sum()
    }

    /// vCPUs demanded by Low-Priority containers only.
    pub fn lp_vcpus(&self) -> u32 {
        self.total_vcpus() - self.hp_vcpus()
    }

    /// `true` if at least one HP container is present (scenarios without
    /// HP jobs carry no managed performance and are excluded from impact
    /// accounting).
    pub fn has_hp_job(&self) -> bool {
        self.counts
            .keys()
            .any(|j| JobName::HIGH_PRIORITY.contains(j))
    }

    /// Iterates `(job, count)` pairs in canonical (sorted) order.
    pub fn iter(&self) -> impl Iterator<Item = (JobName, u32)> + '_ {
        self.counts.iter().map(|(&j, &n)| (j, n))
    }

    /// Iterates the flat instance expansion in canonical order without
    /// materializing it — what the interference kernels walk; the hot
    /// evaluation path (`flare_sim::kernel`) never builds the `Vec` form.
    pub fn instances(&self) -> impl Iterator<Item = JobInstance> + '_ {
        self.iter()
            .flat_map(|(job, n)| (0..n).map(move |_| JobInstance::new(job)))
    }

    /// Expands back to a flat instance list (canonical order).
    pub fn to_instances(&self) -> Vec<JobInstance> {
        let mut out = Vec::with_capacity(self.total_instances() as usize);
        out.extend(self.instances());
        out
    }

    /// The job mix as `(abbrev, count)` strings — the form stored in the
    /// metric database so the Replayer can reconstruct the commands.
    pub fn job_mix_strings(&self) -> Vec<(String, u32)> {
        self.iter()
            .map(|(j, n)| (j.abbrev().to_string(), n))
            .collect()
    }

    /// Machine occupancy fraction given `schedulable_vcpus` (the y-axis of
    /// Fig. 3a; step-like because containers are fixed-size).
    pub fn occupancy(&self, schedulable_vcpus: u32) -> f64 {
        if schedulable_vcpus == 0 {
            return 0.0;
        }
        self.total_vcpus() as f64 / schedulable_vcpus as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multiset_identity_ignores_order() {
        let a = Scenario::from_instances(&[
            JobInstance::new(JobName::DataCaching),
            JobInstance::new(JobName::Mcf),
            JobInstance::new(JobName::DataCaching),
        ]);
        let b = Scenario::from_counts([(JobName::Mcf, 1), (JobName::DataCaching, 2)]);
        assert_eq!(a, b);
    }

    #[test]
    fn zero_counts_dropped() {
        let s = Scenario::from_counts([(JobName::Sjeng, 0), (JobName::WebSearch, 1)]);
        assert!(!s.has_job(JobName::Sjeng));
        assert_eq!(s.total_instances(), 1);
    }

    #[test]
    fn vcpu_accounting() {
        let s = Scenario::from_counts([
            (JobName::DataAnalytics, 2), // HP
            (JobName::Mcf, 1),           // LP
        ]);
        assert_eq!(s.total_vcpus(), 12);
        assert_eq!(s.hp_vcpus(), 8);
        assert_eq!(s.lp_vcpus(), 4);
        assert!(s.has_hp_job());
    }

    #[test]
    fn lp_only_scenario_has_no_hp() {
        let s = Scenario::from_counts([(JobName::Mcf, 2)]);
        assert!(!s.has_hp_job());
        assert_eq!(s.hp_vcpus(), 0);
    }

    #[test]
    fn occupancy_steps() {
        let s = Scenario::from_counts([(JobName::DataCaching, 3)]);
        assert!((s.occupancy(48) - 0.25).abs() < 1e-12);
        assert_eq!(Scenario::empty().occupancy(48), 0.0);
        assert_eq!(s.occupancy(0), 0.0);
    }

    #[test]
    fn roundtrip_instances() {
        let s = Scenario::from_counts([(JobName::WebServing, 2), (JobName::Omnetpp, 1)]);
        let insts = s.to_instances();
        assert_eq!(insts.len(), 3);
        assert_eq!(Scenario::from_instances(&insts), s);
    }

    #[test]
    fn job_mix_strings_canonical() {
        let s = Scenario::from_counts([(JobName::Mcf, 1), (JobName::DataAnalytics, 2)]);
        let mix = s.job_mix_strings();
        assert_eq!(mix.len(), 2);
        // BTreeMap ordering puts DA (earlier enum variant) first.
        assert_eq!(mix[0], ("DA".to_string(), 2));
        assert_eq!(mix[1], ("mcf".to_string(), 1));
    }
}
