//! Fig. 10: per-cluster radar profiles — each group's centroid (±1σ) in
//! kept-PC space plus the group weight.

use flare_bench::{banner, ExperimentContext};
use flare_core::interpret::{distinguishing_pcs, radar_chart};

fn main() {
    banner("Cluster centroids in PC space (radar data)", "Fig. 10");
    let ctx = ExperimentContext::standard();
    let analyzer = ctx.flare.analyzer();
    let radar = radar_chart(analyzer, true);

    println!(
        "\n{} clusters over {} PCs; corpus ±1σ per PC ≈ {:.2}",
        radar.profiles.len(),
        analyzer.n_pcs(),
        radar.corpus_std.iter().sum::<f64>() / radar.corpus_std.len() as f64
    );

    for p in &radar.profiles {
        let weight = radar.weights[p.cluster] * 100.0;
        println!(
            "\nCluster {:>2} (weight {:>5.2}%, {} scenarios)",
            p.cluster, weight, p.size
        );
        print!("  mean: ");
        for m in &p.mean {
            print!("{m:>6.2}");
        }
        println!();
        print!("  ±1σ : ");
        for s in &p.std_dev {
            print!("{s:>6.2}");
        }
        println!();
        let top = distinguishing_pcs(analyzer, p.cluster, 3);
        let desc: Vec<String> = top
            .iter()
            .map(|(pc, v)| format!("PC{pc}={v:+.1}σ"))
            .collect();
        println!("  distinguishing PCs: {}", desc.join(", "));
    }

    // The paper's observation: many clusters have similar weights ~1/k —
    // the datacenter is a collection of diverse behaviours.
    let max_w = radar.weights.iter().cloned().fold(0.0, f64::max);
    println!(
        "\nlargest cluster weight: {:.1}% (no single dominant behaviour)",
        max_w * 100.0
    );
}
