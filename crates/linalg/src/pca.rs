//! Principal Component Analysis.
//!
//! FLARE's Analyzer (§4.3 of the paper) normalizes each raw metric to zero
//! mean / unit variance and applies PCA to translate 100+ raw metrics into a
//! small set of interpretable high-level metrics. PCA is chosen over
//! non-linear techniques precisely because the principal components are
//! *linear combinations of named raw metrics* and can therefore be labeled
//! ("CPU-intensive + frontend-bandwidth-bound + ALU-heavy", Fig. 8).
//!
//! Both [`Pca::fit`] and [`Pca::fit_with`] route the covariance
//! eigendecomposition through [`symmetric_eigen`] and therefore through the
//! tridiagonal QL kernel in [`crate::kernel`], whose tolerance contract
//! against the Jacobi oracle is documented there.

use crate::eigen::symmetric_eigen;
use crate::error::{LinalgError, Result};
use crate::matrix::Matrix;
use crate::sharded::{ShardAccess, ShardedMatrix};
use crate::stats::ZScore;
use serde::{Deserialize, Serialize};

/// A fitted PCA model.
///
/// # Examples
///
/// ```
/// use flare_linalg::{Matrix, pca::Pca};
///
/// // Ten points along a noisy line: one dominant component.
/// let rows: Vec<Vec<f64>> = (0..10)
///     .map(|i| vec![i as f64, 2.0 * i as f64 + if i % 2 == 0 { 0.05 } else { -0.05 }])
///     .collect();
/// let data = Matrix::from_rows(&rows).unwrap();
/// let pca = Pca::fit(&data).unwrap();
/// assert!(pca.explained_variance_ratio()[0] > 0.99);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(into = "PcaSnapshot", try_from = "PcaSnapshot")]
pub struct Pca {
    zscore: ZScore,
    components: Matrix, // columns = principal axes in (standardized) metric space
    eigenvalues: Vec<f64>,
    explained_ratio: Vec<f64>,
}

impl Pca {
    /// Fits a PCA to `data` (rows = observations, columns = variables).
    ///
    /// Columns are z-score normalized before the covariance is computed, as
    /// §4.3 prescribes ("eliminate the biases from the metrics' inherent
    /// magnitudes").
    ///
    /// # Errors
    ///
    /// - [`LinalgError::Empty`] if `data` has fewer than 2 rows.
    /// - [`LinalgError::NonFinite`] if `data` contains NaN/∞.
    /// - Errors from the underlying eigendecomposition.
    pub fn fit(data: &Matrix) -> Result<Self> {
        if data.nrows() < 2 {
            return Err(LinalgError::Empty(
                "PCA requires at least two observations".into(),
            ));
        }
        if !data.is_finite() {
            return Err(LinalgError::NonFinite("PCA input".into()));
        }
        Self::fit_with(data, ZScore::fit(data)?)
    }

    /// Fits a PCA using a caller-supplied column normalizer instead of the
    /// default mean/std z-score — e.g. the median/MAD scaler from
    /// [`crate::stats::robust_scale`], which keeps outlier spikes from
    /// inflating the column variances the covariance is computed over.
    ///
    /// `Pca::fit(data)` is exactly `Pca::fit_with(data, ZScore::fit(data)?)`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Pca::fit`], plus
    /// [`LinalgError::DimensionMismatch`] if `normalizer` was fitted on a
    /// different column count.
    pub fn fit_with(data: &Matrix, normalizer: ZScore) -> Result<Self> {
        if data.nrows() < 2 {
            return Err(LinalgError::Empty(
                "PCA requires at least two observations".into(),
            ));
        }
        if !data.is_finite() {
            return Err(LinalgError::NonFinite("PCA input".into()));
        }
        let standardized = normalizer.transform(data)?;
        let cov = covariance(&standardized)?;
        Self::from_covariance(normalizer, &cov)
    }

    /// Shard-streaming [`Pca::fit`]: serial wrapper around
    /// [`Pca::fit_sharded_threaded`] with one worker. Serial and parallel
    /// fits run the identical two-level fold, so this is bit-identical to
    /// the threaded variant for every thread count.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Pca::fit`], plus shard-access failures.
    pub fn fit_sharded<A: ShardAccess + Sync>(data: &A) -> Result<Self> {
        Self::fit_sharded_threaded(data, Some(1))
    }

    /// Shard-parallel [`Pca::fit`]: the z-score normalizer and the
    /// covariance are accumulated through the deterministic two-level fold
    /// — per-shard partial moments in parallel, combined in shard-index
    /// order — so every thread count produces identical bits. Single-shard
    /// stores additionally match `Pca::fit(coalesced)` bitwise; multi-shard
    /// layouts regroup the float additions at shard boundaries and agree
    /// with the dense fit to rounding (the dense fit stays in-tree as this
    /// path's differential oracle). Peak transient allocation is
    /// `workers` d×d partial covariances plus in-flight shards, never n×d.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Pca::fit`], plus shard-access failures.
    pub fn fit_sharded_threaded<A: ShardAccess + Sync>(
        data: &A,
        threads: Option<usize>,
    ) -> Result<Self> {
        Self::validate_sharded(data, threads)?;
        let normalizer = ZScore::fit_sharded_threaded(data, threads)?;
        Self::fit_sharded_with_threaded(data, normalizer, threads)
    }

    /// Shard-streaming [`Pca::fit_with`]: like [`Pca::fit_sharded`] but
    /// with a caller-supplied normalizer (e.g.
    /// [`crate::stats::robust_scale_sharded`]).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Pca::fit_with`], plus shard-access failures.
    pub fn fit_sharded_with<A: ShardAccess + Sync>(data: &A, normalizer: ZScore) -> Result<Self> {
        Self::fit_sharded_with_threaded(data, normalizer, Some(1))
    }

    /// Shard-parallel [`Pca::fit_with`] — the threaded two-level-fold
    /// variant of [`Pca::fit_sharded_with`]; see
    /// [`Pca::fit_sharded_threaded`] for the determinism contract.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Pca::fit_with`], plus shard-access failures.
    pub fn fit_sharded_with_threaded<A: ShardAccess + Sync>(
        data: &A,
        normalizer: ZScore,
        threads: Option<usize>,
    ) -> Result<Self> {
        Self::validate_sharded(data, threads)?;
        if normalizer.means.len() != data.ncols() {
            return Err(LinalgError::DimensionMismatch(format!(
                "zscore transform: fitted on {} columns, got {}",
                normalizer.means.len(),
                data.ncols()
            )));
        }
        let cov = covariance_standardized_sharded_threaded(data, &normalizer, threads)?;
        Self::from_covariance(normalizer, &cov)
    }

    /// Shared validation of the streaming fits, mirroring the dense
    /// entry-point checks shard by shard (finiteness checked per shard in
    /// parallel — a pure per-shard predicate, so thread-count invariant).
    fn validate_sharded<A: ShardAccess + Sync>(data: &A, threads: Option<usize>) -> Result<()> {
        if data.nrows() < 2 {
            return Err(LinalgError::Empty(
                "PCA requires at least two observations".into(),
            ));
        }
        let finite = flare_exec::par_map_range(data.shard_count(), threads, |s| {
            data.with_shard(s, Matrix::is_finite)
        });
        for shard_ok in finite {
            if !shard_ok? {
                return Err(LinalgError::NonFinite("PCA input".into()));
            }
        }
        Ok(())
    }

    /// The shared eigendecomposition tail of every fit path — one body of
    /// code, so the dense and streaming fits cannot drift apart.
    fn from_covariance(zscore: ZScore, cov: &Matrix) -> Result<Self> {
        let eig = symmetric_eigen(cov)?;

        // Numerical noise can make tiny eigenvalues slightly negative; clamp.
        let eigenvalues: Vec<f64> = eig.eigenvalues.iter().map(|&l| l.max(0.0)).collect();
        let total: f64 = eigenvalues.iter().sum();
        let explained_ratio = if total > 0.0 {
            eigenvalues.iter().map(|&l| l / total).collect()
        } else {
            vec![0.0; eigenvalues.len()]
        };

        Ok(Pca {
            zscore,
            components: eig.eigenvectors,
            eigenvalues,
            explained_ratio,
        })
    }

    /// Number of input variables the model was fitted on.
    pub fn n_features(&self) -> usize {
        self.components.nrows()
    }

    /// All eigenvalues (variances along each principal axis), descending.
    pub fn eigenvalues(&self) -> &[f64] {
        &self.eigenvalues
    }

    /// Fraction of total variance explained by each component, descending.
    pub fn explained_variance_ratio(&self) -> &[f64] {
        &self.explained_ratio
    }

    /// Cumulative explained-variance curve (the y-axis of Fig. 7).
    pub fn cumulative_explained_variance(&self) -> Vec<f64> {
        let mut acc = 0.0;
        self.explained_ratio
            .iter()
            .map(|r| {
                acc += r;
                acc
            })
            .collect()
    }

    /// Smallest number of components whose cumulative explained variance
    /// reaches `threshold` (e.g. 0.95 → "18 PCs" in the paper's Fig. 7).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidParameter`] if `threshold` is not in
    /// `(0, 1]`.
    pub fn components_for_variance(&self, threshold: f64) -> Result<usize> {
        if !(threshold > 0.0 && threshold <= 1.0) {
            return Err(LinalgError::InvalidParameter(format!(
                "variance threshold {threshold} outside (0, 1]"
            )));
        }
        let cum = self.cumulative_explained_variance();
        for (i, c) in cum.iter().enumerate() {
            if *c + 1e-12 >= threshold {
                return Ok(i + 1);
            }
        }
        Ok(self.eigenvalues.len())
    }

    /// The loading (signed weight) of raw variable `feature` on component
    /// `pc`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of bounds.
    pub fn loading(&self, feature: usize, pc: usize) -> f64 {
        self.components[(feature, pc)]
    }

    /// All loadings of component `pc` as a vector over raw variables.
    ///
    /// # Panics
    ///
    /// Panics if `pc >= n_features()`.
    pub fn component(&self, pc: usize) -> Vec<f64> {
        self.components.col(pc)
    }

    /// Projects observations into PC space, keeping the first `k`
    /// components.
    ///
    /// # Errors
    ///
    /// - [`LinalgError::InvalidParameter`] if `k` is zero or exceeds the
    ///   number of fitted components.
    /// - [`LinalgError::DimensionMismatch`] if `data` has the wrong number
    ///   of columns.
    pub fn transform(&self, data: &Matrix, k: usize) -> Result<Matrix> {
        if k == 0 || k > self.components.ncols() {
            return Err(LinalgError::InvalidParameter(format!(
                "cannot keep {k} of {} components",
                self.components.ncols()
            )));
        }
        let standardized = self.zscore.transform(data)?;
        let sub = self
            .components
            .select_columns(&(0..k).collect::<Vec<_>>())?;
        standardized.matmul(&sub)
    }

    /// Per-component variances scaled for whitening: projecting then
    /// dividing each PC column by `sqrt(eigenvalue)` yields unit-variance
    /// coordinates (§4.4's whitening step before clustering).
    ///
    /// # Errors
    ///
    /// Same as [`Pca::transform`].
    pub fn transform_whitened(&self, data: &Matrix, k: usize) -> Result<Matrix> {
        let mut projected = self.transform(data, k)?;
        for j in 0..k {
            let sd = self.eigenvalues[j].sqrt();
            // Components with ~zero variance carry no information; leave
            // their (all-but-zero) coordinates unscaled.
            if sd <= 1e-12 {
                continue;
            }
            for i in 0..projected.nrows() {
                projected[(i, j)] /= sd;
            }
        }
        Ok(projected)
    }

    /// Shard-streaming [`Pca::transform`]: standardizes and projects one
    /// shard at a time (each output row depends only on its input row, so
    /// per-shard matmul is bit-identical to the dense product), returning
    /// a sharded result under the input's row bound. Peak transient
    /// allocation is one standardized shard plus its k-column projection.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Pca::transform`], plus shard-access failures.
    pub fn transform_sharded<A: ShardAccess>(&self, data: &A, k: usize) -> Result<ShardedMatrix> {
        if k == 0 || k > self.components.ncols() {
            return Err(LinalgError::InvalidParameter(format!(
                "cannot keep {k} of {} components",
                self.components.ncols()
            )));
        }
        let sub = self
            .components
            .select_columns(&(0..k).collect::<Vec<_>>())?;
        let mut out = ShardedMatrix::new(k, data.shard_rows());
        for s in 0..data.shard_count() {
            let block = data.with_shard(s, |shard| -> Result<Matrix> {
                self.zscore.transform(shard)?.matmul(&sub)
            })??;
            out.reserve_rows(block.nrows());
            for row in block.rows_iter() {
                out.push_row(row)?;
            }
        }
        Ok(out)
    }

    /// Shard-streaming [`Pca::transform_whitened`] — see
    /// [`Pca::transform_sharded`] for the memory contract.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Pca::transform_whitened`], plus shard-access
    /// failures.
    pub fn transform_whitened_sharded<A: ShardAccess>(
        &self,
        data: &A,
        k: usize,
    ) -> Result<ShardedMatrix> {
        let mut projected = self.transform_sharded(data, k)?;
        let whiten: Vec<f64> = self.eigenvalues[..k].iter().map(|&l| l.sqrt()).collect();
        for i in 0..projected.nrows() {
            let row = projected.row_mut(i);
            for (v, &sd) in row.iter_mut().zip(&whiten) {
                if sd <= 1e-12 {
                    continue;
                }
                *v /= sd;
            }
        }
        Ok(projected)
    }

    /// A reusable single-row whitened projector for streaming consumers
    /// (drift scoring): replicates standardize → project → whiten on one
    /// row at a time, bit-identical to [`Pca::transform_whitened`] on a
    /// 1-row matrix, with zero per-call allocation.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidParameter`] if `k` is zero or exceeds
    /// the number of fitted components.
    pub fn row_projector(&self, k: usize) -> Result<RowProjector> {
        if k == 0 || k > self.components.ncols() {
            return Err(LinalgError::InvalidParameter(format!(
                "cannot keep {k} of {} components",
                self.components.ncols()
            )));
        }
        Ok(RowProjector {
            means: self.zscore.means.clone(),
            std_devs: self.zscore.std_devs.clone(),
            sub: self
                .components
                .select_columns(&(0..k).collect::<Vec<_>>())?,
            whiten: self.eigenvalues[..k].iter().map(|&l| l.sqrt()).collect(),
            scratch: vec![0.0; self.components.nrows()],
        })
    }
}

/// Single-row whitened PCA projection with reusable scratch space.
///
/// Built by [`Pca::row_projector`]; used by the streaming drift scorer so
/// a 10⁶-row session allocates nothing per row.
#[derive(Debug, Clone)]
pub struct RowProjector {
    means: Vec<f64>,
    std_devs: Vec<f64>,
    /// The first k principal axes (features × k).
    sub: Matrix,
    /// `sqrt(eigenvalue)` per kept component.
    whiten: Vec<f64>,
    /// Standardized-row buffer, reused across calls.
    scratch: Vec<f64>,
}

impl RowProjector {
    /// Number of kept components (the length `out` must have).
    pub fn k(&self) -> usize {
        self.sub.ncols()
    }

    /// Number of input features (the length `row` must have).
    pub fn n_features(&self) -> usize {
        self.means.len()
    }

    /// Projects one observation into whitened PC space, writing the `k`
    /// coordinates into `out`. Bit-identical to
    /// `pca.transform_whitened(&Matrix::from_rows(&[row.to_vec()])?, k)`:
    /// the same standardize expression, the same ikj product with the
    /// dense kernel's zero-skip, the same `sd ≤ 1e-12` whitening guard.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `row` or `out` have
    /// the wrong length.
    pub fn project_whitened_into(&mut self, row: &[f64], out: &mut [f64]) -> Result<()> {
        if row.len() != self.means.len() {
            return Err(LinalgError::DimensionMismatch(format!(
                "zscore transform: fitted on {} columns, got {}",
                self.means.len(),
                row.len()
            )));
        }
        if out.len() != self.sub.ncols() {
            return Err(LinalgError::DimensionMismatch(format!(
                "project_whitened_into: output of length {} for {} components",
                out.len(),
                self.sub.ncols()
            )));
        }
        for (dst, ((v, m), sd)) in self
            .scratch
            .iter_mut()
            .zip(row.iter().zip(&self.means).zip(&self.std_devs))
        {
            *dst = (*v - *m) / *sd;
        }
        out.fill(0.0);
        for (i, &a) in self.scratch.iter().enumerate() {
            if a == 0.0 {
                continue;
            }
            let rhs_row = self.sub.row(i);
            for (o, &b) in out.iter_mut().zip(rhs_row) {
                *o += a * b;
            }
        }
        for (o, &sd) in out.iter_mut().zip(&self.whiten) {
            if sd <= 1e-12 {
                continue;
            }
            *o /= sd;
        }
        Ok(())
    }
}

/// Population covariance matrix of `data`'s columns (rows = observations).
///
/// # Errors
///
/// Returns [`LinalgError::Empty`] if `data` has fewer than 2 rows.
pub fn covariance(data: &Matrix) -> Result<Matrix> {
    let n = data.nrows();
    if n < 2 {
        return Err(LinalgError::Empty(
            "covariance requires at least two observations".into(),
        ));
    }
    let d = data.ncols();
    let mut means = vec![0.0; d];
    for row in data.rows_iter() {
        for (m, v) in means.iter_mut().zip(row) {
            *m += v;
        }
    }
    for m in &mut means {
        *m /= n as f64;
    }
    let mut cov = Matrix::zeros(d, d);
    for row in data.rows_iter() {
        for i in 0..d {
            let di = row[i] - means[i];
            for j in i..d {
                let dj = row[j] - means[j];
                cov[(i, j)] += di * dj;
            }
        }
    }
    for i in 0..d {
        for j in i..d {
            let v = cov[(i, j)] / n as f64;
            cov[(i, j)] = v;
            cov[(j, i)] = v;
        }
    }
    Ok(cov)
}

/// Population covariance of the **standardized** columns — serial wrapper
/// around [`covariance_standardized_sharded_threaded`] with one worker
/// (bit-identical to the threaded variant for every thread count).
///
/// # Errors
///
/// Same conditions as [`covariance_standardized_sharded_threaded`].
pub fn covariance_standardized_sharded<A: ShardAccess + Sync>(
    data: &A,
    normalizer: &ZScore,
) -> Result<Matrix> {
    covariance_standardized_sharded_threaded(data, normalizer, Some(1))
}

/// Population covariance of the **standardized** columns, accumulated
/// through the deterministic two-level fold: each shard standardizes its
/// rows into a reused scratch buffer (the identical elementwise
/// expression [`ZScore::transform`] applies) and produces a partial
/// accumulator — the per-column sums of pass 1, the upper-triangle
/// cross-moments of pass 2 — in parallel, and the partials are combined
/// **in shard-index order**, seeded with shard 0's. Serial and parallel
/// runs execute the identical fold (bitwise identical for every thread
/// count); a single-shard store also matches the dense
/// `covariance(&normalizer.transform(data))` bitwise, while multi-shard
/// layouts agree with it to rounding. The n×d standardized matrix is
/// never materialized.
///
/// # Errors
///
/// Returns [`LinalgError::Empty`] below two rows,
/// [`LinalgError::DimensionMismatch`] if `normalizer` was fitted on a
/// different column count, plus shard-access failures.
pub fn covariance_standardized_sharded_threaded<A: ShardAccess + Sync>(
    data: &A,
    normalizer: &ZScore,
    threads: Option<usize>,
) -> Result<Matrix> {
    let n = data.nrows();
    if n < 2 {
        return Err(LinalgError::Empty(
            "covariance requires at least two observations".into(),
        ));
    }
    let d = data.ncols();
    if normalizer.means.len() != d {
        return Err(LinalgError::DimensionMismatch(format!(
            "zscore transform: fitted on {} columns, got {d}",
            normalizer.means.len()
        )));
    }
    // Pass 1: standardized column sums, one partial per shard.
    let mut means = crate::stats::fold_column_moments(data, threads, |shard, acc| {
        let mut scratch = vec![0.0; d];
        for row in shard.rows_iter() {
            standardize_into(&mut scratch, row, normalizer);
            for (slot, v) in acc.iter_mut().zip(&scratch) {
                *slot += v;
            }
        }
    })?;
    for m in &mut means {
        *m /= n as f64;
    }
    // Pass 2: upper-triangle cross-moments, one d×d partial per shard,
    // combined in shard-index order.
    let partials = flare_exec::par_map_range(data.shard_count(), threads, |s| {
        data.with_shard(s, |shard| {
            let mut scratch = vec![0.0; d];
            let mut part = Matrix::zeros(d, d);
            for row in shard.rows_iter() {
                standardize_into(&mut scratch, row, normalizer);
                for i in 0..d {
                    let di = scratch[i] - means[i];
                    for j in i..d {
                        let dj = scratch[j] - means[j];
                        part[(i, j)] += di * dj;
                    }
                }
            }
            part
        })
    });
    let mut cov: Option<Matrix> = None;
    for partial in partials {
        let partial = partial?;
        match &mut cov {
            None => cov = Some(partial),
            Some(c) => {
                for i in 0..d {
                    for j in i..d {
                        c[(i, j)] += partial[(i, j)];
                    }
                }
            }
        }
    }
    let mut cov = cov.unwrap_or_else(|| Matrix::zeros(d, d));
    for i in 0..d {
        for j in i..d {
            let v = cov[(i, j)] / n as f64;
            cov[(i, j)] = v;
            cov[(j, i)] = v;
        }
    }
    Ok(cov)
}

/// The elementwise op of [`ZScore::transform`], applied into a scratch
/// buffer — one expression shared by both streaming covariance passes.
fn standardize_into(scratch: &mut [f64], row: &[f64], z: &ZScore) {
    for (dst, ((v, m), sd)) in scratch
        .iter_mut()
        .zip(row.iter().zip(&z.means).zip(&z.std_devs))
    {
        *dst = (*v - *m) / *sd;
    }
}

/// A serializable snapshot of a fitted PCA (used to persist analyzer state).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PcaSnapshot {
    /// Per-column means of the fitted data.
    pub means: Vec<f64>,
    /// Per-column standard deviations of the fitted data.
    pub std_devs: Vec<f64>,
    /// Row-major principal-axis matrix (features × components).
    pub components: Vec<Vec<f64>>,
    /// Eigenvalues, descending.
    pub eigenvalues: Vec<f64>,
}

impl From<&Pca> for PcaSnapshot {
    fn from(p: &Pca) -> Self {
        PcaSnapshot {
            means: p.zscore.means.clone(),
            std_devs: p.zscore.std_devs.clone(),
            components: (0..p.components.nrows())
                .map(|i| p.components.row(i).to_vec())
                .collect(),
            eigenvalues: p.eigenvalues.clone(),
        }
    }
}

impl From<Pca> for PcaSnapshot {
    fn from(p: Pca) -> Self {
        PcaSnapshot::from(&p)
    }
}

impl TryFrom<PcaSnapshot> for Pca {
    type Error = LinalgError;

    fn try_from(s: PcaSnapshot) -> Result<Pca> {
        Pca::try_from(&s)
    }
}

impl TryFrom<&PcaSnapshot> for Pca {
    type Error = LinalgError;

    fn try_from(s: &PcaSnapshot) -> Result<Pca> {
        let components = Matrix::from_rows(&s.components)?;
        let total: f64 = s.eigenvalues.iter().sum();
        let explained_ratio = if total > 0.0 {
            s.eigenvalues.iter().map(|&l| l / total).collect()
        } else {
            vec![0.0; s.eigenvalues.len()]
        };
        Ok(Pca {
            zscore: ZScore {
                means: s.means.clone(),
                std_devs: s.std_devs.clone(),
            },
            components,
            eigenvalues: s.eigenvalues.clone(),
            explained_ratio,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two highly correlated variables plus one independent: PCA should put
    /// the correlated pair on PC0 and the independent variable on its own PC.
    fn correlated_data() -> Matrix {
        let mut rows = Vec::new();
        for i in 0..40 {
            let t = i as f64 / 4.0;
            let indep = if i % 3 == 0 { 1.0 } else { -0.5 };
            rows.push(vec![t, 2.0 * t + 0.01 * (i as f64).sin(), indep]);
        }
        Matrix::from_rows(&rows).unwrap()
    }

    #[test]
    fn explained_variance_sums_to_one() {
        let pca = Pca::fit(&correlated_data()).unwrap();
        let s: f64 = pca.explained_variance_ratio().iter().sum();
        assert!((s - 1.0).abs() < 1e-9);
    }

    #[test]
    fn dominant_component_captures_correlated_pair() {
        let pca = Pca::fit(&correlated_data()).unwrap();
        // Two standardized perfectly-correlated variables + one independent
        // → eigenvalues ≈ [2, 1, 0] → first ratio ≈ 2/3.
        assert!(pca.explained_variance_ratio()[0] > 0.6);
        let c0 = pca.component(0);
        assert!(c0[0].abs() > 0.5 && c0[1].abs() > 0.5);
        assert!(c0[2].abs() < 0.2);
    }

    #[test]
    fn components_for_variance_thresholds() {
        let pca = Pca::fit(&correlated_data()).unwrap();
        assert_eq!(pca.components_for_variance(0.6).unwrap(), 1);
        assert_eq!(pca.components_for_variance(1.0).unwrap(), 3);
        assert!(pca.components_for_variance(0.0).is_err());
        assert!(pca.components_for_variance(1.5).is_err());
    }

    #[test]
    fn cumulative_curve_is_monotone() {
        let pca = Pca::fit(&correlated_data()).unwrap();
        let cum = pca.cumulative_explained_variance();
        for w in cum.windows(2) {
            assert!(w[1] >= w[0] - 1e-12);
        }
        assert!((cum.last().unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn transform_produces_uncorrelated_columns() {
        let data = correlated_data();
        let pca = Pca::fit(&data).unwrap();
        let proj = pca.transform(&data, 3).unwrap();
        let c01 = crate::stats::pearson(&proj.col(0), &proj.col(1)).unwrap();
        assert!(c01.abs() < 1e-6, "PC0/PC1 correlation {c01}");
    }

    #[test]
    fn whitened_transform_has_unit_variance() {
        let data = correlated_data();
        let pca = Pca::fit(&data).unwrap();
        let k = pca.components_for_variance(0.95).unwrap();
        let w = pca.transform_whitened(&data, k).unwrap();
        for j in 0..k {
            let v = crate::stats::variance(&w.col(j));
            assert!((v - 1.0).abs() < 1e-6, "PC{j} whitened variance {v}");
        }
    }

    #[test]
    fn transform_validates_k() {
        let data = correlated_data();
        let pca = Pca::fit(&data).unwrap();
        assert!(pca.transform(&data, 0).is_err());
        assert!(pca.transform(&data, 4).is_err());
    }

    #[test]
    fn fit_rejects_degenerate_input() {
        assert!(Pca::fit(&Matrix::zeros(1, 3)).is_err());
        let nan = Matrix::from_rows(&[vec![f64::NAN], vec![1.0]]).unwrap();
        assert!(Pca::fit(&nan).is_err());
    }

    #[test]
    fn fit_with_default_normalizer_matches_fit() {
        let data = correlated_data();
        let a = Pca::fit(&data).unwrap();
        let b = Pca::fit_with(&data, ZScore::fit(&data).unwrap()).unwrap();
        assert_eq!(a.eigenvalues(), b.eigenvalues());
        assert_eq!(
            a.transform(&data, 3).unwrap(),
            b.transform(&data, 3).unwrap()
        );
    }

    #[test]
    fn fit_with_robust_normalizer_resists_outlier_spike() {
        // One wild spike in column 0: the robust fit's normalizer must keep
        // the clean points' standardized coordinates in a sane range, while
        // the mean/std fit compresses them toward zero.
        let mut rows: Vec<Vec<f64>> = (0..40)
            .map(|i| vec![i as f64, (i as f64 * 0.37).sin()])
            .collect();
        rows[7][0] = 1e9;
        let data = Matrix::from_rows(&rows).unwrap();
        let robust = Pca::fit_with(&data, crate::stats::robust_scale(&data).unwrap()).unwrap();
        let classic = Pca::fit(&data).unwrap();
        // The robust normalizer's column-0 scale stays near the clean spread.
        let rz = crate::stats::robust_scale(&data).unwrap();
        assert!(rz.std_devs[0] < 100.0, "robust scale {}", rz.std_devs[0]);
        assert!(robust.eigenvalues()[0].is_finite());
        assert!(classic.eigenvalues()[0].is_finite());
    }

    #[test]
    fn fit_with_rejects_mismatched_normalizer() {
        let data = correlated_data();
        let narrow = ZScore {
            means: vec![0.0; 2],
            std_devs: vec![1.0; 2],
        };
        assert!(Pca::fit_with(&data, narrow).is_err());
    }

    #[test]
    fn covariance_known_values() {
        let data = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 6.0], vec![5.0, 10.0]]).unwrap();
        let c = covariance(&data).unwrap();
        // Var(x) = 8/3, Cov(x,y) = 16/3, Var(y) = 32/3 (population).
        assert!((c[(0, 0)] - 8.0 / 3.0).abs() < 1e-12);
        assert!((c[(0, 1)] - 16.0 / 3.0).abs() < 1e-12);
        assert!((c[(1, 1)] - 32.0 / 3.0).abs() < 1e-12);
        assert!(c.is_symmetric(1e-12));
    }

    /// Bit-level equality of two fitted models via their snapshots.
    fn assert_same_bits(a: &Pca, b: &Pca, label: &str) {
        let sa = PcaSnapshot::from(a);
        let sb = PcaSnapshot::from(b);
        let pairs = [
            (&sa.means, &sb.means, "means"),
            (&sa.std_devs, &sb.std_devs, "std_devs"),
            (&sa.eigenvalues, &sb.eigenvalues, "eigenvalues"),
        ];
        for (xs, ys, field) in pairs {
            assert_eq!(xs.len(), ys.len(), "{label}: {field} length");
            for (x, y) in xs.iter().zip(ys) {
                assert_eq!(x.to_bits(), y.to_bits(), "{label}: {field} bits");
            }
        }
        for (ra, rb) in sa.components.iter().zip(&sb.components) {
            for (x, y) in ra.iter().zip(rb) {
                assert_eq!(x.to_bits(), y.to_bits(), "{label}: component bits");
            }
        }
    }

    /// Tolerance comparison of two fitted models: means/std_devs/
    /// eigenvalues within `tol`, components within `tol` up to a per-column
    /// sign flip (the eigensolver's sign convention can legitimately flip
    /// under sub-ulp covariance perturbations).
    fn assert_close(a: &Pca, b: &Pca, tol: f64, label: &str) {
        let sa = PcaSnapshot::from(a);
        let sb = PcaSnapshot::from(b);
        let pairs = [
            (&sa.means, &sb.means, "means"),
            (&sa.std_devs, &sb.std_devs, "std_devs"),
            (&sa.eigenvalues, &sb.eigenvalues, "eigenvalues"),
        ];
        for (xs, ys, field) in pairs {
            assert_eq!(xs.len(), ys.len(), "{label}: {field} length");
            for (x, y) in xs.iter().zip(ys) {
                assert!((x - y).abs() <= tol, "{label}: {field} {x} vs {y}");
            }
        }
        let d = sa.components.len();
        for c in 0..d {
            let dot: f64 = (0..d)
                .map(|i| sa.components[i][c] * sb.components[i][c])
                .sum();
            let sign = if dot < 0.0 { -1.0 } else { 1.0 };
            for i in 0..d {
                let (x, y) = (sa.components[i][c], sign * sb.components[i][c]);
                assert!(
                    (x - y).abs() <= tol,
                    "{label}: component ({i},{c}) {x} vs {y}"
                );
            }
        }
    }

    #[test]
    fn fit_sharded_single_shard_is_bit_identical_to_dense() {
        // With one shard the two-level fold degenerates to the dense
        // column fold: bitwise identity holds.
        let data = correlated_data();
        let dense = Pca::fit(&data).unwrap();
        for shard_rows in [40, 41, 100] {
            let sharded = ShardedMatrix::from_matrix(&data, shard_rows);
            let stream = Pca::fit_sharded(&sharded).unwrap();
            assert_same_bits(&dense, &stream, &format!("shard_rows={shard_rows}"));
        }
    }

    #[test]
    fn fit_sharded_multi_shard_matches_dense_to_rounding() {
        // Multi-shard folds regroup the float additions at shard
        // boundaries, so the dense fit is a tolerance-based differential
        // oracle here (bitwise identity is held serial-vs-parallel
        // instead — see the thread-invariance test).
        let data = correlated_data();
        let dense = Pca::fit(&data).unwrap();
        for shard_rows in [1, 3, 7, 39] {
            let sharded = ShardedMatrix::from_matrix(&data, shard_rows);
            let stream = Pca::fit_sharded(&sharded).unwrap();
            assert_close(&dense, &stream, 1e-9, &format!("shard_rows={shard_rows}"));
        }
    }

    #[test]
    fn fit_sharded_threaded_is_bit_identical_across_thread_counts() {
        // THE tentpole invariant: serial ≡ parallel bitwise for every
        // thread count, at shard-boundary row counts.
        let data = correlated_data();
        for shard_rows in [7, 13, 40] {
            let sharded = ShardedMatrix::from_matrix(&data, shard_rows);
            let serial = Pca::fit_sharded_threaded(&sharded, Some(1)).unwrap();
            for threads in [Some(2), Some(3), Some(8), None] {
                let parallel = Pca::fit_sharded_threaded(&sharded, threads).unwrap();
                assert_same_bits(
                    &serial,
                    &parallel,
                    &format!("shard_rows={shard_rows} threads={threads:?}"),
                );
            }
        }
    }

    #[test]
    fn fit_sharded_with_robust_normalizer_matches_dense() {
        let data = correlated_data();
        let dense = Pca::fit_with(&data, crate::stats::robust_scale(&data).unwrap()).unwrap();
        // Multi-shard: tolerance against the dense oracle.
        let sharded = ShardedMatrix::from_matrix(&data, 7);
        let stream = Pca::fit_sharded_with(
            &sharded,
            crate::stats::robust_scale_sharded(&sharded).unwrap(),
        )
        .unwrap();
        assert_close(&dense, &stream, 1e-9, "robust normalizer multi-shard");
        // Single shard: bitwise.
        let single = ShardedMatrix::from_matrix(&data, 64);
        let stream = Pca::fit_sharded_with(
            &single,
            crate::stats::robust_scale_sharded(&single).unwrap(),
        )
        .unwrap();
        assert_same_bits(&dense, &stream, "robust normalizer single-shard");
    }

    #[test]
    fn transform_sharded_matches_dense_bits() {
        let data = correlated_data();
        let pca = Pca::fit(&data).unwrap();
        let dense_t = pca.transform(&data, 2).unwrap();
        let dense_w = pca.transform_whitened(&data, 2).unwrap();
        for shard_rows in [1, 6, 40, 64] {
            let sharded = ShardedMatrix::from_matrix(&data, shard_rows);
            let t = pca.transform_sharded(&sharded, 2).unwrap();
            let w = pca.transform_whitened_sharded(&sharded, 2).unwrap();
            assert_eq!(t.nrows(), dense_t.nrows());
            for i in 0..t.nrows() {
                for (x, y) in t.row(i).iter().zip(dense_t.row(i)) {
                    assert_eq!(x.to_bits(), y.to_bits(), "transform row {i}");
                }
                for (x, y) in w.row(i).iter().zip(dense_w.row(i)) {
                    assert_eq!(x.to_bits(), y.to_bits(), "whitened row {i}");
                }
            }
        }
        assert!(pca
            .transform_sharded(&ShardedMatrix::from_matrix(&data, 8), 0)
            .is_err());
        assert!(pca
            .transform_sharded(&ShardedMatrix::from_matrix(&data, 8), 4)
            .is_err());
    }

    #[test]
    fn fit_sharded_validates_like_dense() {
        // Below two rows.
        let one = ShardedMatrix::from_matrix(&Matrix::zeros(1, 3), 4);
        assert!(Pca::fit_sharded(&one).is_err());
        // Non-finite input.
        let nan = Matrix::from_rows(&[vec![f64::NAN], vec![1.0]]).unwrap();
        assert!(Pca::fit_sharded(&ShardedMatrix::from_matrix(&nan, 1)).is_err());
        // Mismatched normalizer.
        let data = correlated_data();
        let narrow = ZScore {
            means: vec![0.0; 2],
            std_devs: vec![1.0; 2],
        };
        assert!(Pca::fit_sharded_with(&ShardedMatrix::from_matrix(&data, 8), narrow).is_err());
    }

    #[test]
    fn row_projector_matches_whitened_transform_bits() {
        let data = correlated_data();
        let pca = Pca::fit(&data).unwrap();
        let k = 2;
        let dense = pca.transform_whitened(&data, k).unwrap();
        let mut proj = pca.row_projector(k).unwrap();
        assert_eq!(proj.k(), k);
        assert_eq!(proj.n_features(), 3);
        let mut out = vec![0.0; k];
        for i in 0..data.nrows() {
            proj.project_whitened_into(data.row(i), &mut out).unwrap();
            for (x, y) in out.iter().zip(dense.row(i)) {
                assert_eq!(x.to_bits(), y.to_bits(), "row {i}");
            }
        }
        assert!(proj.project_whitened_into(&[1.0], &mut out).is_err());
        let mut short = vec![0.0; k + 1];
        assert!(proj.project_whitened_into(data.row(0), &mut short).is_err());
        assert!(pca.row_projector(0).is_err());
        assert!(pca.row_projector(4).is_err());
    }

    #[test]
    fn snapshot_roundtrip_preserves_projection() {
        let data = correlated_data();
        let pca = Pca::fit(&data).unwrap();
        let snap = PcaSnapshot::from(&pca);
        let restored = Pca::try_from(&snap).unwrap();
        let a = pca.transform(&data, 2).unwrap();
        let b = restored.transform(&data, 2).unwrap();
        assert!(a.sub(&b).unwrap().frobenius_norm() < 1e-12);
    }
}
