//! # flare-workloads
//!
//! The datacenter job catalog for the FLARE reproduction: the 8
//! CloudSuite-style High-Priority services and 6 SPEC-CPU2006-style
//! Low-Priority batch jobs of the paper's Table 3, each with a latent
//! resource profile, plus load-generation models (job durations, diurnal
//! request swings, and the conventional load-testing recipe).
//!
//! The real benchmarks are substituted by latent profiles — see DESIGN.md:
//! FLARE only requires that jobs have distinct, overlapping resource
//! signatures so colocation scenarios span a rich behaviour space.
//!
//! ## Example
//!
//! ```
//! use flare_workloads::{catalog, job::JobName, profile::Priority};
//!
//! let spark = catalog::profile(JobName::GraphAnalytics);
//! assert!(spark.working_set_mb > 10.0);
//! assert_eq!(JobName::GraphAnalytics.priority(), Priority::High);
//! ```

#![warn(missing_docs)]

pub mod catalog;
pub mod job;
pub mod loadgen;
pub mod profile;
pub mod stressor;

pub use job::{JobInstance, JobName};
pub use profile::{JobProfile, Priority};
