//! Ablation 18: the scale-out layer — sharded metric data plane plus the
//! mini-batch/coreset clustering tier (DESIGN.md §12).
//!
//! Three measurements:
//!
//! 1. **10⁵-scenario sharded fit** — 100 000 synthetic scenario records
//!    stream into a sharded [`MetricDatabase`] and the matching feature
//!    matrix is clustered through the tier. Every shard is asserted to
//!    respect the configured row bound, so the largest single allocation
//!    of the ingest path is `shard_rows × d`, not `n × d`.
//! 2. **Tier vs exact duel at n = 10⁴** — `kmeans` (exact-pruned Lloyd)
//!    vs `kmeans_tiered` with the tier engaged, interleaved medians. The
//!    tier must be ≥ 2× faster while landing within the documented
//!    [`MINIBATCH_SSE_RTOL`] SSE tolerance of the exact optimum.
//! 3. **Below-threshold routing at n = 2000** — under the threshold the
//!    tiered entry point must be *byte-identical* to the exact path on
//!    every output field.
//!
//! Timings are medians over interleaved runs and land in
//! `results/BENCH_scale.json`. `--smoke` runs the CI variant and asserts
//! all three gates.

use flare_bench::banner;
use flare_cluster::kmeans::{kmeans, KMeansConfig, KMeansResult};
use flare_cluster::minibatch::{kmeans_tiered, MiniBatchConfig, MINIBATCH_SSE_RTOL};
use flare_linalg::Matrix;
use flare_metrics::database::{MetricDatabase, ScenarioId, ScenarioRecord};
use flare_metrics::schema::MetricSchema;
use std::time::Instant;

/// Deterministic blob corpus mimicking whitened PC coordinates (same
/// shape as the abl14 generator): `blobs` cluster centers at spread
/// radii so the data has real cluster structure for the coreset to find.
fn corpus(n: usize, d: usize, blobs: usize) -> Matrix {
    let rows: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            let b = i % blobs;
            let radius = 4.0 + 3.0 * b as f64;
            (0..d)
                .map(|j| {
                    let angle = b as f64 * 0.71 + j as f64 * 0.37;
                    let jitter = ((i * (j + 3)) as f64 * 0.193).sin() * 0.6;
                    radius * angle.cos() / (1.0 + j as f64 * 0.2) + jitter
                })
                .collect()
        })
        .collect();
    Matrix::from_rows(&rows).expect("rectangular corpus")
}

fn time_once<T>(f: &mut impl FnMut() -> T) -> (T, u128) {
    let start = Instant::now();
    let value = f();
    (value, start.elapsed().as_nanos())
}

/// Interleaved-median duel (one warmup each, then A, B, A, B, …) so
/// machine drift hits both sides equally.
fn duel<T>(
    reps: usize,
    mut a: impl FnMut() -> T,
    mut b: impl FnMut() -> T,
) -> ((T, u128), (T, u128)) {
    let _ = std::hint::black_box(a());
    let _ = std::hint::black_box(b());
    let mut ta: Vec<u128> = Vec::with_capacity(reps);
    let mut tb: Vec<u128> = Vec::with_capacity(reps);
    let mut last = None;
    for _ in 0..reps {
        let (va, na) = time_once(&mut a);
        let (vb, nb) = time_once(&mut b);
        ta.push(na);
        tb.push(nb);
        last = Some((va, vb));
    }
    let (va, vb) = last.expect("reps >= 1");
    ta.sort_unstable();
    tb.sort_unstable();
    ((va, ta[ta.len() / 2]), (vb, tb[tb.len() / 2]))
}

fn assert_identical(exact: &KMeansResult, tiered: &KMeansResult, label: &str) {
    assert_eq!(
        exact.assignments, tiered.assignments,
        "{label}: assignments diverged"
    );
    assert_eq!(
        exact.sse.to_bits(),
        tiered.sse.to_bits(),
        "{label}: SSE bits diverged"
    );
    assert_eq!(exact.iterations, tiered.iterations, "{label}: iterations");
    for (a, b) in exact.centroids.iter().zip(&tiered.centroids) {
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.to_bits(), y.to_bits(), "{label}: centroid bits");
        }
    }
}

/// Streams `n` synthetic records into a sharded database, returning the
/// build time and the observed shard-size maximum.
fn sharded_ingest(n: usize, shard_rows: usize) -> (MetricDatabase, u128, usize) {
    let schema = MetricSchema::canonical();
    let d = schema.len();
    let start = Instant::now();
    let mut db = MetricDatabase::with_shard_rows(schema, shard_rows);
    for i in 0..n {
        let metrics: Vec<f64> = (0..d)
            .map(|j| ((i * 31 + j * 7) as f64 * 0.137).sin() * 50.0 + 60.0)
            .collect();
        db.insert(ScenarioRecord {
            id: ScenarioId(i as u32),
            metrics,
            observations: 1 + (i % 9) as u32,
            job_mix: vec![("DC".into(), 1 + (i % 4) as u32)],
        })
        .expect("canonical-width record");
    }
    let ns = start.elapsed().as_nanos();
    let max_shard = db
        .data_shards()
        .shards()
        .iter()
        .map(|s| s.nrows())
        .max()
        .unwrap_or(0);
    (db, ns, max_shard)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    banner(
        "Ablation: scale-out layer (sharded data plane + mini-batch tier)",
        "10^5-scenario fits under bounded memory, DESIGN.md S12",
    );

    // The restart count matters for the duel: the exact path pays for
    // every k-means++ restart while the tier seeds once — 8 restarts is
    // still far below the pipeline default of 32, so the measured gap is
    // conservative relative to production configs.
    let (fit_n, duel_n, exact_n, d, k, restarts, reps, shard_rows) = if smoke {
        (100_000, 10_000, 2_000, 8, 10, 8, 5, 8_192)
    } else {
        (100_000, 10_000, 2_000, 8, 10, 8, 9, 8_192)
    };

    // --- 1. 10^5-scenario sharded fit ------------------------------------
    let (db, ingest_ns, max_shard) = sharded_ingest(fit_n, shard_rows);
    assert_eq!(db.len(), fit_n);
    assert!(
        max_shard <= shard_rows,
        "shard bound violated: {max_shard} > {shard_rows}"
    );
    let shard_count = db.data_shards().shard_count();
    println!(
        "\n  sharded ingest: {fit_n} records -> {shard_count} shards (max {max_shard} rows, bound {shard_rows}) in {:.0}ms",
        ingest_ns as f64 / 1e6
    );

    let big = corpus(fit_n, d, k);
    let tier = MiniBatchConfig::default(); // threshold 20 000 << fit_n
    let cfg = KMeansConfig::new(k).with_restarts(restarts);
    let start = Instant::now();
    let fit = kmeans_tiered(&big, &cfg, &tier).expect("tiered fit");
    let fit_ns = start.elapsed().as_nanos();
    assert_eq!(fit.assignments.len(), fit_n);
    println!(
        "  tiered fit:     n={fit_n} d={d} k={k} in {:.0}ms (SSE {:.1})",
        fit_ns as f64 / 1e6,
        fit.sse
    );

    // --- 2. Tier vs exact duel at n = 10^4 --------------------------------
    let mid = corpus(duel_n, d, k);
    let engaged = MiniBatchConfig::default().with_threshold(duel_n / 2);
    let ((exact, t_exact), (tiered, t_tier)) = duel(
        reps,
        || kmeans(&mid, &cfg).expect("exact"),
        || kmeans_tiered(&mid, &cfg, &engaged).expect("tiered"),
    );
    let speedup = t_exact as f64 / t_tier as f64;
    let sse_ratio = tiered.sse / exact.sse;
    println!(
        "  duel n={duel_n}:   exact {:.1}ms | tier {:.1}ms | {:.2}x | SSE ratio {:.4} (tol {:.2})",
        t_exact as f64 / 1e6,
        t_tier as f64 / 1e6,
        speedup,
        sse_ratio,
        1.0 + MINIBATCH_SSE_RTOL
    );

    // --- 3. Below-threshold byte-identity at n = 2000 ----------------------
    let small = corpus(exact_n, d, k);
    let below = kmeans_tiered(&small, &cfg, &tier).expect("below-threshold");
    let reference = kmeans(&small, &cfg).expect("exact reference");
    assert_identical(&reference, &below, "below-threshold routing");
    println!("  below threshold: n={exact_n} routed byte-identically through the exact path");

    // --- Machine-readable results ----------------------------------------
    let json = format!(
        "{{\n  \"bench\": \"abl18_scale_out\",\n  \"mode\": \"{mode}\",\n  \
         \"config\": {{\"fit_n\": {fit_n}, \"duel_n\": {duel_n}, \"exact_n\": {exact_n}, \
         \"d\": {d}, \"k\": {k}, \"restarts\": {restarts}, \"reps\": {reps}, \
         \"shard_rows\": {shard_rows}}},\n  \
         \"sharded_ingest\": {{\"records\": {fit_n}, \"shards\": {shard_count}, \
         \"max_shard_rows\": {max_shard}, \"ns\": {ingest_ns}}},\n  \
         \"tiered_fit\": {{\"n\": {fit_n}, \"ns\": {fit_ns}, \"sse\": {fit_sse:.3}}},\n  \
         \"duel\": {{\"n\": {duel_n}, \"exact_ns\": {t_exact}, \"tier_ns\": {t_tier}, \
         \"speedup\": {speedup:.3}, \"sse_ratio\": {sse_ratio:.5}}},\n  \
         \"below_threshold\": {{\"n\": {exact_n}, \"byte_identical\": true}}\n}}\n",
        mode = if smoke { "smoke" } else { "full" },
        fit_sse = fit.sse,
    );
    let out = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../results/BENCH_scale.json"
    );
    std::fs::write(out, &json).expect("write BENCH_scale.json");
    println!("\nwrote {out}");

    // Gates: the SSE contract always holds; the speed gate is asserted in
    // smoke mode (CI) like the other kernel ablations.
    assert!(
        sse_ratio <= 1.0 + MINIBATCH_SSE_RTOL,
        "tier SSE {:.3} exceeds tolerance over exact {:.3} (ratio {sse_ratio:.4})",
        tiered.sse,
        exact.sse
    );
    if smoke {
        assert!(
            speedup >= 2.0,
            "smoke gate: tier must be >= 2x the exact path at n={duel_n}, got {speedup:.2}x"
        );
    }
    println!(
        "\ntakeaway: the sharded store bounds every ingest allocation to the\n\
         shard size, and above the tier threshold a coreset-seeded warm start\n\
         reaches the exact kernel's neighborhood in a fraction of the time —\n\
         while below it routing stays bit-for-bit the exact path."
    );
}
