//! Seeded, deterministic telemetry fault model.
//!
//! Production profiler daemons are not the well-behaved Gaussian samplers
//! of [`crate::profiler`]: they drop samples, stick at stale values, emit
//! heavy-tailed counter spikes, die mid-profiling (losing whole records),
//! and re-send clock-skewed duplicates. [`FaultInjector`] reproduces those
//! failure modes on a clean [`MetricDatabase`], with every corruption
//! drawn from a per-record RNG seeded by `(plan seed, scenario id)` — the
//! same plan always yields byte-identical corruption, independent of how
//! the database was produced or iterated.
//!
//! The injector is the *adversary* half of the robustness story; the
//! defenses live downstream: [`MetricDatabase::ingest`] quarantines
//! hopeless records, the Analyzer's repair stage imputes and winsorizes,
//! and the Replayer retries or drops failed representatives.

use flare_metrics::database::{IngestPolicy, IngestReport, MetricDatabase, ScenarioRecord};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Draws a standard-normal variate via Box–Muller. Consumes exactly two
/// uniform draws from `rng`.
pub fn standard_normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(1e-12..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Multiplicative Gaussian measurement noise, clamped non-negative: the
/// single shared implementation behind the profiler's synthesis noise and
/// the injector's `noise_rel_std` channel.
///
/// An exact zero passes through untouched **without consuming any RNG
/// draws** — zeros mean "this subsystem is idle", not "this sensor is
/// noisy", and skipping the draw keeps the historical noise stream (and
/// therefore every persisted database) byte-identical.
pub fn multiplicative_noise(value: f64, rel_std: f64, rng: &mut StdRng) -> f64 {
    if value == 0.0 {
        return 0.0;
    }
    (value * (1.0 + rel_std * standard_normal(rng))).max(0.0)
}

/// Configurable rates of every modeled telemetry failure. All rates are
/// probabilities in `[0, 1]`; the default plan is entirely clean (every
/// rate zero), so `FaultPlan::default()` corruption is the identity.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct FaultPlan {
    /// Seed of the deterministic corruption stream.
    pub seed: u64,
    /// Per-metric probability a sample is dropped (becomes NaN).
    pub sample_dropout: f64,
    /// Per-metric probability the sensor sticks, repeating the value it
    /// reported for the previous scenario record.
    pub stuck_sensor: f64,
    /// Per-metric probability of a heavy-tailed outlier spike (a wrapped
    /// counter or unit mix-up inflating the value by up to ~10⁶×).
    pub outlier_spike: f64,
    /// Per-record probability the whole record is lost (the machine's
    /// profiler daemon died before flushing).
    pub record_loss: f64,
    /// Per-record probability a clock-skewed duplicate of the record is
    /// re-emitted under the same scenario id.
    pub record_duplication: f64,
    /// Relative jitter applied to a duplicated record's metrics (how far
    /// the skewed re-read drifted from the original).
    pub clock_skew: f64,
    /// Extra multiplicative Gaussian noise on every surviving sample
    /// (relative standard deviation), on top of the profiler's own.
    pub noise_rel_std: f64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 0,
            sample_dropout: 0.0,
            stuck_sensor: 0.0,
            outlier_spike: 0.0,
            record_loss: 0.0,
            record_duplication: 0.0,
            clock_skew: 0.02,
            noise_rel_std: 0.0,
        }
    }
}

impl FaultPlan {
    /// A plan applying every fault channel at `rate` (dropout, stuck,
    /// spikes, loss, duplication), the shape used by the fault-rate sweeps.
    pub fn uniform(rate: f64, seed: u64) -> Self {
        FaultPlan {
            seed,
            sample_dropout: rate,
            stuck_sensor: rate,
            outlier_spike: rate,
            record_loss: rate,
            record_duplication: rate,
            ..FaultPlan::default()
        }
    }

    /// `true` if this plan corrupts nothing.
    pub fn is_clean(&self) -> bool {
        self.sample_dropout == 0.0
            && self.stuck_sensor == 0.0
            && self.outlier_spike == 0.0
            && self.record_loss == 0.0
            && self.record_duplication == 0.0
            && self.noise_rel_std == 0.0
    }

    /// Validates that every rate is a probability and every spread is a
    /// finite non-negative number.
    ///
    /// # Errors
    ///
    /// Returns a description of the first offending field.
    pub fn validate(&self) -> Result<(), String> {
        for (name, rate) in [
            ("sample_dropout", self.sample_dropout),
            ("stuck_sensor", self.stuck_sensor),
            ("outlier_spike", self.outlier_spike),
            ("record_loss", self.record_loss),
            ("record_duplication", self.record_duplication),
        ] {
            if !(0.0..=1.0).contains(&rate) || rate.is_nan() {
                return Err(format!("{name} rate {rate} outside [0, 1]"));
            }
        }
        for (name, spread) in [
            ("clock_skew", self.clock_skew),
            ("noise_rel_std", self.noise_rel_std),
        ] {
            if !spread.is_finite() || spread < 0.0 {
                return Err(format!("{name} {spread} must be finite and >= 0"));
            }
        }
        Ok(())
    }
}

/// Applies a [`FaultPlan`] to clean telemetry.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
}

impl FaultInjector {
    /// Builds an injector from a validated plan.
    ///
    /// # Errors
    ///
    /// Returns the [`FaultPlan::validate`] message for an invalid plan.
    pub fn new(plan: FaultPlan) -> Result<Self, String> {
        plan.validate()?;
        Ok(FaultInjector { plan })
    }

    /// The plan this injector applies.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Corrupts a clean database's records, returning the degraded stream
    /// in scenario-id order (with losses removed and duplicates inserted
    /// right after their originals, as a flushed telemetry batch would
    /// arrive). Deterministic: corruption of each record depends only on
    /// `(plan.seed, scenario id)` plus the previous record for the
    /// stuck-sensor channel.
    pub fn corrupt(&self, db: &MetricDatabase) -> Vec<ScenarioRecord> {
        let records: Vec<ScenarioRecord> = db.iter().map(|row| row.to_record()).collect();
        self.corrupt_records(&records)
    }

    /// Corrupts a slice of clean records — the per-batch form of
    /// [`FaultInjector::corrupt`] used by the streaming ingest path, where
    /// telemetry arrives in batches rather than as a whole database.
    ///
    /// Deterministic with the same per-record contract as `corrupt`:
    /// corruption of each record depends only on `(plan.seed, scenario
    /// id)`, plus the previous clean record *within this slice* for the
    /// stuck-sensor channel (each batch starts with no stale predecessor,
    /// so a batch's corruption is a pure function of its own content — a
    /// resumed session replays it identically).
    pub fn corrupt_records(&self, records: &[ScenarioRecord]) -> Vec<ScenarioRecord> {
        let p = &self.plan;
        let mut out = Vec::with_capacity(records.len());
        let mut prev: Option<&ScenarioRecord> = None;
        for rec in records {
            let mut rng = StdRng::seed_from_u64(
                p.seed ^ (rec.id.0 as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            );
            if p.record_loss > 0.0 && rng.gen::<f64>() < p.record_loss {
                prev = Some(rec);
                continue;
            }
            let mut metrics = rec.metrics.to_vec();
            for (j, v) in metrics.iter_mut().enumerate() {
                if p.stuck_sensor > 0.0 && rng.gen::<f64>() < p.stuck_sensor {
                    if let Some(stale) = prev {
                        *v = stale.metrics[j];
                    }
                }
                if p.outlier_spike > 0.0 && rng.gen::<f64>() < p.outlier_spike {
                    // Heavy-tailed (Pareto-like) inflation: mostly a few ×,
                    // occasionally catastrophic, capped at 10⁶×.
                    let u: f64 = rng.gen_range(1e-6..1.0);
                    *v *= 1.0 + (1.0 / u).powf(1.2).min(1e6);
                }
                if p.noise_rel_std > 0.0 {
                    *v = multiplicative_noise(*v, p.noise_rel_std, &mut rng);
                }
                if p.sample_dropout > 0.0 && rng.gen::<f64>() < p.sample_dropout {
                    *v = f64::NAN;
                }
            }
            let corrupted = ScenarioRecord {
                id: rec.id,
                metrics,
                observations: rec.observations,
                job_mix: rec.job_mix.to_vec(),
            };
            let duplicate = if p.record_duplication > 0.0 && rng.gen::<f64>() < p.record_duplication
            {
                let skewed = corrupted
                    .metrics
                    .iter()
                    .map(|&v| {
                        if v.is_finite() {
                            multiplicative_noise(v, p.clock_skew, &mut rng)
                        } else {
                            v
                        }
                    })
                    .collect();
                Some(ScenarioRecord {
                    metrics: skewed,
                    ..corrupted.clone()
                })
            } else {
                None
            };
            out.push(corrupted);
            out.extend(duplicate);
            prev = Some(rec);
        }
        out
    }

    /// Convenience wrapper: corrupts `db` and pushes the degraded stream
    /// through the validating ingest path, returning the surviving
    /// database plus the quarantine accounting.
    pub fn corrupt_database(
        &self,
        db: &MetricDatabase,
        policy: &IngestPolicy,
    ) -> (MetricDatabase, IngestReport) {
        let mut out = MetricDatabase::new(db.schema().clone());
        let report = out.ingest(self.corrupt(db), policy);
        (out, report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flare_metrics::database::ScenarioId;
    use flare_metrics::schema::MetricSchema;

    fn clean_db(n: u32) -> MetricDatabase {
        let schema = MetricSchema::canonical().subset(&[0, 1, 2, 3]);
        let mut db = MetricDatabase::new(schema);
        for i in 0..n {
            db.insert(ScenarioRecord {
                id: ScenarioId(i),
                metrics: vec![
                    1.0 + i as f64,
                    10.0 + i as f64,
                    100.0 + i as f64,
                    0.5 * i as f64,
                ],
                observations: 1 + i,
                job_mix: vec![("DC".into(), 1)],
            })
            .unwrap();
        }
        db
    }

    #[test]
    fn clean_plan_is_identity() {
        let db = clean_db(20);
        let injector = FaultInjector::new(FaultPlan::default()).unwrap();
        let out = injector.corrupt(&db);
        let original: Vec<ScenarioRecord> = db.iter().map(|r| r.to_record()).collect();
        assert_eq!(out, original);
        assert!(FaultPlan::default().is_clean());
    }

    /// Bit-level fingerprint of a corrupted stream; `PartialEq` can't be
    /// used directly because dropout introduces NaN cells (NaN != NaN).
    fn fingerprint(records: &[ScenarioRecord]) -> Vec<(u32, Vec<u64>, u32)> {
        records
            .iter()
            .map(|r| {
                (
                    r.id.0,
                    r.metrics.iter().map(|m| m.to_bits()).collect(),
                    r.observations,
                )
            })
            .collect()
    }

    #[test]
    fn corruption_is_deterministic_per_plan() {
        let db = clean_db(30);
        let plan = FaultPlan::uniform(0.2, 7);
        let a = FaultInjector::new(plan).unwrap().corrupt(&db);
        let b = FaultInjector::new(plan).unwrap().corrupt(&db);
        assert_eq!(fingerprint(&a), fingerprint(&b));
        let c = FaultInjector::new(FaultPlan { seed: 8, ..plan })
            .unwrap()
            .corrupt(&db);
        assert_ne!(fingerprint(&a), fingerprint(&c));
    }

    #[test]
    fn dropout_produces_nans_at_roughly_the_requested_rate() {
        let db = clean_db(200);
        let plan = FaultPlan {
            sample_dropout: 0.25,
            seed: 3,
            ..FaultPlan::default()
        };
        let out = FaultInjector::new(plan).unwrap().corrupt(&db);
        let cells: usize = out.iter().map(|r| r.metrics.len()).sum();
        let nans: usize = out
            .iter()
            .flat_map(|r| r.metrics.iter())
            .filter(|m| m.is_nan())
            .count();
        let rate = nans as f64 / cells as f64;
        assert!((rate - 0.25).abs() < 0.08, "observed dropout {rate}");
    }

    #[test]
    fn record_loss_and_duplication_change_the_stream_length() {
        let db = clean_db(300);
        let lossy = FaultInjector::new(FaultPlan {
            record_loss: 0.3,
            seed: 5,
            ..FaultPlan::default()
        })
        .unwrap()
        .corrupt(&db);
        assert!(lossy.len() < 290, "losses: {} records survive", lossy.len());

        let dupey = FaultInjector::new(FaultPlan {
            record_duplication: 0.3,
            seed: 5,
            ..FaultPlan::default()
        })
        .unwrap()
        .corrupt(&db);
        assert!(dupey.len() > 310, "duplicates: {} records", dupey.len());
        // Duplicates share their original's id but not (in general) its
        // exact metrics — they are clock-skewed re-reads.
        let mut seen = std::collections::HashSet::new();
        let mut dup_found = false;
        for r in &dupey {
            if !seen.insert(r.id) {
                dup_found = true;
            }
        }
        assert!(dup_found);
    }

    #[test]
    fn stuck_sensor_repeats_previous_record_values() {
        let db = clean_db(100);
        let out = FaultInjector::new(FaultPlan {
            stuck_sensor: 0.5,
            seed: 11,
            ..FaultPlan::default()
        })
        .unwrap()
        .corrupt(&db);
        let original: Vec<ScenarioRecord> = db.iter().map(|r| r.to_record()).collect();
        // Some (but not all) cells must equal the previous record's value
        // where the original differed.
        let mut stuck = 0;
        let mut total = 0;
        for (i, r) in out.iter().enumerate().skip(1) {
            for (j, v) in r.metrics.iter().enumerate() {
                let orig = original[i].metrics[j];
                let prev = original[i - 1].metrics[j];
                if orig != prev {
                    total += 1;
                    if *v == prev {
                        stuck += 1;
                    }
                }
            }
        }
        let rate = stuck as f64 / total as f64;
        assert!((rate - 0.5).abs() < 0.1, "observed stuck rate {rate}");
    }

    #[test]
    fn spikes_are_heavy_tailed_but_bounded() {
        let db = clean_db(200);
        let out = FaultInjector::new(FaultPlan {
            outlier_spike: 0.1,
            seed: 13,
            ..FaultPlan::default()
        })
        .unwrap()
        .corrupt(&db);
        let original: Vec<ScenarioRecord> = db.iter().map(|r| r.to_record()).collect();
        let mut inflations = Vec::new();
        for (r, o) in out.iter().zip(&original) {
            for (v, ov) in r.metrics.iter().zip(&o.metrics) {
                if *ov > 0.0 && v != ov {
                    inflations.push(v / ov);
                }
            }
        }
        assert!(!inflations.is_empty());
        assert!(inflations.iter().all(|&x| x > 1.0 && x <= 1e6 + 2.0));
        // Heavy tail: the max inflation dwarfs the median.
        let mut sorted = inflations.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!(sorted[sorted.len() - 1] > 10.0 * sorted[sorted.len() / 2]);
    }

    #[test]
    fn corrupt_database_quarantines_duplicates() {
        let db = clean_db(200);
        let plan = FaultPlan {
            record_duplication: 0.2,
            sample_dropout: 0.1,
            seed: 17,
            ..FaultPlan::default()
        };
        let (out, report) = FaultInjector::new(plan)
            .unwrap()
            .corrupt_database(&db, &IngestPolicy::default());
        assert!(report.quarantined_count() > 0, "duplicates quarantined");
        assert!(report.missing_cells > 0, "dropout markers recorded");
        assert_eq!(out.len(), report.accepted);
        assert!(out.len() <= db.len());
    }

    #[test]
    fn invalid_plans_are_rejected() {
        assert!(FaultInjector::new(FaultPlan {
            sample_dropout: 1.5,
            ..FaultPlan::default()
        })
        .is_err());
        assert!(FaultInjector::new(FaultPlan {
            noise_rel_std: -0.1,
            ..FaultPlan::default()
        })
        .is_err());
        assert!(FaultPlan {
            record_loss: f64::NAN,
            ..FaultPlan::default()
        }
        .validate()
        .is_err());
    }

    #[test]
    fn shared_noise_skips_zero_without_consuming_draws() {
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        assert_eq!(multiplicative_noise(0.0, 0.1, &mut a), 0.0);
        // `a` consumed nothing: the next draws still match `b`'s.
        assert_eq!(
            multiplicative_noise(5.0, 0.1, &mut a),
            multiplicative_noise(5.0, 0.1, &mut b)
        );
    }
}
