//! Fig. 3b: per-scenario Feature-1 impact vs HP LLC MPKI — no single
//! memory metric predicts the impact, motivating FLARE's systematic
//! extraction.

use flare_bench::{banner, ExperimentContext};
use flare_core::replayer::{replay_impact, SimTestbed};
use flare_linalg::stats::pearson;
use flare_metrics::schema::{Level, MetricId, MetricKind, MetricSchema};
use flare_sim::feature::Feature;

fn main() {
    banner("Per-scenario impact of Feature 1 vs HP LLC MPKI", "Fig. 3b");
    let ctx = ExperimentContext::standard();
    let feature_cfg = Feature::paper_feature1().apply(&ctx.baseline);
    let db = ctx.flare.database();
    let schema = MetricSchema::canonical();
    let mpki_idx = schema
        .index_of(MetricId::new(MetricKind::LlcMpki, Level::Hp))
        .expect("canonical schema");

    // Corpus-order arrays (correlations need aligned vectors; sorting
    // happens only for the display below).
    let mut impacts: Vec<f64> = Vec::new();
    let mut metric_rows: Vec<&[f64]> = Vec::new();
    for e in ctx.corpus.entries() {
        if !e.scenario.has_hp_job() {
            continue;
        }
        if let Some(impact) = replay_impact(&SimTestbed, &e.scenario, &ctx.baseline, &feature_cfg) {
            impacts.push(impact);
            metric_rows.push(&db.get(e.id).expect("aligned").metrics);
        }
    }
    let mut rows: Vec<(f64, f64)> = impacts
        .iter()
        .zip(&metric_rows)
        .map(|(&i, m)| (i, m[mpki_idx]))
        .collect();
    rows.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));

    println!(
        "\n{} HP scenarios (sorted by impact; every 40th shown)",
        rows.len()
    );
    println!("  {:>6} {:>12} {:>10}", "rank", "impact %", "HP MPKI");
    for (i, (imp, mpki)) in rows.iter().enumerate() {
        if i % 40 == 0 || i + 1 == rows.len() {
            println!("  {:>6} {:>12.2} {:>10.2}", i, imp, mpki);
        }
    }

    let mpkis: Vec<f64> = metric_rows.iter().map(|m| m[mpki_idx]).collect();
    let r = pearson(&impacts, &mpkis).expect("same length");
    println!("\nPearson correlation(impact, HP LLC MPKI) = {r:.3}");

    // The paper's broader claim: no *single* metric explains the impact.
    println!("\ncorrelation of impact with every raw metric (top 5 by |r|):");
    let mut correlations: Vec<(String, f64)> = Vec::new();
    for (j, id) in schema.ids().iter().enumerate() {
        let col: Vec<f64> = metric_rows.iter().map(|m| m[j]).collect();
        if let Ok(c) = pearson(&impacts, &col) {
            correlations.push((id.name(), c));
        }
    }
    correlations.sort_by(|a, b| b.1.abs().partial_cmp(&a.1.abs()).expect("finite"));
    for (name, c) in correlations.iter().take(5) {
        println!("  {name:<28} r = {c:+.3}");
    }
    println!(
        "\nHP LLC MPKI explains only {:.0}% of the impact variance (r = {r:.2}): selecting\n\
         scenarios to cover MPKI ranges — the intuitive heuristic the paper tests —\n\
         would miss most of the impact structure.",
        r * r * 100.0
    );
    let best = correlations.first().map(|c| c.1.abs()).unwrap_or(0.0);
    println!(
        "note: in this analytic substrate some *derived* memory-state metrics retain\n\
         higher correlation (max |r| = {best:.2}); the real system's phase noise and\n\
         prefetch effects (absent here) erode even that — see EXPERIMENTS.md."
    );
}
