//! Mini-batch K-means tier with k-means‖ coreset seeding: the scale-out
//! front end that pushes clustering to 10⁵+ rows.
//!
//! The exact pipeline (`crate::kmeans`) runs `restarts` full k-means++
//! seedings plus Lloyd passes over every row — O(restarts · iters · n·k·d).
//! At 10⁵–10⁶ scenarios that dominates the fit. This module adds a tiered
//! entry point, [`kmeans_tiered`]:
//!
//! - **at or below** [`MiniBatchConfig::threshold`] rows it delegates to
//!   [`kmeans`] verbatim — same code path, same RNG stream, byte-identical
//!   output (held by proptests in `tests/proptest_cluster.rs`), so the
//!   repo-wide determinism suite is unchanged at paper scale;
//! - **above** the threshold it runs [`kmeans_minibatch`]: one k-means‖
//!   oversampled seeding pass (Bahmani et al., incremental distance
//!   maintenance), a weighted Lloyd reduction of the candidate coreset to
//!   `k` seeds, Sculley-style mini-batch refinement with per-center
//!   `1/count` learning rates, and finally a warm-started run of the
//!   existing exact-pruned Lloyd kernel over the full data to polish and
//!   produce exact assignments/SSE.
//!
//! ## Tolerance contract
//!
//! Mirroring the eigensolver kernel's documented-tolerance contract, the
//! exact path stays in-tree as the differential oracle: on clusterable
//! inputs (the well-separated synthetic corpora the contract tests and the
//! `abl18_scale_out` bench gate on), the tier's final SSE is within
//! [`MINIBATCH_SSE_RTOL`] of the exact path's, and representative
//! selection on separated clusters is stable (each true cluster maps to
//! one fitted cluster). Unlike the exact path the tier runs a single
//! warm-started restart, so its output is *not* bit-identical to
//! [`kmeans`] — which is exactly why it only engages above the threshold.
//!
//! Determinism *within* the tier is still absolute: one seeded RNG stream
//! drives seeding, coreset reduction, and batch sampling, and the thread
//! knob remains a pure wall-clock knob (the parallel assignment kernel is
//! deterministic for every thread count).

use crate::distance::squared_euclidean;
use crate::error::{ClusterError, Result};
use crate::kernel::{assign_rows, point_norms, squared_euclidean_bounded, CentroidBuffer};
use crate::kmeans::{kmeans, lloyd_from, validate, KMeansConfig, KMeansResult};
use flare_exec::resolve_threads;
use flare_linalg::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Documented SSE-tolerance contract of the mini-batch tier: on
/// clusterable inputs the tier's final SSE is within this relative bound
/// of the exact path's (`tier_sse <= (1 + RTOL) * exact_sse`). Verified by
/// the contract tests below and gated by `abl18_scale_out --smoke`.
pub const MINIBATCH_SSE_RTOL: f64 = 0.05;

/// Configuration of the mini-batch/coreset tier.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MiniBatchConfig {
    /// Row-count threshold: inputs with `nrows <= threshold` take the
    /// exact path byte-identically; larger inputs engage the tier.
    pub threshold: usize,
    /// Rows sampled per mini-batch refinement step.
    pub batch_size: usize,
    /// Maximum mini-batch refinement steps (convergence on centroid
    /// movement usually stops earlier).
    pub max_batches: usize,
    /// k-means‖ oversampling rounds.
    pub seeding_rounds: usize,
    /// Oversampling factor: each round draws ~`oversample * k` candidates
    /// in expectation.
    pub oversample: usize,
}

impl Default for MiniBatchConfig {
    fn default() -> Self {
        MiniBatchConfig {
            threshold: 20_000,
            batch_size: 1024,
            max_batches: 100,
            seeding_rounds: 5,
            oversample: 2,
        }
    }
}

impl MiniBatchConfig {
    /// Replaces the engage threshold (builder-style).
    pub fn with_threshold(mut self, threshold: usize) -> Self {
        self.threshold = threshold;
        self
    }

    /// Replaces the mini-batch size (builder-style).
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = batch_size;
        self
    }

    pub(crate) fn validate(&self) -> Result<()> {
        if self.batch_size == 0 {
            return Err(ClusterError::InvalidParameter(
                "minibatch batch_size must be >= 1".into(),
            ));
        }
        if self.max_batches == 0 {
            return Err(ClusterError::InvalidParameter(
                "minibatch max_batches must be >= 1".into(),
            ));
        }
        if self.seeding_rounds == 0 || self.oversample == 0 {
            return Err(ClusterError::InvalidParameter(
                "minibatch seeding_rounds and oversample must be >= 1".into(),
            ));
        }
        Ok(())
    }
}

/// The tiered public entry point: exact [`kmeans`] at or below
/// [`MiniBatchConfig::threshold`] rows (byte-identical routing — same
/// function, same RNG stream), [`kmeans_minibatch`] above it.
///
/// # Errors
///
/// Same conditions as [`kmeans`], plus
/// [`ClusterError::InvalidParameter`] for degenerate tier settings.
pub fn kmeans_tiered(
    data: &Matrix,
    config: &KMeansConfig,
    tier: &MiniBatchConfig,
) -> Result<KMeansResult> {
    tier.validate()?;
    if data.nrows() <= tier.threshold {
        return kmeans(data, config);
    }
    kmeans_minibatch(data, config, tier)
}

/// The scale tier itself: k-means‖ seeding → weighted coreset reduction →
/// mini-batch refinement → one warm-started exact-pruned Lloyd run over
/// the full data. See the [module docs](self) for the algorithm and the
/// tolerance contract. Exposed directly (bypassing the threshold) for
/// benches and contract tests; production routing goes through
/// [`kmeans_tiered`].
///
/// # Errors
///
/// Same conditions as [`kmeans`], plus
/// [`ClusterError::InvalidParameter`] for degenerate tier settings.
pub fn kmeans_minibatch(
    data: &Matrix,
    config: &KMeansConfig,
    tier: &MiniBatchConfig,
) -> Result<KMeansResult> {
    validate(data, config)?;
    tier.validate()?;
    let k = config.k;
    let workers = resolve_threads(config.threads);
    let mut rng = StdRng::seed_from_u64(config.seed);
    // Shared with the final warm-started Lloyd run.
    let x_norms = point_norms(data);

    let candidates = parallel_seed(data, k, tier, &mut rng);
    let (weights, cand_buffer) = weigh_candidates(data, &x_norms, &candidates, workers);
    let mut centers = reduce_coreset(&cand_buffer, &weights, k, config, &mut rng);
    minibatch_refine(data, &mut centers, config, tier, &mut rng);

    // Final polish on the full data with the exact-pruned kernel: exact
    // assignments, exact SSE, and the standard deterministic
    // empty-cluster reseed if refinement collapsed a center.
    Ok(lloyd_from(data, config, centers, &x_norms, Some(workers)))
}

/// k-means‖ oversampled seeding (Bahmani et al.): each round samples every
/// row independently with probability `min(1, oversample·k·d²(x)/Σd²)`,
/// then folds the new candidates into the incrementally maintained
/// nearest-candidate distances (only the *new* candidates are scanned —
/// never the whole candidate set again).
fn parallel_seed(data: &Matrix, k: usize, tier: &MiniBatchConfig, rng: &mut StdRng) -> Vec<usize> {
    let n = data.nrows();
    let mut candidates: Vec<usize> = Vec::with_capacity(tier.oversample * k * tier.seeding_rounds);
    let mut is_candidate = vec![false; n];
    let first = rng.gen_range(0..n);
    candidates.push(first);
    is_candidate[first] = true;
    let mut d2: Vec<f64> = (0..n)
        .map(|i| squared_euclidean(data.row(i), data.row(first)))
        .collect();

    let ell = (tier.oversample * k) as f64;
    for _ in 0..tier.seeding_rounds {
        let total: f64 = d2.iter().sum();
        if total <= f64::EPSILON {
            break; // every row coincides with a candidate
        }
        let round_start = candidates.len();
        for i in 0..n {
            let p = (ell * d2[i] / total).min(1.0);
            if rng.gen::<f64>() < p && !is_candidate[i] {
                candidates.push(i);
                is_candidate[i] = true;
            }
        }
        for &c in &candidates[round_start..] {
            let row_c = data.row(c);
            for (i, slot) in d2.iter_mut().enumerate() {
                if let Some(nd) = squared_euclidean_bounded(data.row(i), row_c, *slot) {
                    if nd < *slot {
                        *slot = nd;
                    }
                }
            }
        }
    }

    // The oversampled set is ~oversample·k·rounds in expectation but the
    // draws are probabilistic: top up deterministically (farthest-point)
    // if a degenerate input left fewer than k candidates.
    while candidates.len() < k {
        let far = (0..n)
            .max_by(|&x, &y| d2[x].total_cmp(&d2[y]))
            .expect("n >= k >= 1");
        candidates.push(far);
        is_candidate[far] = true;
        let row_far = data.row(far);
        for (i, slot) in d2.iter_mut().enumerate() {
            let nd = squared_euclidean(data.row(i), row_far);
            if nd < *slot {
                *slot = nd;
            }
        }
    }
    candidates
}

/// Weights every candidate by the number of input rows nearest to it (one
/// pass of the parallel exact-pruned assignment kernel) and packs the
/// candidate rows into a [`CentroidBuffer`].
fn weigh_candidates(
    data: &Matrix,
    x_norms: &[f64],
    candidates: &[usize],
    workers: usize,
) -> (Vec<f64>, CentroidBuffer) {
    let d = data.ncols();
    let m = candidates.len();
    let mut flat = Vec::with_capacity(m * d);
    for &c in candidates {
        flat.extend_from_slice(data.row(c));
    }
    let buffer = CentroidBuffer::from_flat(m, d, flat);
    let mut norms = vec![0.0; m];
    buffer.norms_into(&mut norms);
    let mut assign = vec![0usize; data.nrows()];
    assign_rows(data, x_norms, &buffer, &norms, &mut assign, Some(workers));
    let mut weights = vec![0.0f64; m];
    for &a in &assign {
        weights[a] += 1.0;
    }
    (weights, buffer)
}

/// Reduces the weighted candidate coreset to `k` seeds with a small
/// weighted k-means++ + Lloyd run (the candidate set is ~oversample·k·
/// rounds points, so this is O(k²·d·rounds) — negligible next to a full
/// pass over the data).
pub(crate) fn reduce_coreset(
    cands: &CentroidBuffer,
    weights: &[f64],
    k: usize,
    config: &KMeansConfig,
    rng: &mut StdRng,
) -> CentroidBuffer {
    let m = cands.k();
    let d = cands.dim();

    // Weighted k-means++ over the candidates.
    let mut seed_idx: Vec<usize> = Vec::with_capacity(k);
    let total_w: f64 = weights.iter().sum();
    seed_idx.push(weighted_pick(weights, total_w, rng));
    let mut d2: Vec<f64> = (0..m)
        .map(|i| squared_euclidean(cands.row(i), cands.row(seed_idx[0])))
        .collect();
    while seed_idx.len() < k {
        let scores: Vec<f64> = d2.iter().zip(weights).map(|(&dd, &w)| dd * w).collect();
        let total: f64 = scores.iter().sum();
        let next = if total <= f64::EPSILON {
            weighted_pick(weights, total_w, rng)
        } else {
            weighted_pick(&scores, total, rng)
        };
        seed_idx.push(next);
        let row_next = cands.row(next);
        for (i, slot) in d2.iter_mut().enumerate() {
            let nd = squared_euclidean(cands.row(i), row_next);
            if nd < *slot {
                *slot = nd;
            }
        }
    }

    let mut seeds_flat = Vec::with_capacity(k * d);
    for &s in &seed_idx {
        seeds_flat.extend_from_slice(cands.row(s));
    }
    let mut seeds = CentroidBuffer::from_flat(k, d, seeds_flat);

    // Weighted Lloyd to convergence on the tiny candidate set.
    let mut assign = vec![0usize; m];
    let mut sums = vec![0.0f64; k * d];
    let mut counts = vec![0.0f64; k];
    let mut mean = vec![0.0f64; d];
    for _ in 0..config.max_iters {
        for (i, a) in assign.iter_mut().enumerate() {
            let row = cands.row(i);
            let mut best = 0usize;
            let mut best_d = f64::INFINITY;
            for c in 0..k {
                let dd = squared_euclidean(row, seeds.row(c));
                if dd < best_d {
                    best_d = dd;
                    best = c;
                }
            }
            *a = best;
        }
        sums.iter_mut().for_each(|s| *s = 0.0);
        counts.iter_mut().for_each(|c| *c = 0.0);
        for (i, &a) in assign.iter().enumerate() {
            counts[a] += weights[i];
            for (s, v) in sums[a * d..(a + 1) * d].iter_mut().zip(cands.row(i)) {
                *s += v * weights[i];
            }
        }
        let mut movement = 0.0;
        for c in 0..k {
            if counts[c] <= 0.0 {
                // Re-seed an empty seed at the heaviest-scoring candidate
                // (deterministic farthest-point analogue on the coreset).
                let far = (0..m)
                    .max_by(|&x, &y| (d2[x] * weights[x]).total_cmp(&(d2[y] * weights[y])))
                    .expect("m >= k >= 1");
                movement += squared_euclidean(seeds.row(c), cands.row(far));
                seeds.set_row(c, cands.row(far));
                continue;
            }
            for (mm, s) in mean.iter_mut().zip(&sums[c * d..(c + 1) * d]) {
                *mm = s / counts[c];
            }
            movement += squared_euclidean(seeds.row(c), &mean);
            seeds.set_row(c, &mean);
        }
        if movement <= config.tolerance {
            break;
        }
    }
    seeds
}

/// One weighted draw: index sampled proportionally to `weights` (cumulative
/// scan, identical arithmetic shape to the k-means++ selector in
/// `crate::kmeans`).
fn weighted_pick(weights: &[f64], total: f64, rng: &mut StdRng) -> usize {
    if total <= f64::EPSILON {
        return rng.gen_range(0..weights.len());
    }
    let mut target = rng.gen::<f64>() * total;
    let mut chosen = weights.len() - 1;
    for (i, &w) in weights.iter().enumerate() {
        if target < w {
            chosen = i;
            break;
        }
        target -= w;
    }
    chosen
}

/// Sculley-style mini-batch refinement: each step samples `batch_size`
/// rows with replacement, assigns them to their nearest center, then pulls
/// each center toward its batch members with a per-center `1/count`
/// learning rate. Stops early once total squared center movement in a step
/// falls to the configured tolerance.
fn minibatch_refine(
    data: &Matrix,
    centers: &mut CentroidBuffer,
    config: &KMeansConfig,
    tier: &MiniBatchConfig,
    rng: &mut StdRng,
) {
    let n = data.nrows();
    let k = centers.k();
    let d = centers.dim();
    let batch = tier.batch_size.min(n);
    let mut counts = vec![0u64; k];
    let mut sampled = vec![0usize; batch];
    let mut assigned = vec![0usize; batch];
    let mut old = vec![0.0f64; d];
    for _ in 0..tier.max_batches {
        for s in sampled.iter_mut() {
            *s = rng.gen_range(0..n);
        }
        for (s, a) in sampled.iter().zip(assigned.iter_mut()) {
            let row = data.row(*s);
            let mut best = 0usize;
            let mut best_d = f64::INFINITY;
            for c in 0..k {
                let dd = squared_euclidean(row, centers.row(c));
                if dd < best_d {
                    best_d = dd;
                    best = c;
                }
            }
            *a = best;
        }
        let mut movement = 0.0;
        for (s, &a) in sampled.iter().zip(assigned.iter()) {
            counts[a] += 1;
            let eta = 1.0 / counts[a] as f64;
            old.copy_from_slice(centers.row(a));
            let row = data.row(*s);
            let center = centers.row_mut(a);
            for (cv, xv) in center.iter_mut().zip(row) {
                *cv += eta * (xv - *cv);
            }
            movement += squared_euclidean(&old, centers.row(a));
        }
        if movement <= config.tolerance {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kmeans::compute_sse;

    /// `blobs(per)` — 4 well-separated clusters of `per` points each.
    fn blobs(per: usize) -> Matrix {
        let centers = [(0.0, 0.0), (40.0, 0.0), (0.0, 40.0), (40.0, 40.0)];
        let mut rows = Vec::with_capacity(4 * per);
        for (ci, &(cx, cy)) in centers.iter().enumerate() {
            for p in 0..per {
                let dx = (p as f64 * 0.37 + ci as f64).sin();
                let dy = (p as f64 * 0.71 + ci as f64).cos();
                rows.push(vec![cx + dx, cy + dy]);
            }
        }
        Matrix::from_rows(&rows).unwrap()
    }

    #[test]
    fn below_threshold_routes_byte_identically() {
        let data = blobs(25); // 100 rows
        let cfg = KMeansConfig::new(4).with_seed(7);
        let tier = MiniBatchConfig::default(); // threshold 20k >> 100
        let exact = kmeans(&data, &cfg).unwrap();
        let tiered = kmeans_tiered(&data, &cfg, &tier).unwrap();
        assert_eq!(exact, tiered);
    }

    #[test]
    fn tier_honors_the_sse_tolerance_contract() {
        // THE tolerance contract (module docs): above the threshold, the
        // tier's SSE on clusterable data is within MINIBATCH_SSE_RTOL of
        // the exact oracle's.
        let data = blobs(150); // 600 rows, threshold forces the tier
        let cfg = KMeansConfig::new(4).with_seed(11);
        let tier = MiniBatchConfig::default()
            .with_threshold(200)
            .with_batch_size(64);
        let exact = kmeans(&data, &cfg).unwrap();
        let tiered = kmeans_tiered(&data, &cfg, &tier).unwrap();
        assert!(
            tiered.sse <= (1.0 + MINIBATCH_SSE_RTOL) * exact.sse,
            "tier SSE {} vs exact {} breaks the contract",
            tiered.sse,
            exact.sse
        );
        // SSE is reported against the tier's own centroids, exactly.
        let recomputed = compute_sse(&data, &tiered.centroids, &tiered.assignments);
        assert!((tiered.sse - recomputed).abs() < 1e-9);
    }

    #[test]
    fn tier_selects_stable_representatives_on_separated_clusters() {
        // Each true cluster maps to exactly one fitted cluster, so the
        // representative of every fitted cluster is drawn from a single
        // true cluster — stable selection under the contract.
        let data = blobs(100); // 400 rows
        let cfg = KMeansConfig::new(4).with_seed(3);
        let tier = MiniBatchConfig::default()
            .with_threshold(300)
            .with_batch_size(64);
        let r = kmeans_tiered(&data, &cfg, &tier).unwrap();
        let mut seen = [usize::MAX; 4];
        for blob in 0..4 {
            let first = r.assignments[blob * 100];
            assert!(
                r.assignments[blob * 100..(blob + 1) * 100]
                    .iter()
                    .all(|&a| a == first),
                "blob {blob} split across fitted clusters"
            );
            assert!(
                !seen[..blob].contains(&first),
                "two blobs merged into fitted cluster {first}"
            );
            seen[blob] = first;
        }
        let reps = r.representatives(&data);
        for (c, rep) in reps.iter().enumerate() {
            let rep = rep.expect("no empty clusters on separated blobs");
            assert_eq!(r.assignments[rep], c);
        }
    }

    #[test]
    fn tier_is_deterministic_and_thread_invariant() {
        let data = blobs(80); // 320 rows
        let tier = MiniBatchConfig::default()
            .with_threshold(100)
            .with_batch_size(32);
        let base = KMeansConfig::new(4).with_seed(5).with_threads(Some(1));
        let serial = kmeans_tiered(&data, &base, &tier).unwrap();
        let again = kmeans_tiered(&data, &base, &tier).unwrap();
        assert_eq!(serial, again);
        for threads in [Some(2), Some(4), None] {
            let parallel =
                kmeans_tiered(&data, &base.clone().with_threads(threads), &tier).unwrap();
            assert_eq!(serial, parallel, "threads={threads:?}");
        }
    }

    #[test]
    fn degenerate_tier_settings_are_rejected() {
        let data = blobs(5);
        let cfg = KMeansConfig::new(2);
        for bad in [
            MiniBatchConfig::default().with_batch_size(0),
            MiniBatchConfig {
                max_batches: 0,
                ..MiniBatchConfig::default()
            },
            MiniBatchConfig {
                seeding_rounds: 0,
                ..MiniBatchConfig::default()
            },
            MiniBatchConfig {
                oversample: 0,
                ..MiniBatchConfig::default()
            },
        ] {
            assert!(kmeans_tiered(&data, &cfg, &bad).is_err());
        }
    }

    #[test]
    fn tier_handles_duplicate_heavy_inputs() {
        // Mostly-duplicate data stresses the seeding top-up and the
        // empty-cluster reseed inside the warm-started Lloyd run.
        let mut rows = vec![vec![1.0, 1.0]; 40];
        rows.extend(vec![vec![9.0, 9.0]; 40]);
        let data = Matrix::from_rows(&rows).unwrap();
        let cfg = KMeansConfig::new(2).with_seed(13);
        let tier = MiniBatchConfig::default()
            .with_threshold(10)
            .with_batch_size(16);
        let r = kmeans_tiered(&data, &cfg, &tier).unwrap();
        assert!(r.sse < 1e-9);
        assert_eq!(r.assignments.len(), 80);
    }
}
