//! Latent resource profiles of datacenter jobs.
//!
//! The paper runs real CloudSuite / SPEC CPU2006 binaries; we substitute a
//! *latent profile* per job — the *cause* of each job's observable metrics.
//! The simulator's interference model combines colocated profiles with a
//! machine shape to produce per-job performance, from which the profiler
//! synthesizes the 100+ raw observable metrics. What matters for a faithful
//! FLARE reproduction is that jobs have distinct, overlapping resource
//! signatures so colocation scenarios span a rich behaviour space (Fig. 3).

use serde::{Deserialize, Serialize};

/// Scheduling priority of a job (§3.1): HP performance is managed, LP jobs
/// run on free quota and are ignored by the performance metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Priority {
    /// High priority: the jobs whose performance the datacenter manages.
    High,
    /// Low priority: opportunistic batch jobs on free quota.
    Low,
}

/// The static, machine-independent resource profile of one job *instance*
/// (a 4-vCPU container, per Table 3's sizing rule).
///
/// All `*_mpki` values are at the instance's full working set resident in
/// cache; the interference model scales them with the effective cache
/// share via the miss-ratio curve.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobProfile {
    /// Instructions per second (millions) when the instance runs alone on
    /// an otherwise-empty default machine at maximum frequency — the
    /// "inherent MIPS" of the paper's performance definition (§5.1).
    pub inherent_mips: f64,
    /// LLC working-set demand of one instance, MB.
    pub working_set_mb: f64,
    /// Shape exponent of the power-law miss-ratio curve: when the instance
    /// receives `c < working_set` MB of LLC, its LLC MPKI grows by
    /// `(working_set / c)^alpha`.
    pub miss_curve_alpha: f64,
    /// LLC misses per kilo-instruction with the full working set cached
    /// (compulsory + capacity floor).
    pub base_llc_mpki: f64,
    /// L2 misses per kilo-instruction (feeds LLC APKI).
    pub base_l2_mpki: f64,
    /// L1 data misses per kilo-instruction.
    pub base_l1d_mpki: f64,
    /// L1 instruction misses per kilo-instruction (frontend pressure).
    pub base_l1i_mpki: f64,
    /// DRAM bandwidth demand of one instance at full speed, GB/s.
    pub mem_bw_gbps: f64,
    /// Sensitivity of progress to memory *latency* (0 = fully
    /// latency-tolerant, 1 = every miss stalls the pipeline).
    pub latency_sensitivity: f64,
    /// Fraction of execution that scales with core frequency (the
    /// remainder is memory/IO time unaffected by DVFS).
    pub cpu_bound_fraction: f64,
    /// Throughput multiplier when sharing a physical core with an SMT
    /// sibling (e.g. 0.65 = instance retains 65 % of its solo speed).
    pub smt_friendliness: f64,
    /// Average fraction of the 4 allocated vCPUs that are actually busy.
    pub cpu_util: f64,
    /// Top-down: fraction of slots frontend-bound when running alone.
    pub frontend_bound: f64,
    /// Top-down: fraction of slots lost to branch mis-speculation.
    pub bad_speculation: f64,
    /// Branch mispredictions per kilo-instruction.
    pub branch_mpki: f64,
    /// Instruction-TLB misses per kilo-instruction.
    pub itlb_mpki: f64,
    /// Data-TLB misses per kilo-instruction.
    pub dtlb_mpki: f64,
    /// ALU-port stall fraction (dense arithmetic pressure).
    pub alu_stall_pct: f64,
    /// Divider/long-op stall fraction.
    pub div_stall_pct: f64,
    /// Disk read throughput, MB/s per instance.
    pub disk_read_mbps: f64,
    /// Disk write throughput, MB/s per instance.
    pub disk_write_mbps: f64,
    /// Network receive throughput, MB/s per instance.
    pub net_rx_mbps: f64,
    /// Network transmit throughput, MB/s per instance.
    pub net_tx_mbps: f64,
    /// Resident set size, GB per instance.
    pub rss_gb: f64,
    /// System calls per second per instance.
    pub syscalls_ps: f64,
}

impl JobProfile {
    /// LLC misses per kilo-instruction when the instance's effective cache
    /// share is `cache_mb`.
    ///
    /// Uses the standard power-law miss-ratio curve: the full-working-set
    /// MPKI is the floor; shrinking the share below the working set raises
    /// misses super-linearly with exponent [`miss_curve_alpha`].
    ///
    /// [`miss_curve_alpha`]: JobProfile::miss_curve_alpha
    ///
    /// # Examples
    ///
    /// ```
    /// use flare_workloads::catalog;
    /// use flare_workloads::job::JobName;
    ///
    /// let ga = catalog::profile(JobName::GraphAnalytics);
    /// let full = ga.llc_mpki_at(ga.working_set_mb);
    /// let half = ga.llc_mpki_at(ga.working_set_mb / 2.0);
    /// assert!(half > full);
    /// ```
    pub fn llc_mpki_at(&self, cache_mb: f64) -> f64 {
        let cache = cache_mb.max(0.25); // hardware floor: below ~256 KB everything misses
        if cache >= self.working_set_mb {
            self.base_llc_mpki
        } else {
            self.base_llc_mpki * (self.working_set_mb / cache).powf(self.miss_curve_alpha)
        }
    }

    /// DRAM traffic (GB/s) implied by an achieved MIPS and an LLC MPKI,
    /// assuming 64-byte lines. This is exactly the redundancy the paper
    /// found between its bandwidth monitor and LLC-miss counters.
    pub fn mem_bw_from_misses(mips: f64, llc_mpki: f64) -> f64 {
        // misses/s = MIPS * 1e6 * mpki / 1e3; bytes = * 64; GB/s = / 1e9.
        mips * 1e6 * llc_mpki / 1e3 * 64.0 / 1e9
    }

    /// Validates that the profile's parameters are physically sensible.
    ///
    /// Used by catalog tests and by property tests to reject nonsensical
    /// synthetic profiles.
    pub fn is_valid(&self) -> bool {
        self.inherent_mips > 0.0
            && self.working_set_mb > 0.0
            && self.miss_curve_alpha >= 0.0
            && self.base_llc_mpki >= 0.0
            && self.base_l2_mpki >= self.base_llc_mpki * 0.5
            && self.base_l1d_mpki >= 0.0
            && self.mem_bw_gbps >= 0.0
            && (0.0..=1.0).contains(&self.latency_sensitivity)
            && (0.0..=1.0).contains(&self.cpu_bound_fraction)
            && (0.05..=1.0).contains(&self.smt_friendliness)
            && (0.0..=1.0).contains(&self.cpu_util)
            && (0.0..=1.0).contains(&self.frontend_bound)
            && (0.0..=1.0).contains(&self.bad_speculation)
            && self.frontend_bound + self.bad_speculation < 1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> JobProfile {
        JobProfile {
            inherent_mips: 2000.0,
            working_set_mb: 8.0,
            miss_curve_alpha: 0.8,
            base_llc_mpki: 1.0,
            base_l2_mpki: 4.0,
            base_l1d_mpki: 20.0,
            base_l1i_mpki: 2.0,
            mem_bw_gbps: 2.0,
            latency_sensitivity: 0.5,
            cpu_bound_fraction: 0.6,
            smt_friendliness: 0.7,
            cpu_util: 0.8,
            frontend_bound: 0.2,
            bad_speculation: 0.05,
            branch_mpki: 5.0,
            itlb_mpki: 0.2,
            dtlb_mpki: 1.0,
            alu_stall_pct: 0.1,
            div_stall_pct: 0.02,
            disk_read_mbps: 10.0,
            disk_write_mbps: 5.0,
            net_rx_mbps: 20.0,
            net_tx_mbps: 20.0,
            rss_gb: 4.0,
            syscalls_ps: 1e4,
        }
    }

    #[test]
    fn miss_curve_floor_at_full_working_set() {
        let p = sample();
        assert_eq!(p.llc_mpki_at(8.0), 1.0);
        assert_eq!(p.llc_mpki_at(30.0), 1.0);
    }

    #[test]
    fn miss_curve_grows_when_cache_shrinks() {
        let p = sample();
        let half = p.llc_mpki_at(4.0);
        let quarter = p.llc_mpki_at(2.0);
        assert!(half > 1.0);
        assert!(quarter > half);
        // Power-law: halving cache multiplies MPKI by 2^alpha.
        assert!((half - 2.0f64.powf(0.8)).abs() < 1e-9);
    }

    #[test]
    fn miss_curve_clamps_tiny_cache() {
        let p = sample();
        assert!(p.llc_mpki_at(0.0).is_finite());
        assert_eq!(p.llc_mpki_at(0.0), p.llc_mpki_at(0.1));
    }

    #[test]
    fn bandwidth_identity() {
        // 1000 MIPS at 2 MPKI → 2e6 misses/s → 128 MB/s = 0.128 GB/s.
        let bw = JobProfile::mem_bw_from_misses(1000.0, 2.0);
        assert!((bw - 0.128).abs() < 1e-9);
    }

    #[test]
    fn sample_profile_is_valid() {
        assert!(sample().is_valid());
    }

    #[test]
    fn invalid_profiles_detected() {
        let mut p = sample();
        p.inherent_mips = 0.0;
        assert!(!p.is_valid());
        let mut p = sample();
        p.cpu_bound_fraction = 1.5;
        assert!(!p.is_valid());
        let mut p = sample();
        p.frontend_bound = 0.8;
        p.bad_speculation = 0.3;
        assert!(!p.is_valid());
    }
}
