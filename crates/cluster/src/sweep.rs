//! Cluster-count sweeps: the SSE/Silhouette curves of Fig. 9.
//!
//! FLARE selects the number of representative groups by sweeping K and
//! inspecting where clustering quality stops improving ("pick a point where
//! the return starts to diminish"). This module automates the sweep and the
//! knee heuristic.

use crate::error::{ClusterError, Result};
use crate::kernel::{centroids_of_flat, PairwiseDistances};
use crate::kmeans::{kmeans, KMeansConfig};
use crate::quality::{silhouette_score_cached, silhouette_score_subsampled};
use flare_exec::{par_map_indexed, resolve_threads};
use flare_linalg::Matrix;
use serde::{Deserialize, Serialize};

/// Default ceiling on the [`PairwiseDistances`] cache a sweep will
/// allocate (64 MiB ≈ 2 800 points at the full-matrix layout). Above it
/// the sweep falls back to the seeded subsampled silhouette estimate (see
/// [`SweepOptions`]) instead of silently recomputing the full O(n²·d)
/// distance set per candidate.
pub const MAX_PAIRWISE_CACHE_BYTES: usize = 64 << 20;

/// Default subsample size of the above-cap silhouette fallback.
pub const DEFAULT_SILHOUETTE_SAMPLE: usize = 4096;

/// Scale knobs of a cluster-count sweep.
///
/// Below `max_pairwise_cache_bytes` nothing changes: one pairwise cache
/// serves every candidate, byte-identical to the historical behavior (the
/// determinism suite's corpora are far below the default cap). Above the
/// cap, silhouettes are *estimated* on a deterministic seeded stratified
/// subsample of `silhouette_sample` points per candidate
/// ([`silhouette_score_subsampled`]) instead of the historical silent
/// quadratic recompute; `silhouette_sample == 0` restores the exact
/// (slow) fallback.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SweepOptions {
    /// Largest pairwise-distance cache the sweep may allocate, in bytes.
    pub max_pairwise_cache_bytes: usize,
    /// Subsample size of the above-cap silhouette estimate (0 = exact).
    pub silhouette_sample: usize,
    /// Seed of the subsample draw.
    pub seed: u64,
}

impl Default for SweepOptions {
    fn default() -> Self {
        SweepOptions {
            max_pairwise_cache_bytes: MAX_PAIRWISE_CACHE_BYTES,
            silhouette_sample: DEFAULT_SILHOUETTE_SAMPLE,
            seed: 0xF1A7E,
        }
    }
}

/// The per-sweep pairwise-distance cache, if the corpus is small enough
/// to afford it. `None` and `Some` produce byte-identical silhouettes
/// (when `None` falls back to the exact path).
fn pairwise_cache(
    data: &Matrix,
    threads: Option<usize>,
    opts: &SweepOptions,
) -> Option<PairwiseDistances> {
    (PairwiseDistances::footprint_bytes(data.nrows()) <= opts.max_pairwise_cache_bytes)
        .then(|| PairwiseDistances::compute(data, threads))
}

/// One candidate's silhouette: cached when the cache exists, otherwise the
/// subsampled (or exact, if disabled) fallback.
fn silhouette_of(
    data: &Matrix,
    cache: &Option<PairwiseDistances>,
    assignments: &[usize],
    k: usize,
    opts: &SweepOptions,
) -> Result<f64> {
    match cache {
        Some(d) => silhouette_score_cached(d, assignments, k),
        None => {
            silhouette_score_subsampled(data, assignments, k, opts.silhouette_sample, opts.seed)
        }
    }
}

/// Quality measurements for one candidate cluster count.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Cluster count evaluated.
    pub k: usize,
    /// Sum of squared errors of the best K-means run.
    pub sse: f64,
    /// Mean silhouette score of the best K-means run.
    pub silhouette: f64,
}

/// Result of a full sweep over cluster counts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepResult {
    /// One measurement per candidate `k`, ascending.
    pub points: Vec<SweepPoint>,
}

impl SweepResult {
    /// The sweep point for a specific `k`, if it was evaluated.
    pub fn point(&self, k: usize) -> Option<&SweepPoint> {
        self.points.iter().find(|p| p.k == k)
    }

    /// Knee-of-the-curve heuristic on the SSE series: the evaluated `k`
    /// maximizing distance from the line connecting the first and last
    /// sweep points (the standard "elbow" detector).
    ///
    /// Returns `None` for sweeps with fewer than 3 points.
    pub fn knee_k(&self) -> Option<usize> {
        if self.points.len() < 3 {
            return None;
        }
        let first = &self.points[0];
        let last = &self.points[self.points.len() - 1];
        let (x0, y0) = (first.k as f64, first.sse);
        let (x1, y1) = (last.k as f64, last.sse);
        let len = ((x1 - x0).powi(2) + (y1 - y0).powi(2)).sqrt();
        if len <= f64::EPSILON {
            return Some(first.k);
        }
        let mut best = (first.k, -1.0f64);
        for p in &self.points {
            // Perpendicular distance from (k, sse) to the chord.
            let d = ((y1 - y0) * p.k as f64 - (x1 - x0) * p.sse + x1 * y0 - y1 * x0).abs() / len;
            if d > best.1 {
                best = (p.k, d);
            }
        }
        Some(best.0)
    }

    /// The evaluated `k` with the highest silhouette score (`total_cmp`:
    /// a NaN silhouette never panics the selection).
    pub fn best_silhouette_k(&self) -> Option<usize> {
        self.points
            .iter()
            .max_by(|a, b| a.silhouette.total_cmp(&b.silhouette))
            .map(|p| p.k)
    }

    /// The paper's selection rule: prefer the knee of the SSE curve, but if
    /// a nearby `k` (within `tolerance` positions in the sweep) has a
    /// meaningfully better silhouette, take that instead. This mirrors
    /// "strike the balance between quality and cost" (Fig. 9 caption).
    pub fn recommended_k(&self) -> Option<usize> {
        let knee = self.knee_k()?;
        let knee_idx = self.points.iter().position(|p| p.k == knee)?;
        let window =
            &self.points[knee_idx.saturating_sub(2)..(knee_idx + 3).min(self.points.len())];
        window
            .iter()
            .max_by(|a, b| a.silhouette.total_cmp(&b.silhouette))
            .map(|p| p.k)
    }
}

/// Sweeps a hierarchical dendrogram over `ks`, recording SSE and
/// silhouette for each cut. The dendrogram is built once; each cut is a
/// cheap union-find pass, so sweeping is much faster than re-running
/// K-means per `k`.
///
/// # Errors
///
/// Same parameter rules as [`sweep_kmeans`], plus dendrogram-construction
/// errors.
pub fn sweep_hierarchical(
    data: &Matrix,
    ks: &[usize],
    linkage: crate::hierarchical::Linkage,
) -> Result<SweepResult> {
    if ks.is_empty() {
        return Err(ClusterError::InvalidParameter("empty sweep range".into()));
    }
    if ks.iter().any(|&k| k < 2) {
        return Err(ClusterError::InvalidParameter(
            "sweep requires k >= 2 (silhouette undefined below)".into(),
        ));
    }
    let dendrogram = crate::hierarchical::agglomerative(data, linkage)?;
    // One pairwise-distance pass serves every cut's silhouette.
    let opts = SweepOptions::default();
    let cache = pairwise_cache(data, None, &opts);
    let mut points = Vec::with_capacity(ks.len());
    for &k in ks {
        let assignments = dendrogram.cut(k)?;
        let centroids = centroids_of(data, &assignments, k);
        let sse = crate::quality::sse(data, &centroids, &assignments)?;
        let silhouette = silhouette_of(data, &cache, &assignments, k, &opts)?;
        points.push(SweepPoint { k, sse, silhouette });
    }
    points.sort_by_key(|p| p.k);
    Ok(SweepResult { points })
}

/// Mean point of each cluster (empty clusters get the origin — they never
/// occur for dendrogram cuts, which label densely).
///
/// Accumulates in a flat [`crate::kernel::CentroidBuffer`] (one allocation
/// instead of `k + 1`); same row order and scalar ops as the legacy
/// nested-`Vec` accumulation, so the means carry identical bits.
pub fn centroids_of(data: &Matrix, assignments: &[usize], k: usize) -> Vec<Vec<f64>> {
    centroids_of_flat(data, assignments, k).to_rows()
}

/// Sweeps K-means over `ks`, recording SSE and silhouette for each count.
///
/// Candidate counts are evaluated across worker threads per
/// `base.threads` (`None` = available parallelism, `Some(1)` = serial);
/// when there are more workers than candidates, the surplus flows into
/// each candidate's K-means (restart fan-out and intra-restart assignment)
/// so cores stay busy even for short sweeps. Results are identical for
/// every thread count: per-candidate work is deterministic and collected
/// in input order. Silhouettes for all candidates are served from one
/// shared pairwise-distance cache (built once per sweep, bit-identical to
/// the on-the-fly computation) whenever the corpus is small enough.
///
/// # Errors
///
/// - [`ClusterError::InvalidParameter`] if `ks` is empty or contains a `k < 2`
///   (silhouette needs ≥ 2 clusters).
/// - Any error from the underlying K-means or silhouette computation.
pub fn sweep_kmeans(data: &Matrix, ks: &[usize], base: &KMeansConfig) -> Result<SweepResult> {
    sweep_kmeans_cached(data, ks, base, None).map(|(sweep, _)| sweep)
}

/// [`sweep_kmeans`] with reuse of a previous sweep's measurements.
///
/// Candidate counts already present in `prev` are copied verbatim instead of
/// re-running K-means; only the missing counts are evaluated. Returns the
/// merged sweep plus the number of points that were reused.
///
/// Caller contract: `prev` must have been produced from the **same** `data`
/// and the same `base` parameters (modulo `k`/`threads`) — the function
/// cannot detect a stale cache, it just trusts the `k` labels. Fresh points
/// are computed with the exact per-candidate procedure of [`sweep_kmeans`],
/// so a cached sweep is byte-identical to an uncached one.
///
/// # Errors
///
/// Same conditions as [`sweep_kmeans`].
pub fn sweep_kmeans_cached(
    data: &Matrix,
    ks: &[usize],
    base: &KMeansConfig,
    prev: Option<&SweepResult>,
) -> Result<(SweepResult, usize)> {
    sweep_kmeans_cached_with(data, ks, base, prev, &SweepOptions::default())
}

/// [`sweep_kmeans_cached`] with explicit [`SweepOptions`] — the seam the
/// scale configuration plumbs through (cache ceiling, above-cap
/// silhouette subsample, subsample seed). The default options reproduce
/// [`sweep_kmeans_cached`] exactly.
///
/// # Errors
///
/// Same conditions as [`sweep_kmeans`].
pub fn sweep_kmeans_cached_with(
    data: &Matrix,
    ks: &[usize],
    base: &KMeansConfig,
    prev: Option<&SweepResult>,
    opts: &SweepOptions,
) -> Result<(SweepResult, usize)> {
    if ks.is_empty() {
        return Err(ClusterError::InvalidParameter("empty sweep range".into()));
    }
    if ks.iter().any(|&k| k < 2) {
        return Err(ClusterError::InvalidParameter(
            "sweep requires k >= 2 (silhouette undefined below)".into(),
        ));
    }
    let mut points: Vec<SweepPoint> = Vec::with_capacity(ks.len());
    let mut todo: Vec<usize> = Vec::new();
    for &k in ks {
        match prev.and_then(|s| s.point(k)) {
            Some(p) => points.push(p.clone()),
            None => todo.push(k),
        }
    }
    let reused = points.len();
    // Split the thread budget: `outer` workers across candidate counts,
    // the surplus flowing into each candidate's K-means. Any split yields
    // identical results (K-means is thread-invariant, candidates are
    // collected in input order) — only wall-clock changes.
    let workers = resolve_threads(base.threads);
    let outer = workers.min(todo.len()).max(1);
    let inner = (workers / outer).max(1);
    // One O(n²·d) distance pass serves every candidate's silhouette.
    let cache = if todo.is_empty() {
        None
    } else {
        pairwise_cache(data, base.threads, opts)
    };
    let fresh: Vec<SweepPoint> = par_map_indexed(&todo, Some(outer), |_, &k| {
        let mut cfg = base.clone();
        cfg.k = k;
        cfg.threads = Some(inner);
        let result = kmeans(data, &cfg)?;
        let silhouette = silhouette_of(data, &cache, &result.assignments, k, opts)?;
        Ok(SweepPoint {
            k,
            sse: result.sse,
            silhouette,
        })
    })
    .into_iter()
    .collect::<Result<_>>()?;
    points.extend(fresh);
    points.sort_by_key(|p| p.k);
    Ok((SweepResult { points }, reused))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quality::silhouette_score;

    /// Five well-separated blobs.
    fn blobs5() -> Matrix {
        let mut rows = Vec::new();
        let centers = [
            (0.0, 0.0),
            (30.0, 0.0),
            (0.0, 30.0),
            (30.0, 30.0),
            (15.0, 60.0),
        ];
        for (ci, &(cx, cy)) in centers.iter().enumerate() {
            for p in 0..8 {
                let dx = ((p * 7 + ci) as f64).sin() * 0.8;
                let dy = ((p * 13 + ci) as f64).cos() * 0.8;
                rows.push(vec![cx + dx, cy + dy]);
            }
        }
        Matrix::from_rows(&rows).unwrap()
    }

    #[test]
    fn sweep_finds_true_cluster_count() {
        let data = blobs5();
        let ks: Vec<usize> = (2..=10).collect();
        let sweep = sweep_kmeans(&data, &ks, &KMeansConfig::new(2).with_restarts(10)).unwrap();
        assert_eq!(sweep.points.len(), 9);
        // Silhouette peaks at the true k = 5.
        assert_eq!(sweep.best_silhouette_k(), Some(5));
        // SSE decreases monotonically in k.
        for w in sweep.points.windows(2) {
            assert!(w[1].sse <= w[0].sse + 1e-6);
        }
        // Knee lands at (or adjacent to) the true count.
        let knee = sweep.knee_k().unwrap();
        assert!((4..=6).contains(&knee), "knee {knee}");
        let rec = sweep.recommended_k().unwrap();
        assert!((4..=6).contains(&rec), "recommended {rec}");
    }

    #[test]
    fn hierarchical_sweep_finds_true_cluster_count() {
        let data = blobs5();
        let ks: Vec<usize> = (2..=10).collect();
        let sweep = sweep_hierarchical(&data, &ks, crate::hierarchical::Linkage::Ward).unwrap();
        assert_eq!(sweep.best_silhouette_k(), Some(5));
        for w in sweep.points.windows(2) {
            assert!(w[1].sse <= w[0].sse + 1e-6, "SSE must fall with k");
        }
    }

    #[test]
    fn hierarchical_sweep_validates() {
        let data = blobs5();
        assert!(sweep_hierarchical(&data, &[], crate::hierarchical::Linkage::Ward).is_err());
        assert!(sweep_hierarchical(&data, &[1], crate::hierarchical::Linkage::Ward).is_err());
    }

    #[test]
    fn centroids_of_are_member_means() {
        let data = Matrix::from_rows(&[vec![0.0], vec![2.0], vec![10.0]]).unwrap();
        let c = centroids_of(&data, &[0, 0, 1], 2);
        assert_eq!(c[0], vec![1.0]);
        assert_eq!(c[1], vec![10.0]);
    }

    #[test]
    fn sweep_validates() {
        let data = blobs5();
        assert!(sweep_kmeans(&data, &[], &KMeansConfig::new(2)).is_err());
        assert!(sweep_kmeans(&data, &[1, 2], &KMeansConfig::new(2)).is_err());
    }

    #[test]
    fn point_lookup() {
        let data = blobs5();
        let sweep = sweep_kmeans(&data, &[2, 4], &KMeansConfig::new(2)).unwrap();
        assert!(sweep.point(4).is_some());
        assert!(sweep.point(3).is_none());
    }

    #[test]
    fn parallel_sweep_matches_serial_exactly() {
        let data = blobs5();
        let ks: Vec<usize> = (2..=10).collect();
        let base = KMeansConfig::new(2).with_restarts(6);
        let serial = sweep_kmeans(&data, &ks, &base.clone().with_threads(Some(1))).unwrap();
        for threads in [Some(2), Some(4), Some(64), None] {
            let parallel = sweep_kmeans(&data, &ks, &base.clone().with_threads(threads)).unwrap();
            assert_eq!(serial, parallel, "threads={threads:?}");
        }
    }

    #[test]
    fn cached_sweep_matches_uncached_byte_identically() {
        let data = blobs5();
        let base = KMeansConfig::new(2).with_restarts(6);
        let full_ks: Vec<usize> = (2..=8).collect();
        let full = sweep_kmeans(&data, &full_ks, &base).unwrap();

        // Warm cache covering a subset of the range.
        let warm = sweep_kmeans(&data, &[2, 3, 4], &base).unwrap();
        let (cached, reused) = sweep_kmeans_cached(&data, &full_ks, &base, Some(&warm)).unwrap();
        assert_eq!(reused, 3);
        assert_eq!(cached, full, "cache reuse must not change any point");

        // Fully-warm cache: nothing recomputed.
        let (hot, reused) = sweep_kmeans_cached(&data, &full_ks, &base, Some(&full)).unwrap();
        assert_eq!(reused, full_ks.len());
        assert_eq!(hot, full);

        // Cold cache behaves exactly like sweep_kmeans.
        let (cold, reused) = sweep_kmeans_cached(&data, &full_ks, &base, None).unwrap();
        assert_eq!(reused, 0);
        assert_eq!(cold, full);
    }

    #[test]
    fn cached_sweep_validates_like_uncached() {
        let data = blobs5();
        let base = KMeansConfig::new(2);
        assert!(sweep_kmeans_cached(&data, &[], &base, None).is_err());
        assert!(sweep_kmeans_cached(&data, &[1, 2], &base, None).is_err());
    }

    #[test]
    fn sweep_matches_per_candidate_composition() {
        // The sweep (shared pairwise cache, thread split, flat centroid
        // kernels) must equal the naive composition: one serial kmeans +
        // one uncached silhouette per k — byte for byte.
        let data = blobs5();
        let ks: Vec<usize> = (2..=9).collect();
        let base = KMeansConfig::new(2).with_restarts(5);
        let sweep = sweep_kmeans(&data, &ks, &base).unwrap();
        for (point, &k) in sweep.points.iter().zip(&ks) {
            let mut cfg = base.clone();
            cfg.k = k;
            cfg.threads = Some(1);
            let result = kmeans(&data, &cfg).unwrap();
            let silhouette = silhouette_score(&data, &result.assignments, k).unwrap();
            assert_eq!(point.k, k);
            assert_eq!(point.sse.to_bits(), result.sse.to_bits(), "k={k}");
            assert_eq!(point.silhouette.to_bits(), silhouette.to_bits(), "k={k}");
        }
    }

    #[test]
    fn tiny_cache_cap_with_exact_fallback_is_byte_identical() {
        // Starving the pairwise cache must not change a single bit when
        // the subsampled estimate is disabled: the exact fallback and the
        // cached path compute the same silhouette.
        let data = blobs5();
        let ks: Vec<usize> = (2..=8).collect();
        let base = KMeansConfig::new(2).with_restarts(5);
        let (cached, _) = sweep_kmeans_cached(&data, &ks, &base, None).unwrap();
        let exact_opts = SweepOptions {
            max_pairwise_cache_bytes: 0,
            silhouette_sample: 0,
            ..SweepOptions::default()
        };
        let (uncached, _) = sweep_kmeans_cached_with(&data, &ks, &base, None, &exact_opts).unwrap();
        assert_eq!(cached, uncached);
    }

    #[test]
    fn subsampled_fallback_is_deterministic_and_sane() {
        // Above the (here: zero) cap with a subsample smaller than the
        // corpus, the sweep estimates silhouettes — deterministically for
        // a fixed seed, and still peaking at the true cluster count on
        // well-separated blobs.
        let data = blobs5();
        let ks: Vec<usize> = (2..=8).collect();
        let base = KMeansConfig::new(2).with_restarts(10);
        let opts = SweepOptions {
            max_pairwise_cache_bytes: 0,
            silhouette_sample: 20,
            seed: 7,
        };
        let (a, _) = sweep_kmeans_cached_with(&data, &ks, &base, None, &opts).unwrap();
        let (b, _) = sweep_kmeans_cached_with(&data, &ks, &base, None, &opts).unwrap();
        assert_eq!(a, b, "seeded subsampling must be deterministic");
        assert_eq!(a.best_silhouette_k(), Some(5));
        for p in &a.points {
            assert!((-1.0..=1.0).contains(&p.silhouette), "k={}", p.k);
        }
    }

    #[test]
    fn knee_requires_three_points() {
        let data = blobs5();
        let sweep = sweep_kmeans(&data, &[2, 3], &KMeansConfig::new(2)).unwrap();
        assert_eq!(sweep.knee_k(), None);
    }
}
