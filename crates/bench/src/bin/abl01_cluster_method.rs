//! Ablation 1: K-means vs hierarchical clustering for representative
//! extraction (§4.4 notes hierarchical "can also be applied" — this
//! quantifies whether the choice matters).

use flare_baselines::fulldc::full_datacenter_impact;
use flare_bench::banner;
use flare_cluster::hierarchical::Linkage;
use flare_core::replayer::SimTestbed;
use flare_core::{ClusterMethod, Flare, FlareConfig};
use flare_sim::datacenter::{Corpus, CorpusConfig};
use flare_sim::feature::Feature;

fn main() {
    banner(
        "Ablation: clustering algorithm for representative extraction",
        "§4.4 (design-choice ablation, not a paper figure)",
    );
    let corpus_cfg = CorpusConfig::default();
    let corpus = Corpus::generate(&corpus_cfg);
    let baseline = corpus_cfg.machine_config.clone();

    let methods: Vec<(&str, ClusterMethod)> = vec![
        ("kmeans", ClusterMethod::KMeans),
        ("ward", ClusterMethod::Hierarchical(Linkage::Ward)),
        ("average", ClusterMethod::Hierarchical(Linkage::Average)),
        ("complete", ClusterMethod::Hierarchical(Linkage::Complete)),
        ("single", ClusterMethod::Hierarchical(Linkage::Single)),
    ];

    println!(
        "\n  {:<10} {:>10} | error vs ground truth (pp)",
        "method", "SSE"
    );
    println!(
        "  {:<10} {:>10} | {:>8} {:>8} {:>8} {:>8}",
        "", "", "F1", "F2", "F3", "mean"
    );
    for (name, method) in methods {
        let start = std::time::Instant::now();
        let flare = Flare::fit(
            corpus.clone(),
            FlareConfig {
                cluster_method: method,
                ..FlareConfig::default()
            },
        )
        .expect("fit");
        let fit_time = start.elapsed();
        let mut errs = Vec::new();
        for feature in Feature::paper_features() {
            let fc = feature.apply(&baseline);
            let truth =
                full_datacenter_impact(&corpus, &SimTestbed, &baseline, &fc, true).impact_pct;
            let est = flare.evaluate(&feature).expect("estimate").impact_pct;
            errs.push((est - truth).abs());
        }
        let mean = errs.iter().sum::<f64>() / errs.len() as f64;
        println!(
            "  {:<10} {:>10.1} | {:>8.2} {:>8.2} {:>8.2} {:>8.2}   (fit {:.1}s)",
            name,
            flare.analyzer().clustering().sse,
            errs[0],
            errs[1],
            errs[2],
            mean,
            fit_time.as_secs_f64(),
        );
    }
    println!(
        "\ntakeaway: variance-minimizing groupings (k-means / Ward) extract better\n\
         representatives than chaining linkages (single), validating the paper's default."
    );
}
