//! The Analyzer: steps 2 and 3 of the FLARE pipeline (Fig. 4).
//!
//! Takes the Profiler's metric database and produces the representative
//! scenario set:
//!
//! 1. refinement — prune highly correlated raw metrics (§4.2);
//! 2. high-level metric construction — z-score + PCA, keep enough PCs for
//!    the variance target (§4.3, Fig. 7). The PCA eigendecomposition runs
//!    on `flare_linalg`'s tridiagonal implicit-QL kernel, with the cyclic
//!    Jacobi solver kept as its differential oracle (see
//!    `flare_linalg::kernel`);
//! 3. representative extraction — whiten the kept PCs, K-means cluster,
//!    and pick each group's nearest-to-centroid scenario (§4.4, Fig. 9/10).

use crate::config::FlareConfig;
use crate::diagnostics::RepairReport;
use crate::error::{FlareError, Result};
use crate::stages::{
    self, ClusterArtifact, FeaturizeArtifact, Fingerprint, RepresentativesArtifact,
    StageFingerprints,
};
use flare_cluster::kmeans::KMeansResult;
use flare_cluster::sweep::SweepResult;
use flare_linalg::pca::Pca;
use flare_linalg::{Matrix, ShardedMatrix, SpillStats};
use flare_metrics::correlation::RefinementReport;
use flare_metrics::database::{MetricDatabase, ScenarioId};
use flare_metrics::schema::MetricSchema;

/// A fitted Analyzer: the full state of FLARE steps 1–3.
#[derive(Debug, Clone)]
pub struct Analyzer {
    refinement: RefinementReport,
    refined_schema: MetricSchema,
    pca: Pca,
    n_pcs: usize,
    projected: ShardedMatrix,
    scenario_ids: Vec<ScenarioId>,
    observations: Vec<u32>,
    clustering: KMeansResult,
    ranked_members: Vec<Vec<usize>>,
    sweep: Option<SweepResult>,
    repair: RepairReport,
    spill: Option<SpillStats>,
}

impl Analyzer {
    /// Fits the Analyzer to a metric database by running the
    /// [`crate::stages`] pipeline end to end (Repair → Featurize →
    /// Cluster → Representatives).
    ///
    /// # Errors
    ///
    /// - [`FlareError::InvalidParameter`] if `config` fails validation.
    /// - [`FlareError::InsufficientData`] if the database has fewer
    ///   scenarios than the requested cluster count.
    /// - Propagated refinement/PCA/clustering errors.
    pub fn fit(db: &MetricDatabase, config: &FlareConfig) -> Result<Self> {
        config.validate().map_err(FlareError::InvalidParameter)?;
        let fps = StageFingerprints::compute(stages::fingerprint_database(db), config);
        let (analyzer, _) = stages::fit_database(db, config, &fps)?;
        Ok(analyzer)
    }

    /// Assembles a fitted Analyzer from the stage artifacts. The analyzer
    /// *is* the union of the Featurize, Cluster, and Representatives
    /// artifacts (plus the repair report), so incremental refits can stitch
    /// reused and recomputed artifacts back together losslessly.
    pub(crate) fn from_artifacts(
        repair: RepairReport,
        feat: FeaturizeArtifact,
        cluster: ClusterArtifact,
        reps: RepresentativesArtifact,
    ) -> Analyzer {
        Analyzer {
            refinement: feat.refinement,
            refined_schema: feat.refined_schema,
            pca: feat.pca,
            n_pcs: feat.n_pcs,
            projected: feat.projected,
            scenario_ids: feat.scenario_ids,
            observations: feat.observations,
            clustering: cluster.clustering,
            ranked_members: reps.ranked_members,
            sweep: cluster.sweep,
            repair,
            spill: feat.spill,
        }
    }

    /// Re-extracts the Featurize artifact this analyzer was assembled
    /// from, stamped with `fingerprint` (inverse of [`Analyzer::from_artifacts`]).
    pub(crate) fn extract_featurize(&self, fingerprint: Fingerprint) -> FeaturizeArtifact {
        FeaturizeArtifact {
            refinement: self.refinement.clone(),
            refined_schema: self.refined_schema.clone(),
            pca: self.pca.clone(),
            n_pcs: self.n_pcs,
            projected: self.projected.clone(),
            scenario_ids: self.scenario_ids.clone(),
            observations: self.observations.clone(),
            spill: self.spill,
            fingerprint,
        }
    }

    /// Re-extracts the Cluster artifact, stamped with `fingerprint`.
    pub(crate) fn extract_cluster(&self, fingerprint: Fingerprint) -> ClusterArtifact {
        ClusterArtifact {
            clustering: self.clustering.clone(),
            sweep: self.sweep.clone(),
            fingerprint,
        }
    }

    /// Re-extracts the Representatives artifact, stamped with `fingerprint`.
    pub(crate) fn extract_representatives(
        &self,
        fingerprint: Fingerprint,
    ) -> RepresentativesArtifact {
        RepresentativesArtifact {
            ranked_members: self.ranked_members.clone(),
            fingerprint,
        }
    }

    /// The refinement report (which metrics were pruned and why).
    pub fn refinement(&self) -> &RefinementReport {
        &self.refinement
    }

    /// What the telemetry repair stage did to the database before
    /// refinement (all-zero for a clean database).
    pub fn repair_report(&self) -> &RepairReport {
        &self.repair
    }

    /// Cold-shard spill counters (hits, faults, evictions) of the
    /// featurize stage, or `None` when the fit ran with spill disabled.
    pub fn spill_stats(&self) -> Option<SpillStats> {
        self.spill
    }

    /// The post-refinement metric schema the PCA operates on.
    pub fn refined_schema(&self) -> &MetricSchema {
        &self.refined_schema
    }

    /// The fitted PCA model.
    pub fn pca(&self) -> &Pca {
        &self.pca
    }

    /// Number of principal components kept (18 for the paper's corpus).
    pub fn n_pcs(&self) -> usize {
        self.n_pcs
    }

    /// Whitened PC coordinates (scenarios × kept PCs) in their sharded
    /// layout, row order matching [`Analyzer::scenario_ids`]. Use
    /// [`ShardedMatrix::row`] for point lookups or
    /// [`ShardedMatrix::coalesced`] for a dense view.
    pub fn projected(&self) -> &ShardedMatrix {
        &self.projected
    }

    /// Scenario ids in row order.
    pub fn scenario_ids(&self) -> &[ScenarioId] {
        &self.scenario_ids
    }

    /// Observation weights in row order.
    pub fn observations(&self) -> &[u32] {
        &self.observations
    }

    /// The K-means clustering over the whitened PC space.
    pub fn clustering(&self) -> &KMeansResult {
        &self.clustering
    }

    /// The sweep curves (present only when the config requested a sweep).
    pub fn sweep(&self) -> Option<&SweepResult> {
        self.sweep.as_ref()
    }

    /// Number of representative groups.
    pub fn n_clusters(&self) -> usize {
        self.clustering.k()
    }

    /// The representative scenario of cluster `c` (nearest to centroid),
    /// or `None` for an empty cluster.
    pub fn representative(&self, c: usize) -> Option<ScenarioId> {
        self.ranked_members
            .get(c)
            .and_then(|m| m.first())
            .map(|&row| self.scenario_ids[row])
    }

    /// Every cluster's representative, in cluster order (empty clusters
    /// yield no entry).
    pub fn representatives(&self) -> Vec<ScenarioId> {
        (0..self.n_clusters())
            .filter_map(|c| self.representative(c))
            .collect()
    }

    /// All member scenarios of cluster `c` ranked by ascending distance to
    /// the centroid — `ranked(c)[0]` is the representative; the rest are
    /// the per-job fallbacks of §5.3.
    ///
    /// Allocates a fresh `Vec`; the estimation hot paths use
    /// [`Analyzer::ranked_ids`] instead.
    pub fn ranked(&self, c: usize) -> Vec<ScenarioId> {
        self.ranked_ids(c).collect()
    }

    /// Iterator over cluster `c`'s member scenarios in representative-first
    /// order — the allocation-free sibling of [`Analyzer::ranked`]. Empty
    /// for an out-of-range cluster.
    pub fn ranked_ids(&self, c: usize) -> impl Iterator<Item = ScenarioId> + '_ {
        self.ranked_members
            .get(c)
            .into_iter()
            .flatten()
            .map(move |&row| self.scenario_ids[row])
    }

    /// Number of members in cluster `c` (zero when out of range).
    pub fn ranked_len(&self, c: usize) -> usize {
        self.ranked_members.get(c).map_or(0, Vec::len)
    }

    /// Cluster assignment of a scenario, if it was in the fitted corpus.
    pub fn cluster_of(&self, id: ScenarioId) -> Option<usize> {
        self.scenario_ids
            .iter()
            .position(|&s| s == id)
            .map(|row| self.clustering.assignments[row])
    }

    /// Cluster weights: the share of the corpus each group represents,
    /// counted by observations (paper default) or scenarios, per
    /// `weight_by_observations` at fit time. Computed fresh from a flag so
    /// callers can inspect both.
    pub fn cluster_weights(&self, by_observations: bool) -> Vec<f64> {
        let k = self.n_clusters();
        let mut weights = vec![0.0; k];
        let mut total = 0.0;
        for (row, &c) in self.clustering.assignments.iter().enumerate() {
            let w = if by_observations {
                self.observations[row] as f64
            } else {
                1.0
            };
            weights[c] += w;
            total += w;
        }
        if total > 0.0 {
            for w in &mut weights {
                *w /= total;
            }
        }
        weights
    }

    /// Per-cluster mean and standard deviation of each kept PC — the radar
    /// plot data of Fig. 10.
    pub fn cluster_pc_profile(&self, c: usize) -> Option<ClusterPcProfile> {
        let members = self.ranked_members.get(c)?;
        if members.is_empty() {
            return None;
        }
        let d = self.n_pcs;
        let mut mean = vec![0.0; d];
        for &row in members {
            for (m, v) in mean.iter_mut().zip(self.projected.row(row)) {
                *m += v;
            }
        }
        for m in &mut mean {
            *m /= members.len() as f64;
        }
        let mut std = vec![0.0; d];
        for &row in members {
            for (s, (v, m)) in std
                .iter_mut()
                .zip(self.projected.row(row).iter().zip(&mean))
            {
                *s += (v - m) * (v - m);
            }
        }
        for s in &mut std {
            *s = (*s / members.len() as f64).sqrt();
        }
        Some(ClusterPcProfile {
            cluster: c,
            mean,
            std_dev: std,
            size: members.len(),
        })
    }
}

/// A serializable snapshot of a fitted [`Analyzer`] — persist the result
/// of the (one-time) extraction and reuse it across evaluation sessions
/// without re-fitting.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct AnalyzerSnapshot {
    /// Refinement outcome.
    pub refinement: RefinementReport,
    /// Post-refinement schema.
    pub refined_schema: MetricSchema,
    /// PCA state.
    pub pca: flare_linalg::pca::PcaSnapshot,
    /// Number of kept PCs.
    pub n_pcs: usize,
    /// Whitened PC coordinates, in the dense row-major wire form (the
    /// in-memory sharded layout is a wall-clock detail, so snapshots stay
    /// byte-compatible across shard sizes and with pre-sharding files).
    pub projected: Matrix,
    /// Scenario ids in row order.
    pub scenario_ids: Vec<ScenarioId>,
    /// Observation weights in row order.
    pub observations: Vec<u32>,
    /// The clustering.
    pub clustering: KMeansResult,
    /// Per-cluster centroid-distance rankings.
    pub ranked_members: Vec<Vec<usize>>,
    /// Sweep curves, if a sweep ran.
    pub sweep: Option<SweepResult>,
    /// What the telemetry repair stage did at fit time (defaults to the
    /// all-zero clean report when absent, so pre-existing snapshot files
    /// keep loading).
    #[serde(default)]
    pub repair: RepairReport,
    /// Cold-shard spill counters of the featurize stage. Omitted from
    /// the wire when `None` (spill off), so spill-off snapshots are
    /// byte-identical to pre-spill files and old files keep loading.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub spill: Option<SpillStats>,
}

impl Analyzer {
    /// Captures the fitted state for persistence.
    pub fn to_snapshot(&self) -> AnalyzerSnapshot {
        AnalyzerSnapshot {
            refinement: self.refinement.clone(),
            refined_schema: self.refined_schema.clone(),
            pca: flare_linalg::pca::PcaSnapshot::from(&self.pca),
            n_pcs: self.n_pcs,
            projected: self.projected.coalesced().clone(),
            scenario_ids: self.scenario_ids.clone(),
            observations: self.observations.clone(),
            clustering: self.clustering.clone(),
            ranked_members: self.ranked_members.clone(),
            sweep: self.sweep.clone(),
            repair: self.repair.clone(),
            spill: self.spill,
        }
    }

    /// Restores a fitted analyzer from a snapshot.
    ///
    /// # Errors
    ///
    /// Returns [`FlareError::InvalidParameter`] if the snapshot's internal
    /// dimensions disagree (e.g. a hand-edited file).
    pub fn from_snapshot(snapshot: AnalyzerSnapshot) -> Result<Self> {
        let pca = flare_linalg::pca::Pca::try_from(&snapshot.pca)?;
        let n = snapshot.scenario_ids.len();
        if snapshot.projected.nrows() != n
            || snapshot.observations.len() != n
            || snapshot.clustering.assignments.len() != n
        {
            return Err(FlareError::InvalidParameter(format!(
                "inconsistent snapshot: {} ids, {} rows, {} observations, {} assignments",
                n,
                snapshot.projected.nrows(),
                snapshot.observations.len(),
                snapshot.clustering.assignments.len()
            )));
        }
        if snapshot.ranked_members.len() != snapshot.clustering.k() {
            return Err(FlareError::InvalidParameter(
                "inconsistent snapshot: rankings do not match cluster count".into(),
            ));
        }
        // Re-shard the dense wire form at the default layout; shard size
        // is wall-clock-only, so any choice restores identical bytes.
        let projected = ShardedMatrix::from_matrix(
            &snapshot.projected,
            crate::config::ScaleConfig::default().shard_rows,
        );
        Ok(Analyzer {
            refinement: snapshot.refinement,
            refined_schema: snapshot.refined_schema,
            pca,
            n_pcs: snapshot.n_pcs,
            projected,
            scenario_ids: snapshot.scenario_ids,
            observations: snapshot.observations,
            clustering: snapshot.clustering,
            ranked_members: snapshot.ranked_members,
            sweep: snapshot.sweep,
            repair: snapshot.repair,
            spill: snapshot.spill,
        })
    }
}

/// Mean ± standard deviation of a cluster's members in kept-PC space
/// (one radar plot of Fig. 10).
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterPcProfile {
    /// Cluster index.
    pub cluster: usize,
    /// Per-PC mean of the member scenarios.
    pub mean: Vec<f64>,
    /// Per-PC standard deviation of the member scenarios.
    pub std_dev: Vec<f64>,
    /// Member count.
    pub size: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ClusterCountRule;
    use flare_metrics::database::ScenarioRecord;
    use flare_metrics::schema::MetricSchema;

    /// A synthetic database with three planted behaviour groups so the
    /// pipeline has real structure to find.
    fn planted_db(n_per_group: usize) -> MetricDatabase {
        let schema = MetricSchema::canonical();
        let d = schema.len();
        let mut db = MetricDatabase::new(schema);
        let group_bases: [f64; 3] = [10.0, 200.0, 3000.0];
        let mut id = 0u32;
        for (g, &base) in group_bases.iter().enumerate() {
            for i in 0..n_per_group {
                let metrics: Vec<f64> = (0..d)
                    .map(|j| {
                        let wiggle = ((id as f64 * 13.7 + j as f64 * 7.3).sin()) * base * 0.02;
                        base * (1.0 + (j % 5) as f64 * 0.1) + wiggle
                    })
                    .collect();
                db.insert(ScenarioRecord {
                    id: ScenarioId(id),
                    metrics,
                    observations: (g + 1) as u32, // group weights differ
                    job_mix: vec![("DC".into(), (g as u32) + 1)],
                })
                .unwrap();
                id += 1;
                let _ = i;
            }
        }
        db
    }

    fn fixed_config(k: usize) -> FlareConfig {
        FlareConfig {
            cluster_count: ClusterCountRule::Fixed(k),
            ..FlareConfig::default()
        }
    }

    #[test]
    fn fit_recovers_planted_groups() {
        let db = planted_db(10);
        let a = Analyzer::fit(&db, &fixed_config(3)).unwrap();
        assert_eq!(a.n_clusters(), 3);
        // All members of a planted group share a cluster.
        for g in 0..3 {
            let rows: Vec<usize> = (g * 10..(g + 1) * 10).collect();
            let first = a.clustering().assignments[rows[0]];
            assert!(rows.iter().all(|&r| a.clustering().assignments[r] == first));
        }
        // Representatives exist and belong to the corpus.
        let reps = a.representatives();
        assert_eq!(reps.len(), 3);
        for r in reps {
            assert!(a.cluster_of(r).is_some());
        }
    }

    #[test]
    fn refinement_prunes_derived_metrics() {
        let db = planted_db(10);
        let a = Analyzer::fit(&db, &fixed_config(3)).unwrap();
        assert!(
            a.refinement().dropped_count() > 0,
            "canonical schema has planted redundancy to prune"
        );
        // Default pipeline strips the JobMix columns before refinement.
        assert_eq!(
            a.refined_schema().len() + a.refinement().dropped_count(),
            db.schema().non_job_mix_indices().len()
        );
    }

    #[test]
    fn weights_reflect_observations() {
        let db = planted_db(10);
        let a = Analyzer::fit(&db, &fixed_config(3)).unwrap();
        let by_obs = a.cluster_weights(true);
        let by_count = a.cluster_weights(false);
        assert!((by_obs.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((by_count.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        // Observation weights differ from scenario-count weights because
        // groups carry different observation multiplicities (1, 2, 3).
        assert!(by_obs
            .iter()
            .zip(&by_count)
            .any(|(a, b)| (a - b).abs() > 0.05));
        // Scenario-count weights are uniform for equal group sizes.
        assert!(by_count.iter().all(|&w| (w - 1.0 / 3.0).abs() < 1e-9));
    }

    #[test]
    fn ranked_members_start_with_representative() {
        let db = planted_db(8);
        let a = Analyzer::fit(&db, &fixed_config(3)).unwrap();
        for c in 0..3 {
            let ranked = a.ranked(c);
            assert!(!ranked.is_empty());
            assert_eq!(Some(ranked[0]), a.representative(c));
        }
    }

    #[test]
    fn pc_profile_shapes() {
        let db = planted_db(8);
        let a = Analyzer::fit(&db, &fixed_config(3)).unwrap();
        for c in 0..3 {
            let p = a.cluster_pc_profile(c).unwrap();
            assert_eq!(p.mean.len(), a.n_pcs());
            assert_eq!(p.std_dev.len(), a.n_pcs());
            assert_eq!(p.size, 8);
            assert!(p.std_dev.iter().all(|&s| s >= 0.0));
        }
        assert!(a.cluster_pc_profile(99).is_none());
    }

    #[test]
    fn sweep_rule_picks_reasonable_k() {
        let db = planted_db(12);
        let cfg = FlareConfig {
            cluster_count: ClusterCountRule::Sweep {
                min_k: 2,
                max_k: 8,
                step: 1,
            },
            ..FlareConfig::default()
        };
        let a = Analyzer::fit(&db, &cfg).unwrap();
        assert!(a.sweep().is_some());
        assert!(
            (2..=8).contains(&a.n_clusters()),
            "picked k = {}",
            a.n_clusters()
        );
    }

    #[test]
    fn hierarchical_method_recovers_planted_groups() {
        use crate::config::ClusterMethod;
        use flare_cluster::hierarchical::Linkage;
        let db = planted_db(10);
        let cfg = FlareConfig {
            cluster_count: ClusterCountRule::Fixed(3),
            cluster_method: ClusterMethod::Hierarchical(Linkage::Ward),
            ..FlareConfig::default()
        };
        let a = Analyzer::fit(&db, &cfg).unwrap();
        assert_eq!(a.n_clusters(), 3);
        for g in 0..3 {
            let rows: Vec<usize> = (g * 10..(g + 1) * 10).collect();
            let first = a.clustering().assignments[rows[0]];
            assert!(rows.iter().all(|&r| a.clustering().assignments[r] == first));
        }
        // Representatives come out of the same helpers as the K-means path.
        assert_eq!(a.representatives().len(), 3);
    }

    #[test]
    fn hierarchical_sweep_rule_works() {
        use crate::config::ClusterMethod;
        use flare_cluster::hierarchical::Linkage;
        let db = planted_db(12);
        let cfg = FlareConfig {
            cluster_count: ClusterCountRule::Sweep {
                min_k: 2,
                max_k: 8,
                step: 1,
            },
            cluster_method: ClusterMethod::Hierarchical(Linkage::Average),
            ..FlareConfig::default()
        };
        let a = Analyzer::fit(&db, &cfg).unwrap();
        assert!(a.sweep().is_some());
        assert!((2..=8).contains(&a.n_clusters()));
    }

    #[test]
    fn fit_validates_inputs() {
        let db = planted_db(1); // 3 scenarios
        assert!(Analyzer::fit(&db, &fixed_config(10)).is_err());
        let bad = FlareConfig {
            variance_threshold: 2.0,
            ..FlareConfig::default()
        };
        assert!(matches!(
            Analyzer::fit(&planted_db(5), &bad),
            Err(FlareError::InvalidParameter(_))
        ));
    }

    #[test]
    fn medoid_rule_selects_total_distance_minimizer() {
        use crate::config::RepresentativeRule;
        let db = planted_db(10);
        let cfg = FlareConfig {
            cluster_count: ClusterCountRule::Fixed(3),
            representative_rule: RepresentativeRule::Medoid,
            ..FlareConfig::default()
        };
        let a = Analyzer::fit(&db, &cfg).unwrap();
        // The medoid minimizes total intra-cluster distance: verify per
        // cluster against a brute-force check.
        use flare_cluster::distance::euclidean;
        for c in 0..3 {
            let ranked = a.ranked(c);
            let rows: Vec<usize> = ranked
                .iter()
                .map(|id| a.scenario_ids().iter().position(|s| s == id).unwrap())
                .collect();
            let total = |i: usize| -> f64 {
                rows.iter()
                    .map(|&j| euclidean(a.projected().row(i), a.projected().row(j)))
                    .sum()
            };
            let medoid_total = total(rows[0]);
            for &r in &rows {
                assert!(medoid_total <= total(r) + 1e-9);
            }
        }
        // Estimates still work with the medoid rule.
        assert_eq!(a.representatives().len(), 3);
    }

    #[test]
    fn cluster_of_unknown_scenario_is_none() {
        let db = planted_db(5);
        let a = Analyzer::fit(&db, &fixed_config(3)).unwrap();
        assert!(a.cluster_of(ScenarioId(9999)).is_none());
    }

    /// A degraded copy of `db` with the given cells replaced by NaN,
    /// rebuilt through the tolerant ingestion path.
    fn degrade(db: &MetricDatabase, holes: &[(usize, usize)]) -> MetricDatabase {
        use flare_metrics::database::IngestPolicy;
        let mut records: Vec<ScenarioRecord> = db.iter().map(|r| r.to_record()).collect();
        for &(row, col) in holes {
            records[row].metrics[col] = f64::NAN;
        }
        let mut degraded = MetricDatabase::new(db.schema().clone());
        let report = degraded.ingest(records, &IngestPolicy::default());
        assert_eq!(report.missing_cells, holes.len());
        degraded
    }

    #[test]
    fn repair_imputes_missing_cells_and_reports() {
        let clean = planted_db(10);
        let degraded = degrade(&clean, &[(0, 3), (7, 10), (15, 3)]);
        let a = Analyzer::fit(&degraded, &fixed_config(3)).unwrap();
        assert_eq!(a.repair_report().imputed_cells, 3);
        assert_eq!(a.repair_report().records, 30);
        assert!(!a.repair_report().is_clean());
        // The imputed fit still recovers the planted structure.
        assert_eq!(a.representatives().len(), 3);
        // A clean database reports a clean (all-zero) repair.
        let a = Analyzer::fit(&clean, &fixed_config(3)).unwrap();
        assert!(a.repair_report().is_clean());
        assert_eq!(a.repair_report().repaired_cells(), 0);
    }

    #[test]
    fn winsorization_clamps_spikes() {
        let clean = planted_db(10);
        // Spike one cell by 1000x; without winsorization it passes through.
        let mut records: Vec<ScenarioRecord> = clean.iter().map(|r| r.to_record()).collect();
        records[5].metrics[2] *= 1000.0;
        let mut spiked = MetricDatabase::new(clean.schema().clone());
        for r in records {
            spiked.insert(r).unwrap();
        }
        let cfg = FlareConfig {
            winsorize_mad: Some(8.0),
            ..fixed_config(3)
        };
        let a = Analyzer::fit(&spiked, &cfg).unwrap();
        assert!(
            a.repair_report().winsorized_cells >= 1,
            "spike not clamped: {:?}",
            a.repair_report()
        );
        // Without the knob the repair stage leaves the spike alone.
        let a = Analyzer::fit(&spiked, &fixed_config(3)).unwrap();
        assert_eq!(a.repair_report().winsorized_cells, 0);
    }

    #[test]
    fn robust_normalization_still_recovers_planted_groups() {
        let db = planted_db(10);
        let cfg = FlareConfig {
            robust_normalization: true,
            ..fixed_config(3)
        };
        let a = Analyzer::fit(&db, &cfg).unwrap();
        assert_eq!(a.n_clusters(), 3);
        for g in 0..3 {
            let rows: Vec<usize> = (g * 10..(g + 1) * 10).collect();
            let first = a.clustering().assignments[rows[0]];
            assert!(rows.iter().all(|&r| a.clustering().assignments[r] == first));
        }
    }

    #[test]
    fn snapshot_round_trips_repair_report() {
        let clean = planted_db(8);
        let degraded = degrade(&clean, &[(1, 1)]);
        let a = Analyzer::fit(&degraded, &fixed_config(3)).unwrap();
        let snap = a.to_snapshot();
        assert_eq!(snap.repair, *a.repair_report());
        let restored = Analyzer::from_snapshot(snap).unwrap();
        assert_eq!(restored.repair_report(), a.repair_report());
    }
}
