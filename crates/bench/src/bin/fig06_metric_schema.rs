//! Fig. 6: the performance and resource metrics collected per scenario,
//! two-level (machine + HP).

use flare_bench::banner;
use flare_metrics::schema::{MetricFamily, MetricKind, MetricSchema};

fn main() {
    banner("Collected raw metrics (two-level)", "Fig. 6");
    let schema = MetricSchema::canonical();
    println!(
        "\ntotal raw metrics: {} ({} kinds x 2 levels)",
        schema.len(),
        MetricKind::ALL.len()
    );
    for family in [
        MetricFamily::Performance,
        MetricFamily::Topdown,
        MetricFamily::Cache,
        MetricFamily::Memory,
        MetricFamily::Tlb,
        MetricFamily::Branch,
        MetricFamily::Cpu,
        MetricFamily::Storage,
        MetricFamily::Network,
        MetricFamily::OsMemory,
    ] {
        let kinds: Vec<&MetricKind> = MetricKind::ALL
            .iter()
            .filter(|k| k.family() == family)
            .collect();
        println!("\n[{family:?}] ({} kinds)", kinds.len());
        for k in kinds {
            let tag = if k.is_derived() { " (derived)" } else { "" };
            println!("  {}-{{Machine,HP}}{tag}", k.base_name());
        }
    }
}
