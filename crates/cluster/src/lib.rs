//! # flare-cluster
//!
//! Clustering substrate for the FLARE reproduction: K-means with k-means++
//! initialization (the paper's method of choice, §4.4), SSE and Silhouette
//! quality metrics (Fig. 9), cluster-count sweeps with knee detection,
//! agglomerative hierarchical clustering (the paper's cited alternative),
//! and a mini-batch/coreset tier ([`minibatch`]) that scales the fit to
//! 10⁵+ rows under a documented SSE-tolerance contract.
//!
//! ## Example
//!
//! ```
//! use flare_cluster::kmeans::{kmeans, KMeansConfig};
//! use flare_cluster::quality::silhouette_score;
//! use flare_linalg::Matrix;
//!
//! let data = Matrix::from_rows(&[
//!     vec![0.0, 0.0], vec![0.2, 0.1], vec![9.0, 9.0], vec![9.2, 9.1],
//! ])?;
//! let result = kmeans(&data, &KMeansConfig::new(2))?;
//! let quality = silhouette_score(&data, &result.assignments, 2)?;
//! assert!(quality > 0.9);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod distance;
mod error;
pub mod hierarchical;
pub mod kernel;
pub mod kmeans;
pub mod minibatch;
pub mod quality;
pub mod sharded;
pub mod sweep;

pub use error::{ClusterError, Result};
