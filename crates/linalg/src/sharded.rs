//! Sharded row-major storage: a matrix split into bounded row blocks.
//!
//! The metric data plane grows one profiled scenario at a time. Backing it
//! with a single dense [`Matrix`] means every capacity growth copies the
//! entire buffer and every mid-matrix insert memmoves everything below the
//! insertion point — at 10⁵–10⁶ rows that is a giant allocation plus O(n)
//! work per record. A [`ShardedMatrix`] keeps the same logical row-major
//! contents in shards of at most `shard_rows` rows each, so:
//!
//! - growth allocates one shard at a time (peak transient allocation is
//!   bounded by the shard size, not the database size);
//! - inserting a row is shard-local (splice within one shard, split the
//!   shard when it overflows — never a whole-matrix memmove);
//! - row views are served shard-aware with a binary search over shard
//!   start offsets.
//!
//! **Determinism contract:** the shard layout is a storage detail. Row
//! contents and row order are identical to the unsharded representation
//! for every `shard_rows` (held by proptests in `flare-metrics`), and
//! [`ShardedMatrix::coalesced`] produces the exact dense matrix an
//! unsharded store would hold — same bytes, same row order. Equality
//! ([`PartialEq`]) compares logical content only, never layout: two stores
//! with different shard boundaries (e.g. one grown incrementally with
//! splits, one rebuilt in sorted order from the wire format) compare equal
//! when their rows do.

use crate::error::{LinalgError, Result};
use crate::matrix::Matrix;
use std::fmt;
use std::sync::OnceLock;

/// A row-major matrix stored as a sequence of bounded row blocks.
///
/// See the [module docs](self) for the layout and determinism contract.
///
/// # Examples
///
/// ```
/// use flare_linalg::ShardedMatrix;
///
/// let mut m = ShardedMatrix::new(2, 2); // 2 columns, 2 rows per shard
/// for i in 0..5 {
///     m.push_row(&[i as f64, -(i as f64)]).unwrap();
/// }
/// assert_eq!(m.nrows(), 5);
/// assert_eq!(m.shard_count(), 3); // 2 + 2 + 1 rows
/// assert_eq!(m.row(3), &[3.0, -3.0]);
/// assert_eq!(m.coalesced().row(3), &[3.0, -3.0]);
/// ```
pub struct ShardedMatrix {
    cols: usize,
    shard_rows: usize,
    shards: Vec<Matrix>,
    /// `starts[s]` = logical index of shard `s`'s first row.
    starts: Vec<usize>,
    nrows: usize,
    /// Lazily coalesced dense view for multi-shard stores; invalidated on
    /// every mutation so [`ShardedMatrix::coalesced`] is pointer-stable
    /// between mutations.
    coalesced: OnceLock<Matrix>,
}

impl ShardedMatrix {
    /// An empty store with `cols` columns and at most `shard_rows` rows
    /// per shard (`shard_rows` is clamped to at least 1).
    pub fn new(cols: usize, shard_rows: usize) -> Self {
        ShardedMatrix {
            cols,
            shard_rows: shard_rows.max(1),
            shards: Vec::new(),
            starts: Vec::new(),
            nrows: 0,
            coalesced: OnceLock::new(),
        }
    }

    /// Splits an existing dense matrix into shards of at most
    /// `shard_rows` rows, preserving row order and bytes.
    pub fn from_matrix(m: &Matrix, shard_rows: usize) -> Self {
        let mut out = ShardedMatrix::new(m.ncols(), shard_rows);
        let mut start = 0;
        while start < m.nrows() {
            let end = (start + out.shard_rows).min(m.nrows());
            let shard = Matrix::from_vec(end - start, m.ncols(), m.row_block(start..end).to_vec())
                .expect("block dimensions are consistent by construction");
            out.starts.push(start);
            out.shards.push(shard);
            start = end;
        }
        out.nrows = m.nrows();
        out
    }

    /// Number of logical rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.cols
    }

    /// `true` when the store holds no rows.
    pub fn is_empty(&self) -> bool {
        self.nrows == 0
    }

    /// The configured shard capacity (maximum rows per shard).
    pub fn shard_rows(&self) -> usize {
        self.shard_rows
    }

    /// Number of shards currently allocated.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shards, in row order. Every shard holds at most
    /// [`ShardedMatrix::shard_rows`] rows — the bounded-memory invariant
    /// scale benches assert.
    pub fn shards(&self) -> &[Matrix] {
        &self.shards
    }

    /// `(shard index, row index within that shard)` for logical row `i`.
    fn locate(&self, i: usize) -> (usize, usize) {
        assert!(
            i < self.nrows,
            "row index {i} out of bounds ({})",
            self.nrows
        );
        // partition_point returns the first shard starting past `i`.
        let s = self.starts.partition_point(|&start| start <= i) - 1;
        (s, i - self.starts[s])
    }

    /// Immutable view of logical row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= nrows()`.
    pub fn row(&self, i: usize) -> &[f64] {
        let (s, local) = self.locate(i);
        self.shards[s].row(local)
    }

    /// Mutable view of logical row `i`. Invalidates the coalesced cache.
    ///
    /// # Panics
    ///
    /// Panics if `i >= nrows()`.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        self.coalesced.take();
        let (s, local) = self.locate(i);
        self.shards[s].row_mut(local)
    }

    /// Iterator over logical rows, in order, across shard boundaries.
    pub fn rows_iter(&self) -> impl Iterator<Item = &[f64]> {
        self.shards.iter().flat_map(Matrix::rows_iter)
    }

    /// Appends a row: fills the last shard or opens a new one — never a
    /// whole-store copy.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `row.len() != ncols()`.
    pub fn push_row(&mut self, row: &[f64]) -> Result<()> {
        if row.len() != self.cols {
            return Err(LinalgError::DimensionMismatch(format!(
                "push_row: row of length {} into a store with {} columns",
                row.len(),
                self.cols
            )));
        }
        self.coalesced.take();
        match self.shards.last_mut() {
            Some(last) if last.nrows() < self.shard_rows => last.push_row(row)?,
            _ => {
                let mut shard = Matrix::zeros(0, self.cols);
                shard.push_row(row)?;
                self.starts.push(self.nrows);
                self.shards.push(shard);
            }
        }
        self.nrows += 1;
        Ok(())
    }

    /// Inserts a row before logical index `at` (`at == nrows()` appends).
    /// The splice is shard-local; a shard that overflows its capacity is
    /// split in half instead of spilling into its neighbours, so the cost
    /// is O(`shard_rows`) regardless of the store size.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `row.len() != ncols()`
    /// and [`LinalgError::InvalidParameter`] if `at > nrows()`.
    pub fn insert_row(&mut self, at: usize, row: &[f64]) -> Result<()> {
        if at == self.nrows {
            return self.push_row(row);
        }
        if at > self.nrows {
            return Err(LinalgError::InvalidParameter(format!(
                "insert_row: index {at} out of bounds for {} rows",
                self.nrows
            )));
        }
        if row.len() != self.cols {
            return Err(LinalgError::DimensionMismatch(format!(
                "insert_row: row of length {} into a store with {} columns",
                row.len(),
                self.cols
            )));
        }
        self.coalesced.take();
        let (s, local) = self.locate(at);
        self.shards[s].insert_row(local, row)?;
        self.nrows += 1;
        if self.shards[s].nrows() > self.shard_rows {
            self.split_shard(s);
        }
        self.rebuild_starts();
        Ok(())
    }

    /// Removes the row at logical index `at`; an emptied shard is dropped.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidParameter`] if `at >= nrows()`.
    pub fn remove_row(&mut self, at: usize) -> Result<()> {
        if at >= self.nrows {
            return Err(LinalgError::InvalidParameter(format!(
                "remove_row: index {at} out of bounds for {} rows",
                self.nrows
            )));
        }
        self.coalesced.take();
        let (s, local) = self.locate(at);
        self.shards[s].remove_row(local)?;
        self.nrows -= 1;
        if self.shards[s].nrows() == 0 {
            self.shards.remove(s);
        }
        self.rebuild_starts();
        Ok(())
    }

    /// Splits shard `s` into two halves (the overflow path of
    /// [`ShardedMatrix::insert_row`]).
    fn split_shard(&mut self, s: usize) {
        let total = self.shards[s].nrows();
        let keep = total.div_ceil(2);
        let tail = Matrix::from_vec(
            total - keep,
            self.cols,
            self.shards[s].row_block(keep..total).to_vec(),
        )
        .expect("block dimensions are consistent by construction");
        let old = std::mem::replace(&mut self.shards[s], Matrix::zeros(0, self.cols));
        let mut data = old.into_vec();
        data.truncate(keep * self.cols);
        self.shards[s] = Matrix::from_vec(keep, self.cols, data)
            .expect("truncated buffer keeps row-major shape");
        self.shards.insert(s + 1, tail);
    }

    fn rebuild_starts(&mut self) {
        self.starts.clear();
        let mut acc = 0;
        for shard in &self.shards {
            self.starts.push(acc);
            acc += shard.nrows();
        }
    }

    /// The dense row-major view of the whole store.
    ///
    /// A single-shard store (every database below `shard_rows` rows —
    /// i.e. all paper-scale workloads) returns a direct borrow of its one
    /// shard: zero copies, pointer-stable across calls. A multi-shard
    /// store coalesces once into a cached dense matrix (also
    /// pointer-stable until the next mutation). The coalesced bytes are
    /// identical to what an unsharded store would hold — row order is
    /// preserved exactly.
    pub fn coalesced(&self) -> &Matrix {
        if self.shards.len() == 1 {
            return &self.shards[0];
        }
        self.coalesced.get_or_init(|| {
            let mut data = Vec::with_capacity(self.nrows * self.cols);
            for shard in &self.shards {
                data.extend_from_slice(shard.as_slice());
            }
            Matrix::from_vec(self.nrows, self.cols, data)
                .expect("shard row counts sum to nrows by invariant")
        })
    }

    /// Extracts the given columns, in order, preserving the shard layout
    /// (each shard is projected independently — no dense intermediate).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Empty`] if `indices` is empty and
    /// [`LinalgError::InvalidParameter`] if any index is out of bounds.
    pub fn select_columns(&self, indices: &[usize]) -> Result<ShardedMatrix> {
        if indices.is_empty() {
            return Err(LinalgError::Empty("select_columns: no indices".into()));
        }
        if let Some(&bad) = indices.iter().find(|&&j| j >= self.cols) {
            return Err(LinalgError::InvalidParameter(format!(
                "select_columns: index {bad} out of bounds for {} columns",
                self.cols
            )));
        }
        let shards = self
            .shards
            .iter()
            .map(|s| s.select_columns(indices))
            .collect::<Result<Vec<_>>>()?;
        Ok(ShardedMatrix {
            cols: indices.len(),
            shard_rows: self.shard_rows,
            starts: self.starts.clone(),
            nrows: self.nrows,
            shards,
            coalesced: OnceLock::new(),
        })
    }
}

impl Clone for ShardedMatrix {
    fn clone(&self) -> Self {
        ShardedMatrix {
            cols: self.cols,
            shard_rows: self.shard_rows,
            shards: self.shards.clone(),
            starts: self.starts.clone(),
            nrows: self.nrows,
            // The clone rebuilds its own cache on demand.
            coalesced: OnceLock::new(),
        }
    }
}

impl fmt::Debug for ShardedMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // The coalesce cache is deliberately excluded: Debug output must
        // be a pure function of logical content + configuration, never of
        // whether a lazy cache happens to be populated.
        f.debug_struct("ShardedMatrix")
            .field("nrows", &self.nrows)
            .field("cols", &self.cols)
            .field("shard_rows", &self.shard_rows)
            .field("shards", &self.shards)
            .finish()
    }
}

impl PartialEq for ShardedMatrix {
    /// Logical content equality: same shape, same rows in the same order.
    /// Shard boundaries and the configured `shard_rows` are layout, not
    /// content — a store rebuilt from the wire format compares equal to
    /// one grown incrementally even when their shard layouts differ.
    fn eq(&self, other: &Self) -> bool {
        self.nrows == other.nrows
            && self.cols == other.cols
            && self.rows_iter().eq(other.rows_iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filled(n: usize, shard_rows: usize) -> ShardedMatrix {
        let mut m = ShardedMatrix::new(3, shard_rows);
        for i in 0..n {
            let v = i as f64;
            m.push_row(&[v, v * 0.5, -v]).unwrap();
        }
        m
    }

    #[test]
    fn rows_match_dense_for_every_shard_size() {
        let dense = filled(17, usize::MAX).coalesced().clone();
        for shard_rows in [1, 2, 3, 5, 16, 17, 100] {
            let sharded = filled(17, shard_rows);
            assert_eq!(sharded.nrows(), 17);
            for i in 0..17 {
                assert_eq!(
                    sharded.row(i),
                    dense.row(i),
                    "shard_rows={shard_rows} row {i}"
                );
            }
            assert_eq!(sharded.coalesced(), &dense, "shard_rows={shard_rows}");
            assert_eq!(sharded.rows_iter().count(), 17, "shard_rows={shard_rows}");
        }
    }

    #[test]
    fn shards_never_exceed_capacity() {
        let mut m = filled(50, 8);
        for at in [0, 7, 8, 25, 49] {
            m.insert_row(at, &[9.0, 9.0, 9.0]).unwrap();
        }
        for shard in m.shards() {
            assert!(shard.nrows() <= 8, "shard of {} rows", shard.nrows());
            assert!(shard.nrows() > 0, "empty shard left behind");
        }
        assert_eq!(m.nrows(), 55);
    }

    #[test]
    fn insert_matches_dense_semantics() {
        let mut sharded = filled(10, 3);
        let mut dense = filled(10, usize::MAX).coalesced().clone();
        for (at, v) in [(0, 100.0), (5, 200.0), (12, 300.0), (7, 400.0)] {
            sharded.insert_row(at, &[v, v, v]).unwrap();
            dense.insert_row(at, &[v, v, v]).unwrap();
        }
        assert_eq!(sharded.coalesced(), &dense);
        // Equality is logical: a re-split of the same contents is equal.
        assert_eq!(sharded, ShardedMatrix::from_matrix(&dense, 4));
    }

    #[test]
    fn remove_matches_dense_semantics() {
        let mut sharded = filled(9, 2);
        let mut dense = filled(9, usize::MAX).coalesced().clone();
        for at in [8, 0, 3] {
            sharded.remove_row(at).unwrap();
            dense.remove_row(at).unwrap();
        }
        assert_eq!(sharded.coalesced(), &dense);
        assert!(sharded.remove_row(6).is_err());
        for shard in sharded.shards() {
            assert!(shard.nrows() > 0);
        }
    }

    #[test]
    fn coalesced_is_pointer_stable_between_mutations() {
        let m = filled(10, 3);
        let a = m.coalesced() as *const Matrix;
        let b = m.coalesced() as *const Matrix;
        assert_eq!(a, b);
        // Single-shard stores borrow the shard directly.
        let single = filled(5, 100);
        assert_eq!(single.shard_count(), 1);
        assert!(std::ptr::eq(single.coalesced(), &single.shards()[0]));
    }

    #[test]
    fn mutation_invalidates_the_coalesced_cache() {
        let mut m = filled(10, 3);
        assert_eq!(m.coalesced().row(4)[0], 4.0);
        m.row_mut(4)[0] = 99.0;
        assert_eq!(m.row(4)[0], 99.0);
        assert_eq!(m.coalesced().row(4)[0], 99.0);
        m.push_row(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(m.coalesced().nrows(), 11);
    }

    #[test]
    fn select_columns_projects_each_shard() {
        let m = filled(11, 4);
        let p = m.select_columns(&[2, 0]).unwrap();
        assert_eq!(p.ncols(), 2);
        assert_eq!(p.shard_count(), m.shard_count());
        for i in 0..11 {
            assert_eq!(p.row(i), &[m.row(i)[2], m.row(i)[0]]);
        }
        assert!(m.select_columns(&[]).is_err());
        assert!(m.select_columns(&[3]).is_err());
    }

    #[test]
    fn validation_and_empty_store() {
        let mut m = ShardedMatrix::new(2, 4);
        assert!(m.is_empty());
        assert_eq!(m.coalesced().nrows(), 0);
        assert!(m.push_row(&[1.0]).is_err());
        assert!(m.insert_row(1, &[1.0, 2.0]).is_err());
        assert!(m.remove_row(0).is_err());
        m.insert_row(0, &[1.0, 2.0]).unwrap(); // insert-at-end == append
        assert_eq!(m.nrows(), 1);
    }

    #[test]
    fn clone_and_debug_are_layout_faithful() {
        let m = filled(7, 2);
        let c = m.clone();
        assert_eq!(m, c);
        assert_eq!(c.shard_count(), m.shard_count());
        // Debug is cache-independent: rendering before and after a
        // coalesce produces identical text.
        let before = format!("{m:?}");
        let _ = m.coalesced();
        assert_eq!(before, format!("{m:?}"));
    }

    #[test]
    fn zero_capacity_is_clamped() {
        let mut m = ShardedMatrix::new(1, 0);
        assert_eq!(m.shard_rows(), 1);
        m.push_row(&[1.0]).unwrap();
        m.push_row(&[2.0]).unwrap();
        assert_eq!(m.shard_count(), 2);
    }
}
