//! Clustering quality metrics: SSE and Silhouette Score.
//!
//! The paper (§4.4, Fig. 9) selects the cluster count by inspecting the Sum
//! of Squared Errors elbow together with the Silhouette Score, because the
//! scenarios have no ground-truth labels (unsupervised setting).

use crate::distance::squared_euclidean;
use crate::error::{ClusterError, Result};
use flare_linalg::Matrix;

/// Mean Silhouette Score over all points, in `[-1, 1]`; higher is better.
///
/// For each point: `a` = mean distance to other members of its own cluster,
/// `b` = lowest mean distance to the members of any other cluster, and the
/// silhouette is `(b - a) / max(a, b)`. Points in singleton clusters score 0
/// by convention (Rousseeuw 1987).
///
/// # Errors
///
/// - [`ClusterError::DimensionMismatch`] if `assignments.len() != data.nrows()`.
/// - [`ClusterError::InvalidParameter`] if fewer than 2 clusters are
///   present, or an assignment index is out of range.
/// - [`ClusterError::TooFewPoints`] if `data` has fewer than 2 rows.
///
/// # Examples
///
/// ```
/// use flare_cluster::quality::silhouette_score;
/// use flare_linalg::Matrix;
///
/// let data = Matrix::from_rows(&[
///     vec![0.0], vec![0.1], vec![10.0], vec![10.1],
/// ]).unwrap();
/// let s = silhouette_score(&data, &[0, 0, 1, 1], 2).unwrap();
/// assert!(s > 0.9);
/// ```
pub fn silhouette_score(data: &Matrix, assignments: &[usize], k: usize) -> Result<f64> {
    silhouette_with(data.nrows(), assignments, k, |i, sums| {
        let ri = data.row(i);
        for (j, &a) in assignments.iter().enumerate() {
            if j != i {
                sums[a] += squared_euclidean(ri, data.row(j)).sqrt();
            }
        }
    })
}

/// [`silhouette_score`] over a prebuilt [`PairwiseDistances`] cache.
///
/// The cluster-count sweep evaluates a silhouette per candidate `k` over
/// the *same* points; the pairwise distances depend only on the data, so
/// the sweep builds the cache once and calls this per candidate instead
/// of re-deriving the full O(n²·d) distance set every time. The cache
/// stores exactly the bits the on-the-fly computation produces and the
/// accumulation order is unchanged, so cached and uncached scores are
/// byte-identical (held by a differential proptest).
///
/// # Errors
///
/// Same conditions as [`silhouette_score`], with `n` taken from the cache.
pub fn silhouette_score_cached(
    dists: &crate::kernel::PairwiseDistances,
    assignments: &[usize],
    k: usize,
) -> Result<f64> {
    silhouette_with(dists.n(), assignments, k, |i, sums| {
        // The cache row is a contiguous slice (full-matrix layout), so
        // this is a straight sequential walk — same j order, same values,
        // same bits as the on-the-fly accumulation above.
        for (j, (&d, &a)) in dists.row(i).iter().zip(assignments).enumerate() {
            if j != i {
                sums[a] += d;
            }
        }
    })
}

/// The shared silhouette core: validation plus the Rousseeuw 1987
/// accumulation, generic over the per-point distance accumulator.
/// `fill_sums(i, sums)` must add point `i`'s distance to every other
/// point `j` into `sums[assignments[j]]`, in ascending `j` order — both
/// providers feed the same values in the same order, so they produce the
/// same bits.
fn silhouette_with(
    n: usize,
    assignments: &[usize],
    k: usize,
    fill_sums: impl Fn(usize, &mut [f64]),
) -> Result<f64> {
    if n < 2 {
        return Err(ClusterError::TooFewPoints { points: n, k });
    }
    if assignments.len() != n {
        return Err(ClusterError::DimensionMismatch(format!(
            "{} assignments for {n} points",
            assignments.len()
        )));
    }
    if let Some(&bad) = assignments.iter().find(|&&a| a >= k) {
        return Err(ClusterError::InvalidParameter(format!(
            "assignment {bad} out of range for k={k}"
        )));
    }
    let mut sizes = vec![0usize; k];
    for &a in assignments {
        sizes[a] += 1;
    }
    let populated = sizes.iter().filter(|&&s| s > 0).count();
    if populated < 2 {
        return Err(ClusterError::InvalidParameter(
            "silhouette requires at least two non-empty clusters".into(),
        ));
    }

    let mut total = 0.0;
    let mut sums = vec![0.0f64; k];
    for (i, &own) in assignments.iter().enumerate() {
        if sizes[own] <= 1 {
            // Singleton clusters contribute silhouette 0.
            continue;
        }
        // Mean distance from i to every cluster.
        sums.fill(0.0);
        fill_sums(i, &mut sums);
        let a = sums[own] / (sizes[own] - 1) as f64;
        let b = (0..k)
            .filter(|&c| c != own && sizes[c] > 0)
            .map(|c| sums[c] / sizes[c] as f64)
            .fold(f64::INFINITY, f64::min);
        let denom = a.max(b);
        if denom > 0.0 {
            total += (b - a) / denom;
        }
    }
    Ok(total / n as f64)
}

/// Sum of squared errors of an assignment against explicit centroids.
///
/// # Errors
///
/// - [`ClusterError::DimensionMismatch`] if lengths or dimensionalities
///   disagree.
/// - [`ClusterError::InvalidParameter`] if an assignment is out of range.
pub fn sse(data: &Matrix, centroids: &[Vec<f64>], assignments: &[usize]) -> Result<f64> {
    if assignments.len() != data.nrows() {
        return Err(ClusterError::DimensionMismatch(format!(
            "{} assignments for {} points",
            assignments.len(),
            data.nrows()
        )));
    }
    for c in centroids {
        if c.len() != data.ncols() {
            return Err(ClusterError::DimensionMismatch(format!(
                "centroid of dim {} for data of dim {}",
                c.len(),
                data.ncols()
            )));
        }
    }
    if let Some(&bad) = assignments.iter().find(|&&a| a >= centroids.len()) {
        return Err(ClusterError::InvalidParameter(format!(
            "assignment {bad} out of range for {} centroids",
            centroids.len()
        )));
    }
    Ok(assignments
        .iter()
        .enumerate()
        .map(|(i, &a)| squared_euclidean(data.row(i), &centroids[a]))
        .sum())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_blobs() -> (Matrix, Vec<usize>) {
        let data = Matrix::from_rows(&[
            vec![0.0, 0.0],
            vec![0.2, 0.1],
            vec![0.1, 0.3],
            vec![8.0, 8.0],
            vec![8.2, 8.1],
            vec![8.1, 8.3],
        ])
        .unwrap();
        (data, vec![0, 0, 0, 1, 1, 1])
    }

    #[test]
    fn well_separated_blobs_score_high() {
        let (data, asg) = two_blobs();
        let s = silhouette_score(&data, &asg, 2).unwrap();
        assert!(s > 0.9, "silhouette {s}");
    }

    #[test]
    fn bad_assignment_scores_low() {
        let (data, _) = two_blobs();
        // Deliberately mix the blobs.
        let bad = vec![0, 1, 0, 1, 0, 1];
        let s = silhouette_score(&data, &bad, 2).unwrap();
        assert!(s < 0.1, "silhouette {s}");
    }

    #[test]
    fn silhouette_bounds() {
        let (data, asg) = two_blobs();
        let s = silhouette_score(&data, &asg, 2).unwrap();
        assert!((-1.0..=1.0).contains(&s));
    }

    #[test]
    fn singleton_cluster_counts_zero() {
        let data = Matrix::from_rows(&[vec![0.0], vec![0.1], vec![5.0]]).unwrap();
        let s = silhouette_score(&data, &[0, 0, 1], 2).unwrap();
        // The singleton contributes 0; the pair contributes ~1 each → ~2/3.
        assert!(s > 0.5 && s < 1.0);
    }

    #[test]
    fn silhouette_validates() {
        let (data, asg) = two_blobs();
        assert!(silhouette_score(&data, &asg[..5], 2).is_err());
        assert!(silhouette_score(&data, &[0; 6], 2).is_err()); // single populated cluster
        assert!(silhouette_score(&data, &[0, 0, 0, 1, 1, 5], 2).is_err());
    }

    #[test]
    fn sse_known_value() {
        let data = Matrix::from_rows(&[vec![0.0], vec![2.0]]).unwrap();
        let v = sse(&data, &[vec![1.0]], &[0, 0]).unwrap();
        assert_eq!(v, 2.0);
    }

    #[test]
    fn sse_validates() {
        let data = Matrix::from_rows(&[vec![0.0], vec![2.0]]).unwrap();
        assert!(sse(&data, &[vec![1.0, 2.0]], &[0, 0]).is_err());
        assert!(sse(&data, &[vec![1.0]], &[0]).is_err());
        assert!(sse(&data, &[vec![1.0]], &[0, 1]).is_err());
    }
}
