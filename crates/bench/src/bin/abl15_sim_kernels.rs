//! Ablation 15: the scenario-evaluation kernel layer — what do the
//! zero-allocation scratch arena, the indexed profile table, colocation-mix
//! deduplication, and the content-addressed evaluation cache buy on the
//! Profiler and the 50× full-datacenter baseline (§4.3, §5.1, Fig. 13)?
//!
//! Three measurements, naive reference vs kernel path:
//!
//! 1. **Corpus profiling** — `Corpus::profile_tail_naive` (per-entry
//!    closure-based interference solves, fresh allocations every solve) vs
//!    `profile_tail_threaded`, at one worker (isolating the scratch/table
//!    gains) and at the bench thread count.
//! 2. **Full-DC ground truth on a duplicate-heavy corpus** —
//!    `full_datacenter_impact_naive` (one replay per HP entry) vs
//!    `full_datacenter_impact_parallel` (one replay per *distinct*
//!    colocation mix), same thread count on both sides.
//! 3. **Cross-feature evaluation cache** — one [`CachedSimTestbed`]
//!    shared across the three paper features vs a fresh `SimTestbed`
//!    sweep. Cold-start, the baseline-side solves of features 2 and 3 are
//!    cache hits (hit rate 1/3 by construction); the timed duel runs the
//!    warm cache, the cache's production shape (repeat evaluation across
//!    sweeps and refits).
//!
//! Every kernel result is asserted **byte-identical** to its naive
//! equivalent before any timing is reported, so the speedups compare equal
//! outputs. Timings are medians over repeated interleaved runs and land in
//! `results/BENCH_sim.json` (machine-readable). `--smoke` runs the small
//! CI variant and asserts the dedup speedup gate (>= 2x) and the cache
//! hit-rate gate (>= 0.25).

use flare_baselines::fulldc::{
    full_datacenter_impact_naive, full_datacenter_impact_parallel, GroundTruth,
};
use flare_bench::banner;
use flare_core::replayer::{CachedSimTestbed, SimTestbed};
use flare_metrics::database::ScenarioRecord;
use flare_sim::datacenter::{Corpus, CorpusConfig};
use flare_sim::feature::Feature;
use flare_sim::machine::MachineConfig;
use std::time::Instant;

/// Bench-wide worker count: fixed (not "available parallelism") so the
/// naive and kernel sides of every duel see the same fan-out.
const THREADS: usize = 4;

fn time_once<T>(f: &mut impl FnMut() -> T) -> (T, u128) {
    let start = Instant::now();
    let value = f();
    (value, start.elapsed().as_nanos())
}

/// Times two equivalent computations head-to-head: one warmup each, then
/// `reps` strictly interleaved timed runs (A, B, A, B, …) so slow drift on
/// a shared machine hits both sides equally. Returns the last value of
/// each plus the median nanoseconds per side.
fn duel<T>(
    reps: usize,
    mut a: impl FnMut() -> T,
    mut b: impl FnMut() -> T,
) -> ((T, u128), (T, u128)) {
    let _ = std::hint::black_box(a());
    let _ = std::hint::black_box(b());
    let mut ta: Vec<u128> = Vec::with_capacity(reps);
    let mut tb: Vec<u128> = Vec::with_capacity(reps);
    let mut last = None;
    for _ in 0..reps {
        let (va, na) = time_once(&mut a);
        let (vb, nb) = time_once(&mut b);
        ta.push(na);
        tb.push(nb);
        last = Some((va, vb));
    }
    let (va, vb) = last.expect("reps >= 1");
    ta.sort_unstable();
    tb.sort_unstable();
    ((va, ta[ta.len() / 2]), (vb, tb[tb.len() / 2]))
}

fn assert_records_identical(naive: &[ScenarioRecord], fast: &[ScenarioRecord], label: &str) {
    assert_eq!(naive.len(), fast.len(), "{label}: record counts diverged");
    for (a, b) in naive.iter().zip(fast) {
        assert_eq!(a.id, b.id, "{label}: id order");
        assert_eq!(a.observations, b.observations, "{label}: observations");
        assert_eq!(a.job_mix, b.job_mix, "{label}: job mix");
        assert_eq!(a.metrics.len(), b.metrics.len(), "{label}: metric widths");
        for (x, y) in a.metrics.iter().zip(&b.metrics) {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "{label}: metric bits ({:?})",
                a.id
            );
        }
    }
}

fn assert_truths_identical(naive: &GroundTruth, fast: &GroundTruth, label: &str) {
    assert_eq!(
        naive.per_scenario.len(),
        fast.per_scenario.len(),
        "{label}: row counts diverged"
    );
    for ((ia, wa, xa), (ib, wb, xb)) in naive.per_scenario.iter().zip(&fast.per_scenario) {
        assert_eq!(ia, ib, "{label}: scenario order");
        assert_eq!(wa.to_bits(), wb.to_bits(), "{label}: weight bits {ia:?}");
        assert_eq!(xa.to_bits(), xb.to_bits(), "{label}: impact bits {ia:?}");
    }
    assert_eq!(
        naive.impact_pct.to_bits(),
        fast.impact_pct.to_bits(),
        "{label}: aggregate bits diverged"
    );
    assert_eq!(
        naive.evaluation_cost, fast.evaluation_cost,
        "{label}: accounted cost diverged"
    );
}

/// A corpus whose entry list repeats each mix of a generated corpus
/// `reps`× — the duplicate-heavy shape (recurring colocation mixes across
/// machines and days) where mix deduplication pays off.
fn duplicate_heavy(cfg: &CorpusConfig, reps: u32) -> Corpus {
    let base = Corpus::generate(cfg);
    let mut scenarios = Vec::new();
    for rep in 0..reps {
        for e in base.entries() {
            scenarios.push((e.scenario.clone(), e.observations + rep));
        }
    }
    Corpus::from_entries(scenarios, cfg.clone()).expect("valid duplicated corpus")
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    banner(
        "Ablation: scenario-evaluation kernel layer",
        "Profiler + 50x full-DC baseline hot paths, §4.3 / §5.1 / Fig. 13",
    );

    let (profile_cfg, dup_cfg, dup_reps, reps) = if smoke {
        (
            CorpusConfig {
                machines: 4,
                days: 2.0,
                tick_minutes: 15.0,
                ..CorpusConfig::default()
            },
            CorpusConfig {
                machines: 2,
                days: 1.0,
                tick_minutes: 30.0,
                ..CorpusConfig::default()
            },
            8,
            7,
        )
    } else {
        (
            CorpusConfig::default(),
            CorpusConfig {
                machines: 4,
                days: 2.0,
                tick_minutes: 15.0,
                ..CorpusConfig::default()
            },
            8,
            9,
        )
    };

    // --- Corpus profiling: naive solves vs scratch/table kernels ---------
    let corpus = Corpus::generate(&profile_cfg);
    let baseline = profile_cfg.machine_config.clone();
    println!(
        "\nprofiling corpus: {} scenarios | median of {reps} interleaved runs\n",
        corpus.len()
    );
    println!(
        "  {:<22} | {:>12} | {:>12} | {:>8}",
        "measurement", "naive", "kernel", "speedup"
    );
    let mut profile_rows = String::new();
    for workers in [1usize, THREADS] {
        let ((naive, t_naive), (fast, t_fast)) = duel(
            reps,
            || corpus.profile_tail_naive(0, &baseline),
            || corpus.profile_tail_threaded(0, &baseline, Some(workers)),
        );
        assert_records_identical(&naive, &fast, &format!("profile workers={workers}"));
        let speedup = t_naive as f64 / t_fast as f64;
        println!(
            "  {:<22} | {:>10.2}ms | {:>10.2}ms | {:>7.2}x",
            format!("profile workers={workers}"),
            t_naive as f64 / 1e6,
            t_fast as f64 / 1e6,
            speedup
        );
        if !profile_rows.is_empty() {
            profile_rows.push_str(",\n");
        }
        profile_rows.push_str(&format!(
            "    {{\"workers\": {workers}, \"naive_ns\": {t_naive}, \"kernel_ns\": {t_fast}, \
             \"speedup\": {speedup:.3}}}"
        ));
    }

    // --- Full-DC ground truth: per-entry replay vs mix dedup -------------
    let dup_corpus = duplicate_heavy(&dup_cfg, dup_reps);
    let dup_baseline = dup_cfg.machine_config.clone();
    let f1 = Feature::paper_feature1().apply(&dup_baseline);
    let ((naive_gt, t_naive_gt), (dedup_gt, t_dedup_gt)) = duel(
        reps,
        || {
            full_datacenter_impact_naive(
                &dup_corpus,
                &SimTestbed,
                &dup_baseline,
                &f1,
                true,
                Some(THREADS),
            )
        },
        || {
            full_datacenter_impact_parallel(
                &dup_corpus,
                &SimTestbed,
                &dup_baseline,
                &f1,
                true,
                THREADS,
            )
        },
    );
    assert_truths_identical(&naive_gt, &dedup_gt, "full-DC dedup");
    let dedup_speedup = t_naive_gt as f64 / t_dedup_gt as f64;
    println!(
        "  {:<22} | {:>10.2}ms | {:>10.2}ms | {:>7.2}x",
        format!(
            "full-DC {}→{} mixes",
            dedup_gt.evaluation_cost, dedup_gt.distinct_replays
        ),
        t_naive_gt as f64 / 1e6,
        t_dedup_gt as f64 / 1e6,
        dedup_speedup
    );

    // --- Cross-feature sweep: evaluation cache vs fresh solves -----------
    let features: Vec<(&str, MachineConfig)> = vec![
        ("feature1", Feature::paper_feature1().apply(&dup_baseline)),
        ("feature2", Feature::paper_feature2().apply(&dup_baseline)),
        ("feature3", Feature::paper_feature3().apply(&dup_baseline)),
    ];
    let sweep_with = |testbed: &CachedSimTestbed| {
        features
            .iter()
            .map(|(_, fc)| {
                full_datacenter_impact_parallel(
                    &dup_corpus,
                    testbed,
                    &dup_baseline,
                    fc,
                    true,
                    THREADS,
                )
            })
            .collect::<Vec<_>>()
    };

    // Cold-start instrumentation first: a fresh cache sweeping all three
    // features once. Features 2 and 3 hit the baseline-side entries
    // feature 1 populated, so the hit rate is 1/3 by construction.
    let testbed = CachedSimTestbed::new();
    let cold = sweep_with(&testbed);
    let cold_stats = testbed.stats();

    // Timed duel: uncached sweep vs the now-warm cache (every solve is a
    // hit). This is the cache's production shape — FLARE and the baselines
    // re-evaluate the same mixes across features, sweeps, and refits, and
    // the cache replaces each repeat solve with a lookup.
    let ((plain, t_plain), (warm, t_warm)) = duel(
        reps,
        || {
            features
                .iter()
                .map(|(_, fc)| {
                    full_datacenter_impact_parallel(
                        &dup_corpus,
                        &SimTestbed,
                        &dup_baseline,
                        fc,
                        true,
                        THREADS,
                    )
                })
                .collect::<Vec<_>>()
        },
        || sweep_with(&testbed),
    );
    for (i, (name, _)) in features.iter().enumerate() {
        assert_truths_identical(&plain[i], &cold[i], &format!("cold cache {name}"));
        assert_truths_identical(&plain[i], &warm[i], &format!("warm cache {name}"));
    }
    let cache_speedup = t_plain as f64 / t_warm as f64;
    println!(
        "  {:<22} | {:>10.2}ms | {:>10.2}ms | {:>7.2}x",
        "3-feature sweep (warm)",
        t_plain as f64 / 1e6,
        t_warm as f64 / 1e6,
        cache_speedup
    );

    let stats = cold_stats;
    println!(
        "\ncold-start cache: {} hits / {} misses over {} entries, {} configs — hit rate {:.1}%",
        stats.hits,
        stats.misses,
        stats.entries,
        stats.configs,
        stats.hit_rate() * 100.0
    );

    // --- Machine-readable results ----------------------------------------
    let json = format!(
        "{{\n  \"bench\": \"abl15_sim_kernels\",\n  \"mode\": \"{mode}\",\n  \
         \"config\": {{\"threads\": {threads}, \"reps\": {reps}, \
         \"profile_scenarios\": {n_profile}, \"fulldc_entries\": {n_entries}, \
         \"fulldc_distinct\": {n_distinct}}},\n  \"profile\": [\n{profile_rows}\n  ],\n  \
         \"fulldc\": {{\"naive_ns\": {t_naive_gt}, \"dedup_ns\": {t_dedup_gt}, \
         \"speedup\": {dedup_speedup:.3}}},\n  \
         \"cache\": {{\"uncached_ns\": {t_plain}, \"warm_ns\": {t_warm}, \
         \"speedup\": {cache_speedup:.3}, \"hits\": {hits}, \"misses\": {misses}, \
         \"entries\": {entries}, \"configs\": {configs}, \"hit_rate\": {hit_rate:.4}}}\n}}\n",
        mode = if smoke { "smoke" } else { "full" },
        threads = THREADS,
        n_profile = corpus.len(),
        n_entries = dedup_gt.evaluation_cost,
        n_distinct = dedup_gt.distinct_replays,
        hits = stats.hits,
        misses = stats.misses,
        entries = stats.entries,
        configs = stats.configs,
        hit_rate = stats.hit_rate(),
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../results/BENCH_sim.json");
    std::fs::write(out, &json).expect("write BENCH_sim.json");
    println!("\nwrote {out}");

    if smoke {
        assert!(
            dedup_speedup >= 2.0,
            "smoke gate: mix dedup must be >= 2x per-entry replay on a \
             duplicate-heavy corpus, got {dedup_speedup:.2}x"
        );
        assert!(
            stats.hit_rate() >= 0.25,
            "smoke gate: cross-feature cache hit rate must be >= 0.25, got {:.3}",
            stats.hit_rate()
        );
    }
    println!(
        "\ntakeaway: identical bits, less time — flat reused scratch, one\n\
         profile resolution per corpus, replay-once mix dedup, and the\n\
         content-addressed cache accelerate the exact interference solves\n\
         without perturbing a single output value."
    );
}
