//! # flare-metrics
//!
//! Metric schema, scenario database, and correlation-based refinement for
//! the FLARE reproduction.
//!
//! FLARE's Profiler (§4.2) collects 100+ raw performance and resource
//! metrics per job-colocation scenario at two levels — machine-wide and
//! High-Priority-jobs-only — and stores them in a database. A refinement
//! pass then prunes highly correlated (redundant) metrics before PCA.
//!
//! - [`schema`] enumerates the raw metric space (106 metrics: 53 kinds ×
//!   2 levels) mirroring the families of the paper's Fig. 6.
//! - [`database`] is the per-scenario metric store with JSON persistence.
//! - [`correlation`] implements the pairwise-Pearson pruning that reduces
//!   "100+ metrics to 85 metrics with weaker correlations".
//!
//! ## Example
//!
//! ```
//! use flare_metrics::database::{MetricDatabase, ScenarioId, ScenarioRecord};
//! use flare_metrics::schema::MetricSchema;
//! use flare_metrics::correlation::refine;
//!
//! let schema = MetricSchema::canonical();
//! let mut db = MetricDatabase::new(schema.clone());
//! for i in 0..12u32 {
//!     db.insert(ScenarioRecord {
//!         id: ScenarioId(i),
//!         metrics: (0..schema.len()).map(|j| ((i + j as u32) % 7) as f64).collect(),
//!         observations: 1,
//!         job_mix: vec![("DC".into(), 1)],
//!     })?;
//! }
//! let report = refine(&db, 0.95)?;
//! assert!(report.kept_count() > 0);
//! # Ok::<(), flare_metrics::MetricsError>(())
//! ```

#![warn(missing_docs)]

pub mod correlation;
pub mod database;
mod error;
pub mod schema;

pub use error::{MetricsError, Result};
