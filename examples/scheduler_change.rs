//! The §5.6 workflow: a scheduler change shifts how often colocations
//! occur without inventing unseen ones — so FLARE re-derives the
//! representatives from step 3 (re-cluster with new weights), skipping the
//! expensive re-collection, and re-evaluates the feature.
//!
//! Here the fleet moves from spreading (least-utilized placement) to
//! consolidation (bin-packing). Consolidation makes high-occupancy
//! colocations far more common, which changes how much an SMT-off feature
//! costs.
//!
//! ```sh
//! cargo run --release --example scheduler_change
//! ```

use flare::prelude::*;
use flare::sim::scheduler::SchedulerPolicy;

fn main() -> Result<(), FlareError> {
    let feature = Feature::paper_feature3(); // SMT off: load-sensitive

    // FLARE fitted on the current (spreading) datacenter.
    println!("fitting FLARE on the current datacenter (spreading scheduler)...");
    let corpus = Corpus::generate(&CorpusConfig::default());
    let flare = Flare::fit(corpus, FlareConfig::default())?;
    let before = flare.evaluate(&feature)?;
    println!(
        "  {} under the current scheduler: {:.2}% MIPS reduction",
        feature.label(),
        before.impact_pct
    );

    // A quick estimate of the new scheduler's occupancy mix: here we
    // simulate it cheaply (a scheduler prototype, a trace model, or an
    // analytic estimate would all do — only relative frequencies matter).
    println!("\nestimating colocation frequencies under the consolidating scheduler...");
    let packed_corpus = Corpus::generate(&CorpusConfig {
        policy: SchedulerPolicy::MostUtilized,
        ..CorpusConfig::default()
    });
    let mean_occ = |c: &Corpus| {
        let (mut s, mut w) = (0.0, 0.0);
        for e in c.entries() {
            s += e.scenario.occupancy(48) * e.observations as f64;
            w += e.observations as f64;
        }
        s / w
    };
    println!(
        "  mean machine occupancy: {:.0}% (spreading) -> {:.0}% (consolidating)",
        mean_occ(flare.corpus()) * 100.0,
        mean_occ(&packed_corpus) * 100.0
    );

    // Re-weight the existing corpus by the new occupancy distribution:
    // scenarios that look like the new scheduler's placements get boosted.
    // (Weights bucketed by occupancy decile.)
    let mut bucket_weight = [0u64; 11];
    for e in packed_corpus.entries() {
        let b = (e.scenario.occupancy(48) * 10.0).round() as usize;
        bucket_weight[b.min(10)] += e.observations as u64;
    }
    let reclustered = flare.recluster_with_weights(|e| {
        let b = (e.scenario.occupancy(48) * 10.0).round() as usize;
        (bucket_weight[b.min(10)] / 10).max(1) as u32
    })?;
    let after = reclustered.evaluate(&feature)?;
    println!(
        "\nre-clustered from step 3 (no re-collection): {} representatives",
        reclustered.n_representatives()
    );
    println!(
        "  {} under the NEW scheduler: {:.2}% MIPS reduction",
        feature.label(),
        after.impact_pct
    );
    println!(
        "\ndecision input: consolidation changes the feature's cost by {:+.2}pp —\n\
         obtained for the price of {} scenario replays, zero new profiling.",
        after.impact_pct - before.impact_pct,
        after.replay_count
    );
    Ok(())
}
