//! Synthetic resource stressors, à la iBench (Delimitrou & Kozyrakis,
//! IISWC'13).
//!
//! §5.1 of the paper: "if we can thoroughly characterize the performance
//! and resource behaviors of every job in the datacenter, we may utilize
//! high-precision load generators such as iBench to accurately reproduce
//! the job behaviors." A stressor is a tunable antagonist that applies a
//! chosen pressure to one or several resources; replaying a representative
//! scenario with calibrated stressors avoids deploying the real service
//! stack on the testbed.
//!
//! Real load generators expose *coarse* knobs (pressure levels, not
//! continuous microarchitectural parameters), so calibration quantizes
//! each dimension — the fidelity cost that the `abl04` ablation measures.

use crate::catalog;
use crate::job::JobName;
use crate::profile::JobProfile;
use serde::{Deserialize, Serialize};

/// Number of discrete pressure levels a stressor knob offers.
pub const KNOB_LEVELS: u32 = 10;

/// A stressor specification: one knob (0..=[`KNOB_LEVELS`]) per resource
/// dimension. Level 0 = idle on that dimension, max = the heaviest
/// pressure the generator can produce.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct StressorSpec {
    /// Frequency-bound (compute-intensity) pressure.
    pub cpu: u32,
    /// Thread-level activity: how many of the container's vCPUs spin.
    pub threads: u32,
    /// Cache-capacity pressure: working-set size.
    pub cache: u32,
    /// Memory pressure: miss intensity and latency sensitivity.
    pub memory: u32,
    /// Memory-bandwidth pressure: streaming traffic.
    pub bandwidth: u32,
    /// Network pressure.
    pub network: u32,
    /// Storage pressure.
    pub disk: u32,
}

/// Knob ranges: the physical quantity each level maps onto. These bounds
/// cover the full catalog so every job is representable up to quantization.
mod range {
    /// Max working set a cache stressor can occupy, MB per instance.
    pub const CACHE_MB: f64 = 30.0;
    /// Max LLC MPKI the memory antagonist produces.
    pub const MPKI: f64 = 14.0;
    /// Max streaming bandwidth, GB/s per instance.
    pub const BW_GBPS: f64 = 11.0;
    /// Max network traffic (rx+tx), MB/s per instance.
    pub const NET_MBPS: f64 = 500.0;
    /// Max disk traffic (r+w), MB/s per instance.
    pub const DISK_MBPS: f64 = 170.0;
}

impl StressorSpec {
    /// Quantizes a fraction of a knob's physical range to a level.
    fn level(fraction: f64) -> u32 {
        (fraction.clamp(0.0, 1.0) * KNOB_LEVELS as f64).round() as u32
    }

    /// Fraction of the physical range a level reproduces.
    fn fraction(level: u32) -> f64 {
        level.min(KNOB_LEVELS) as f64 / KNOB_LEVELS as f64
    }

    /// Calibrates a stressor against a job's latent profile: each resource
    /// dimension is measured and snapped to the nearest knob level. This
    /// mirrors profiling a production service and dialing a load
    /// generator to match.
    pub fn calibrate(job: JobName) -> StressorSpec {
        let p = catalog::profile(job);
        StressorSpec {
            cpu: Self::level(p.cpu_bound_fraction),
            threads: Self::level(p.cpu_util),
            cache: Self::level(p.working_set_mb / range::CACHE_MB),
            memory: Self::level(p.base_llc_mpki / range::MPKI * p.latency_sensitivity),
            bandwidth: Self::level(p.mem_bw_gbps / range::BW_GBPS),
            network: Self::level((p.net_rx_mbps + p.net_tx_mbps) / range::NET_MBPS),
            disk: Self::level((p.disk_read_mbps + p.disk_write_mbps) / range::DISK_MBPS),
        }
    }

    /// Materializes the stressor as a runnable [`JobProfile`].
    ///
    /// The profile is a generic antagonist whose pressures follow the knob
    /// levels; job-specific subtleties (top-down shape, SMT friendliness,
    /// branch behaviour) collapse to generator defaults — exactly the
    /// fidelity loss proxy replay accepts.
    pub fn to_profile(self) -> JobProfile {
        let cpu = Self::fraction(self.cpu);
        let threads = Self::fraction(self.threads);
        let cache = Self::fraction(self.cache);
        let memory = Self::fraction(self.memory);
        let bandwidth = Self::fraction(self.bandwidth);
        let network = Self::fraction(self.network);
        let disk = Self::fraction(self.disk);
        JobProfile {
            // A stressor spins a tight loop: throughput tracks its compute
            // knob with a generator-typical ceiling.
            inherent_mips: 2000.0 + 5000.0 * cpu,
            working_set_mb: (cache * range::CACHE_MB).max(0.5),
            miss_curve_alpha: 0.7,
            base_llc_mpki: (memory * range::MPKI).max(0.05),
            base_l2_mpki: (memory * range::MPKI).max(0.05) * 1.4 + 1.0,
            base_l1d_mpki: 20.0,
            base_l1i_mpki: 2.0,
            mem_bw_gbps: bandwidth * range::BW_GBPS,
            latency_sensitivity: (0.3 + 0.6 * memory).min(1.0),
            cpu_bound_fraction: (0.1 + 0.9 * cpu).min(1.0),
            smt_friendliness: 0.7,
            cpu_util: (0.1 + 0.9 * threads).min(1.0),
            frontend_bound: 0.15,
            bad_speculation: 0.05,
            branch_mpki: 5.0,
            itlb_mpki: 0.3,
            dtlb_mpki: 1.5,
            alu_stall_pct: 0.1,
            div_stall_pct: 0.02,
            disk_read_mbps: disk * range::DISK_MBPS * 0.6,
            disk_write_mbps: disk * range::DISK_MBPS * 0.4,
            net_rx_mbps: network * range::NET_MBPS * 0.5,
            net_tx_mbps: network * range::NET_MBPS * 0.5,
            rss_gb: 2.0 + 8.0 * cache,
            syscalls_ps: 1.0e3 + 8.0e4 * network,
        }
    }
}

/// Calibrated stressor profile for a job — the proxy used when the real
/// service stack cannot be deployed on the testbed.
pub fn proxy_profile(job: JobName) -> JobProfile {
    StressorSpec::calibrate(job).to_profile()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_calibrations_produce_valid_profiles() {
        for &job in JobName::ALL {
            let spec = StressorSpec::calibrate(job);
            let profile = spec.to_profile();
            assert!(profile.is_valid(), "{job}: invalid stressor profile");
        }
    }

    #[test]
    fn knobs_are_quantized() {
        for &job in JobName::ALL {
            let spec = StressorSpec::calibrate(job);
            for knob in [
                spec.cpu,
                spec.threads,
                spec.cache,
                spec.memory,
                spec.bandwidth,
                spec.network,
                spec.disk,
            ] {
                assert!(knob <= KNOB_LEVELS);
            }
        }
    }

    #[test]
    fn calibration_tracks_resource_ordering() {
        // Pairwise orderings of the real profiles survive calibration.
        let ga = StressorSpec::calibrate(JobName::GraphAnalytics);
        let ms = StressorSpec::calibrate(JobName::MediaStreaming);
        assert!(ga.cache > ms.cache, "Spark's footprint dwarfs Nginx's");
        assert!(ms.network > ga.network, "streaming is the network hog");
        let mcf = StressorSpec::calibrate(JobName::Mcf);
        assert!(mcf.memory >= ga.memory, "mcf is the heaviest memory job");
    }

    #[test]
    fn proxy_preserves_working_set_scale() {
        for &job in JobName::ALL {
            let real = catalog::profile(job);
            let proxy = proxy_profile(job);
            // Quantization error is at most half a level of the range.
            let half_level = super::range::CACHE_MB / KNOB_LEVELS as f64 / 2.0 + 0.5;
            assert!(
                (real.working_set_mb - proxy.working_set_mb).abs() <= half_level + 1e-9,
                "{job}: ws {} vs proxy {}",
                real.working_set_mb,
                proxy.working_set_mb
            );
        }
    }

    #[test]
    fn idle_spec_is_minimal() {
        let idle = StressorSpec {
            cpu: 0,
            threads: 0,
            cache: 0,
            memory: 0,
            bandwidth: 0,
            network: 0,
            disk: 0,
        };
        let p = idle.to_profile();
        assert!(p.is_valid());
        assert!(p.mem_bw_gbps == 0.0 && p.net_rx_mbps == 0.0);
    }
}
