//! Ablation 4: stressor-based proxy replay (§5.1's iBench idea) — how much
//! accuracy does FLARE lose when the representatives are reconstructed
//! with calibrated synthetic load generators instead of the real services?

use flare_baselines::fulldc::full_datacenter_impact;
use flare_bench::banner;
use flare_core::replayer::{ProxyTestbed, SimTestbed};
use flare_core::{Flare, FlareConfig};
use flare_sim::datacenter::{Corpus, CorpusConfig};
use flare_sim::feature::Feature;

fn main() {
    banner(
        "Ablation: real-service replay vs calibrated-stressor proxy replay",
        "§5.1 (iBench-style load generators as testbed proxies)",
    );
    let corpus_cfg = CorpusConfig::default();
    let corpus = Corpus::generate(&corpus_cfg);
    let baseline = corpus_cfg.machine_config.clone();
    let flare = Flare::fit(corpus.clone(), FlareConfig::default()).expect("fit");
    let proxy = ProxyTestbed::calibrated();

    println!(
        "\n  {:<22} {:>9} {:>12} {:>12} | {:>9} {:>9}",
        "feature", "truth %", "real-replay", "proxy-replay", "real err", "proxy err"
    );
    for feature in Feature::paper_features() {
        let fc = feature.apply(&baseline);
        let truth = full_datacenter_impact(&corpus, &SimTestbed, &baseline, &fc, true).impact_pct;
        let real = flare
            .evaluate_on(&SimTestbed, &feature)
            .expect("real estimate")
            .impact_pct;
        let prox = flare
            .evaluate_on(&proxy, &feature)
            .expect("proxy estimate")
            .impact_pct;
        println!(
            "  {:<22} {:>9.2} {:>12.2} {:>12.2} | {:>9.2} {:>9.2}",
            feature.label(),
            truth,
            real,
            prox,
            (real - truth).abs(),
            (prox - truth).abs(),
        );
    }
    println!(
        "\ntakeaway: proxy replay preserves the direction and rough magnitude of every\n\
         feature's impact while avoiding real-service deployment; the residual error is\n\
         the price of the generator's quantized knobs and generic microarchitectural\n\
         shape (the paper's reason to call such benchmarks 'orthogonal' helpers)."
    );
}
