//! Ablation 16: the eigendecomposition kernel layer — what does replacing
//! the cyclic Jacobi solver with the tridiagonalize-then-implicit-QL
//! kernel buy on PCA-sized symmetric problems (§4.3, Fig. 7)?
//!
//! The Profiler feeds PCA a covariance matrix with one row/column per
//! retained raw metric (~60 after refinement, up to ~250 with temporal
//! enrichment), so the duel runs deterministic Gram matrices at those
//! sizes: `symmetric_eigen_naive` (the Jacobi differential oracle kept
//! in-tree) vs `flare_linalg::kernel::symmetric_eigen_tridiagonal` (the
//! path `symmetric_eigen` and `Pca::fit` now route through).
//!
//! Before any timing is reported, each size's kernel decomposition is
//! checked against the oracle: eigenvalues agree to the documented
//! tolerance (`ORACLE_EIGENVALUE_RTOL`) and both eigenvector sets
//! reconstruct the input. Timings are medians over strictly interleaved
//! runs and land in `results/BENCH_eigen.json` (machine-readable).
//! `--smoke` runs the small CI variant and asserts the kernel speedup
//! gate (>= 2x at the largest smoke size).

use flare_bench::banner;
use flare_linalg::eigen::{symmetric_eigen_naive, EigenDecomposition};
use flare_linalg::kernel::{eigenvalues_agree, symmetric_eigen_tridiagonal};
use flare_linalg::Matrix;
use std::time::Instant;

fn time_once<T>(f: &mut impl FnMut() -> T) -> (T, u128) {
    let start = Instant::now();
    let value = f();
    (value, start.elapsed().as_nanos())
}

/// Times two equivalent computations head-to-head: one warmup each, then
/// `reps` strictly interleaved timed runs (A, B, A, B, …) so slow drift on
/// a shared machine hits both sides equally. Returns the last value of
/// each plus the median nanoseconds per side.
fn duel<T>(
    reps: usize,
    mut a: impl FnMut() -> T,
    mut b: impl FnMut() -> T,
) -> ((T, u128), (T, u128)) {
    let _ = std::hint::black_box(a());
    let _ = std::hint::black_box(b());
    let mut ta: Vec<u128> = Vec::with_capacity(reps);
    let mut tb: Vec<u128> = Vec::with_capacity(reps);
    let mut last = None;
    for _ in 0..reps {
        let (va, na) = time_once(&mut a);
        let (vb, nb) = time_once(&mut b);
        ta.push(na);
        tb.push(nb);
        last = Some((va, vb));
    }
    let (va, vb) = last.expect("reps >= 1");
    ta.sort_unstable();
    tb.sort_unstable();
    ((va, ta[ta.len() / 2]), (vb, tb[tb.len() / 2]))
}

/// A deterministic covariance-shaped matrix: the Gram matrix of an
/// (n + 17) × n data block with smooth pseudo-random entries, plus a small
/// diagonal ridge so the spectrum spreads like a refined metric set's.
fn covariance_like(n: usize) -> Matrix {
    let rows = n + 17;
    let data: Vec<Vec<f64>> = (0..rows)
        .map(|i| {
            (0..n)
                .map(|j| ((i * 31 + j * 17) as f64 * 0.7).sin() * 3.0 + (j as f64 * 0.05).cos())
                .collect()
        })
        .collect();
    let d = Matrix::from_rows(&data).expect("rectangular by construction");
    let mut g = d.transpose().matmul(&d).expect("n x n Gram");
    for i in 0..n {
        g[(i, i)] += 1.0 + (i as f64 * 0.13).cos().abs();
    }
    g.scale(1.0 / rows as f64)
}

/// Relative Frobenius error of `V Λ Vᵀ` against the input.
fn reconstruction_error(m: &Matrix, e: &EigenDecomposition) -> f64 {
    let n = m.nrows();
    let mut lambda = Matrix::zeros(n, n);
    for i in 0..n {
        lambda[(i, i)] = e.eigenvalues[i];
    }
    let recon = e
        .eigenvectors
        .matmul(&lambda)
        .expect("square")
        .matmul(&e.eigenvectors.transpose())
        .expect("square");
    recon.sub(m).expect("same shape").frobenius_norm() / m.frobenius_norm().max(1.0)
}

fn assert_agrees(m: &Matrix, kernel: &EigenDecomposition, oracle: &EigenDecomposition, n: usize) {
    assert!(
        eigenvalues_agree(&kernel.eigenvalues, &oracle.eigenvalues),
        "n={n}: kernel spectrum diverged from the Jacobi oracle beyond \
         ORACLE_EIGENVALUE_RTOL"
    );
    let kernel_err = reconstruction_error(m, kernel);
    let oracle_err = reconstruction_error(m, oracle);
    assert!(
        kernel_err < 1e-8 && oracle_err < 1e-8,
        "n={n}: reconstruction errors kernel {kernel_err:.2e} / oracle {oracle_err:.2e}"
    );
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    banner(
        "Ablation: eigendecomposition kernel layer",
        "PCA-sized symmetric eigensolves, §4.3 / Fig. 7",
    );

    let (sizes, reps): (&[usize], usize) = if smoke {
        (&[48, 96], 5)
    } else {
        (&[60, 122, 250], 9)
    };

    println!("\nmedian of {reps} interleaved runs, agreement asserted before timing\n");
    println!(
        "  {:<14} | {:>12} | {:>12} | {:>8}",
        "matrix", "jacobi", "kernel", "speedup"
    );
    let mut rows = String::new();
    let mut last_speedup = 0.0f64;
    for &n in sizes {
        let m = covariance_like(n);

        // Correctness first: the duel only times decompositions that have
        // already been proven to agree.
        let kernel = symmetric_eigen_tridiagonal(&m).expect("kernel solve");
        let oracle = symmetric_eigen_naive(&m).expect("oracle solve");
        assert_agrees(&m, &kernel, &oracle, n);

        let ((_, t_jacobi), (_, t_kernel)) = duel(
            reps,
            || symmetric_eigen_naive(&m).expect("oracle solve"),
            || symmetric_eigen_tridiagonal(&m).expect("kernel solve"),
        );
        let speedup = t_jacobi as f64 / t_kernel as f64;
        last_speedup = speedup;
        println!(
            "  {:<14} | {:>10.2}ms | {:>10.2}ms | {:>7.2}x",
            format!("{n}x{n}"),
            t_jacobi as f64 / 1e6,
            t_kernel as f64 / 1e6,
            speedup
        );
        if !rows.is_empty() {
            rows.push_str(",\n");
        }
        rows.push_str(&format!(
            "    {{\"n\": {n}, \"jacobi_ns\": {t_jacobi}, \"kernel_ns\": {t_kernel}, \
             \"speedup\": {speedup:.3}}}"
        ));
    }

    // --- Machine-readable results ----------------------------------------
    let json = format!(
        "{{\n  \"bench\": \"abl16_eigen_kernels\",\n  \"mode\": \"{mode}\",\n  \
         \"config\": {{\"reps\": {reps}, \"oracle_rtol\": {rtol:e}}},\n  \
         \"sizes\": [\n{rows}\n  ]\n}}\n",
        mode = if smoke { "smoke" } else { "full" },
        rtol = flare_linalg::kernel::ORACLE_EIGENVALUE_RTOL,
    );
    let out = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../results/BENCH_eigen.json"
    );
    std::fs::write(out, &json).expect("write BENCH_eigen.json");
    println!("\nwrote {out}");

    if smoke {
        assert!(
            last_speedup >= 2.0,
            "smoke gate: the tridiagonal QL kernel must be >= 2x the Jacobi \
             oracle at n={}, got {last_speedup:.2}x",
            sizes.last().expect("non-empty sizes")
        );
    }
    println!(
        "\ntakeaway: same spectrum to 1e-9, a fraction of the flops — one\n\
         Householder reduction plus implicit-shift QL replaces ~8 full\n\
         Jacobi sweeps, so PCA fits stop paying O(n^3) per sweep on every\n\
         covariance eigensolve."
    );
}
