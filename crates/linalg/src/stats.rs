//! Descriptive statistics over slices and matrix columns.
//!
//! These helpers back the normalization, correlation-refinement, and
//! confidence-interval machinery used throughout the FLARE pipeline.

use crate::error::{LinalgError, Result};
use crate::matrix::Matrix;
use crate::sharded::ShardAccess;

/// Arithmetic mean of a slice. Returns 0.0 for an empty slice.
///
/// # Examples
///
/// ```
/// assert_eq!(flare_linalg::stats::mean(&[1.0, 2.0, 3.0]), 2.0);
/// ```
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population variance (divides by `n`). Returns 0.0 for slices of length < 2.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Sample variance (divides by `n - 1`). Returns 0.0 for slices of length < 2.
pub fn sample_variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64
}

/// Population standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Sample standard deviation.
pub fn sample_std_dev(xs: &[f64]) -> f64 {
    sample_variance(xs).sqrt()
}

/// Pearson correlation coefficient between two equal-length slices.
///
/// Returns 0.0 when either side has (numerically) zero variance — constant
/// series carry no correlation information, and treating them as
/// uncorrelated is the behaviour the metric-refinement step wants.
///
/// # Errors
///
/// Returns [`LinalgError::DimensionMismatch`] if the slices have different
/// lengths and [`LinalgError::Empty`] if they are empty.
pub fn pearson(xs: &[f64], ys: &[f64]) -> Result<f64> {
    if xs.len() != ys.len() {
        return Err(LinalgError::DimensionMismatch(format!(
            "pearson: {} vs {} samples",
            xs.len(),
            ys.len()
        )));
    }
    if xs.is_empty() {
        return Err(LinalgError::Empty("pearson of empty slices".into()));
    }
    let mx = mean(xs);
    let my = mean(ys);
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        let dx = x - mx;
        let dy = y - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx <= f64::EPSILON || syy <= f64::EPSILON {
        return Ok(0.0);
    }
    Ok(sxy / (sxx.sqrt() * syy.sqrt()))
}

/// Fractional ranks of a slice (average rank for ties), 1-based.
///
/// # Examples
///
/// ```
/// use flare_linalg::stats::ranks;
/// assert_eq!(ranks(&[30.0, 10.0, 20.0]), vec![3.0, 1.0, 2.0]);
/// // Ties share the average of their positions.
/// assert_eq!(ranks(&[1.0, 2.0, 2.0]), vec![1.0, 2.5, 2.5]);
/// ```
pub fn ranks(xs: &[f64]) -> Vec<f64> {
    let mut idx: Vec<usize> = (0..xs.len()).collect();
    idx.sort_by(|&a, &b| {
        xs[a]
            .partial_cmp(&xs[b])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut out = vec![0.0; xs.len()];
    let mut i = 0;
    while i < idx.len() {
        // Extend over the tie group [i, j).
        let mut j = i + 1;
        while j < idx.len() && xs[idx[j]] == xs[idx[i]] {
            j += 1;
        }
        let avg_rank = (i + 1 + j) as f64 / 2.0; // mean of ranks i+1..=j
        for &k in &idx[i..j] {
            out[k] = avg_rank;
        }
        i = j;
    }
    out
}

/// Spearman rank correlation: Pearson correlation of the fractional ranks.
/// Robust to monotone nonlinearity and outliers — an alternative
/// similarity measure for metric refinement.
///
/// # Errors
///
/// Same conditions as [`pearson`].
pub fn spearman(xs: &[f64], ys: &[f64]) -> Result<f64> {
    if xs.len() != ys.len() {
        return Err(LinalgError::DimensionMismatch(format!(
            "spearman: {} vs {} samples",
            xs.len(),
            ys.len()
        )));
    }
    if xs.is_empty() {
        return Err(LinalgError::Empty("spearman of empty slices".into()));
    }
    pearson(&ranks(xs), &ranks(ys))
}

/// Linear-interpolated quantile (`q` in `[0, 1]`) of an unsorted slice.
///
/// # Errors
///
/// Returns [`LinalgError::Empty`] for empty input and
/// [`LinalgError::InvalidParameter`] if `q` is outside `[0, 1]` or the data
/// contains NaN.
pub fn quantile(xs: &[f64], q: f64) -> Result<f64> {
    if xs.is_empty() {
        return Err(LinalgError::Empty("quantile of empty slice".into()));
    }
    if !(0.0..=1.0).contains(&q) {
        return Err(LinalgError::InvalidParameter(format!(
            "quantile level {q} outside [0, 1]"
        )));
    }
    if xs.iter().any(|x| x.is_nan()) {
        return Err(LinalgError::InvalidParameter("quantile of NaN data".into()));
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN filtered above"));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    Ok(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

/// Median (0.5 quantile).
///
/// # Errors
///
/// Same as [`quantile`].
pub fn median(xs: &[f64]) -> Result<f64> {
    quantile(xs, 0.5)
}

/// Median absolute deviation: the median of `|x - median(xs)|`. A robust
/// spread estimate immune to heavy-tailed outliers (a single wild spike
/// moves the MAD by at most one rank), used by the telemetry repair stage
/// for winsorization and by robust normalization.
///
/// # Errors
///
/// Same conditions as [`median`].
pub fn mad(xs: &[f64]) -> Result<f64> {
    let m = median(xs)?;
    let deviations: Vec<f64> = xs.iter().map(|x| (x - m).abs()).collect();
    median(&deviations)
}

/// Consistency constant scaling the MAD to the standard deviation of a
/// normal distribution (`1 / Φ⁻¹(3/4)`), so `mad(xs) * MAD_TO_SIGMA`
/// estimates σ on clean Gaussian data.
pub const MAD_TO_SIGMA: f64 = 1.482602218505602;

/// Fits a **robust** column normalizer: per-column median for centering
/// and `MAD · 1.4826` for scaling (falling back to 1.0 for columns whose
/// MAD is numerically zero, mirroring [`ZScore::fit`]'s constant-column
/// rule). The result plugs into [`crate::pca::Pca::fit_with`] as a
/// drop-in replacement for the mean/std z-score, keeping the PCA usable
/// when residual telemetry outliers would otherwise dominate the column
/// variances.
///
/// # Errors
///
/// Returns [`LinalgError::Empty`] if the matrix has no rows and
/// [`LinalgError::InvalidParameter`] if a column contains NaN.
pub fn robust_scale(data: &Matrix) -> Result<ZScore> {
    if data.nrows() == 0 {
        return Err(LinalgError::Empty("robust scale of empty matrix".into()));
    }
    let mut means = Vec::with_capacity(data.ncols());
    let mut std_devs = Vec::with_capacity(data.ncols());
    for j in 0..data.ncols() {
        let col = data.col(j);
        means.push(median(&col)?);
        let spread = mad(&col)? * MAD_TO_SIGMA;
        std_devs.push(if spread <= f64::EPSILON { 1.0 } else { spread });
    }
    Ok(ZScore { means, std_devs })
}

/// Extracts column `j` across all shards, in logical row order — the
/// streaming counterpart of [`Matrix::col`]. The returned buffer is the
/// only O(n) allocation; no shard is coalesced. Exact column statistics
/// (medians, ranks) need the full column, so the rank-based streaming
/// paths ([`robust_scale_sharded`], the sharded Spearman pass) go one
/// column at a time through this.
///
/// # Errors
///
/// Returns [`LinalgError::InvalidParameter`] if `j` is out of bounds.
pub fn gather_column<A: ShardAccess>(data: &A, j: usize) -> Result<Vec<f64>> {
    if j >= data.ncols() {
        return Err(LinalgError::InvalidParameter(format!(
            "gather_column: column {j} out of bounds for {} columns",
            data.ncols()
        )));
    }
    let mut col = Vec::with_capacity(data.nrows());
    for s in 0..data.shard_count() {
        data.with_shard(s, |shard| {
            for row in shard.rows_iter() {
                col.push(row[j]);
            }
        })?;
    }
    Ok(col)
}

/// Shard-streaming [`robust_scale`]: identical output (medians and MADs
/// are computed from per-column gathers in the same row order), but the
/// peak transient allocation is one column plus one shard instead of the
/// dense n×d matrix.
///
/// # Errors
///
/// Same conditions as [`robust_scale`], plus shard-access failures.
pub fn robust_scale_sharded<A: ShardAccess>(data: &A) -> Result<ZScore> {
    if data.nrows() == 0 {
        return Err(LinalgError::Empty("robust scale of empty matrix".into()));
    }
    let mut means = Vec::with_capacity(data.ncols());
    let mut std_devs = Vec::with_capacity(data.ncols());
    for j in 0..data.ncols() {
        let col = gather_column(data, j)?;
        means.push(median(&col)?);
        let spread = mad(&col)? * MAD_TO_SIGMA;
        std_devs.push(if spread <= f64::EPSILON { 1.0 } else { spread });
    }
    Ok(ZScore { means, std_devs })
}

/// Summary of a sample distribution: used for the violin/box plots of
/// Fig. 12a and the CI bands of Fig. 12b/13.
#[derive(Debug, Clone, PartialEq)]
pub struct DistributionSummary {
    /// Number of samples summarized.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation.
    pub std_dev: f64,
    /// Minimum observation.
    pub min: f64,
    /// 2.5 % quantile (lower bound of the central 95 % band).
    pub p2_5: f64,
    /// First quartile.
    pub p25: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub p75: f64,
    /// 97.5 % quantile (upper bound of the central 95 % band).
    pub p97_5: f64,
    /// Maximum observation.
    pub max: f64,
}

impl DistributionSummary {
    /// Summarizes a non-empty sample.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Empty`] for empty input or
    /// [`LinalgError::InvalidParameter`] if the data contains NaN.
    pub fn from_samples(xs: &[f64]) -> Result<Self> {
        if xs.is_empty() {
            return Err(LinalgError::Empty("summary of empty sample".into()));
        }
        Ok(DistributionSummary {
            n: xs.len(),
            mean: mean(xs),
            std_dev: sample_std_dev(xs),
            min: quantile(xs, 0.0)?,
            p2_5: quantile(xs, 0.025)?,
            p25: quantile(xs, 0.25)?,
            median: quantile(xs, 0.5)?,
            p75: quantile(xs, 0.75)?,
            p97_5: quantile(xs, 0.975)?,
            max: quantile(xs, 1.0)?,
        })
    }

    /// Half-width of the central 95 % band around the median — the paper's
    /// "expected max error" notion for sampling in Fig. 13 measures how far
    /// a sampled estimate can plausibly land from the truth.
    pub fn central95_half_width(&self) -> f64 {
        (self.p97_5 - self.p2_5) / 2.0
    }
}

/// Z-score normalization of the columns of a data matrix.
///
/// Returned by [`zscore_columns`]; keeps the per-column means and standard
/// deviations so new observations can be projected consistently.
#[derive(Debug, Clone, PartialEq)]
pub struct ZScore {
    /// Per-column means of the fitted data.
    pub means: Vec<f64>,
    /// Per-column *population* standard deviations of the fitted data.
    /// Columns with zero variance store 1.0 so transforms are a no-op shift.
    pub std_devs: Vec<f64>,
}

impl ZScore {
    /// Fits the normalization to `data` (rows = observations, cols =
    /// variables).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Empty`] if the matrix has no rows.
    pub fn fit(data: &Matrix) -> Result<Self> {
        if data.nrows() == 0 {
            return Err(LinalgError::Empty("zscore fit on empty matrix".into()));
        }
        let mut means = Vec::with_capacity(data.ncols());
        let mut std_devs = Vec::with_capacity(data.ncols());
        for j in 0..data.ncols() {
            let col = data.col(j);
            means.push(mean(&col));
            let sd = std_dev(&col);
            std_devs.push(if sd <= f64::EPSILON { 1.0 } else { sd });
        }
        Ok(ZScore { means, std_devs })
    }

    /// Shard-streaming [`ZScore::fit`]: serial wrapper around
    /// [`ZScore::fit_sharded_threaded`] with one worker. Serial and
    /// parallel fits run the identical two-level fold, so this is
    /// bit-identical to the threaded variant for every thread count.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Empty`] if the store has no rows.
    pub fn fit_sharded<A: ShardAccess + Sync>(data: &A) -> Result<Self> {
        Self::fit_sharded_threaded(data, Some(1))
    }

    /// Shard-parallel [`ZScore::fit`]: two moment passes over the shards
    /// (column sums, then squared deviations), each structured as a
    /// deterministic two-level fold — every shard produces a partial
    /// accumulator (in parallel via `flare_exec::par_map_range`), and the
    /// partials are combined **in shard-index order**, seeded with shard
    /// 0's partial. Serial (`threads == Some(1)`) and parallel runs
    /// execute the identical fold, so the result is bit-identical for
    /// every thread count. For a single-shard store the fold degenerates
    /// to the dense column fold, so single-shard results also match
    /// `ZScore::fit(coalesced)` bitwise; multi-shard layouts regroup the
    /// float additions at shard boundaries and agree with the dense fit
    /// to rounding (held by tolerance-based differential tests).
    ///
    /// Peak transient allocation is `workers` shard-partial vectors of
    /// length `d` plus whatever shards are in flight — never the dense
    /// n×d matrix.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Empty`] if the store has no rows.
    pub fn fit_sharded_threaded<A: ShardAccess + Sync>(
        data: &A,
        threads: Option<usize>,
    ) -> Result<Self> {
        let n = data.nrows();
        if n == 0 {
            return Err(LinalgError::Empty("zscore fit on empty matrix".into()));
        }
        let d = data.ncols();
        // Pass 1: column sums. Level one: per-shard partial sums, in
        // parallel. Level two: ordered combine.
        let sums = fold_column_moments(data, threads, |shard, acc| {
            for row in shard.rows_iter() {
                for (slot, v) in acc.iter_mut().zip(row) {
                    *slot += v;
                }
            }
        })?;
        let means: Vec<f64> = sums.iter().map(|&s| s / n as f64).collect();
        // Pass 2: squared deviations about the pass-1 means (the dense
        // path recomputes the identical mean from the identical column).
        // `variance` returns 0.0 below two samples, making every column
        // "constant" — mirror that short-circuit exactly.
        if n < 2 {
            return Ok(ZScore {
                means,
                std_devs: vec![1.0; d],
            });
        }
        let sq = fold_column_moments(data, threads, |shard, acc| {
            for row in shard.rows_iter() {
                for ((slot, v), m) in acc.iter_mut().zip(row).zip(&means) {
                    let dv = v - m;
                    *slot += dv * dv;
                }
            }
        })?;
        let std_devs = sq
            .iter()
            .map(|&q| {
                let sd = (q / n as f64).sqrt();
                if sd <= f64::EPSILON {
                    1.0
                } else {
                    sd
                }
            })
            .collect();
        Ok(ZScore { means, std_devs })
    }

    /// Applies the fitted normalization, producing a matrix whose columns
    /// have (approximately) zero mean and unit variance.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `data` has a different
    /// number of columns than the fitted matrix.
    pub fn transform(&self, data: &Matrix) -> Result<Matrix> {
        if data.ncols() != self.means.len() {
            return Err(LinalgError::DimensionMismatch(format!(
                "zscore transform: fitted on {} columns, got {}",
                self.means.len(),
                data.ncols()
            )));
        }
        let mut out = data.clone();
        for i in 0..out.nrows() {
            let row = out.row_mut(i);
            for (j, v) in row.iter_mut().enumerate() {
                *v = (*v - self.means[j]) / self.std_devs[j];
            }
        }
        Ok(out)
    }
}

/// Two-level fold of a per-column moment accumulator over the shards of
/// `data`: level one computes one `d`-length partial per shard (in
/// parallel via `flare_exec::par_map_range` — contiguous chunks, results
/// in shard order), level two adds the partials together **in shard-index
/// order**, seeded with shard 0's partial. The fixed combine order makes
/// the fold bitwise identical for every thread count.
pub(crate) fn fold_column_moments<A: ShardAccess + Sync>(
    data: &A,
    threads: Option<usize>,
    accumulate: impl Fn(&Matrix, &mut [f64]) + Sync,
) -> Result<Vec<f64>> {
    let d = data.ncols();
    let partials = flare_exec::par_map_range(data.shard_count(), threads, |s| {
        data.with_shard(s, |shard| {
            let mut acc = vec![0.0; d];
            accumulate(shard, &mut acc);
            acc
        })
    });
    let mut total: Option<Vec<f64>> = None;
    for partial in partials {
        let partial = partial?;
        match &mut total {
            None => total = Some(partial),
            Some(t) => {
                for (slot, p) in t.iter_mut().zip(&partial) {
                    *slot += p;
                }
            }
        }
    }
    Ok(total.unwrap_or_else(|| vec![0.0; d]))
}

/// Fits a z-score normalization and applies it, returning both the
/// transformed matrix and the fitted parameters.
///
/// # Errors
///
/// Same as [`ZScore::fit`].
pub fn zscore_columns(data: &Matrix) -> Result<(Matrix, ZScore)> {
    let z = ZScore::fit(data)?;
    let t = z.transform(data)?;
    Ok((t, z))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance_known() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&xs), 5.0);
        assert!((variance(&xs) - 4.0).abs() < 1e-12);
        assert!((std_dev(&xs) - 2.0).abs() < 1e-12);
        assert!((sample_variance(&xs) - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[1.0]), 0.0);
        assert_eq!(sample_std_dev(&[3.0]), 0.0);
    }

    #[test]
    fn mad_known_and_outlier_resistant() {
        // median 3, deviations [2,1,0,1,2] → MAD 1.
        assert_eq!(mad(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap(), 1.0);
        // A wild spike barely moves the MAD while it wrecks the std dev.
        let spiked = [1.0, 2.0, 3.0, 4.0, 1e9];
        assert!(mad(&spiked).unwrap() <= 2.0);
        assert!(std_dev(&spiked) > 1e6);
        assert!(mad(&[]).is_err());
    }

    #[test]
    fn robust_scale_ignores_spikes_and_handles_constants() {
        let mut rows: Vec<Vec<f64>> = (0..9).map(|i| vec![i as f64, 7.0]).collect();
        rows[4][0] = 1e12; // spike replaces the median-adjacent point
        let data = Matrix::from_rows(&rows).unwrap();
        let z = robust_scale(&data).unwrap();
        // Column 0: clean values 0..8 minus the spiked row; scale stays O(1).
        assert!(z.std_devs[0] < 10.0, "scale {}", z.std_devs[0]);
        // Constant column falls back to scale 1.0 like ZScore::fit.
        assert_eq!(z.means[1], 7.0);
        assert_eq!(z.std_devs[1], 1.0);
        assert!(robust_scale(&Matrix::zeros(0, 2)).is_err());
    }

    #[test]
    fn pearson_perfect_and_anti() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&xs, &ys).unwrap() - 1.0).abs() < 1e-12);
        let neg: Vec<f64> = ys.iter().map(|y| -y).collect();
        assert!((pearson(&xs, &neg).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_constant_series_is_zero() {
        let xs = [1.0, 1.0, 1.0];
        let ys = [1.0, 2.0, 3.0];
        assert_eq!(pearson(&xs, &ys).unwrap(), 0.0);
    }

    #[test]
    fn pearson_validates() {
        assert!(pearson(&[1.0], &[1.0, 2.0]).is_err());
        assert!(pearson(&[], &[]).is_err());
    }

    #[test]
    fn ranks_handle_ties_and_order() {
        assert_eq!(ranks(&[5.0]), vec![1.0]);
        assert_eq!(ranks(&[3.0, 1.0, 2.0]), vec![3.0, 1.0, 2.0]);
        assert_eq!(ranks(&[7.0, 7.0, 7.0]), vec![2.0, 2.0, 2.0]);
    }

    #[test]
    fn spearman_detects_monotone_nonlinear() {
        // y = x^3 is perfectly monotone: Spearman = 1 even though Pearson < 1.
        let xs: Vec<f64> = (-5..=5).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| x.powi(3)).collect();
        let s = spearman(&xs, &ys).unwrap();
        assert!((s - 1.0).abs() < 1e-12, "spearman {s}");
        let p = pearson(&xs, &ys).unwrap();
        assert!(p < 1.0 - 1e-6);
    }

    #[test]
    fn spearman_is_outlier_robust() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        let mut ys = [2.0, 4.0, 6.0, 8.0, 10.0];
        let clean = spearman(&xs, &ys).unwrap();
        ys[4] = 1e9; // a wild outlier keeps the same rank order
        let dirty = spearman(&xs, &ys).unwrap();
        assert!((clean - dirty).abs() < 1e-12);
    }

    #[test]
    fn spearman_validates() {
        assert!(spearman(&[1.0], &[1.0, 2.0]).is_err());
        assert!(spearman(&[], &[]).is_err());
    }

    #[test]
    fn quantile_interpolates() {
        let xs = [4.0, 1.0, 3.0, 2.0];
        assert_eq!(quantile(&xs, 0.0).unwrap(), 1.0);
        assert_eq!(quantile(&xs, 1.0).unwrap(), 4.0);
        assert_eq!(median(&xs).unwrap(), 2.5);
        assert_eq!(quantile(&xs, 0.25).unwrap(), 1.75);
    }

    #[test]
    fn quantile_validates() {
        assert!(quantile(&[], 0.5).is_err());
        assert!(quantile(&[1.0], 1.5).is_err());
        assert!(quantile(&[f64::NAN], 0.5).is_err());
    }

    #[test]
    fn summary_fields_consistent() {
        let xs: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let s = DistributionSummary::from_samples(&xs).unwrap();
        assert_eq!(s.n, 100);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 100.0);
        assert!((s.mean - 50.5).abs() < 1e-12);
        assert!(s.p25 < s.median && s.median < s.p75);
        assert!(s.p2_5 < s.p25 && s.p75 < s.p97_5);
        assert!(s.central95_half_width() > 0.0);
    }

    #[test]
    fn zscore_normalizes_columns() {
        let m = Matrix::from_rows(&[vec![1.0, 100.0], vec![2.0, 200.0], vec![3.0, 300.0]]).unwrap();
        let (t, z) = zscore_columns(&m).unwrap();
        for j in 0..2 {
            let col = t.col(j);
            assert!(mean(&col).abs() < 1e-12);
            assert!((std_dev(&col) - 1.0).abs() < 1e-12);
        }
        // Transform of the original means lands on zero.
        let back = z
            .transform(&Matrix::from_rows(&[vec![z.means[0], z.means[1]]]).unwrap())
            .unwrap();
        assert!(back[(0, 0)].abs() < 1e-12);
    }

    #[test]
    fn zscore_constant_column_is_shift_only() {
        let m = Matrix::from_rows(&[vec![5.0], vec![5.0], vec![5.0]]).unwrap();
        let (t, _) = zscore_columns(&m).unwrap();
        assert!(t.col(0).iter().all(|&x| x == 0.0));
    }

    #[test]
    fn zscore_transform_dimension_check() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let (_, z) = zscore_columns(&m).unwrap();
        assert!(z.transform(&Matrix::zeros(1, 3)).is_err());
    }
}
