//! A realistic capacity-planning study: how much last-level cache can we
//! give away to a new co-tenant (via Intel CAT partitioning) before HP
//! services degrade past an SLO budget?
//!
//! The study sweeps the LLC allocation from the full 30 MB/socket down to
//! 8 MB/socket, asks FLARE for the fleet-wide and per-service impact of
//! each setting, and reports the largest giveaway that keeps every
//! protected service inside the SLO.
//!
//! ```sh
//! cargo run --release --example cache_upgrade_study
//! ```

use flare::prelude::*;

/// Services with latency SLOs: degradation budget 10 % each.
const PROTECTED: [JobName; 3] = [
    JobName::DataCaching,
    JobName::WebSearch,
    JobName::WebServing,
];
const SLO_BUDGET_PCT: f64 = 10.0;

fn main() -> Result<(), FlareError> {
    println!("collecting corpus and fitting FLARE (once; reused for every candidate)...");
    let corpus = Corpus::generate(&CorpusConfig::default());
    let flare = Flare::fit(corpus, FlareConfig::default())?;
    println!(
        "  {} representatives extracted\n",
        flare.n_representatives()
    );

    println!(
        "{:>10} {:>10} | per-service impact (%)",
        "LLC MB/skt", "fleet %"
    );
    println!(
        "{:>10} {:>10} | {:>6} {:>6} {:>6}",
        "", "", "DC", "WSC", "WSV"
    );

    let mut best: Option<f64> = None;
    for llc_mb in [24.0, 20.0, 16.0, 12.0, 10.0, 8.0] {
        let feature = Feature::CacheSizing {
            llc_mb_per_socket: llc_mb,
        };
        let fleet = flare.evaluate(&feature)?;
        let per_service: Vec<f64> = PROTECTED
            .iter()
            .map(|&job| {
                flare
                    .evaluate_job(job, &feature)
                    .map(|e| e.impact_pct)
                    .unwrap_or(f64::NAN)
            })
            .collect();
        let ok = per_service.iter().all(|&i| i < SLO_BUDGET_PCT);
        println!(
            "{:>10} {:>10.2} | {:>6.2} {:>6.2} {:>6.2} {}",
            llc_mb,
            fleet.impact_pct,
            per_service[0],
            per_service[1],
            per_service[2],
            if ok { "within SLO" } else { "VIOLATES SLO" },
        );
        if ok {
            best = Some(llc_mb);
        }
    }

    match best {
        Some(llc) => println!(
            "\nrecommendation: shrink to {llc} MB/socket — frees {} MB/socket for the \
             co-tenant while every protected service stays under {SLO_BUDGET_PCT}% degradation.",
            30.0 - llc
        ),
        None => println!("\nno candidate allocation satisfies the SLO budget."),
    }
    println!(
        "total testbed cost: {} replays per candidate instead of ~1,000 (full datacenter).",
        flare.n_representatives()
    );
    Ok(())
}
