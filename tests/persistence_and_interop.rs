//! Integration tests for persistence (serde) and cross-crate interop: the
//! database survives JSON round-trips, corpora serialize, and the analyzer
//! consumes what the simulator produces without adapters.

use flare::metrics::database::MetricDatabase;
use flare::prelude::*;

fn small_corpus() -> (Corpus, CorpusConfig) {
    let cfg = CorpusConfig {
        machines: 4,
        days: 2.0,
        tick_minutes: 15.0,
        ..CorpusConfig::default()
    };
    (Corpus::generate(&cfg), cfg)
}

#[test]
fn metric_database_json_roundtrip_preserves_pipeline_results() {
    let (corpus, cfg) = small_corpus();
    let db = corpus.to_metric_database(&cfg.machine_config);
    let json = db.to_json().expect("serialize");
    let restored = MetricDatabase::from_json(&json).expect("parse");
    assert_eq!(db, restored);

    // Fitting on the restored database yields identical representatives.
    let config = FlareConfig {
        cluster_count: ClusterCountRule::Fixed(8),
        ..FlareConfig::default()
    };
    let a = flare::core::analyzer::Analyzer::fit(&db, &config).expect("fit original");
    let b = flare::core::analyzer::Analyzer::fit(&restored, &config).expect("fit restored");
    assert_eq!(a.representatives(), b.representatives());
    assert_eq!(a.clustering().assignments, b.clustering().assignments);
}

#[test]
fn corpus_serializes() {
    let (corpus, _) = small_corpus();
    let json = serde_json::to_string(&corpus).expect("serialize corpus");
    let restored: Corpus = serde_json::from_str(&json).expect("parse corpus");
    assert_eq!(corpus.entries(), restored.entries());
}

#[test]
fn database_save_load_file() {
    let (corpus, cfg) = small_corpus();
    let db = corpus.to_metric_database(&cfg.machine_config);
    let dir = std::env::temp_dir().join("flare_integration");
    std::fs::create_dir_all(&dir).expect("tmpdir");
    let path = dir.join("corpus_db.json");
    db.save(&path).expect("save");
    let loaded = MetricDatabase::load(&path).expect("load");
    assert_eq!(db, loaded);
    std::fs::remove_file(&path).ok();
}

#[test]
fn job_mix_strings_reconstruct_scenarios() {
    // The Replayer contract: the database's job_mix is sufficient to
    // rebuild the exact scenario (the paper's "recorded commands").
    let (corpus, cfg) = small_corpus();
    let db = corpus.to_metric_database(&cfg.machine_config);
    for e in corpus.entries().iter().take(50) {
        let rec = db.get(e.id).expect("aligned databases");
        let rebuilt = Scenario::from_counts(rec.job_mix.iter().map(|(name, n)| {
            let job: JobName = name.parse().expect("abbrev roundtrip");
            (job, *n)
        }));
        assert_eq!(rebuilt, e.scenario, "scenario {} mismatch", e.id);
    }
}

#[test]
fn fallible_replay_types_roundtrip_through_json() {
    use flare::core::replayer::{Measurement, ReplayError, RetryPolicy};

    let policy = RetryPolicy {
        max_retries: 5,
        backoff_base_ms: 20,
        seed: 99,
    };
    let json = serde_json::to_string(&policy).expect("serialize policy");
    let restored: RetryPolicy = serde_json::from_str(&json).expect("parse policy");
    assert_eq!(policy, restored);
    // Backoff schedules survive persistence bit-for-bit.
    assert_eq!(policy.backoff_ms(42, 3), restored.backoff_ms(42, 3));

    let err = ReplayError {
        attempts: 3,
        reason: "container failed to start".into(),
    };
    let json = serde_json::to_string(&err).expect("serialize error");
    let restored: ReplayError = serde_json::from_str(&json).expect("parse error");
    assert_eq!(err, restored);

    // The fallible result of a run — what a distributed harness would ship
    // back from a remote testbed — round-trips in both variants.
    let ok: Result<Measurement, ReplayError> = Ok(Measurement {
        hp_perf: Some(0.93),
        per_job_perf: vec![(JobName::DataCaching, 0.93)],
        hp_mips: 1234.5,
    });
    let bad: Result<Measurement, ReplayError> = Err(err);
    for result in [ok, bad] {
        let json = serde_json::to_string(&result).expect("serialize result");
        let restored: Result<Measurement, ReplayError> =
            serde_json::from_str(&json).expect("parse result");
        assert_eq!(result, restored);
    }
}

#[test]
fn fault_plan_and_ingest_report_roundtrip_through_json() {
    use flare::metrics::database::{IngestPolicy, IngestReport};
    use flare::sim::faults::FaultPlan;

    let plan = FaultPlan {
        seed: 7,
        sample_dropout: 0.1,
        stuck_sensor: 0.02,
        outlier_spike: 0.01,
        record_loss: 0.05,
        record_duplication: 0.03,
        clock_skew: 0.02,
        noise_rel_std: 0.04,
    };
    let json = serde_json::to_string(&plan).expect("serialize plan");
    let restored: FaultPlan = serde_json::from_str(&json).expect("parse plan");
    assert_eq!(plan, restored);

    // An ingest report produced by real corruption round-trips intact.
    let (corpus, cfg) = small_corpus();
    let db = corpus.to_metric_database(&cfg.machine_config);
    let injector = flare::sim::faults::FaultInjector::new(plan).expect("valid plan");
    let (_, report) = injector.corrupt_database(&db, &IngestPolicy::default());
    assert!(!report.is_clean(), "plan above must corrupt something");
    let json = serde_json::to_string(&report).expect("serialize report");
    let restored: IngestReport = serde_json::from_str(&json).expect("parse report");
    assert_eq!(report, restored);
}

#[test]
fn estimate_coverage_fields_default_on_legacy_json() {
    use flare::core::estimate::AllJobEstimate;

    // JSON written before the fallible-replay fields existed must still
    // parse, with full coverage and no dropped clusters assumed.
    let legacy = r#"{"impact_pct": 4.2, "clusters": [], "replay_count": 9}"#;
    let est: AllJobEstimate = serde_json::from_str(legacy).expect("parse legacy estimate");
    assert_eq!(est.coverage, 1.0);
    assert!(est.dropped_clusters.is_empty());
}

#[test]
fn legacy_snapshot_json_without_version_field_loads() {
    use flare::core::{FlareSnapshot, SNAPSHOT_VERSION};

    // Snapshot JSON written before the schema carried a version field must
    // still parse (defaulting to the legacy version 0) and load into a
    // working model that re-serializes at the current version.
    let (corpus, _) = small_corpus();
    let fitted = Flare::fit(
        corpus,
        FlareConfig {
            cluster_count: ClusterCountRule::Fixed(6),
            ..FlareConfig::default()
        },
    )
    .expect("fit");
    let snapshot = fitted.to_snapshot();
    assert_eq!(snapshot.version, SNAPSHOT_VERSION);

    let json = serde_json::to_string(&snapshot).expect("serialize snapshot");
    let legacy_json = {
        let value: serde_json::Value = serde_json::from_str(&json).expect("parse as value");
        let mut map = match value {
            serde_json::Value::Object(map) => map,
            other => panic!("snapshot must serialize as an object, got {other}"),
        };
        assert!(map.remove("version").is_some(), "version field present");
        serde_json::to_string(&serde_json::Value::Object(map)).expect("re-serialize")
    };

    let legacy: FlareSnapshot = serde_json::from_str(&legacy_json).expect("parse legacy snapshot");
    assert_eq!(legacy.version, 0, "missing version must default to legacy");
    let restored = Flare::from_snapshot(legacy).expect("load legacy snapshot");
    assert_eq!(
        restored.analyzer().representatives(),
        fitted.analyzer().representatives()
    );
    assert_eq!(restored.to_snapshot().version, SNAPSHOT_VERSION);

    // A snapshot from a *future* build is rejected rather than misread.
    let mut future = fitted.to_snapshot();
    future.version = SNAPSHOT_VERSION + 1;
    assert!(Flare::from_snapshot(future).is_err());
}

#[test]
fn custom_testbed_implementations_plug_in() {
    // A user-supplied testbed (here: a simulator wrapper that injects a
    // fixed measurement bias) drops into the estimation path.
    struct BiasedTestbed(f64);
    impl Testbed for BiasedTestbed {
        fn run(
            &self,
            scenario: &Scenario,
            config: &MachineConfig,
        ) -> flare::core::replayer::Measurement {
            let mut m = SimTestbed.run(scenario, config);
            if let Some(p) = m.hp_perf.as_mut() {
                *p *= self.0;
            }
            m
        }
    }

    let (corpus, _) = small_corpus();
    let flare = Flare::fit(
        corpus,
        FlareConfig {
            cluster_count: ClusterCountRule::Fixed(6),
            ..FlareConfig::default()
        },
    )
    .expect("fit");
    let feature = Feature::paper_feature1();
    let unbiased = flare.evaluate_on(&SimTestbed, &feature).expect("unbiased");
    // A multiplicative bias on BOTH baseline and feature runs cancels in
    // the relative MIPS-reduction metric.
    let biased = flare
        .evaluate_on(&BiasedTestbed(0.9), &feature)
        .expect("biased");
    assert!((unbiased.impact_pct - biased.impact_pct).abs() < 1e-9);
}
