//! The Replayer: step 4 of the FLARE pipeline (Fig. 4).
//!
//! The Replayer reconstructs a representative scenario on a testbed — in
//! the paper, by re-executing the recorded job commands under Docker; here,
//! through the [`Testbed`] abstraction — and measures performance under a
//! machine configuration. Running each representative under the baseline
//! and under the feature yields the per-representative impact that the
//! estimator aggregates.

use flare_sim::interference::{evaluate, MachinePerf};
use flare_sim::kernel::{CacheStats, EvalCache, ProfileTable};
use flare_sim::machine::MachineConfig;
use flare_sim::scenario::Scenario;
use flare_workloads::job::JobName;
use serde::{Deserialize, Serialize};

/// What one testbed run of a scenario reports.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Measurement {
    /// Mean normalized performance over HP instances (`None` if the
    /// scenario has no HP jobs).
    pub hp_perf: Option<f64>,
    /// Mean normalized performance per HP job present in the scenario.
    pub per_job_perf: Vec<(JobName, f64)>,
    /// Total HP MIPS (absolute).
    pub hp_mips: f64,
}

impl Measurement {
    /// Normalized performance of `job` in this measurement, if present.
    pub fn job_perf(&self, job: JobName) -> Option<f64> {
        self.per_job_perf
            .iter()
            .find(|(j, _)| *j == job)
            .map(|&(_, p)| p)
    }

    /// The HP summary of one evaluated colocation — the reduction every
    /// simulator-backed testbed applies to a [`MachinePerf`].
    pub fn from_perf(perf: &MachinePerf) -> Measurement {
        let per_job_perf = JobName::HIGH_PRIORITY
            .iter()
            .filter_map(|&j| perf.job_normalized_perf(j).map(|p| (j, p)))
            .collect();
        Measurement {
            hp_perf: perf.hp_normalized_perf(),
            per_job_perf,
            hp_mips: perf.hp_mips(),
        }
    }
}

/// A testbed run that failed for good: every attempt the retry policy
/// allowed was spent without a measurement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReplayError {
    /// Total attempts made (initial try + retries).
    pub attempts: u32,
    /// The last failure's description.
    pub reason: String,
}

impl std::fmt::Display for ReplayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "replay failed after {} attempt(s): {}",
            self.attempts, self.reason
        )
    }
}

impl std::error::Error for ReplayError {}

/// A load-testing environment able to reconstruct a job colocation under a
/// machine configuration and measure it.
///
/// The paper's testbed is one rack of real machines driven by Docker and
/// client load generators; the default implementation here is the
/// simulator ([`SimTestbed`]). The trait keeps FLARE's estimator agnostic
/// so a physical-testbed implementation could be dropped in.
///
/// # Determinism contract
///
/// `run` must be a pure function of `(scenario, config)`: two calls with
/// equal arguments return equal measurements, regardless of call order or
/// thread. FLARE's impact baselines rely on this to deduplicate repeated
/// colocation mixes and memoize testbed runs ([`CachedSimTestbed`],
/// `full_datacenter_impact`) without changing any result byte. A testbed
/// whose *attempts* can fail nondeterministically expresses that through
/// [`Testbed::try_run`] instead.
pub trait Testbed {
    /// Runs `scenario` under `config` and reports the measurement.
    fn run(&self, scenario: &Scenario, config: &MachineConfig) -> Measurement;

    /// Fallible variant of [`Testbed::run`] for testbeds whose runs can
    /// fail (container crash, load-generator timeout, lost telemetry).
    /// The default implementation wraps the infallible `run`, so existing
    /// testbeds keep working unchanged.
    ///
    /// # Errors
    ///
    /// Returns the failure of this single attempt; retrying is the
    /// caller's job (see [`run_with_retry`]).
    fn try_run(
        &self,
        scenario: &Scenario,
        config: &MachineConfig,
    ) -> std::result::Result<Measurement, ReplayError> {
        Ok(self.run(scenario, config))
    }
}

/// Bounded-retry policy for fallible testbed runs, with deterministic
/// seeded backoff so reruns are reproducible.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Retries after the initial attempt (0 = one attempt total).
    #[serde(default)]
    pub max_retries: u32,
    /// Base backoff in milliseconds; 0 (the default) disables sleeping
    /// entirely, which is what simulator-backed testbeds want.
    #[serde(default)]
    pub backoff_base_ms: u64,
    /// Seed for the deterministic backoff jitter.
    #[serde(default)]
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 2,
            backoff_base_ms: 0,
            seed: 0x5EED,
        }
    }
}

impl RetryPolicy {
    /// Backoff before retry number `attempt` (0-based) of the scenario
    /// identified by `key`: exponential in the attempt with deterministic
    /// jitter drawn from `(seed, key, attempt)`. Always 0 when
    /// `backoff_base_ms` is 0.
    pub fn backoff_ms(&self, key: u64, attempt: u32) -> u64 {
        if self.backoff_base_ms == 0 {
            return 0;
        }
        let exp = self
            .backoff_base_ms
            .saturating_mul(1u64 << attempt.min(16) as u64);
        // splitmix64 over the (seed, key, attempt) tuple — same jitter on
        // every rerun.
        let mut x = self
            .seed
            .wrapping_add(key.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add(attempt as u64);
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^= x >> 31;
        // Saturating: with a huge base the exponential term pins at
        // u64::MAX and the jitter add must not wrap past it.
        exp.saturating_add(x % (exp / 2 + 1))
    }
}

/// A stable identity for a scenario's job mix (FNV-1a over the sorted
/// mix), used to key deterministic retry jitter and fault injection.
pub fn scenario_key(scenario: &Scenario) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    let mut fnv = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    };
    for (job, count) in scenario.job_mix_strings() {
        fnv(job.as_bytes());
        fnv(&count.to_le_bytes());
    }
    h
}

/// Runs `scenario` under `config`, retrying failed attempts per `policy`.
///
/// # Errors
///
/// Returns the last attempt's [`ReplayError`] (with `attempts` set to the
/// total tries spent) once the retry budget is exhausted.
pub fn run_with_retry<T: Testbed + ?Sized>(
    testbed: &T,
    scenario: &Scenario,
    config: &MachineConfig,
    policy: &RetryPolicy,
) -> std::result::Result<Measurement, ReplayError> {
    let key = scenario_key(scenario);
    let mut last: Option<ReplayError> = None;
    for attempt in 0..=policy.max_retries {
        match testbed.try_run(scenario, config) {
            Ok(m) => return Ok(m),
            Err(e) => {
                last = Some(e);
                if attempt < policy.max_retries {
                    let ms = policy.backoff_ms(key, attempt);
                    if ms > 0 {
                        std::thread::sleep(std::time::Duration::from_millis(ms));
                    }
                }
            }
        }
    }
    let last = last.expect("loop runs at least once");
    Err(ReplayError {
        attempts: policy.max_retries + 1,
        reason: last.reason,
    })
}

/// The simulator-backed testbed (the reproduction's default).
#[derive(Debug, Clone, Copy, Default)]
pub struct SimTestbed;

impl Testbed for SimTestbed {
    fn run(&self, scenario: &Scenario, config: &MachineConfig) -> Measurement {
        Measurement::from_perf(&evaluate(scenario, config))
    }
}

/// A [`SimTestbed`] with a content-addressed evaluation memo
/// ([`flare_sim::kernel::EvalCache`]): repeated (colocation multiset,
/// machine config, load) runs return the stored evaluation instead of
/// re-solving. Because [`Testbed::run`] is pure, the cached measurement is
/// byte-identical to [`SimTestbed`]'s — the cache is a wall-clock knob
/// only. Thread-safe: share one instance by reference across replay
/// workers so both sides of every A/B reuse each other's baseline runs —
/// and across *baselines*: the canary, sampling, load-test, and cost
/// experiments (plus the CLI's `evaluate`/`report` subcommands) all replay
/// overlapping `(scenario, config)` pairs, so one shared instance turns
/// their duplicate solves into cache hits without changing a single bit of
/// any estimate.
#[derive(Debug, Default)]
pub struct CachedSimTestbed {
    cache: EvalCache,
}

impl CachedSimTestbed {
    /// A testbed with an empty cache.
    pub fn new() -> Self {
        CachedSimTestbed::default()
    }

    /// Hit/miss/size counters of the underlying evaluation cache.
    pub fn stats(&self) -> CacheStats {
        self.cache.stats()
    }
}

impl Testbed for CachedSimTestbed {
    fn run(&self, scenario: &Scenario, config: &MachineConfig) -> Measurement {
        let perf = flare_sim::kernel::with_scratch(|scratch| {
            self.cache.evaluate(scenario, config, scratch)
        });
        Measurement::from_perf(&perf)
    }
}

/// A testbed that reconstructs scenarios with **calibrated synthetic
/// stressors** instead of the real service stacks (the §5.1 iBench idea):
/// each job is replaced by a load-generator profile whose coarse knobs
/// were dialed to match the job's measured resource behaviour.
///
/// Use when the real services cannot be deployed on the evaluation
/// testbed (licensing, data gravity, stack complexity). Fidelity is
/// bounded by knob quantization — `abl04_proxy_replay` measures the cost.
#[derive(Debug, Clone)]
pub struct ProxyTestbed {
    /// Override/catalog profiles resolved once at construction into the
    /// kernel layer's dense table, so every replay skips the per-instance
    /// map lookup + clone.
    table: ProfileTable,
}

impl Default for ProxyTestbed {
    fn default() -> Self {
        ProxyTestbed::with_overrides(Default::default())
    }
}

impl ProxyTestbed {
    /// A proxy testbed with every catalog job replaced by its calibrated
    /// stressor.
    pub fn calibrated() -> Self {
        ProxyTestbed::with_overrides(
            JobName::ALL
                .iter()
                .map(|&j| (j, flare_workloads::stressor::proxy_profile(j)))
                .collect(),
        )
    }

    /// A proxy testbed with explicit per-job profiles; jobs without an
    /// entry fall back to the real catalog profile (mixed replay).
    pub fn with_overrides(
        overrides: std::collections::BTreeMap<JobName, flare_workloads::profile::JobProfile>,
    ) -> Self {
        let table = ProfileTable::from_fn(|job| {
            overrides
                .get(&job)
                .cloned()
                .unwrap_or_else(|| flare_workloads::catalog::profile(job))
        });
        ProxyTestbed { table }
    }
}

impl Testbed for ProxyTestbed {
    fn run(&self, scenario: &Scenario, config: &MachineConfig) -> Measurement {
        let perf = flare_sim::kernel::with_scratch(|scratch| {
            flare_sim::kernel::evaluate_with_table(scenario, config, &self.table, scratch)
        });
        Measurement::from_perf(&perf)
    }
}

/// Impact of a feature on one scenario: the paper's "MIPS reduction (%)"
/// (positive = the feature slowed HP jobs down).
pub fn mips_reduction_pct(baseline_perf: f64, feature_perf: f64) -> f64 {
    if baseline_perf <= 0.0 {
        return 0.0;
    }
    (baseline_perf - feature_perf) / baseline_perf * 100.0
}

/// Replays one scenario under baseline and feature configs and returns the
/// all-HP-job MIPS reduction, or `None` if the scenario has no HP jobs.
pub fn replay_impact<T: Testbed>(
    testbed: &T,
    scenario: &Scenario,
    baseline: &MachineConfig,
    feature: &MachineConfig,
) -> Option<f64> {
    let b = testbed.run(scenario, baseline).hp_perf?;
    let f = testbed.run(scenario, feature).hp_perf?;
    Some(mips_reduction_pct(b, f))
}

/// Replays one scenario and returns the MIPS reduction of a specific job,
/// or `None` if the job is absent.
pub fn replay_job_impact<T: Testbed>(
    testbed: &T,
    scenario: &Scenario,
    job: JobName,
    baseline: &MachineConfig,
    feature: &MachineConfig,
) -> Option<f64> {
    let b = testbed.run(scenario, baseline).job_perf(job)?;
    let f = testbed.run(scenario, feature).job_perf(job)?;
    Some(mips_reduction_pct(b, f))
}

/// Fallible [`replay_impact`]: `Ok(None)` keeps the legacy short-circuit
/// (no HP jobs in the baseline run → the feature run is never attempted);
/// `Err` means the testbed failed even after retries.
///
/// # Errors
///
/// Propagates the exhausted-retries [`ReplayError`] of either run.
pub fn try_replay_impact<T: Testbed>(
    testbed: &T,
    scenario: &Scenario,
    baseline: &MachineConfig,
    feature: &MachineConfig,
    policy: &RetryPolicy,
) -> std::result::Result<Option<f64>, ReplayError> {
    let b = match run_with_retry(testbed, scenario, baseline, policy)?.hp_perf {
        Some(b) => b,
        None => return Ok(None),
    };
    let f = match run_with_retry(testbed, scenario, feature, policy)?.hp_perf {
        Some(f) => f,
        None => return Ok(None),
    };
    Ok(Some(mips_reduction_pct(b, f)))
}

/// Fallible [`replay_job_impact`], with the same `Ok(None)` semantics for
/// a job absent from a measurement.
///
/// # Errors
///
/// Propagates the exhausted-retries [`ReplayError`] of either run.
pub fn try_replay_job_impact<T: Testbed>(
    testbed: &T,
    scenario: &Scenario,
    job: JobName,
    baseline: &MachineConfig,
    feature: &MachineConfig,
    policy: &RetryPolicy,
) -> std::result::Result<Option<f64>, ReplayError> {
    let b = match run_with_retry(testbed, scenario, baseline, policy)?.job_perf(job) {
        Some(b) => b,
        None => return Ok(None),
    };
    let f = match run_with_retry(testbed, scenario, feature, policy)?.job_perf(job) {
        Some(f) => f,
        None => return Ok(None),
    };
    Ok(Some(mips_reduction_pct(b, f)))
}

/// A fault-injecting wrapper testbed: fails deterministically to exercise
/// the retry and graceful-degradation paths.
///
/// Failures come in two flavours, both keyed by the scenario's job mix so
/// they are independent of replay order and thread count:
///
/// - **permanent** — the scenario fails on every attempt (a container
///   image that cannot start on this rack);
/// - **transient** — individual attempts fail with the given rate but a
///   retry can succeed (a load-generator timeout).
#[derive(Debug)]
pub struct FlakyTestbed<T> {
    inner: T,
    transient_rate: f64,
    permanent_rate: f64,
    seed: u64,
    attempts: std::sync::Mutex<std::collections::HashMap<u64, u32>>,
}

impl<T> FlakyTestbed<T> {
    /// Wraps `inner` with the given failure rates (each in `[0, 1]`).
    pub fn new(inner: T, transient_rate: f64, permanent_rate: f64, seed: u64) -> Self {
        FlakyTestbed {
            inner,
            transient_rate: transient_rate.clamp(0.0, 1.0),
            permanent_rate: permanent_rate.clamp(0.0, 1.0),
            seed,
            attempts: std::sync::Mutex::new(std::collections::HashMap::new()),
        }
    }

    /// Uniform draw in `[0, 1)` from `(seed, key, salt)` via splitmix64.
    fn uniform(&self, key: u64, salt: u64) -> f64 {
        let mut x = self
            .seed
            .wrapping_add(key.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add(salt.wrapping_mul(0xD6E8_FEB8_6659_FD93));
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^= x >> 31;
        (x >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl<T: Testbed> Testbed for FlakyTestbed<T> {
    fn run(&self, scenario: &Scenario, config: &MachineConfig) -> Measurement {
        self.inner.run(scenario, config)
    }

    fn try_run(
        &self,
        scenario: &Scenario,
        config: &MachineConfig,
    ) -> std::result::Result<Measurement, ReplayError> {
        let key = scenario_key(scenario);
        if self.permanent_rate > 0.0 && self.uniform(key, 1) < self.permanent_rate {
            return Err(ReplayError {
                attempts: 1,
                reason: "injected permanent failure".into(),
            });
        }
        let attempt = {
            let mut counts = self.attempts.lock().expect("attempt counter poisoned");
            let n = counts.entry(key).or_insert(0);
            *n += 1;
            *n as u64
        };
        if self.transient_rate > 0.0 && self.uniform(key, 2 + attempt) < self.transient_rate {
            return Err(ReplayError {
                attempts: 1,
                reason: "injected transient failure".into(),
            });
        }
        Ok(self.inner.run(scenario, config))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flare_sim::feature::Feature;
    use flare_sim::machine::MachineShape;

    fn baseline() -> MachineConfig {
        MachineShape::default_shape().baseline_config()
    }

    #[test]
    fn sim_testbed_reports_hp_only() {
        let s = Scenario::from_counts([(JobName::DataCaching, 2), (JobName::Mcf, 3)]);
        let m = SimTestbed.run(&s, &baseline());
        assert!(m.hp_perf.is_some());
        assert_eq!(m.per_job_perf.len(), 1);
        assert!(m.job_perf(JobName::DataCaching).is_some());
        assert!(m.job_perf(JobName::Mcf).is_none()); // LP jobs unmanaged
    }

    #[test]
    fn lp_only_scenario_measures_nothing() {
        let s = Scenario::from_counts([(JobName::Sjeng, 2)]);
        let m = SimTestbed.run(&s, &baseline());
        assert_eq!(m.hp_perf, None);
        assert!(m.per_job_perf.is_empty());
        assert_eq!(m.hp_mips, 0.0);
    }

    #[test]
    fn mips_reduction_math() {
        assert!((mips_reduction_pct(1.0, 0.9) - 10.0).abs() < 1e-9);
        assert_eq!(mips_reduction_pct(0.0, 0.5), 0.0);
        assert!(mips_reduction_pct(0.8, 0.9) < 0.0); // improvements are negative
    }

    #[test]
    fn replay_impact_positive_for_capability_reducing_features() {
        let b = baseline();
        let f2 = Feature::paper_feature2().apply(&b);
        let s = Scenario::from_counts([(JobName::DataAnalytics, 4), (JobName::Perlbench, 4)]);
        let impact = replay_impact(&SimTestbed, &s, &b, &f2).unwrap();
        assert!(impact > 5.0, "DVFS cap should cost >5%: {impact}");
        assert!(impact < 50.0);
    }

    #[test]
    fn replay_job_impact_only_for_present_jobs() {
        let b = baseline();
        let f1 = Feature::paper_feature1().apply(&b);
        let s = Scenario::from_counts([(JobName::GraphAnalytics, 4), (JobName::Mcf, 4)]);
        assert!(replay_job_impact(&SimTestbed, &s, JobName::GraphAnalytics, &b, &f1).is_some());
        assert!(replay_job_impact(&SimTestbed, &s, JobName::WebSearch, &b, &f1).is_none());
    }

    #[test]
    fn proxy_testbed_tracks_real_replay_direction() {
        let b = baseline();
        let f1 = Feature::paper_feature1().apply(&b);
        let s = Scenario::from_counts([
            (JobName::GraphAnalytics, 3),
            (JobName::InMemoryAnalytics, 3),
            (JobName::Mcf, 4),
        ]);
        let real = replay_impact(&SimTestbed, &s, &b, &f1).unwrap();
        let proxy = replay_impact(&ProxyTestbed::calibrated(), &s, &b, &f1).unwrap();
        // Same sign and same order of magnitude; not exact (quantized knobs).
        assert!(proxy > 0.0, "proxy should see the cache cut: {proxy}");
        assert!(
            (proxy - real).abs() < real.max(5.0),
            "proxy {proxy}% should be within ~2x of real {real}%"
        );
    }

    #[test]
    fn proxy_overrides_fall_back_to_catalog() {
        let b = baseline();
        let empty = ProxyTestbed::with_overrides(Default::default());
        let s = Scenario::from_counts([(JobName::DataCaching, 2)]);
        let m_proxy = empty.run(&s, &b);
        let m_real = SimTestbed.run(&s, &b);
        assert_eq!(m_proxy, m_real, "no overrides == real replay");
    }

    #[test]
    fn cached_testbed_is_byte_identical_and_counts_hits() {
        let b = baseline();
        let f1 = Feature::paper_feature1().apply(&b);
        let cached = CachedSimTestbed::new();
        let mixes = [
            Scenario::from_counts([(JobName::DataCaching, 2), (JobName::Mcf, 3)]),
            Scenario::from_counts([(JobName::GraphAnalytics, 4)]),
            Scenario::from_counts([(JobName::Sjeng, 2)]), // LP-only
        ];
        for s in &mixes {
            for config in [&b, &f1] {
                assert_eq!(cached.run(s, config), SimTestbed.run(s, config));
                // Second run is a hit and still identical.
                assert_eq!(cached.run(s, config), SimTestbed.run(s, config));
            }
            assert_eq!(
                replay_impact(&cached, s, &b, &f1),
                replay_impact(&SimTestbed, s, &b, &f1)
            );
        }
        let stats = cached.stats();
        assert_eq!(stats.misses, 6, "one solve per distinct (mix, config)");
        // 6 repeat runs + 5 replay_impact runs (the LP-only mix
        // short-circuits before its feature-side run) — all hits.
        assert_eq!(stats.hits, 11, "repeats must hit: {stats:?}");
        assert_eq!(stats.entries, 6);
        assert_eq!(stats.configs, 2);
        assert!(stats.hit_rate() > 0.5);
    }

    #[test]
    fn replay_impact_none_without_hp() {
        let b = baseline();
        let f1 = Feature::paper_feature1().apply(&b);
        let s = Scenario::from_counts([(JobName::Libquantum, 4)]);
        assert!(replay_impact(&SimTestbed, &s, &b, &f1).is_none());
    }

    #[test]
    fn default_try_run_wraps_run() {
        let s = Scenario::from_counts([(JobName::DataCaching, 2)]);
        let b = baseline();
        assert_eq!(SimTestbed.try_run(&s, &b).unwrap(), SimTestbed.run(&s, &b));
    }

    /// Fails the first `fail_first` attempts of every scenario, then
    /// succeeds.
    struct EventuallyTestbed {
        fail_first: u32,
        calls: std::sync::Mutex<std::collections::HashMap<u64, u32>>,
    }

    impl Testbed for EventuallyTestbed {
        fn run(&self, scenario: &Scenario, config: &MachineConfig) -> Measurement {
            SimTestbed.run(scenario, config)
        }

        fn try_run(
            &self,
            scenario: &Scenario,
            config: &MachineConfig,
        ) -> std::result::Result<Measurement, ReplayError> {
            let mut calls = self.calls.lock().unwrap();
            let n = calls.entry(scenario_key(scenario)).or_insert(0);
            *n += 1;
            if *n <= self.fail_first {
                return Err(ReplayError {
                    attempts: 1,
                    reason: "warming up".into(),
                });
            }
            Ok(self.run(scenario, config))
        }
    }

    #[test]
    fn retry_recovers_from_transient_failures() {
        let t = EventuallyTestbed {
            fail_first: 2,
            calls: Default::default(),
        };
        let s = Scenario::from_counts([(JobName::DataCaching, 2)]);
        let policy = RetryPolicy::default(); // 2 retries = 3 attempts
        let m = run_with_retry(&t, &s, &baseline(), &policy).unwrap();
        assert!(m.hp_perf.is_some());
    }

    #[test]
    fn retry_budget_exhaustion_reports_attempts() {
        let t = EventuallyTestbed {
            fail_first: 10,
            calls: Default::default(),
        };
        let s = Scenario::from_counts([(JobName::DataCaching, 2)]);
        let policy = RetryPolicy {
            max_retries: 1,
            ..RetryPolicy::default()
        };
        let e = run_with_retry(&t, &s, &baseline(), &policy).unwrap_err();
        assert_eq!(e.attempts, 2);
        assert!(e.to_string().contains("2 attempt(s)"));
    }

    #[test]
    fn try_replay_impact_matches_infallible_path() {
        let b = baseline();
        let f2 = Feature::paper_feature2().apply(&b);
        let s = Scenario::from_counts([(JobName::DataAnalytics, 4), (JobName::Perlbench, 4)]);
        let policy = RetryPolicy::default();
        assert_eq!(
            try_replay_impact(&SimTestbed, &s, &b, &f2, &policy).unwrap(),
            replay_impact(&SimTestbed, &s, &b, &f2)
        );
        let lp_only = Scenario::from_counts([(JobName::Libquantum, 4)]);
        assert_eq!(
            try_replay_impact(&SimTestbed, &lp_only, &b, &f2, &policy).unwrap(),
            None
        );
        assert_eq!(
            try_replay_job_impact(&SimTestbed, &s, JobName::WebSearch, &b, &f2, &policy).unwrap(),
            None
        );
    }

    #[test]
    fn flaky_testbed_permanent_failures_survive_retries() {
        // With permanent_rate = 1.0 every scenario fails every attempt.
        let flaky = FlakyTestbed::new(SimTestbed, 0.0, 1.0, 7);
        let s = Scenario::from_counts([(JobName::DataCaching, 2)]);
        let policy = RetryPolicy::default();
        let e = run_with_retry(&flaky, &s, &baseline(), &policy).unwrap_err();
        assert_eq!(e.attempts, policy.max_retries + 1);
        // The infallible entry point still works (delegates to inner).
        assert!(flaky.run(&s, &baseline()).hp_perf.is_some());
    }

    #[test]
    fn flaky_testbed_transient_failures_are_retryable_and_deterministic() {
        let s = Scenario::from_counts([(JobName::WebSearch, 3), (JobName::Mcf, 2)]);
        let b = baseline();
        let policy = RetryPolicy {
            max_retries: 8,
            ..RetryPolicy::default()
        };
        let run = || {
            let flaky = FlakyTestbed::new(SimTestbed, 0.6, 0.0, 42);
            run_with_retry(&flaky, &s, &b, &policy).map(|m| m.hp_perf)
        };
        // Identical wrapper state → identical outcome.
        assert_eq!(run(), run());
        // With a generous budget the transient faults are eventually beaten.
        assert!(run().is_ok());
    }

    #[test]
    fn backoff_is_deterministic_bounded_and_off_by_default() {
        let p = RetryPolicy::default();
        assert_eq!(p.backoff_ms(123, 0), 0); // base 0 → never sleeps
        let p = RetryPolicy {
            max_retries: 3,
            backoff_base_ms: 10,
            seed: 9,
        };
        for attempt in 0..4 {
            let ms = p.backoff_ms(55, attempt);
            assert_eq!(ms, p.backoff_ms(55, attempt));
            let exp = 10u64 << attempt;
            assert!(ms >= exp && ms <= exp + exp / 2, "attempt {attempt}: {ms}");
        }
        assert_ne!(p.backoff_ms(55, 1), p.backoff_ms(56, 1)); // jitter keyed by scenario
    }

    #[test]
    fn backoff_saturates_instead_of_overflowing_at_extremes() {
        // A pathological base pins the exponential term at u64::MAX; the
        // jitter add must saturate there rather than wrap.
        let p = RetryPolicy {
            max_retries: u32::MAX,
            backoff_base_ms: u64::MAX,
            seed: 3,
        };
        for attempt in [0, 1, 16, 17, 1_000_000, u32::MAX] {
            assert_eq!(p.backoff_ms(7, attempt), u64::MAX, "attempt {attempt}");
        }
        // A base just under the saturation edge: exp + exp/2 can exceed
        // u64::MAX, so the sum must clamp, never panic or wrap.
        let p = RetryPolicy {
            max_retries: 20,
            backoff_base_ms: u64::MAX / (1 << 16) + 1,
            seed: 11,
        };
        let ms = p.backoff_ms(42, u32::MAX);
        assert_eq!(ms, u64::MAX);
    }

    #[test]
    fn backoff_attempt_cap_freezes_exponent_but_keeps_jitter_determinism() {
        let p = RetryPolicy {
            max_retries: u32::MAX,
            backoff_base_ms: 10,
            seed: 9,
        };
        // Past attempt 16 the exponent freezes at base << 16; the bound
        // and the per-(key, attempt) determinism contract still hold.
        let exp = 10u64 << 16;
        for attempt in [16, 17, 100, 1_000_000, u32::MAX] {
            let ms = p.backoff_ms(55, attempt);
            assert_eq!(ms, p.backoff_ms(55, attempt), "attempt {attempt}");
            assert!(ms >= exp && ms <= exp + exp / 2, "attempt {attempt}: {ms}");
        }
        // Jitter stays seeded by the attempt even once the exponent is
        // frozen — huge-attempt retries do not collapse to one delay.
        assert_ne!(p.backoff_ms(55, 17), p.backoff_ms(55, 18));
        assert_ne!(p.backoff_ms(55, 100), p.backoff_ms(55, 101));
    }

    #[test]
    fn scenario_key_is_mix_stable() {
        let a = Scenario::from_counts([(JobName::DataCaching, 2), (JobName::Mcf, 3)]);
        let b = Scenario::from_counts([(JobName::Mcf, 3), (JobName::DataCaching, 2)]);
        let c = Scenario::from_counts([(JobName::DataCaching, 3), (JobName::Mcf, 2)]);
        assert_eq!(scenario_key(&a), scenario_key(&b));
        assert_ne!(scenario_key(&a), scenario_key(&c));
    }
}
