//! Job identities: the 8 CloudSuite-style HP services and 6 SPEC-style LP
//! batch jobs of Table 3.

use crate::profile::Priority;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// Every job type the simulated datacenter hosts (Table 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum JobName {
    // ---- High-priority services (CloudSuite) ----
    /// Data Analytics: Hadoop + Mahout (TrainNB).
    DataAnalytics,
    /// Data Caching: memcached, 4 threads, 4 GB working set, 100 K QPS.
    DataCaching,
    /// Data Serving: Apache Cassandra, 20 threads.
    DataServing,
    /// Graph Analytics: Apache Spark executor.
    GraphAnalytics,
    /// In-memory Analytics: Apache Spark executor.
    InMemoryAnalytics,
    /// Media Streaming: Nginx, 4 threads, 50 connections.
    MediaStreaming,
    /// Web Search: Apache Solr (12 GB heap).
    WebSearch,
    /// Web Serving: MySQL + memcached + Nginx + PHP stack.
    WebServing,
    // ---- Low-priority batch (SPEC CPU2006, four copies per container) ----
    /// 400.perlbench.
    Perlbench,
    /// 458.sjeng.
    Sjeng,
    /// 462.libquantum.
    Libquantum,
    /// 483.xalancbmk.
    Xalancbmk,
    /// 471.omnetpp.
    Omnetpp,
    /// 429.mcf.
    Mcf,
}

impl JobName {
    /// All jobs, HP first, in Table 3 order.
    pub const ALL: &'static [JobName] = &[
        JobName::DataAnalytics,
        JobName::DataCaching,
        JobName::DataServing,
        JobName::GraphAnalytics,
        JobName::InMemoryAnalytics,
        JobName::MediaStreaming,
        JobName::WebSearch,
        JobName::WebServing,
        JobName::Perlbench,
        JobName::Sjeng,
        JobName::Libquantum,
        JobName::Xalancbmk,
        JobName::Omnetpp,
        JobName::Mcf,
    ];

    /// The eight High-Priority services.
    pub const HIGH_PRIORITY: &'static [JobName] = &[
        JobName::DataAnalytics,
        JobName::DataCaching,
        JobName::DataServing,
        JobName::GraphAnalytics,
        JobName::InMemoryAnalytics,
        JobName::MediaStreaming,
        JobName::WebSearch,
        JobName::WebServing,
    ];

    /// The six Low-Priority batch jobs.
    pub const LOW_PRIORITY: &'static [JobName] = &[
        JobName::Perlbench,
        JobName::Sjeng,
        JobName::Libquantum,
        JobName::Xalancbmk,
        JobName::Omnetpp,
        JobName::Mcf,
    ];

    /// Dense index of the job in [`JobName::ALL`] (declaration order), the
    /// key into flat per-job tables such as `flare_sim`'s `ProfileTable`.
    pub const fn index(self) -> usize {
        self as usize
    }

    /// Scheduling priority class of the job.
    pub fn priority(self) -> Priority {
        if Self::HIGH_PRIORITY.contains(&self) {
            Priority::High
        } else {
            Priority::Low
        }
    }

    /// The paper's abbreviation for HP services (GA, WSV, DA, DS, IA, MS,
    /// DC, WSC) or the SPEC shorthand for LP jobs.
    pub fn abbrev(self) -> &'static str {
        match self {
            JobName::DataAnalytics => "DA",
            JobName::DataCaching => "DC",
            JobName::DataServing => "DS",
            JobName::GraphAnalytics => "GA",
            JobName::InMemoryAnalytics => "IA",
            JobName::MediaStreaming => "MS",
            JobName::WebSearch => "WSC",
            JobName::WebServing => "WSV",
            JobName::Perlbench => "perlbench",
            JobName::Sjeng => "sjeng",
            JobName::Libquantum => "libquantum",
            JobName::Xalancbmk => "xalancbmk",
            JobName::Omnetpp => "omnetpp",
            JobName::Mcf => "mcf",
        }
    }

    /// The Table 3 configuration line (the "recorded command and options"
    /// the Replayer uses to reconstruct the job).
    pub fn config_line(self) -> &'static str {
        match self {
            JobName::DataAnalytics => {
                "Apache Hadoop with Mahout; 4 maps, 4 reduces, TrainNB; 1 vCPU & 4GB DRAM per mapper/reducer"
            }
            JobName::DataCaching => "memcached; 4 threads, 4GB working set, target QPS 100K",
            JobName::DataServing => "Apache Cassandra; 20 threads, 16GB DRAM",
            JobName::GraphAnalytics => "Apache Spark; 4 vCPU & 4GB DRAM for executor",
            JobName::InMemoryAnalytics => "Apache Spark; 4 vCPU & 4GB DRAM for executor",
            JobName::MediaStreaming => "Nginx; 4 threads, 50 connections, dataset scaled",
            JobName::WebSearch => "Apache Solr; 12GB DRAM, Tomcat manages # threads",
            JobName::WebServing => {
                "MySQL, memcached, Nginx, PHP; 2 threads & 2GB for memcached, 5 PHP threads"
            }
            JobName::Perlbench => "400.perlbench; four copies per 4-vCPU container",
            JobName::Sjeng => "458.sjeng; four copies per 4-vCPU container",
            JobName::Libquantum => "462.libquantum; four copies per 4-vCPU container",
            JobName::Xalancbmk => "483.xalancbmk; four copies per 4-vCPU container",
            JobName::Omnetpp => "471.omnetpp; four copies per 4-vCPU container",
            JobName::Mcf => "429.mcf; four copies per 4-vCPU container",
        }
    }
}

impl fmt::Display for JobName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.abbrev())
    }
}

/// Error returned when parsing an unknown job abbreviation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseJobError(pub String);

impl fmt::Display for ParseJobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown job abbreviation `{}`", self.0)
    }
}

impl std::error::Error for ParseJobError {}

impl FromStr for JobName {
    type Err = ParseJobError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        JobName::ALL
            .iter()
            .copied()
            .find(|j| j.abbrev().eq_ignore_ascii_case(s))
            .ok_or_else(|| ParseJobError(s.to_string()))
    }
}

/// One running container of a job (a fixed-size 4-vCPU instance per the
/// paper's scale-out resource policy, §5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct JobInstance {
    /// Which job this instance runs.
    pub job: JobName,
    /// vCPUs the container is allocated (always 4 in the paper's policy).
    pub vcpus: u32,
}

impl JobInstance {
    /// vCPU size every container uses in the reproduced datacenter.
    pub const CONTAINER_VCPUS: u32 = 4;

    /// A standard 4-vCPU instance of `job`.
    pub fn new(job: JobName) -> Self {
        JobInstance {
            job,
            vcpus: Self::CONTAINER_VCPUS,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_is_exhaustive() {
        assert_eq!(JobName::ALL.len(), 14);
        assert_eq!(JobName::HIGH_PRIORITY.len(), 8);
        assert_eq!(JobName::LOW_PRIORITY.len(), 6);
        for j in JobName::ALL {
            let in_hp = JobName::HIGH_PRIORITY.contains(j);
            let in_lp = JobName::LOW_PRIORITY.contains(j);
            assert!(in_hp ^ in_lp, "{j} must be in exactly one class");
        }
    }

    #[test]
    fn index_is_dense_and_matches_all_order() {
        for (i, &j) in JobName::ALL.iter().enumerate() {
            assert_eq!(j.index(), i, "{j}: ALL order must match declaration order");
        }
    }

    #[test]
    fn priorities_match_partition() {
        assert_eq!(JobName::DataCaching.priority(), Priority::High);
        assert_eq!(JobName::Mcf.priority(), Priority::Low);
    }

    #[test]
    fn abbrevs_match_paper_figure2_order() {
        // Fig. 2's x-axis: GA WSV DA DS IA MS DC WSC.
        let fig2 = ["GA", "WSV", "DA", "DS", "IA", "MS", "DC", "WSC"];
        for a in fig2 {
            assert!(a.parse::<JobName>().is_ok(), "abbrev {a} must parse");
        }
    }

    #[test]
    fn parse_roundtrip_and_case_insensitive() {
        for &j in JobName::ALL {
            assert_eq!(j.abbrev().parse::<JobName>().unwrap(), j);
            assert_eq!(j.abbrev().to_lowercase().parse::<JobName>().unwrap(), j);
        }
        assert!("NOPE".parse::<JobName>().is_err());
    }

    #[test]
    fn config_lines_nonempty() {
        for &j in JobName::ALL {
            assert!(!j.config_line().is_empty());
        }
    }

    #[test]
    fn instance_defaults_to_4_vcpus() {
        let i = JobInstance::new(JobName::WebSearch);
        assert_eq!(i.vcpus, 4);
    }
}
