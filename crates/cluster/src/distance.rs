//! Distance functions over `f64` points.

/// Squared Euclidean distance between two equal-length points.
///
/// K-means works in squared distances throughout (the objective is SSE), so
/// this is the workhorse; take the square root only at the edges.
///
/// # Panics
///
/// Panics in debug builds if the slices have different lengths; in release
/// builds the shorter length wins (callers inside this crate always pass
/// validated points).
///
/// # Examples
///
/// ```
/// use flare_cluster::distance::squared_euclidean;
/// assert_eq!(squared_euclidean(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
/// ```
pub fn squared_euclidean(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "distance between mismatched points");
    a.iter()
        .zip(b)
        .map(|(x, y)| {
            let d = x - y;
            d * d
        })
        .sum()
}

/// Euclidean distance.
///
/// # Examples
///
/// ```
/// use flare_cluster::distance::euclidean;
/// assert_eq!(euclidean(&[0.0, 0.0], &[3.0, 4.0]), 5.0);
/// ```
pub fn euclidean(a: &[f64], b: &[f64]) -> f64 {
    squared_euclidean(a, b).sqrt()
}

/// Squared Euclidean norm `‖a‖²` (the point's dot product with itself).
///
/// The kernel layer caches these per point and per centroid to drive the
/// norm-bound pruning of the assignment step (see `crate::kernel`).
///
/// # Examples
///
/// ```
/// use flare_cluster::distance::squared_norm;
/// assert_eq!(squared_norm(&[3.0, 4.0]), 25.0);
/// ```
pub fn squared_norm(a: &[f64]) -> f64 {
    a.iter().map(|x| x * x).sum()
}

/// Euclidean norm `‖a‖`.
///
/// # Examples
///
/// ```
/// use flare_cluster::distance::norm;
/// assert_eq!(norm(&[3.0, 4.0]), 5.0);
/// ```
pub fn norm(a: &[f64]) -> f64 {
    squared_norm(a).sqrt()
}

/// Index and squared distance of the closest centroid to `point`.
///
/// Returns `None` if `centroids` is empty.
pub fn nearest_centroid(point: &[f64], centroids: &[Vec<f64>]) -> Option<(usize, f64)> {
    centroids
        .iter()
        .enumerate()
        .map(|(i, c)| (i, squared_euclidean(point, c)))
        .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite distances"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_distance_to_self() {
        let p = [1.0, -2.0, 3.5];
        assert_eq!(squared_euclidean(&p, &p), 0.0);
        assert_eq!(euclidean(&p, &p), 0.0);
    }

    #[test]
    fn known_triangle() {
        assert_eq!(euclidean(&[0.0, 0.0], &[3.0, 4.0]), 5.0);
    }

    #[test]
    fn nearest_picks_minimum() {
        let cents = vec![vec![0.0, 0.0], vec![10.0, 0.0], vec![0.0, 2.0]];
        let (i, d2) = nearest_centroid(&[0.0, 1.5], &cents).unwrap();
        assert_eq!(i, 2);
        assert!((d2 - 0.25).abs() < 1e-12);
    }

    #[test]
    fn nearest_of_empty_is_none() {
        assert!(nearest_centroid(&[1.0], &[]).is_none());
    }

    #[test]
    fn norms_are_consistent_with_distance_from_origin() {
        let p = [1.0, -2.0, 2.0];
        assert_eq!(squared_norm(&p), 9.0);
        assert_eq!(norm(&p), 3.0);
        assert_eq!(squared_norm(&p), squared_euclidean(&p, &[0.0; 3]));
    }
}
