//! Feature performance estimation from representative scenarios (§4.5 and
//! the per-job extension of §5.3).

use crate::analyzer::Analyzer;
use crate::error::{FlareError, Result};
use crate::replayer::{try_replay_impact, try_replay_job_impact, RetryPolicy, Testbed};
use flare_metrics::database::ScenarioId;
use flare_sim::datacenter::Corpus;
use flare_sim::machine::MachineConfig;
use flare_workloads::job::JobName;
use serde::{Deserialize, Serialize};

/// Knobs of the estimators: cluster weighting, the retry policy for
/// fallible testbeds, and the coverage floor below which an estimate is
/// refused rather than silently extrapolated.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EstimateOptions {
    /// Weight clusters by summed observation counts (the paper's default)
    /// or by scenario counts.
    pub weight_by_observations: bool,
    /// Retry policy applied to every testbed run.
    #[serde(default)]
    pub retry: RetryPolicy,
    /// Minimum share of replayable cluster weight that must produce a
    /// measurement; see [`FlareError::ReplayFailed`].
    #[serde(default = "default_min_coverage")]
    pub min_coverage: f64,
}

fn default_min_coverage() -> f64 {
    0.5
}

impl Default for EstimateOptions {
    fn default() -> Self {
        EstimateOptions {
            weight_by_observations: true,
            retry: RetryPolicy::default(),
            min_coverage: 0.5,
        }
    }
}

fn default_coverage() -> f64 {
    1.0
}

/// Impact measured on one cluster's representative (a bar of Fig. 11).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterImpact {
    /// Cluster index.
    pub cluster: usize,
    /// Scenario actually replayed (the representative, or the nearest
    /// ranked member that carried HP jobs / the job of interest).
    pub scenario: ScenarioId,
    /// How many ranked members were skipped before a usable scenario was
    /// found (0 = the representative itself).
    pub fallback_depth: usize,
    /// The cluster's weight in the aggregate.
    pub weight: f64,
    /// Measured MIPS reduction, %.
    pub impact_pct: f64,
}

/// The all-HP-job estimate of a feature's impact (Fig. 12a).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AllJobEstimate {
    /// Weighted-average MIPS reduction, %.
    pub impact_pct: f64,
    /// Per-cluster breakdown.
    pub clusters: Vec<ClusterImpact>,
    /// Number of distinct scenario replays the estimate cost (the
    /// evaluation-overhead unit of Fig. 13).
    pub replay_count: usize,
    /// Share of replayable cluster weight that produced a measurement
    /// (1.0 when no cluster failed permanently).
    #[serde(default = "default_coverage")]
    pub coverage: f64,
    /// Clusters dropped because every candidate scenario failed even
    /// after retries; their weight was renormalized away.
    #[serde(default)]
    pub dropped_clusters: Vec<usize>,
}

/// A per-job estimate (Fig. 12b).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PerJobEstimate {
    /// The HP job estimated.
    pub job: JobName,
    /// Weighted-average MIPS reduction for the job, %.
    pub impact_pct: f64,
    /// Per-cluster breakdown (clusters whose population lacks the job are
    /// absent).
    pub clusters: Vec<ClusterImpact>,
    /// Share of job-bearing cluster weight that produced a measurement.
    #[serde(default = "default_coverage")]
    pub coverage: f64,
    /// Job-bearing clusters dropped because every candidate scenario
    /// failed even after retries.
    #[serde(default)]
    pub dropped_clusters: Vec<usize>,
}

/// Estimates a feature's overall impact on HP jobs from the representative
/// scenarios: replay each representative under baseline and feature
/// configs, then weight the impacts by group size (§4.5).
///
/// Representatives whose scenario carries no HP job (possible for LP-only
/// groups) fall back to the next-nearest member with HP jobs; groups with
/// no HP scenarios at all are skipped and the weights renormalized.
///
/// # Errors
///
/// Returns [`FlareError::InsufficientData`] if no cluster yields a usable
/// measurement.
pub fn estimate_all_job<T: Testbed>(
    corpus: &Corpus,
    analyzer: &Analyzer,
    testbed: &T,
    baseline: &MachineConfig,
    feature_config: &MachineConfig,
    weight_by_observations: bool,
) -> Result<AllJobEstimate> {
    estimate_all_job_with(
        corpus,
        analyzer,
        testbed,
        baseline,
        feature_config,
        &EstimateOptions {
            weight_by_observations,
            ..EstimateOptions::default()
        },
    )
}

/// [`estimate_all_job`] with explicit [`EstimateOptions`]: fallible
/// testbed runs are retried per the policy; a cluster whose every
/// candidate fails permanently is dropped and its weight renormalized
/// away, unless the surviving coverage falls below the floor.
///
/// # Errors
///
/// - [`FlareError::ReplayFailed`] if permanently-failed clusters push
///   measurement coverage below `options.min_coverage`.
/// - [`FlareError::InsufficientData`] if no cluster yields a usable
///   measurement for reasons other than replay failure.
pub fn estimate_all_job_with<T: Testbed>(
    corpus: &Corpus,
    analyzer: &Analyzer,
    testbed: &T,
    baseline: &MachineConfig,
    feature_config: &MachineConfig,
    options: &EstimateOptions,
) -> Result<AllJobEstimate> {
    let weights = analyzer.cluster_weights(options.weight_by_observations);
    let mut clusters = Vec::new();
    let mut replay_count = 0usize;
    let mut failed_clusters = Vec::new();
    let mut failed_weight = 0.0;

    for (c, &weight) in weights.iter().enumerate() {
        let mut found = None;
        let mut had_error = false;
        for (depth, id) in analyzer.ranked_ids(c).enumerate() {
            let entry = corpus
                .get(id)
                .ok_or_else(|| FlareError::InsufficientData(format!("{id} not in corpus")))?;
            if !entry.scenario.has_hp_job() {
                continue;
            }
            replay_count += 1;
            match try_replay_impact(
                testbed,
                &entry.scenario,
                baseline,
                feature_config,
                &options.retry,
            ) {
                Ok(Some(impact)) => {
                    found = Some((depth, id, impact));
                    break;
                }
                // An HP scenario that measures nothing ends the walk, as
                // on the infallible path.
                Ok(None) => break,
                // A permanent failure degrades to the next-ranked member.
                Err(_) => had_error = true,
            }
        }
        if let Some((depth, id, impact)) = found {
            clusters.push(ClusterImpact {
                cluster: c,
                scenario: id,
                fallback_depth: depth,
                weight,
                impact_pct: impact,
            });
        } else if had_error {
            failed_clusters.push(c);
            failed_weight += weight;
        }
    }

    if clusters.is_empty() {
        if !failed_clusters.is_empty() {
            return Err(FlareError::ReplayFailed {
                coverage: 0.0,
                floor: options.min_coverage,
                failed_clusters,
            });
        }
        return Err(FlareError::InsufficientData(
            "no cluster produced an HP measurement".into(),
        ));
    }
    // Coverage: contributing weight over the weight that *should* have
    // been measurable (clusters skipped for lack of HP jobs don't count
    // against it — they're unmeasurable on any testbed).
    let total_w: f64 = clusters.iter().map(|c| c.weight).sum();
    let denom = total_w + failed_weight;
    let coverage = if denom > 0.0 { total_w / denom } else { 1.0 };
    if coverage < options.min_coverage {
        return Err(FlareError::ReplayFailed {
            coverage,
            floor: options.min_coverage,
            failed_clusters,
        });
    }
    // Renormalize over contributing clusters.
    let impact_pct = if total_w > 0.0 {
        clusters
            .iter()
            .map(|c| c.weight * c.impact_pct)
            .sum::<f64>()
            / total_w
    } else {
        0.0
    };
    Ok(AllJobEstimate {
        impact_pct,
        clusters,
        replay_count,
        coverage,
        dropped_clusters: failed_clusters,
    })
}

/// Estimates a feature's impact on one specific HP job (§5.3): within each
/// cluster, walk the centroid-distance ranking until a scenario containing
/// the job is found; weight cluster contributions by the number of job
/// instances the cluster's population holds.
///
/// # Errors
///
/// Returns [`FlareError::JobNotObserved`] if no clustered scenario
/// contains the job.
pub fn estimate_per_job<T: Testbed>(
    corpus: &Corpus,
    analyzer: &Analyzer,
    testbed: &T,
    job: JobName,
    baseline: &MachineConfig,
    feature_config: &MachineConfig,
    weight_by_observations: bool,
) -> Result<PerJobEstimate> {
    estimate_per_job_with(
        corpus,
        analyzer,
        testbed,
        job,
        baseline,
        feature_config,
        &EstimateOptions {
            weight_by_observations,
            ..EstimateOptions::default()
        },
    )
}

/// [`estimate_per_job`] with explicit [`EstimateOptions`]; degradation
/// semantics match [`estimate_all_job_with`].
///
/// # Errors
///
/// - [`FlareError::ReplayFailed`] if permanently-failed clusters push
///   measurement coverage below `options.min_coverage`.
/// - [`FlareError::JobNotObserved`] if no clustered scenario contains the
///   job (and no cluster failed).
pub fn estimate_per_job_with<T: Testbed>(
    corpus: &Corpus,
    analyzer: &Analyzer,
    testbed: &T,
    job: JobName,
    baseline: &MachineConfig,
    feature_config: &MachineConfig,
    options: &EstimateOptions,
) -> Result<PerJobEstimate> {
    let mut clusters = Vec::new();
    let mut failed_clusters = Vec::new();
    let mut failed_weight = 0.0;

    for c in 0..analyzer.n_clusters() {
        // Cluster weight for this job: instances of the job in the whole
        // group population ("the likelihood to observe the job").
        let mut job_instances = 0.0;
        for id in analyzer.ranked_ids(c) {
            if let Some(e) = corpus.get(id) {
                let mult = if options.weight_by_observations {
                    e.observations as f64
                } else {
                    1.0
                };
                job_instances += e.scenario.instances_of(job) as f64 * mult;
            }
        }
        if job_instances <= 0.0 {
            continue;
        }
        let mut found = None;
        let mut had_error = false;
        for (depth, id) in analyzer.ranked_ids(c).enumerate() {
            let entry = match corpus.get(id) {
                Some(e) => e,
                None => continue,
            };
            if !entry.scenario.has_job(job) {
                continue;
            }
            match try_replay_job_impact(
                testbed,
                &entry.scenario,
                job,
                baseline,
                feature_config,
                &options.retry,
            ) {
                Ok(Some(impact)) => {
                    found = Some((depth, id, impact));
                    break;
                }
                Ok(None) => break,
                Err(_) => had_error = true,
            }
        }
        if let Some((depth, id, impact)) = found {
            clusters.push(ClusterImpact {
                cluster: c,
                scenario: id,
                fallback_depth: depth,
                weight: job_instances,
                impact_pct: impact,
            });
        } else if had_error {
            failed_clusters.push(c);
            failed_weight += job_instances;
        }
    }

    if clusters.is_empty() {
        if !failed_clusters.is_empty() {
            return Err(FlareError::ReplayFailed {
                coverage: 0.0,
                floor: options.min_coverage,
                failed_clusters,
            });
        }
        return Err(FlareError::JobNotObserved(job.abbrev().to_string()));
    }
    let total_w: f64 = clusters.iter().map(|c| c.weight).sum();
    let denom = total_w + failed_weight;
    let coverage = if denom > 0.0 { total_w / denom } else { 1.0 };
    if coverage < options.min_coverage {
        return Err(FlareError::ReplayFailed {
            coverage,
            floor: options.min_coverage,
            failed_clusters,
        });
    }
    let impact_pct = clusters
        .iter()
        .map(|c| c.weight * c.impact_pct)
        .sum::<f64>()
        / total_w;
    // Normalize stored weights to shares for reporting.
    let clusters = clusters
        .into_iter()
        .map(|mut c| {
            c.weight /= total_w;
            c
        })
        .collect();
    Ok(PerJobEstimate {
        job,
        impact_pct,
        clusters,
        coverage,
        dropped_clusters: failed_clusters,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyzer::Analyzer;
    use crate::config::{ClusterCountRule, FlareConfig};
    use crate::replayer::{scenario_key, FlakyTestbed, Measurement, ReplayError, SimTestbed};
    use flare_sim::datacenter::{Corpus, CorpusConfig};
    use flare_sim::feature::Feature;
    use flare_sim::scenario::Scenario;

    fn small_setup() -> (Corpus, Analyzer, MachineConfig) {
        let cfg = CorpusConfig {
            machines: 4,
            days: 2.0,
            tick_minutes: 15.0,
            ..CorpusConfig::default()
        };
        let corpus = Corpus::generate(&cfg);
        let db = corpus.to_metric_database(&cfg.machine_config);
        let flare_cfg = FlareConfig {
            cluster_count: ClusterCountRule::Fixed(10),
            ..FlareConfig::default()
        };
        let analyzer = Analyzer::fit(&db, &flare_cfg).unwrap();
        (corpus, analyzer, cfg.machine_config)
    }

    #[test]
    fn all_job_estimate_is_sane() {
        let (corpus, analyzer, baseline) = small_setup();
        let f2 = Feature::paper_feature2().apply(&baseline);
        let est = estimate_all_job(&corpus, &analyzer, &SimTestbed, &baseline, &f2, true).unwrap();
        assert!(
            est.impact_pct > 3.0 && est.impact_pct < 40.0,
            "DVFS impact {}%",
            est.impact_pct
        );
        assert!(!est.clusters.is_empty());
        assert!(est.replay_count <= analyzer.n_clusters() + 5);
        // Weighted average lies within the per-cluster range.
        let lo = est
            .clusters
            .iter()
            .map(|c| c.impact_pct)
            .fold(f64::INFINITY, f64::min);
        let hi = est
            .clusters
            .iter()
            .map(|c| c.impact_pct)
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(est.impact_pct >= lo - 1e-9 && est.impact_pct <= hi + 1e-9);
    }

    #[test]
    fn baseline_feature_estimates_zero() {
        let (corpus, analyzer, baseline) = small_setup();
        let est =
            estimate_all_job(&corpus, &analyzer, &SimTestbed, &baseline, &baseline, true).unwrap();
        assert!(est.impact_pct.abs() < 1e-9);
    }

    #[test]
    fn per_job_estimates_exist_for_common_jobs() {
        let (corpus, analyzer, baseline) = small_setup();
        let f1 = Feature::paper_feature1().apply(&baseline);
        for &job in JobName::HIGH_PRIORITY {
            let est = estimate_per_job(&corpus, &analyzer, &SimTestbed, job, &baseline, &f1, true);
            // All 8 HP services run continuously in the corpus.
            let est = est.unwrap_or_else(|e| panic!("{job}: {e}"));
            assert!(est.impact_pct.is_finite());
            let wsum: f64 = est.clusters.iter().map(|c| c.weight).sum();
            assert!((wsum - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn per_job_fallback_depth_recorded() {
        let (corpus, analyzer, baseline) = small_setup();
        let f1 = Feature::paper_feature1().apply(&baseline);
        let est = estimate_per_job(
            &corpus,
            &analyzer,
            &SimTestbed,
            JobName::MediaStreaming,
            &baseline,
            &f1,
            true,
        )
        .unwrap();
        // Depths are valid indices into each cluster's ranking.
        for c in &est.clusters {
            assert!(c.fallback_depth < analyzer.ranked(c.cluster).len());
        }
    }

    /// Denies (fails permanently) every scenario in a fixed key set.
    struct DenyList {
        deny: std::collections::HashSet<u64>,
    }

    impl Testbed for DenyList {
        fn run(&self, scenario: &Scenario, config: &MachineConfig) -> Measurement {
            SimTestbed.run(scenario, config)
        }

        fn try_run(
            &self,
            scenario: &Scenario,
            config: &MachineConfig,
        ) -> std::result::Result<Measurement, ReplayError> {
            if self.deny.contains(&scenario_key(scenario)) {
                return Err(ReplayError {
                    attempts: 1,
                    reason: "denied".into(),
                });
            }
            Ok(self.run(scenario, config))
        }
    }

    #[test]
    fn failed_cluster_is_dropped_and_coverage_reported() {
        let (corpus, analyzer, baseline) = small_setup();
        let f2 = Feature::paper_feature2().apply(&baseline);
        let clean =
            estimate_all_job(&corpus, &analyzer, &SimTestbed, &baseline, &f2, true).unwrap();
        assert_eq!(clean.coverage, 1.0);
        assert!(clean.dropped_clusters.is_empty());

        // Deny every scenario of one contributing cluster: it must drop,
        // its weight must leave the aggregate, and coverage must say so.
        let c0 = clean.clusters[0].cluster;
        let deny = analyzer
            .ranked(c0)
            .iter()
            .filter_map(|id| corpus.get(*id))
            .map(|e| scenario_key(&e.scenario))
            .collect();
        let opts = EstimateOptions {
            min_coverage: 0.0,
            ..EstimateOptions::default()
        };
        let est = estimate_all_job_with(
            &corpus,
            &analyzer,
            &DenyList { deny },
            &baseline,
            &f2,
            &opts,
        )
        .unwrap();
        assert_eq!(est.dropped_clusters, vec![c0]);
        assert!(est.coverage < 1.0);
        assert!(est.impact_pct.is_finite());
        assert!(est.clusters.iter().all(|c| c.cluster != c0));
    }

    #[test]
    fn coverage_floor_turns_degradation_into_an_error() {
        let (corpus, analyzer, baseline) = small_setup();
        let f2 = Feature::paper_feature2().apply(&baseline);
        let clean =
            estimate_all_job(&corpus, &analyzer, &SimTestbed, &baseline, &f2, true).unwrap();
        let c0 = clean.clusters[0].cluster;
        let deny = analyzer
            .ranked(c0)
            .iter()
            .filter_map(|id| corpus.get(*id))
            .map(|e| scenario_key(&e.scenario))
            .collect();
        let opts = EstimateOptions {
            min_coverage: 1.0,
            ..EstimateOptions::default()
        };
        let err = estimate_all_job_with(
            &corpus,
            &analyzer,
            &DenyList { deny },
            &baseline,
            &f2,
            &opts,
        )
        .unwrap_err();
        match err {
            FlareError::ReplayFailed {
                coverage,
                floor,
                failed_clusters,
            } => {
                assert!(coverage < 1.0);
                assert_eq!(floor, 1.0);
                assert_eq!(failed_clusters, vec![c0]);
            }
            other => panic!("expected ReplayFailed, got {other}"),
        }
    }

    #[test]
    fn total_replay_failure_is_a_typed_error() {
        let (corpus, analyzer, baseline) = small_setup();
        let f2 = Feature::paper_feature2().apply(&baseline);
        let flaky = FlakyTestbed::new(SimTestbed, 0.0, 1.0, 3);
        let err = estimate_all_job_with(
            &corpus,
            &analyzer,
            &flaky,
            &baseline,
            &f2,
            &EstimateOptions::default(),
        )
        .unwrap_err();
        assert!(matches!(
            err,
            FlareError::ReplayFailed { coverage, .. } if coverage == 0.0
        ));
        let err = estimate_per_job_with(
            &corpus,
            &analyzer,
            &flaky,
            JobName::WebSearch,
            &baseline,
            &f2,
            &EstimateOptions::default(),
        )
        .unwrap_err();
        assert!(matches!(err, FlareError::ReplayFailed { .. }));
    }

    #[test]
    fn transient_failures_are_invisible_given_retries() {
        let (corpus, analyzer, baseline) = small_setup();
        let f2 = Feature::paper_feature2().apply(&baseline);
        let clean =
            estimate_all_job(&corpus, &analyzer, &SimTestbed, &baseline, &f2, true).unwrap();
        let flaky = FlakyTestbed::new(SimTestbed, 0.4, 0.0, 17);
        let opts = EstimateOptions {
            retry: RetryPolicy {
                max_retries: 16,
                ..RetryPolicy::default()
            },
            min_coverage: 0.0,
            ..EstimateOptions::default()
        };
        let est = estimate_all_job_with(&corpus, &analyzer, &flaky, &baseline, &f2, &opts).unwrap();
        // A generous retry budget beats every transient fault, so the
        // estimate matches the clean testbed exactly.
        assert_eq!(est.impact_pct, clean.impact_pct);
        assert_eq!(est.coverage, 1.0);
    }

    #[test]
    fn unobserved_job_errors() {
        // LP jobs are never HP-measured, so asking for one must fail with
        // JobNotObserved (they're filtered from per-job measurements).
        let (corpus, analyzer, baseline) = small_setup();
        let f1 = Feature::paper_feature1().apply(&baseline);
        let est = estimate_per_job(
            &corpus,
            &analyzer,
            &SimTestbed,
            JobName::Mcf,
            &baseline,
            &f1,
            true,
        );
        assert!(est.is_err());
    }
}
