//! Property-based tests of the CLI argument parser: it must never panic
//! and must round-trip well-formed option lists.

use flare::cli::{parse_args, parse_feature};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The parser never panics on arbitrary argument vectors.
    #[test]
    fn parse_never_panics(args in prop::collection::vec(".{0,20}", 0..8)) {
        let _ = parse_args(&args);
    }

    /// Well-formed `cmd --k v --k2 v2 ...` lists always parse, and every
    /// option round-trips.
    #[test]
    fn wellformed_options_roundtrip(
        cmd in "[a-z]{1,12}",
        pairs in prop::collection::vec(("[a-z]{1,10}", "[a-zA-Z0-9./=_-]{1,12}"), 0..5),
    ) {
        let mut args = vec![cmd.clone()];
        for (k, v) in &pairs {
            args.push(format!("--{k}"));
            args.push(v.clone());
        }
        let inv = parse_args(&args).expect("well-formed argv");
        prop_assert_eq!(inv.command, cmd);
        for (k, v) in &pairs {
            prop_assert_eq!(inv.options.get(k.as_str()), Some(v));
        }
    }

    /// A dangling option key is always rejected, never panics.
    #[test]
    fn dangling_key_rejected(cmd in "[a-z]{1,8}", key in "[a-z]{1,8}") {
        let args = vec![cmd, format!("--{key}")];
        prop_assert!(parse_args(&args).is_err());
    }

    /// Feature parsing never panics; numeric specs round-trip.
    #[test]
    fn feature_parse_total(spec in ".{0,24}") {
        let _ = parse_feature(&spec);
    }

    #[test]
    fn numeric_feature_specs_parse(mb in 1.0f64..64.0, ghz in 0.5f64..4.0) {
        let cache_spec = format!("cache={mb}");
        let dvfs_spec = format!("dvfs={ghz}");
        prop_assert!(parse_feature(&cache_spec).is_ok());
        prop_assert!(parse_feature(&dvfs_spec).is_ok());
    }
}
