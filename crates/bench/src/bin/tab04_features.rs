//! Table 4: summary of the datacenter-improving features.

use flare_bench::banner;
use flare_sim::feature::Feature;

fn main() {
    banner("Datacenter-improving features", "Table 4");
    println!("\n  {:<10} {}", "Baseline", Feature::Baseline.table4_row());
    for (i, f) in Feature::paper_features().iter().enumerate() {
        println!("  Feature {:<2} {}", i + 1, f.table4_row());
    }
}
