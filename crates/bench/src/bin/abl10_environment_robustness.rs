//! Ablation 10: does FLARE's accuracy survive *different datacenters*?
//!
//! The paper's main external-validity limitation is its single in-house
//! environment. Our substrate lets us re-run the whole evaluation across
//! datacenters with different fleet sizes, load levels, batch pressures,
//! churn rates, and arrival randomness — each one a different "in-house
//! datacenter" — and check that FLARE's accuracy is a property of the
//! *method*, not of one lucky corpus.

use flare_baselines::fulldc::full_datacenter_impact;
use flare_baselines::sampling::{sampling_distribution, SamplingConfig};
use flare_bench::banner;
use flare_core::replayer::SimTestbed;
use flare_core::{Flare, FlareConfig};
use flare_sim::datacenter::{Corpus, CorpusConfig};
use flare_sim::feature::Feature;
use flare_workloads::loadgen::DurationModel;

fn environments() -> Vec<(&'static str, CorpusConfig)> {
    vec![
        ("paper-like (default)", CorpusConfig::default()),
        (
            "lightly loaded",
            CorpusConfig {
                hp_peak_share: 0.08,
                lp_submit_prob: 0.05,
                seed: 0xA11CE,
                ..CorpusConfig::default()
            },
        ),
        (
            "batch-heavy",
            CorpusConfig {
                hp_peak_share: 0.07,
                lp_submit_prob: 0.30,
                seed: 0xB0B,
                ..CorpusConfig::default()
            },
        ),
        (
            "high-churn services",
            CorpusConfig {
                hp_duration: DurationModel {
                    min_minutes: 30.0,
                    mean_extra_minutes: 120.0,
                },
                seed: 0xC0FFEE,
                ..CorpusConfig::default()
            },
        ),
        (
            "large fleet (16 machines)",
            CorpusConfig {
                machines: 16,
                days: 4.0,
                seed: 0xD00D,
                ..CorpusConfig::default()
            },
        ),
    ]
}

fn main() {
    banner(
        "Ablation: FLARE accuracy across different datacenter environments",
        "external validity (the paper evaluates one in-house datacenter)",
    );
    println!(
        "\n  {:<26} {:>9} | FLARE err (pp) vs sampling exp-max err (pp)",
        "environment", "scenarios"
    );
    println!(
        "  {:<26} {:>9} | {:>13} {:>13} {:>13}",
        "", "", "F1", "F2", "F3"
    );

    let mut all_flare_errs: Vec<f64> = Vec::new();
    for (name, cfg) in environments() {
        let corpus = Corpus::generate(&cfg);
        let baseline = cfg.machine_config.clone();
        let flare = match Flare::fit(corpus.clone(), FlareConfig::default()) {
            Ok(f) => f,
            Err(e) => {
                println!("  {name:<26} fit failed: {e}");
                continue;
            }
        };
        let mut cells = Vec::new();
        for feature in Feature::paper_features() {
            let fc = feature.apply(&baseline);
            let truth =
                full_datacenter_impact(&corpus, &SimTestbed, &baseline, &fc, true).impact_pct;
            let flare_err = (flare.evaluate(&feature).expect("estimate").impact_pct - truth).abs();
            let samp = sampling_distribution(
                &corpus,
                &SimTestbed,
                &baseline,
                &fc,
                &SamplingConfig {
                    n_samples: flare.n_representatives(),
                    trials: 400,
                    ..SamplingConfig::default()
                },
            )
            .map(|d| d.expected_max_error(truth))
            .unwrap_or(f64::NAN);
            all_flare_errs.push(flare_err);
            cells.push(format!("{flare_err:>5.2} / {samp:>5.2}"));
        }
        println!(
            "  {:<26} {:>9} | {:>13} {:>13} {:>13}",
            name,
            corpus.len(),
            cells[0],
            cells[1],
            cells[2]
        );
    }
    let mean = all_flare_errs.iter().sum::<f64>() / all_flare_errs.len() as f64;
    let max = all_flare_errs.iter().cloned().fold(0.0, f64::max);
    println!(
        "\nFLARE error across all environments and features: mean {mean:.2}pp, max {max:.2}pp"
    );
    println!(
        "takeaway: the representative-extraction recipe (fixed defaults, 18 clusters)\n\
         transfers across load regimes, batch pressure, churn, and fleet size — the\n\
         accuracy is a property of the method, not of one tuned corpus."
    );
}
