//! The staged artifact pipeline: `Profile → Ingest/Repair → Featurize(PCA)
//! → Cluster → Representatives`.
//!
//! Each stage consumes the previous stage's artifact plus the slice of
//! [`FlareConfig`](crate::config::FlareConfig) it actually reads (the
//! per-stage sub-configs of [`crate::config`]), and produces a
//! serializable artifact stamped with a content [`Fingerprint`] — a stable
//! hash chaining the input fingerprint with the stage's sub-config. The
//! chain makes invalidation automatic: if a stage's fingerprint is
//! unchanged between two configurations, so is everything upstream of it,
//! and its artifact can be reused verbatim.
//!
//! [`Flare::refit`](crate::Flare::refit) and
//! [`Flare::extend`](crate::Flare::extend) diff these fingerprints to
//! re-run only invalidated stages; [`FitReport`] records which stages were
//! reused, recomputed, or extended. The monolithic
//! [`Analyzer::fit`](crate::analyzer::Analyzer::fit) runs the exact same
//! stage functions end to end, so the incremental paths are byte-identical
//! to a full fit by construction.

use crate::config::{
    ClusterStageConfig, FeaturizeConfig, FlareConfig, RepairConfig, RepresentativesConfig,
    SpillConfig,
};
use crate::diagnostics::RepairReport;
use crate::error::{FlareError, Result};
use flare_cluster::hierarchical::agglomerative;
use flare_cluster::kmeans::KMeansResult;
use flare_cluster::minibatch::MiniBatchConfig;
use flare_cluster::sharded::kmeans_tiered_sharded;
use flare_cluster::sweep::{
    sweep_hierarchical, sweep_kmeans_cached_with, SweepOptions, SweepResult,
};
use flare_exec::par_map_range;
use flare_linalg::pca::Pca;
use flare_linalg::stats::robust_scale_sharded;
use flare_linalg::{Matrix, ShardAccess, ShardStore, ShardedMatrix, SpillStats};
use flare_metrics::correlation::{
    apply_refinement, refine_with_threaded, CorrelationMethod, RefinementReport,
};
use flare_metrics::database::{MetricDatabase, ScenarioId};
use flare_metrics::schema::MetricSchema;
use flare_sim::datacenter::Corpus;
use serde::{Deserialize, Serialize};

/// A 64-bit content fingerprint identifying one stage's inputs + config.
pub type Fingerprint = u64;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Incremental FNV-1a hasher over the deterministic `Debug` rendering of
/// values. `Debug` of every config type (and of `f64`, whose `Debug` is
/// the shortest-roundtrip decimal) is stable across runs and thread
/// counts, which is all a stage fingerprint needs.
#[derive(Debug, Clone, Copy)]
pub struct FingerprintBuilder {
    state: u64,
}

impl FingerprintBuilder {
    /// Starts a fingerprint for the named stage.
    pub fn new(stage: &str) -> Self {
        FingerprintBuilder { state: FNV_OFFSET }.bytes(stage.as_bytes())
    }

    fn bytes(mut self, bytes: &[u8]) -> Self {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
        self
    }

    /// Mixes in a raw 64-bit word (e.g. an upstream fingerprint or a
    /// float's bit pattern).
    pub fn word(self, w: u64) -> Self {
        self.bytes(&w.to_le_bytes())
    }

    /// Mixes in a value via its `Debug` rendering, with a separator so
    /// adjacent fields cannot alias.
    pub fn field(self, value: &impl std::fmt::Debug) -> Self {
        self.bytes(format!("{value:?}").as_bytes()).bytes(b"\x1f")
    }

    /// Finalizes the fingerprint.
    pub fn finish(self) -> Fingerprint {
        self.state
    }
}

/// Content fingerprint of a scenario corpus (entries + collection config).
pub fn fingerprint_corpus(corpus: &Corpus) -> Fingerprint {
    FingerprintBuilder::new("corpus")
        .field(&corpus.config())
        .field(&corpus.entries())
        .finish()
}

/// Content fingerprint of a metric database (schema, ids, observation
/// weights, metric bit patterns, job mixes). Used as the chain root when
/// fitting from a bare database, with no corpus in sight.
pub fn fingerprint_database(db: &MetricDatabase) -> Fingerprint {
    let mut b = FingerprintBuilder::new("database").field(db.schema());
    for row in db.iter() {
        b = b
            .word(u64::from(row.id.0))
            .word(u64::from(row.observations));
        for &v in row.metrics {
            b = b.word(v.to_bits());
        }
        b = b.field(&row.job_mix);
    }
    b.finish()
}

/// The chained per-stage fingerprints of one (input, config) pair.
///
/// Each stage's fingerprint hashes the previous stage's fingerprint plus
/// the sub-config that stage reads, so a change anywhere upstream — corpus
/// content or any earlier stage's config — cascades into every downstream
/// fingerprint. Wall-clock-only knobs (`threads`, and the `k` field of the
/// K-means config, which the cluster-count rule always overrides) are
/// excluded; evaluation-time knobs (`weight_by_observations`, `retry`,
/// `min_replay_coverage`) belong to no fit stage and never invalidate one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StageFingerprints {
    /// Profile stage: input fingerprint + temporal-enrichment config.
    pub profile: Fingerprint,
    /// Repair stage: profile fingerprint + winsorization config.
    pub repair: Fingerprint,
    /// Featurize stage: repair fingerprint + refinement/PCA config.
    pub featurize: Fingerprint,
    /// Cluster stage: featurize fingerprint + clustering config.
    pub cluster: Fingerprint,
    /// Representatives stage: cluster fingerprint + selection rule.
    pub representatives: Fingerprint,
}

impl StageFingerprints {
    /// Computes the full chain from the profile stage's input fingerprint
    /// (a corpus or database fingerprint) and a pipeline config.
    pub fn compute(input: Fingerprint, config: &FlareConfig) -> StageFingerprints {
        let profile = FingerprintBuilder::new("profile")
            .word(input)
            .field(&config.profile_stage())
            .finish();
        let repair = FingerprintBuilder::new("repair")
            .word(profile)
            .field(&config.repair_stage())
            .finish();
        let featurize = FingerprintBuilder::new("featurize")
            .word(repair)
            .field(&config.featurize_stage())
            .finish();
        let cluster = FingerprintBuilder::new("cluster")
            .word(featurize)
            .field(&config.cluster_stage().fingerprint_view())
            .finish();
        let representatives = FingerprintBuilder::new("representatives")
            .word(cluster)
            .field(&config.representatives_stage())
            .finish();
        StageFingerprints {
            profile,
            repair,
            featurize,
            cluster,
            representatives,
        }
    }
}

/// What happened to one stage during a fit, refit, or extend.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StageOutcome {
    /// The stage ran from scratch.
    Recomputed,
    /// The previous artifact was reused verbatim (fingerprint unchanged).
    Reused,
    /// The stage processed only the appended delta (profile stage during
    /// [`Flare::extend`](crate::Flare::extend)).
    Extended,
}

/// Per-stage reuse diagnostics of one fit, refit, or extend call.
///
/// This is how the incremental paths prove their work: a clustering-only
/// `refit` reports `profile: Reused` with `scenarios_profiled == 0`, and
/// an `extend` reports `profile: Extended` with `scenarios_profiled`
/// equal to the delta size.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FitReport {
    /// Profile (metric collection) stage outcome.
    pub profile: StageOutcome,
    /// Ingest/repair stage outcome.
    pub repair: StageOutcome,
    /// Featurize (refinement + PCA) stage outcome.
    pub featurize: StageOutcome,
    /// Cluster stage outcome.
    pub cluster: StageOutcome,
    /// Representatives stage outcome.
    pub representatives: StageOutcome,
    /// How many scenarios the profiler actually evaluated — the counting
    /// instrumentation behind "refit never re-profiles".
    pub scenarios_profiled: usize,
    /// Sweep points reused from the previous fit when only the sweep
    /// range changed (K-means sweeps only).
    pub sweep_points_reused: usize,
    /// Cumulative scenarios ingested into the model across its whole
    /// lineage: the original fit plus every [`crate::Flare::extend`] /
    /// streaming batch since. A full fit seeds this with the corpus size;
    /// each extend adds its delta, so multi-batch sessions report the
    /// honest running total rather than just the last delta.
    #[serde(default)]
    pub ingested_total: usize,
    /// Cumulative records quarantined across the same lineage (streaming
    /// ingest only — the clean extend path never quarantines).
    #[serde(default)]
    pub quarantined_total: usize,
    /// Cold-shard spill counters of the featurize stage (hits, faults,
    /// evictions), present only when the fit ran with spill enabled.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub spill: Option<SpillStats>,
}

impl FitReport {
    /// The report of a from-scratch fit over `scenarios` scenarios.
    pub fn full_fit(scenarios: usize) -> FitReport {
        FitReport {
            profile: StageOutcome::Recomputed,
            repair: StageOutcome::Recomputed,
            featurize: StageOutcome::Recomputed,
            cluster: StageOutcome::Recomputed,
            representatives: StageOutcome::Recomputed,
            scenarios_profiled: scenarios,
            sweep_points_reused: 0,
            ingested_total: scenarios,
            quarantined_total: 0,
            spill: None,
        }
    }

    /// The report of an incremental extension that profiled `delta` new
    /// scenarios on top of `prev`: profile is `Extended`, every downstream
    /// stage recomputed, and the cumulative ingest/quarantine counters
    /// carry forward from the previous report.
    pub fn extended(delta: usize, prev: &FitReport) -> FitReport {
        FitReport {
            profile: StageOutcome::Extended,
            scenarios_profiled: delta,
            ingested_total: prev.ingested_total + delta,
            quarantined_total: prev.quarantined_total,
            ..FitReport::full_fit(0)
        }
    }

    /// The report of a model restored from a snapshot (everything reused,
    /// nothing profiled).
    pub fn loaded() -> FitReport {
        FitReport {
            profile: StageOutcome::Reused,
            repair: StageOutcome::Reused,
            featurize: StageOutcome::Reused,
            cluster: StageOutcome::Reused,
            representatives: StageOutcome::Reused,
            scenarios_profiled: 0,
            sweep_points_reused: 0,
            ingested_total: 0,
            quarantined_total: 0,
            spill: None,
        }
    }

    /// Stage outcomes in pipeline order, with display names.
    pub fn stages(&self) -> [(&'static str, StageOutcome); 5] {
        [
            ("profile", self.profile),
            ("repair", self.repair),
            ("featurize", self.featurize),
            ("cluster", self.cluster),
            ("representatives", self.representatives),
        ]
    }

    /// Number of stages whose artifact was reused verbatim.
    pub fn reused_stages(&self) -> usize {
        self.stages()
            .iter()
            .filter(|(_, o)| *o == StageOutcome::Reused)
            .count()
    }

    /// Number of stages recomputed from scratch.
    pub fn recomputed_stages(&self) -> usize {
        self.stages()
            .iter()
            .filter(|(_, o)| *o == StageOutcome::Recomputed)
            .count()
    }
}

/// Artifact of the Ingest/Repair stage: the healed database (or `None`
/// when the input was already clean and passes through untouched) plus
/// the repair report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RepairArtifact {
    /// The repaired database; `None` means the input needed no repair.
    pub repaired: Option<MetricDatabase>,
    /// What the repair did (imputed cells, winsorized cells, dead columns).
    pub report: RepairReport,
    /// Content fingerprint of this artifact.
    pub fingerprint: Fingerprint,
}

/// Artifact of the Featurize stage: correlation refinement + PCA + the
/// whitened PC coordinates every downstream stage operates on.
///
/// In-memory only (never serialized): the projected plane lives in the
/// sharded layout the cluster stage walks shard-wise, and only the
/// [`AnalyzerSnapshot`](crate::analyzer::AnalyzerSnapshot) boundary
/// coalesces it to the dense wire form.
#[derive(Debug, Clone)]
pub struct FeaturizeArtifact {
    /// Which raw metrics were pruned as redundant, and why.
    pub refinement: RefinementReport,
    /// The post-refinement metric schema.
    pub refined_schema: MetricSchema,
    /// The fitted PCA model.
    pub pca: Pca,
    /// Number of principal components kept for the variance target.
    pub n_pcs: usize,
    /// Whitened PC coordinates (scenarios × kept PCs), sharded with the
    /// same row layout as the refined feature shards so downstream stages
    /// can walk them block-wise instead of requiring one dense resident
    /// matrix.
    pub projected: ShardedMatrix,
    /// Scenario ids in row order.
    pub scenario_ids: Vec<ScenarioId>,
    /// Observation weights in row order.
    pub observations: Vec<u32>,
    /// Cold-shard spill counters of the featurize passes; `None` when
    /// spill was disabled.
    pub spill: Option<SpillStats>,
    /// Content fingerprint of this artifact.
    pub fingerprint: Fingerprint,
}

/// Artifact of the Cluster stage: the grouping over whitened PC space,
/// plus the sweep curves when a cluster-count sweep ran.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClusterArtifact {
    /// The clustering (assignments, centroids, SSE).
    pub clustering: KMeansResult,
    /// Sweep curves, present only under the sweep cluster-count rule.
    pub sweep: Option<SweepResult>,
    /// Content fingerprint of this artifact.
    pub fingerprint: Fingerprint,
}

/// Artifact of the Representatives stage: every cluster's members ranked
/// representative-first.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RepresentativesArtifact {
    /// Per-cluster member rows ranked by the representative rule.
    pub ranked_members: Vec<Vec<usize>>,
    /// Content fingerprint of this artifact.
    pub fingerprint: Fingerprint,
}

/// Runs the Ingest/Repair stage: missing samples (NaN markers left by
/// quarantine-tolerant ingestion) are filled with the column median over
/// the finite samples, and — when the config carries a winsorization
/// band — finite outliers are clamped to `median ± k·MAD(σ-scaled)`.
/// A clean database passes through as `repaired: None`.
///
/// # Errors
///
/// Propagates statistics errors from degenerate columns.
pub fn run_repair(
    db: &MetricDatabase,
    cfg: &RepairConfig,
    fingerprint: Fingerprint,
) -> Result<RepairArtifact> {
    use flare_linalg::stats::{mad, median, MAD_TO_SIGMA};
    let d = db.schema().len();
    let mut report = RepairReport {
        records: db.len(),
        ..RepairReport::default()
    };
    let mut fill = vec![0.0; d];
    let mut band: Vec<Option<(f64, f64)>> = vec![None; d];
    for j in 0..d {
        let finite: Vec<f64> = db
            .iter()
            .map(|r| r.metrics[j])
            .filter(|v| v.is_finite())
            .collect();
        if finite.is_empty() {
            // No in-band value exists to borrow; 0.0 keeps the column
            // constant so normalization neutralizes it.
            report.dead_columns.push(j);
            continue;
        }
        let m = median(&finite)?;
        fill[j] = m;
        if let Some(k) = cfg.winsorize_mad {
            let spread = mad(&finite)? * MAD_TO_SIGMA;
            if spread > f64::EPSILON {
                band[j] = Some((m - k * spread, m + k * spread));
            }
        }
    }
    let mut records = Vec::with_capacity(db.len());
    for row in db.iter() {
        let mut rec = row.to_record();
        for (j, v) in rec.metrics.iter_mut().enumerate() {
            if !v.is_finite() {
                *v = fill[j];
                report.imputed_cells += 1;
            } else if let Some((lo, hi)) = band[j] {
                if *v < lo || *v > hi {
                    *v = v.clamp(lo, hi);
                    report.winsorized_cells += 1;
                }
            }
        }
        records.push(rec);
    }
    let repaired = if report.is_clean() {
        None
    } else {
        let mut repaired = MetricDatabase::new(db.schema().clone());
        for rec in records {
            repaired.insert(rec)?;
        }
        Some(repaired)
    };
    Ok(RepairArtifact {
        repaired,
        report,
        fingerprint,
    })
}

/// Runs the Featurize stage: strip per-job mix columns (unless §5.3
/// augmentation is on), prune correlated raw metrics, z-score (or
/// median/MAD) normalize, fit the PCA, and project every scenario into
/// whitened kept-PC space.
///
/// The whole stage is **shard-streaming**: refinement, normalization,
/// the PCA moment passes, and the whitened projection all walk the
/// refined database shard by shard, so no n×d matrix is ever
/// materialized — peak transient memory is one shard plus the O(d²)
/// accumulators, and the sharded n×k whitened plane is the only
/// row-count-sized allocation. The per-shard passes fan out across
/// `threads` workers with partials combined in shard-index order, so
/// every thread count produces the serial bits. With `spill.enabled` the
/// refined shards additionally move into an LRU-pinned [`ShardStore`]
/// that keeps at most `spill.max_resident_shards` in memory and pages
/// the rest to disk, with a background prefetcher
/// (`spill.prefetch_depth`) faulting upcoming shards while compute runs;
/// every path is bit-identical to the dense (and non-spilled) oracle.
///
/// # Errors
///
/// Propagates refinement, PCA, and (spill only) shard-store I/O errors.
pub fn run_featurize(
    db: &MetricDatabase,
    cfg: &FeaturizeConfig,
    spill: &SpillConfig,
    threads: Option<usize>,
    fingerprint: Fingerprint,
) -> Result<FeaturizeArtifact> {
    // §5.3 per-job mix columns participate only when augmentation is
    // requested; otherwise they're stripped before refinement so the
    // default pipeline clusters on general characteristics only.
    let db_owned;
    let db = if cfg.per_job_augmentation {
        db
    } else {
        let keep = db.schema().non_job_mix_indices();
        if keep.len() == db.schema().len() {
            db
        } else {
            db_owned = db.project(&keep)?;
            &db_owned
        }
    };

    let refinement = refine_with_threaded(
        db,
        cfg.correlation_threshold,
        CorrelationMethod::Pearson,
        threads,
    )?;
    let refined = apply_refinement(db, &refinement)?;
    let refined_schema = refined.schema().clone();
    let scenario_ids = refined.scenario_ids().to_vec();
    let observations: Vec<u32> = refined.iter().map(|r| r.observations).collect();

    let (pca, n_pcs, projected, spill_stats) = if spill.enabled {
        let root = spill.dir.clone().unwrap_or_else(std::env::temp_dir);
        let store =
            ShardStore::spill_to(refined.into_data_shards(), &root, spill.max_resident_shards)?
                .with_prefetch(spill.prefetch_depth);
        let (pca, n_pcs, projected) = featurize_shards(&store, cfg, threads)?;
        (pca, n_pcs, projected, Some(store.stats()))
    } else {
        let (pca, n_pcs, projected) = featurize_shards(refined.data_shards(), cfg, threads)?;
        (pca, n_pcs, projected, None)
    };

    Ok(FeaturizeArtifact {
        refinement,
        refined_schema,
        scenario_ids,
        observations,
        pca,
        n_pcs,
        projected,
        spill: spill_stats,
        fingerprint,
    })
}

/// The shard-generic core of the Featurize stage: fit the PCA from
/// streaming moment passes (robust median/MAD normalization swaps in for
/// the mean/std z-score so residual spikes cannot dominate the column
/// variances), pick the kept-PC count, and build the whitened n×k
/// projection shard by shard. Generic over [`ShardAccess`] so the
/// in-memory and spilled stores run the identical code — which is what
/// makes spill-on/off bit-identity structural rather than coincidental.
///
/// The moment passes and the projection both fan out one task per shard
/// across `threads` workers; projected blocks are reassembled in
/// shard-index order and each row goes through the single-row
/// [`RowProjector`](flare_linalg::pca::RowProjector) kernel (bit-identical
/// to `transform_whitened`, no per-shard transformed temporary), so the
/// output bytes are invariant across thread counts and shard layouts.
fn featurize_shards<A: ShardAccess + Sync>(
    data: &A,
    cfg: &FeaturizeConfig,
    threads: Option<usize>,
) -> Result<(Pca, usize, ShardedMatrix)> {
    let pca = if cfg.robust_normalization {
        Pca::fit_sharded_with_threaded(data, robust_scale_sharded(data)?, threads)?
    } else {
        Pca::fit_sharded_threaded(data, threads)?
    };
    let n_pcs = pca.components_for_variance(cfg.variance_threshold)?;
    let projector = pca.row_projector(n_pcs)?;
    let blocks = par_map_range(data.shard_count(), threads, |s| {
        let mut projector = projector.clone();
        data.with_shard(s, |shard| -> flare_linalg::Result<Matrix> {
            let mut block = Matrix::zeros(shard.nrows(), n_pcs);
            for i in 0..shard.nrows() {
                projector.project_whitened_into(shard.row(i), block.row_mut(i))?;
            }
            Ok(block)
        })
    });
    let mut projected = ShardedMatrix::new(n_pcs, data.shard_rows());
    projected.reserve_rows(data.nrows());
    for block in blocks {
        let block: Matrix = block??;
        for row in block.rows_iter() {
            projected.push_row(row)?;
        }
    }
    Ok((pca, n_pcs, projected))
}

/// Runs the Cluster stage: pick the cluster count (fixed or by sweep) and
/// group the whitened PC coordinates.
///
/// `prev_sweep` enables sweep-point reuse: when the caller has proven the
/// feature matrix and the K-means base config unchanged (featurize
/// fingerprints equal, configs equal modulo `k`/`threads`), per-`k` points
/// from the previous sweep are reused verbatim — each point is computed
/// independently and deterministically, so reuse is byte-identical.
/// Returns the artifact and the number of sweep points reused.
///
/// # Errors
///
/// - [`FlareError::InsufficientData`] if a sweep yields no recommendation
///   or there are fewer scenarios than clusters.
/// - Propagated clustering errors.
pub fn run_cluster(
    feat: &FeaturizeArtifact,
    cfg: &ClusterStageConfig,
    pipeline_threads: Option<usize>,
    prev_sweep: Option<&SweepResult>,
    fingerprint: Fingerprint,
) -> Result<(ClusterArtifact, usize)> {
    use crate::config::{ClusterCountRule, ClusterMethod};
    // The pipeline-wide `threads` knob flows into the k-means stages
    // unless the k-means config already pins its own thread count. The
    // budget cascades: sweep candidates → restarts → intra-restart
    // assignment chunks (the kernel layer), so a single knob saturates
    // the cores at every stage while outputs stay thread-invariant.
    let mut kconfig = cfg.kmeans.clone();
    kconfig.threads = kconfig.threads.or(pipeline_threads);
    // The scale knobs translate into the cluster substrate's own types:
    // the mini-batch tier (engaged only above `tier_threshold`; at or
    // below it `kmeans_tiered` IS the exact path, bit for bit) and the
    // sweep's silhouette cache cap / subsample size.
    let tier = MiniBatchConfig::default()
        .with_threshold(cfg.scale.tier_threshold)
        .with_batch_size(cfg.scale.minibatch_size);
    let sweep_opts = SweepOptions {
        max_pairwise_cache_bytes: cfg.scale.silhouette_cache_bytes,
        silhouette_sample: cfg.scale.silhouette_sample,
        ..SweepOptions::default()
    };
    let mut reused_points = 0;
    let (k, sweep) = match &cfg.cluster_count {
        ClusterCountRule::Fixed(k) => (*k, None),
        ClusterCountRule::Sweep { min_k, max_k, step } => {
            let ks: Vec<usize> = (*min_k..=*max_k).step_by(*step).collect();
            // Sweeps score silhouettes over pairwise distances, which
            // needs random row access — they operate on the coalesced
            // dense view (cached inside the sharded plane). The direct
            // fit below walks the shards themselves.
            let sweep = match cfg.cluster_method {
                ClusterMethod::KMeans => {
                    let (sweep, reused) = sweep_kmeans_cached_with(
                        feat.projected.coalesced(),
                        &ks,
                        &kconfig,
                        prev_sweep,
                        &sweep_opts,
                    )?;
                    reused_points = reused;
                    sweep
                }
                ClusterMethod::Hierarchical(linkage) => {
                    sweep_hierarchical(feat.projected.coalesced(), &ks, linkage)?
                }
            };
            let k = sweep.recommended_k().ok_or_else(|| {
                FlareError::InsufficientData("sweep produced no recommendation".into())
            })?;
            (k, Some(sweep))
        }
    };
    if feat.projected.nrows() < k {
        return Err(FlareError::InsufficientData(format!(
            "{} scenarios cannot form {k} clusters",
            feat.projected.nrows()
        )));
    }
    let clustering = match cfg.cluster_method {
        ClusterMethod::KMeans => {
            kconfig.k = k;
            // Shard-wise ingestion: bit-identical to the dense tiered
            // path for every shard layout and thread count, without
            // requiring the projected plane coalesced.
            kmeans_tiered_sharded(&feat.projected, &kconfig, &tier)?
        }
        ClusterMethod::Hierarchical(linkage) => {
            let dendrogram = agglomerative(feat.projected.coalesced(), linkage)?;
            let assignments = dendrogram.cut(k)?;
            KMeansResult::from_assignments(feat.projected.coalesced(), assignments, k)?
        }
    };
    Ok((
        ClusterArtifact {
            clustering,
            sweep,
            fingerprint,
        },
        reused_points,
    ))
}

/// Runs the Representatives stage: rank every cluster's members
/// representative-first per the configured rule. Both rules walk the
/// sharded projected plane (streaming centroid distances / row views)
/// rather than requiring a dense resident matrix.
///
/// # Errors
///
/// Propagates shard-access failures from the centroid-distance pass.
pub fn run_representatives(
    feat: &FeaturizeArtifact,
    cluster: &ClusterArtifact,
    cfg: &RepresentativesConfig,
    fingerprint: Fingerprint,
) -> Result<RepresentativesArtifact> {
    use crate::config::RepresentativeRule;
    let ranked_members = match cfg.representative_rule {
        RepresentativeRule::NearestToCentroid => cluster
            .clustering
            .members_by_centroid_distance_sharded(&feat.projected)?,
        RepresentativeRule::Medoid => medoid_rankings(&feat.projected, &cluster.clustering),
    };
    Ok(RepresentativesArtifact {
        ranked_members,
        fingerprint,
    })
}

/// Ranks each cluster's members by ascending total distance to the other
/// members: `ranked[c][0]` is the medoid.
fn medoid_rankings(data: &ShardedMatrix, clustering: &KMeansResult) -> Vec<Vec<usize>> {
    use flare_cluster::distance::euclidean;
    let mut members: Vec<Vec<usize>> = vec![Vec::new(); clustering.k()];
    for (row, &c) in clustering.assignments.iter().enumerate() {
        members[c].push(row);
    }
    for group in &mut members {
        let totals: Vec<f64> = group
            .iter()
            .map(|&i| {
                group
                    .iter()
                    .map(|&j| euclidean(data.row(i), data.row(j)))
                    .sum()
            })
            .collect();
        let mut order: Vec<usize> = (0..group.len()).collect();
        // `total_cmp` keeps the ranking well-defined even if a degenerate
        // projection produces a NaN distance (NaN sorts last).
        order.sort_by(|&a, &b| totals[a].total_cmp(&totals[b]));
        *group = order.iter().map(|&pos| group[pos]).collect();
    }
    members
}

/// Runs Repair → Featurize → Cluster → Representatives from a profiled
/// database and assembles the fitted [`Analyzer`](crate::analyzer::Analyzer)
/// plus the repaired-database cache the incremental paths keep around.
///
/// Both the monolithic `Analyzer::fit` and every `Flare` path (fit, refit,
/// extend, recluster) funnel through this, so incremental results are
/// byte-identical to full fits by construction.
pub(crate) fn fit_database(
    db: &MetricDatabase,
    config: &FlareConfig,
    fps: &StageFingerprints,
) -> Result<(crate::analyzer::Analyzer, Option<MetricDatabase>)> {
    if db.len() < 2 {
        return Err(FlareError::InsufficientData(format!(
            "{} scenarios in database",
            db.len()
        )));
    }
    let RepairArtifact {
        repaired,
        report: repair_report,
        ..
    } = run_repair(db, &config.repair_stage(), fps.repair)?;
    let working = repaired.as_ref().unwrap_or(db);
    let feat = run_featurize(
        working,
        &config.featurize_stage(),
        &config.scale.spill,
        config.threads,
        fps.featurize,
    )?;
    let (cluster, _) = run_cluster(
        &feat,
        &config.cluster_stage(),
        config.threads,
        None,
        fps.cluster,
    )?;
    let reps = run_representatives(
        &feat,
        &cluster,
        &config.representatives_stage(),
        fps.representatives,
    )?;
    let analyzer = crate::analyzer::Analyzer::from_artifacts(repair_report, feat, cluster, reps);
    Ok((analyzer, repaired))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ClusterCountRule;

    #[test]
    fn fingerprints_are_stable_and_input_sensitive() {
        let cfg = FlareConfig::default();
        let a = StageFingerprints::compute(1, &cfg);
        let b = StageFingerprints::compute(1, &cfg);
        assert_eq!(a, b, "same input + config must fingerprint identically");
        let c = StageFingerprints::compute(2, &cfg);
        assert_ne!(a.profile, c.profile);
        assert_ne!(a.representatives, c.representatives, "input cascades");
    }

    #[test]
    fn clustering_change_invalidates_only_downstream_stages() {
        let base = FlareConfig::default();
        let changed = FlareConfig {
            cluster_count: ClusterCountRule::Fixed(7),
            ..FlareConfig::default()
        };
        let a = StageFingerprints::compute(42, &base);
        let b = StageFingerprints::compute(42, &changed);
        assert_eq!(a.profile, b.profile);
        assert_eq!(a.repair, b.repair);
        assert_eq!(a.featurize, b.featurize);
        assert_ne!(a.cluster, b.cluster);
        assert_ne!(a.representatives, b.representatives);
    }

    #[test]
    fn wall_clock_knobs_do_not_invalidate() {
        let base = FlareConfig::default();
        let threaded = FlareConfig {
            threads: Some(7),
            ..FlareConfig::default()
        };
        assert_eq!(
            StageFingerprints::compute(9, &base),
            StageFingerprints::compute(9, &threaded),
            "threads is a wall-clock knob, never a result knob"
        );
        let mut pinned = FlareConfig::default();
        pinned.kmeans.threads = Some(3);
        pinned.kmeans.k = 99; // always overridden by the cluster-count rule
        assert_eq!(
            StageFingerprints::compute(9, &base),
            StageFingerprints::compute(9, &pinned)
        );
        // The metric-store shard size is layout-only: any shard size
        // coalesces to the same matrix bit-for-bit, so it never
        // invalidates an artifact.
        let mut sharded = FlareConfig::default();
        sharded.scale.shard_rows = 333;
        assert_eq!(
            StageFingerprints::compute(9, &base),
            StageFingerprints::compute(9, &sharded)
        );
    }

    #[test]
    fn scale_tier_knobs_invalidate_only_the_cluster_stages() {
        // Unlike shard_rows, the tier threshold / batch size / silhouette
        // limits can change which bits the cluster stage produces, so
        // they invalidate it (and everything downstream) — but nothing
        // upstream.
        let base = FlareConfig::default();
        let mut tiered = FlareConfig::default();
        tiered.scale.tier_threshold = 500;
        tiered.scale.minibatch_size = 64;
        let a = StageFingerprints::compute(13, &base);
        let b = StageFingerprints::compute(13, &tiered);
        assert_eq!(a.profile, b.profile);
        assert_eq!(a.repair, b.repair);
        assert_eq!(a.featurize, b.featurize);
        assert_ne!(a.cluster, b.cluster);
        assert_ne!(a.representatives, b.representatives);
    }

    #[test]
    fn evaluation_knobs_do_not_invalidate_fit_stages() {
        let base = FlareConfig::default();
        let eval_changed = FlareConfig {
            weight_by_observations: false,
            min_replay_coverage: 0.9,
            ..FlareConfig::default()
        };
        assert_eq!(
            StageFingerprints::compute(5, &base),
            StageFingerprints::compute(5, &eval_changed)
        );
    }

    #[test]
    fn repair_change_invalidates_from_repair_down() {
        let base = FlareConfig::default();
        let wins = FlareConfig {
            winsorize_mad: Some(6.0),
            ..FlareConfig::default()
        };
        let a = StageFingerprints::compute(11, &base);
        let b = StageFingerprints::compute(11, &wins);
        assert_eq!(a.profile, b.profile);
        assert_ne!(a.repair, b.repair);
        assert_ne!(a.featurize, b.featurize);
    }

    #[test]
    fn fit_report_accounting() {
        let full = FitReport::full_fit(30);
        assert_eq!(full.recomputed_stages(), 5);
        assert_eq!(full.reused_stages(), 0);
        assert_eq!(full.scenarios_profiled, 30);
        let loaded = FitReport::loaded();
        assert_eq!(loaded.reused_stages(), 5);
        assert_eq!(loaded.scenarios_profiled, 0);
    }
}
