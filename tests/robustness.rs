//! Failure-injection and degenerate-input robustness tests: the pipeline
//! must fail loudly on unusable input and degrade gracefully on noisy or
//! skewed input.

use flare::core::analyzer::Analyzer;
use flare::core::estimate::{estimate_all_job_with, EstimateOptions};
use flare::core::replayer::{FlakyTestbed, RetryPolicy};
use flare::metrics::database::{IngestPolicy, MetricDatabase, ScenarioId, ScenarioRecord};
use flare::metrics::schema::MetricSchema;
use flare::prelude::*;
use flare::sim::faults::{FaultInjector, FaultPlan};
use proptest::prelude::*;
use std::sync::OnceLock;

fn tiny_corpus(days: f64) -> Corpus {
    Corpus::generate(&CorpusConfig {
        machines: 2,
        days,
        tick_minutes: 15.0,
        ..CorpusConfig::default()
    })
}

#[test]
fn too_few_scenarios_for_clusters_errors_cleanly() {
    let corpus = tiny_corpus(0.05); // a couple of snapshots
    let result = Flare::fit(
        corpus,
        FlareConfig {
            cluster_count: ClusterCountRule::Fixed(50),
            ..FlareConfig::default()
        },
    );
    match result {
        Err(FlareError::InsufficientData(_)) => {}
        other => panic!("expected InsufficientData, got {other:?}"),
    }
}

#[test]
fn duplicate_only_corpus_still_fits() {
    // All rows identical: PCA sees zero variance, K-means sees one point
    // cloud. The pipeline must not panic or divide by zero.
    let schema = MetricSchema::canonical();
    let mut db = MetricDatabase::new(schema.clone());
    for i in 0..20u32 {
        db.insert(ScenarioRecord {
            id: ScenarioId(i),
            metrics: vec![5.0; schema.len()],
            observations: 1,
            job_mix: vec![("DC".into(), 1)],
        })
        .expect("insert");
    }
    let analyzer = Analyzer::fit(
        &db,
        &FlareConfig {
            cluster_count: ClusterCountRule::Fixed(3),
            ..FlareConfig::default()
        },
    )
    .expect("degenerate corpus must still fit");
    assert_eq!(analyzer.clustering().assignments.len(), 20);
    // Everything collapses into (effectively) one behaviour.
    assert!(analyzer.clustering().sse < 1e-6);
}

#[test]
fn outlier_scenarios_do_not_break_representative_extraction() {
    let schema = MetricSchema::canonical();
    let d = schema.len();
    let mut db = MetricDatabase::new(schema);
    // 30 normal rows + 2 extreme outliers (e.g. a counter wrapped around).
    for i in 0..30u32 {
        let metrics: Vec<f64> = (0..d)
            .map(|j| 100.0 + ((i + j as u32) % 13) as f64)
            .collect();
        db.insert(ScenarioRecord {
            id: ScenarioId(i),
            metrics,
            observations: 1,
            job_mix: vec![("GA".into(), 1)],
        })
        .expect("insert");
    }
    for i in 30..32u32 {
        db.insert(ScenarioRecord {
            id: ScenarioId(i),
            metrics: vec![1e9; d],
            observations: 1,
            job_mix: vec![("GA".into(), 1)],
        })
        .expect("insert");
    }
    let analyzer = Analyzer::fit(
        &db,
        &FlareConfig {
            cluster_count: ClusterCountRule::Fixed(4),
            ..FlareConfig::default()
        },
    )
    .expect("outliers must not break the fit");
    // Outliers isolate into their own cluster instead of dragging every
    // centroid away.
    let outlier_cluster = analyzer.clustering().assignments[30];
    assert_eq!(analyzer.clustering().assignments[31], outlier_cluster);
    let outlier_members = analyzer
        .clustering()
        .assignments
        .iter()
        .filter(|&&a| a == outlier_cluster)
        .count();
    assert_eq!(outlier_members, 2, "outliers should form their own cluster");
}

#[test]
fn non_finite_metrics_rejected_at_ingestion() {
    let schema = MetricSchema::canonical();
    let mut db = MetricDatabase::new(schema.clone());
    let mut metrics = vec![1.0; schema.len()];
    metrics[7] = f64::INFINITY;
    let result = db.insert(ScenarioRecord {
        id: ScenarioId(0),
        metrics,
        observations: 1,
        job_mix: vec![],
    });
    assert!(
        result.is_err(),
        "infinite counter must be rejected at the door"
    );
}

#[test]
fn skewed_observation_weights_shift_the_estimate_sanely() {
    let corpus = Corpus::generate(&CorpusConfig {
        machines: 4,
        days: 2.0,
        tick_minutes: 15.0,
        ..CorpusConfig::default()
    });
    let flare = Flare::fit(
        corpus,
        FlareConfig {
            cluster_count: ClusterCountRule::Fixed(8),
            ..FlareConfig::default()
        },
    )
    .expect("fit");
    let feature = Feature::paper_feature1();
    let base_est = flare.evaluate(&feature).expect("estimate").impact_pct;

    // Skew: a single scenario dominates the observation counts (e.g. a
    // long-running steady state). The estimate must remain finite and
    // within the per-cluster impact range.
    let heavy_id = flare.corpus().hp_entries()[0].id;
    let skewed = flare
        .recluster_with_weights(|e| if e.id == heavy_id { 100_000 } else { 1 })
        .expect("recluster");
    let skewed_est = skewed.evaluate(&feature).expect("estimate");
    assert!(skewed_est.impact_pct.is_finite());
    let lo = skewed_est
        .clusters
        .iter()
        .map(|c| c.impact_pct)
        .fold(f64::INFINITY, f64::min);
    let hi = skewed_est
        .clusters
        .iter()
        .map(|c| c.impact_pct)
        .fold(f64::NEG_INFINITY, f64::max);
    assert!(skewed_est.impact_pct >= lo - 1e-9 && skewed_est.impact_pct <= hi + 1e-9);
    // And it genuinely responds to the weighting (unless the corpus is
    // pathologically uniform).
    assert!((skewed_est.impact_pct - base_est).abs() >= 0.0);
}

/// Shared small corpus + clean profiled database for the fault-injection
/// tests (profiling is the expensive part; corruption is cheap).
fn fault_setup() -> &'static (Corpus, MetricDatabase, MachineConfig) {
    static SETUP: OnceLock<(Corpus, MetricDatabase, MachineConfig)> = OnceLock::new();
    SETUP.get_or_init(|| {
        let cfg = CorpusConfig {
            machines: 4,
            days: 2.0,
            tick_minutes: 15.0,
            ..CorpusConfig::default()
        };
        let corpus = Corpus::generate(&cfg);
        let baseline = cfg.machine_config.clone();
        let db = corpus.to_metric_database(&baseline);
        (corpus, db, baseline)
    })
}

/// The hardened Analyzer configuration the fault tests fit with.
fn hardened_config() -> FlareConfig {
    FlareConfig {
        cluster_count: ClusterCountRule::Fixed(6),
        robust_normalization: true,
        winsorize_mad: Some(8.0),
        ..FlareConfig::default()
    }
}

#[test]
fn dropout_and_record_loss_complete_with_finite_estimate() {
    let (corpus, clean_db, baseline) = fault_setup();
    let injector = FaultInjector::new(FaultPlan {
        seed: 0xDEAD,
        sample_dropout: 0.10,
        record_loss: 0.01,
        ..FaultPlan::default()
    })
    .expect("valid plan");
    let (db, ingest) = injector.corrupt_database(clean_db, &IngestPolicy::default());
    assert!(
        ingest.missing_cells > 0,
        "10% dropout must leave missing-sample markers"
    );
    assert!(db.len() <= clean_db.len());

    let analyzer = Analyzer::fit(&db, &hardened_config()).expect("fit degraded telemetry");
    let repair = analyzer.repair_report();
    assert!(
        repair.imputed_cells > 0,
        "repair must fill the dropped samples: {repair:?}"
    );
    assert_eq!(repair.imputed_cells, db.missing_cells()); // every marker healed

    let fc = Feature::paper_feature2().apply(baseline);
    let est = estimate_all_job_with(
        corpus,
        &analyzer,
        &SimTestbed,
        baseline,
        &fc,
        &EstimateOptions::default(),
    )
    .expect("estimate on repaired telemetry");
    assert!(est.impact_pct.is_finite());
    assert_eq!(est.coverage, 1.0);
}

#[test]
fn fault_injection_is_deterministic() {
    let (_, clean_db, _) = fault_setup();
    let plan = FaultPlan::uniform(0.2, 7);
    let corrupt = || {
        FaultInjector::new(plan)
            .unwrap()
            .corrupt_database(clean_db, &IngestPolicy::default())
    };
    let (db_a, rep_a) = corrupt();
    let (db_b, rep_b) = corrupt();
    assert_eq!(rep_a, rep_b);
    assert_eq!(db_a.len(), db_b.len());
    for (a, b) in db_a.iter().zip(db_b.iter()) {
        assert_eq!(a.id, b.id);
        // Bit-equality including NaN positions.
        let bits = |r: flare::metrics::database::ScenarioRow| -> Vec<u64> {
            r.metrics.iter().map(|v| v.to_bits()).collect()
        };
        assert_eq!(bits(a), bits(b));
    }
}

#[test]
fn clean_fault_plan_is_byte_identity() {
    let (_, clean_db, _) = fault_setup();
    let injector = FaultInjector::new(FaultPlan::default()).unwrap();
    let (db, report) = injector.corrupt_database(clean_db, &IngestPolicy::default());
    assert!(report.is_clean());
    assert_eq!(db.len(), clean_db.len());
    for (a, b) in db.iter().zip(clean_db.iter()) {
        assert_eq!(a.id, b.id);
        let bits = |r: flare::metrics::database::ScenarioRow| -> Vec<u64> {
            r.metrics.iter().map(|v| v.to_bits()).collect()
        };
        assert_eq!(bits(a), bits(b));
    }
}

#[test]
fn flaky_testbed_failures_surface_as_typed_errors() {
    let (corpus, clean_db, baseline) = fault_setup();
    let analyzer = Analyzer::fit(clean_db, &hardened_config()).expect("fit");
    let fc = Feature::paper_feature1().apply(baseline);
    // Every replay fails permanently → ReplayFailed, never a panic.
    let dead = FlakyTestbed::new(SimTestbed, 0.0, 1.0, 3);
    let err = estimate_all_job_with(
        corpus,
        &analyzer,
        &dead,
        baseline,
        &fc,
        &EstimateOptions::default(),
    )
    .expect_err("all-failing testbed must error");
    assert!(
        matches!(err, FlareError::ReplayFailed { coverage, .. } if coverage == 0.0),
        "expected ReplayFailed, got {err}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// At any composite fault rate in [0, 0.5] — telemetry corruption on
    /// the collection side plus flaky replays on the testbed side — the
    /// pipeline either returns a finite estimate or a typed error; it
    /// never panics and never reports a non-finite impact.
    #[test]
    fn pipeline_never_panics_under_faults(
        rate in 0.0f64..=0.5,
        seed in 0u64..1_000_000,
    ) {
        let (corpus, clean_db, baseline) = fault_setup();
        let injector = FaultInjector::new(FaultPlan {
            seed,
            sample_dropout: rate,
            stuck_sensor: rate * 0.2,
            outlier_spike: rate * 0.1,
            record_loss: rate * 0.1,
            record_duplication: rate * 0.1,
            ..FaultPlan::default()
        }).expect("valid plan");
        let (db, _ingest) = injector.corrupt_database(clean_db, &IngestPolicy::default());

        match Analyzer::fit(&db, &hardened_config()) {
            Ok(analyzer) => {
                let fc = Feature::paper_feature2().apply(baseline);
                let flaky = FlakyTestbed::new(SimTestbed, rate * 0.3, rate * 0.1, seed);
                let options = EstimateOptions {
                    retry: RetryPolicy { max_retries: 4, ..RetryPolicy::default() },
                    min_coverage: 0.25,
                    ..EstimateOptions::default()
                };
                match estimate_all_job_with(corpus, &analyzer, &flaky, baseline, &fc, &options) {
                    Ok(est) => {
                        prop_assert!(est.impact_pct.is_finite());
                        prop_assert!((0.0..=1.0).contains(&est.coverage));
                    }
                    // Degradation past the floor is a typed error, not a panic.
                    Err(FlareError::ReplayFailed { .. }) => {}
                    Err(e) => return Err(TestCaseError::fail(format!("unexpected error: {e}"))),
                }
            }
            // Heavy record loss can legitimately starve the clustering.
            Err(FlareError::InsufficientData(_)) => {}
            Err(e) => return Err(TestCaseError::fail(format!("unexpected fit error: {e}"))),
        }
    }
}

/// A fitted model over the fault corpus, shared by the streaming tests
/// (fitting is the expensive part; every property clones it).
fn stream_model() -> &'static Flare {
    static MODEL: OnceLock<Flare> = OnceLock::new();
    MODEL.get_or_init(|| {
        let (corpus, _, _) = fault_setup();
        Flare::fit(corpus.clone(), hardened_config()).expect("fit stream model")
    })
}

/// In-distribution arrivals: scenarios the model's corpus already holds
/// (re-observed colocations — the streaming steady state).
fn replayed_batch(model: &Flare, n: usize) -> Vec<(Scenario, u32)> {
    (0..n)
        .map(|i| {
            let entry = &model.corpus().entries()[i % model.corpus().len()];
            (entry.scenario.clone(), 1 + i as u32)
        })
        .collect()
}

/// Out-of-distribution arrivals: a fully-packed, LP-dominated mix the
/// corpus generator never produces.
fn outlandish_batch(n: usize) -> Vec<(Scenario, u32)> {
    (0..n)
        .map(|i| {
            let s = Scenario::from_counts([
                (JobName::DataCaching, 6),
                (JobName::Mcf, 2 + (i % 3) as u32),
                (JobName::Libquantum, 2),
            ]);
            (s, 1 + i as u32)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Under every fault mode at once — dropout, stuck sensors, outlier
    /// spikes, record loss, record duplication — a streaming session
    /// never panics: every batch lands in a legal disposition with sane
    /// fractions, estimates stay finite, and finalize either refits or
    /// fails with a typed error.
    #[test]
    fn stream_session_never_panics_under_faults(
        rate in 0.0f64..=0.6,
        seed in 0u64..1_000_000,
    ) {
        let model = stream_model().clone();
        let mut session = StreamSession::new(
            model.clone(),
            StreamConfig { chunk_size: 3, ..StreamConfig::default() },
        )
        .expect("valid config")
        .with_faults(FaultPlan {
            seed,
            sample_dropout: rate,
            stuck_sensor: rate * 0.3,
            outlier_spike: rate * 0.2,
            record_loss: rate * 0.2,
            record_duplication: rate * 0.2,
            ..FaultPlan::default()
        })
        .expect("valid plan");
        let batches = [
            replayed_batch(&model, 4),
            outlandish_batch(3),
            replayed_batch(&model, 2),
        ];
        for batch in batches {
            let arrived = batch.len();
            let out = session.ingest_batch(batch).expect("ingest never hard-fails");
            prop_assert_eq!(out.arrived, arrived);
            prop_assert!((0.0..=1.0).contains(&out.degraded_fraction));
            prop_assert!((0.0..=1.0).contains(&out.drift_fraction));
            prop_assert!(out.accepted + out.quarantined >= 1);
        }
        match session.evaluate(&Feature::paper_feature2()) {
            Ok(est) => prop_assert!(est.impact_pct.is_finite()),
            Err(FlareError::ReplayFailed { .. }) => {}
            Err(e) => return Err(TestCaseError::fail(format!("unexpected evaluate error: {e}"))),
        }
        let grown = session.corpus().len();
        match session.finalize() {
            Ok(refreshed) => prop_assert_eq!(refreshed.corpus().len(), grown),
            // Heavy record loss can legitimately starve the refit.
            Err(FlareError::InsufficientData(_)) => {}
            Err(e) => return Err(TestCaseError::fail(format!("unexpected finalize error: {e}"))),
        }
    }

    /// A poisoned batch (heavy dropout degrades nearly every record) is
    /// quarantined — never mistaken for drift, never refitted on: the
    /// last-good model keeps serving untouched.
    #[test]
    fn poisoned_batches_quarantine_rather_than_refit(seed in 0u64..1_000_000) {
        let model = stream_model().clone();
        let mut session = StreamSession::new(
            model.clone(),
            StreamConfig {
                drift_threshold: 0.2,
                calibration_quantile: 0.5,
                max_degraded_fraction: 0.5,
                ..StreamConfig::default()
            },
        )
        .expect("valid config")
        .with_faults(FaultPlan {
            seed,
            sample_dropout: 0.95,
            ..FaultPlan::default()
        })
        .expect("valid plan");
        let out = session.ingest_batch(outlandish_batch(6)).expect("ingest");
        prop_assert_eq!(out.disposition, BatchDisposition::Quarantined);
        prop_assert!(out.degraded_fraction > 0.5, "degraded {}", out.degraded_fraction);
        prop_assert_eq!(session.cursor().reclusters, 0);
        prop_assert!(!session.cursor().pending_drift);
        prop_assert_eq!(session.model().corpus().len(), model.corpus().len());
    }

    /// Crash safety: killing a fault-injected session after any batch
    /// boundary and resuming from its checkpoint produces byte-identical
    /// final state to the uninterrupted run.
    #[test]
    fn kill_and_resume_is_byte_identical(
        seed in 0u64..1_000_000,
        kill_after in 1usize..3,
    ) {
        let model = stream_model().clone();
        let plan = FaultPlan {
            seed,
            sample_dropout: 0.05,
            stuck_sensor: 0.05,
            ..FaultPlan::default()
        };
        let batches = [
            replayed_batch(&model, 3),
            outlandish_batch(4),
            replayed_batch(&model, 2),
        ];
        let config = |dir: Option<std::path::PathBuf>| StreamConfig {
            chunk_size: 2,
            drift_threshold: 0.2,
            calibration_quantile: 0.5,
            checkpoint_dir: dir,
            ..StreamConfig::default()
        };

        let mut uninterrupted = StreamSession::new(model.clone(), config(None))
            .expect("valid config")
            .with_faults(plan)
            .expect("valid plan");
        for b in batches.clone() {
            uninterrupted.ingest_batch(b).expect("ingest");
        }
        let snap_a = serde_json::to_string(
            &uninterrupted.finalize().expect("finalize").to_snapshot(),
        )
        .expect("serialize");

        let dir = std::env::temp_dir().join(format!(
            "flare_stream_resume_{seed}_{kill_after}_{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        {
            // The doomed first run: checkpoints at each batch boundary,
            // then is dropped without finalize — the simulated kill.
            let mut doomed = StreamSession::new(model.clone(), config(Some(dir.clone())))
                .expect("valid config")
                .with_faults(plan)
                .expect("valid plan");
            for b in batches.iter().take(kill_after).cloned() {
                doomed.ingest_batch(b).expect("ingest");
            }
        }
        let mut resumed =
            StreamSession::resume(&dir, config(Some(dir.clone()))).expect("resume");
        prop_assert_eq!(resumed.cursor().batches, kill_after as u64);
        for b in batches.iter().skip(kill_after).cloned() {
            resumed.ingest_batch(b).expect("ingest");
        }
        let snap_b =
            serde_json::to_string(&resumed.finalize().expect("finalize").to_snapshot())
                .expect("serialize");
        let reports_match = resumed.drift_report() == uninterrupted.drift_report();
        let _ = std::fs::remove_dir_all(&dir);
        prop_assert_eq!(snap_a, snap_b);
        prop_assert!(reports_match, "drift logs diverged across the resume");
    }
}

#[test]
fn refinement_threshold_extremes_behave() {
    let corpus = tiny_corpus(1.0);
    // Threshold 1.0: only |r| == 1 duplicates pruned; plenty of metrics
    // survive. Tiny threshold: nearly everything pruned but at least one
    // metric must survive (the first).
    for threshold in [1.0, 0.05] {
        let flare = Flare::fit(
            corpus.clone(),
            FlareConfig {
                correlation_threshold: threshold,
                cluster_count: ClusterCountRule::Fixed(4),
                ..FlareConfig::default()
            },
        )
        .expect("fit at threshold extreme");
        assert!(!flare.analyzer().refined_schema().is_empty());
        assert!(flare
            .evaluate(&Feature::paper_feature2())
            .expect("estimate")
            .impact_pct
            .is_finite());
    }
}
