//! Error types for clustering operations.

use std::error::Error;
use std::fmt;

/// Error produced by clustering operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClusterError {
    /// Fewer data points than requested clusters, or an empty dataset.
    TooFewPoints {
        /// Number of points available.
        points: usize,
        /// Number of clusters requested.
        k: usize,
    },
    /// `k = 0` or another parameter outside its valid range.
    InvalidParameter(String),
    /// Points had inconsistent dimensionality.
    DimensionMismatch(String),
    /// Data contained NaN or infinity.
    NonFinite(String),
    /// A shard of an out-of-core store could not be accessed (e.g. a
    /// spilled shard failed to read back) during a sharded clustering
    /// pass.
    ShardAccess(String),
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::TooFewPoints { points, k } => {
                write!(f, "cannot form {k} clusters from {points} points")
            }
            ClusterError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            ClusterError::DimensionMismatch(msg) => write!(f, "dimension mismatch: {msg}"),
            ClusterError::NonFinite(msg) => write!(f, "non-finite value: {msg}"),
            ClusterError::ShardAccess(msg) => write!(f, "shard access failed: {msg}"),
        }
    }
}

impl Error for ClusterError {}

/// Convenience alias for clustering results.
pub type Result<T> = std::result::Result<T, ClusterError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_too_few_points() {
        let e = ClusterError::TooFewPoints { points: 3, k: 5 };
        assert_eq!(e.to_string(), "cannot form 5 clusters from 3 points");
    }

    #[test]
    fn error_traits() {
        fn assert_send_sync<T: Send + Sync + std::error::Error>() {}
        assert_send_sync::<ClusterError>();
    }
}
