//! Error types for linear-algebra operations.

use std::error::Error;
use std::fmt;

/// Error produced by fallible linear-algebra operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinalgError {
    /// Two operands had incompatible dimensions.
    ///
    /// Carries a human-readable description of the mismatch, e.g.
    /// `"matmul: lhs is 3x4 but rhs is 5x2"`.
    DimensionMismatch(String),
    /// An operation required a non-empty matrix or vector but received an
    /// empty one.
    Empty(String),
    /// An iterative algorithm failed to converge within its iteration
    /// budget.
    NoConvergence {
        /// Name of the algorithm that failed.
        algorithm: &'static str,
        /// Number of iterations performed before giving up.
        iterations: usize,
    },
    /// The input contained a non-finite value (NaN or infinity).
    NonFinite(String),
    /// A parameter was outside its valid range.
    InvalidParameter(String),
    /// A spill/fault file operation failed (out-of-core shard store).
    Io(String),
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::DimensionMismatch(msg) => {
                write!(f, "dimension mismatch: {msg}")
            }
            LinalgError::Empty(msg) => write!(f, "empty input: {msg}"),
            LinalgError::NoConvergence {
                algorithm,
                iterations,
            } => write!(
                f,
                "{algorithm} did not converge after {iterations} iterations"
            ),
            LinalgError::NonFinite(msg) => {
                write!(f, "non-finite value encountered: {msg}")
            }
            LinalgError::InvalidParameter(msg) => {
                write!(f, "invalid parameter: {msg}")
            }
            LinalgError::Io(msg) => write!(f, "spill i/o failure: {msg}"),
        }
    }
}

impl Error for LinalgError {}

/// Convenience alias for results of linear-algebra operations.
pub type Result<T> = std::result::Result<T, LinalgError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_dimension_mismatch() {
        let e = LinalgError::DimensionMismatch("lhs 2x2, rhs 3x3".into());
        assert_eq!(e.to_string(), "dimension mismatch: lhs 2x2, rhs 3x3");
    }

    #[test]
    fn display_no_convergence_renders_iterations_field() {
        // The message must reflect whatever budget the failing algorithm
        // actually used (symmetric_eigen's 64 sweeps, QL's 30 iterations,
        // power iteration's 10_000) — never a hardcoded literal.
        for iterations in [64usize, 30, 10_000] {
            let e = LinalgError::NoConvergence {
                algorithm: "jacobi",
                iterations,
            };
            assert_eq!(
                e.to_string(),
                format!("jacobi did not converge after {iterations} iterations")
            );
        }
    }

    #[test]
    fn error_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LinalgError>();
    }

    #[test]
    fn error_implements_std_error() {
        fn assert_error<T: std::error::Error>() {}
        assert_error::<LinalgError>();
    }
}
