//! Evaluation cost vs estimation fidelity: the Fig. 13 trade-off.
//!
//! The cost unit is *scenario replays on the testbed* (machine-hours scale
//! linearly with it). FLARE costs one replay per representative; sampling
//! costs one per sampled scenario; the full datacenter costs one per
//! distinct scenario.

use crate::fulldc::full_datacenter_impact;
use crate::sampling::{sampling_distribution, SamplingConfig};
use flare_core::replayer::Testbed;
use flare_sim::datacenter::Corpus;
use flare_sim::machine::MachineConfig;
use serde::{Deserialize, Serialize};

/// One point of the cost/accuracy curve.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostPoint {
    /// Evaluation cost in scenario replays.
    pub cost: usize,
    /// Expected max error: 97.5th percentile of |estimate − truth|, in
    /// percentage points of MIPS reduction.
    pub expected_max_error: f64,
}

/// The Fig. 13 dataset: the sampling cost curve plus FLARE's single point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostAccuracyCurve {
    /// Sampling points at increasing cost.
    pub sampling: Vec<CostPoint>,
    /// FLARE's point.
    pub flare: CostPoint,
    /// Ground-truth cost (the full-datacenter replay count).
    pub full_cost: usize,
    /// Ground-truth impact the errors are measured against, %.
    pub truth_pct: f64,
}

impl CostAccuracyCurve {
    /// Overhead reduction of FLARE vs full-datacenter evaluation
    /// (the paper's headline 50×).
    pub fn flare_overhead_reduction(&self) -> f64 {
        self.full_cost as f64 / self.flare.cost.max(1) as f64
    }

    /// The smallest sampling cost whose expected max error beats FLARE's,
    /// or `None` if no evaluated sampling point does (the paper finds none
    /// within 10× FLARE's cost).
    pub fn sampling_cost_to_match_flare(&self) -> Option<usize> {
        self.sampling
            .iter()
            .filter(|p| p.expected_max_error <= self.flare.expected_max_error)
            .map(|p| p.cost)
            .min()
    }
}

/// Builds the Fig. 13 curve: evaluates sampling at each cost in
/// `sample_sizes` (each with `trials` trials) and places FLARE's point
/// from its estimate and replay cost.
///
/// The full-datacenter truth and the sampling populations replay the same
/// `(scenario, config)` pairs, so handing this function a
/// [`flare_core::replayer::CachedSimTestbed`] makes the sampling pass hit
/// the truth pass's solves — the curve costs one full-DC sweep instead of
/// two, and the numbers stay byte-identical to the uncached testbed.
#[allow(clippy::too_many_arguments)]
pub fn cost_accuracy_curve<T: Testbed + Sync>(
    corpus: &Corpus,
    testbed: &T,
    baseline: &MachineConfig,
    feature_config: &MachineConfig,
    sample_sizes: &[usize],
    trials: usize,
    seed: u64,
    flare_estimate_pct: f64,
    flare_cost: usize,
) -> CostAccuracyCurve {
    let truth = full_datacenter_impact(corpus, testbed, baseline, feature_config, true);
    let sampling = sample_sizes
        .iter()
        .filter_map(|&n| {
            let dist = sampling_distribution(
                corpus,
                testbed,
                baseline,
                feature_config,
                &SamplingConfig {
                    n_samples: n,
                    trials,
                    seed,
                    weight_by_observations: true,
                },
            )?;
            Some(CostPoint {
                cost: n,
                expected_max_error: dist.expected_max_error(truth.impact_pct),
            })
        })
        .collect();
    CostAccuracyCurve {
        sampling,
        flare: CostPoint {
            cost: flare_cost,
            expected_max_error: (flare_estimate_pct - truth.impact_pct).abs(),
        },
        full_cost: truth.evaluation_cost,
        truth_pct: truth.impact_pct,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flare_core::replayer::{CachedSimTestbed, SimTestbed};
    use flare_sim::datacenter::CorpusConfig;
    use flare_sim::feature::Feature;

    #[test]
    fn curve_is_monotone_ish_and_flare_point_valid() {
        let cfg = CorpusConfig {
            machines: 4,
            days: 2.0,
            tick_minutes: 15.0,
            ..CorpusConfig::default()
        };
        let corpus = Corpus::generate(&cfg);
        let baseline = cfg.machine_config.clone();
        let f1 = Feature::paper_feature1().apply(&baseline);
        let curve = cost_accuracy_curve(
            &corpus,
            &SimTestbed,
            &baseline,
            &f1,
            &[5, 20, 80],
            150,
            7,
            0.0, // placeholder FLARE estimate
            18,
        );
        assert_eq!(curve.sampling.len(), 3);
        // Error shrinks with cost (allow slack for trial noise).
        assert!(
            curve.sampling[2].expected_max_error < curve.sampling[0].expected_max_error,
            "errors: {:?}",
            curve.sampling
        );
        assert!(curve.full_cost > 80);
        assert!(curve.flare_overhead_reduction() > 1.0);
    }

    #[test]
    fn shared_cache_matches_uncached_curve_and_reuses_truth_solves() {
        let cfg = CorpusConfig {
            machines: 4,
            days: 2.0,
            tick_minutes: 15.0,
            ..CorpusConfig::default()
        };
        let corpus = Corpus::generate(&cfg);
        let baseline = cfg.machine_config.clone();
        let f2 = Feature::paper_feature2().apply(&baseline);
        let sizes = [5usize, 20];
        let truth = cost_accuracy_curve(
            &corpus,
            &SimTestbed,
            &baseline,
            &f2,
            &sizes,
            100,
            11,
            0.0,
            18,
        );
        let cached = CachedSimTestbed::new();
        let curve = cost_accuracy_curve(&corpus, &cached, &baseline, &f2, &sizes, 100, 11, 0.0, 18);
        assert_eq!(curve, truth, "cached curve must match the plain testbed");
        // The sampling populations replay the exact (scenario, config)
        // pairs the full-DC truth pass already solved: a single curve build
        // on a shared cache must produce cross-baseline hits.
        let stats = cached.stats();
        assert!(
            stats.hits > 0,
            "sampling passes must reuse the full-DC solves (stats: {stats:?})"
        );
    }
}
