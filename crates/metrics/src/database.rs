//! The performance & resource database the Profiler writes into (§4.2).
//!
//! The paper records per-scenario average metrics, the commands and
//! configurations of running jobs, in "our relational database". The
//! equivalent here is an in-memory table of [`ScenarioRecord`]s with
//! serde-JSON persistence.

use crate::error::{MetricsError, Result};
use crate::schema::MetricSchema;
use flare_linalg::Matrix;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::path::Path;

/// Opaque identifier of a job-colocation scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ScenarioId(pub u32);

impl std::fmt::Display for ScenarioId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "scenario#{:04}", self.0)
    }
}

/// One row of the metric database: a scenario's averaged raw metrics plus
/// the bookkeeping FLARE's Replayer needs to reconstruct it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioRecord {
    /// The scenario this row describes.
    pub id: ScenarioId,
    /// Raw metric values, aligned with the database's [`MetricSchema`].
    pub metrics: Vec<f64>,
    /// How many machine-intervals exhibited this scenario — the
    /// observation weight used when scenario populations are aggregated.
    pub observations: u32,
    /// The job mix as `(job_name, instance_count)` pairs — the "recorded
    /// commands and options" the Replayer re-executes (§4.5).
    pub job_mix: Vec<(String, u32)>,
}

impl ScenarioRecord {
    /// Instance count of `job` in this scenario (0 if absent).
    pub fn instances_of(&self, job: &str) -> u32 {
        self.job_mix
            .iter()
            .find(|(name, _)| name == job)
            .map(|&(_, n)| n)
            .unwrap_or(0)
    }

    /// `true` if this scenario runs at least one instance of `job`.
    pub fn has_job(&self, job: &str) -> bool {
        self.instances_of(job) > 0
    }
}

/// Why the validating ingest path refused a record.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum QuarantineReason {
    /// Metric vector length did not match the schema.
    SchemaMismatch {
        /// Expected number of metrics (schema length).
        expected: usize,
        /// Observed vector length.
        actual: usize,
    },
    /// The scenario id was already stored (duplicated / clock-skewed
    /// telemetry record).
    Duplicate,
    /// The record carried zero observation weight.
    ZeroObservations,
    /// Too many metrics were non-finite to trust the record at all.
    TooManyMissing {
        /// Non-finite metric count in the record.
        missing: usize,
        /// Maximum tolerated by the [`IngestPolicy`].
        allowed: usize,
    },
}

impl QuarantineReason {
    /// The typed error this quarantine corresponds to, for callers that
    /// want to escalate a quarantined record into a hard failure.
    pub fn to_error(&self, id: ScenarioId) -> MetricsError {
        match *self {
            QuarantineReason::SchemaMismatch { expected, actual } => {
                MetricsError::SchemaMismatch { expected, actual }
            }
            QuarantineReason::Duplicate => MetricsError::DuplicateScenario(id.0),
            QuarantineReason::ZeroObservations => {
                MetricsError::InvalidParameter(format!("{id}: zero observations"))
            }
            QuarantineReason::TooManyMissing { missing, allowed } => {
                MetricsError::InvalidParameter(format!(
                    "{id}: {missing} missing metrics exceeds the {allowed} allowed"
                ))
            }
        }
    }
}

impl std::fmt::Display for QuarantineReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QuarantineReason::SchemaMismatch { expected, actual } => {
                write!(f, "schema mismatch ({actual} metrics, expected {expected})")
            }
            QuarantineReason::Duplicate => write!(f, "duplicate scenario id"),
            QuarantineReason::ZeroObservations => write!(f, "zero observations"),
            QuarantineReason::TooManyMissing { missing, allowed } => {
                write!(f, "{missing} missing metrics (allowed {allowed})")
            }
        }
    }
}

/// Tolerance knobs for [`MetricDatabase::ingest`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IngestPolicy {
    /// Largest fraction of a record's metrics that may be non-finite for
    /// the record to be accepted (with NaN missing-sample markers) rather
    /// than quarantined. Clamped to `[0, 1]`.
    pub max_missing_fraction: f64,
}

impl Default for IngestPolicy {
    fn default() -> Self {
        IngestPolicy {
            max_missing_fraction: 0.5,
        }
    }
}

/// Per-batch accounting of what [`MetricDatabase::ingest`] did: how many
/// records were stored, how many missing-sample markers they carried, and
/// exactly which records were quarantined and why. Nothing is dropped
/// silently.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct IngestReport {
    /// Records accepted into the database.
    pub accepted: usize,
    /// NaN missing-sample markers across the accepted records.
    pub missing_cells: usize,
    /// Refused records with their reasons, in arrival order.
    pub quarantined: Vec<(ScenarioId, QuarantineReason)>,
}

impl IngestReport {
    /// Number of records refused.
    pub fn quarantined_count(&self) -> usize {
        self.quarantined.len()
    }

    /// `true` if every record was accepted with no missing samples.
    pub fn is_clean(&self) -> bool {
        self.missing_cells == 0 && self.quarantined.is_empty()
    }
}

/// In-memory metric database: schema + scenario rows.
///
/// # Examples
///
/// ```
/// use flare_metrics::database::{MetricDatabase, ScenarioId, ScenarioRecord};
/// use flare_metrics::schema::MetricSchema;
///
/// let schema = MetricSchema::canonical();
/// let mut db = MetricDatabase::new(schema.clone());
/// db.insert(ScenarioRecord {
///     id: ScenarioId(0),
///     metrics: vec![1.0; schema.len()],
///     observations: 3,
///     job_mix: vec![("memcached".into(), 2)],
/// })?;
/// assert_eq!(db.len(), 1);
/// # Ok::<(), flare_metrics::MetricsError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricDatabase {
    schema: MetricSchema,
    records: BTreeMap<ScenarioId, ScenarioRecord>,
}

impl MetricDatabase {
    /// Creates an empty database over `schema`.
    pub fn new(schema: MetricSchema) -> Self {
        MetricDatabase {
            schema,
            records: BTreeMap::new(),
        }
    }

    /// The metric schema rows are aligned to.
    pub fn schema(&self) -> &MetricSchema {
        &self.schema
    }

    /// Number of scenarios stored.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` if no scenarios are stored.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Inserts (or replaces) a scenario row. This is the *strict* path:
    /// every metric must be finite. Degraded telemetry goes through
    /// [`MetricDatabase::ingest`] instead, which quarantines bad records
    /// and keeps tolerable ones with missing-sample markers.
    ///
    /// # Errors
    ///
    /// Returns [`MetricsError::SchemaMismatch`] if the row's metric vector
    /// length differs from the schema,
    /// [`MetricsError::NonFiniteMetric`] if any metric is non-finite, and
    /// [`MetricsError::InvalidParameter`] if `observations == 0`.
    pub fn insert(&mut self, record: ScenarioRecord) -> Result<()> {
        if record.metrics.len() != self.schema.len() {
            return Err(MetricsError::SchemaMismatch {
                expected: self.schema.len(),
                actual: record.metrics.len(),
            });
        }
        if let Some(index) = record.metrics.iter().position(|m| !m.is_finite()) {
            return Err(MetricsError::NonFiniteMetric {
                id: record.id.0,
                index,
            });
        }
        if record.observations == 0 {
            return Err(MetricsError::InvalidParameter(format!(
                "{}: zero observations",
                record.id
            )));
        }
        self.records.insert(record.id, record);
        Ok(())
    }

    /// Validating bulk-ingest for telemetry of unknown quality (§4.2's
    /// profiler writes; faulty daemons drop samples, stick, spike, and
    /// duplicate records). Records are checked in order:
    ///
    /// - wrong metric-vector length → quarantined ([`QuarantineReason::SchemaMismatch`]);
    /// - `observations == 0` → quarantined ([`QuarantineReason::ZeroObservations`]);
    /// - scenario id already stored, or seen earlier in this batch →
    ///   quarantined ([`QuarantineReason::Duplicate`]) — duplicated
    ///   telemetry is never silently merged;
    /// - more than `policy.max_missing_fraction` of the metrics non-finite
    ///   → quarantined ([`QuarantineReason::TooManyMissing`]);
    /// - otherwise **accepted**, with every non-finite cell (NaN or ±∞)
    ///   normalized to a NaN missing-sample marker for the Analyzer's
    ///   repair stage to impute.
    ///
    /// Never fails: the outcome of every record is accounted for in the
    /// returned [`IngestReport`].
    pub fn ingest<I>(&mut self, records: I, policy: &IngestPolicy) -> IngestReport
    where
        I: IntoIterator<Item = ScenarioRecord>,
    {
        let mut report = IngestReport::default();
        let allowed =
            (policy.max_missing_fraction.clamp(0.0, 1.0) * self.schema.len() as f64) as usize;
        for mut record in records {
            if record.metrics.len() != self.schema.len() {
                report.quarantined.push((
                    record.id,
                    QuarantineReason::SchemaMismatch {
                        expected: self.schema.len(),
                        actual: record.metrics.len(),
                    },
                ));
                continue;
            }
            if record.observations == 0 {
                report
                    .quarantined
                    .push((record.id, QuarantineReason::ZeroObservations));
                continue;
            }
            if self.records.contains_key(&record.id) {
                report
                    .quarantined
                    .push((record.id, QuarantineReason::Duplicate));
                continue;
            }
            let missing = record.metrics.iter().filter(|m| !m.is_finite()).count();
            if missing > allowed {
                report.quarantined.push((
                    record.id,
                    QuarantineReason::TooManyMissing { missing, allowed },
                ));
                continue;
            }
            for m in &mut record.metrics {
                if !m.is_finite() {
                    *m = f64::NAN;
                }
            }
            report.accepted += 1;
            report.missing_cells += missing;
            self.records.insert(record.id, record);
        }
        report
    }

    /// Number of NaN missing-sample markers across all stored rows (only
    /// the [`MetricDatabase::ingest`] path can introduce them).
    pub fn missing_cells(&self) -> usize {
        self.records
            .values()
            .flat_map(|r| r.metrics.iter())
            .filter(|m| !m.is_finite())
            .count()
    }

    /// `true` if any stored row carries a missing-sample marker.
    pub fn has_missing(&self) -> bool {
        self.records
            .values()
            .any(|r| r.metrics.iter().any(|m| !m.is_finite()))
    }

    /// Looks up a scenario row.
    pub fn get(&self, id: ScenarioId) -> Option<&ScenarioRecord> {
        self.records.get(&id)
    }

    /// Iterates rows in ascending scenario-id order.
    pub fn iter(&self) -> impl Iterator<Item = &ScenarioRecord> {
        self.records.values()
    }

    /// All scenario ids in ascending order.
    pub fn scenario_ids(&self) -> Vec<ScenarioId> {
        self.records.keys().copied().collect()
    }

    /// Total observation weight across all rows.
    pub fn total_observations(&self) -> u64 {
        self.records.values().map(|r| r.observations as u64).sum()
    }

    /// The scenario × metric data matrix, rows in ascending scenario-id
    /// order (the Analyzer's input).
    ///
    /// # Errors
    ///
    /// Returns [`MetricsError::EmptyDatabase`] if there are no rows.
    pub fn to_matrix(&self) -> Result<Matrix> {
        if self.records.is_empty() {
            return Err(MetricsError::EmptyDatabase);
        }
        let rows: Vec<Vec<f64>> = self.records.values().map(|r| r.metrics.clone()).collect();
        Ok(Matrix::from_rows(&rows)?)
    }

    /// A new database containing the same scenarios but only the metric
    /// columns at `indices` (used after refinement).
    ///
    /// # Errors
    ///
    /// Returns [`MetricsError::InvalidParameter`] if an index is out of
    /// bounds or `indices` is empty.
    pub fn project(&self, indices: &[usize]) -> Result<MetricDatabase> {
        if indices.is_empty() {
            return Err(MetricsError::InvalidParameter(
                "projection onto zero metrics".into(),
            ));
        }
        if let Some(&bad) = indices.iter().find(|&&i| i >= self.schema.len()) {
            return Err(MetricsError::InvalidParameter(format!(
                "metric index {bad} out of bounds for schema of {}",
                self.schema.len()
            )));
        }
        let schema = self.schema.subset(indices);
        let mut db = MetricDatabase::new(schema);
        for r in self.records.values() {
            let metrics = indices.iter().map(|&i| r.metrics[i]).collect();
            // Rows were validated on entry; reinsert directly so projection
            // preserves NaN missing-sample markers awaiting repair.
            db.records.insert(
                r.id,
                ScenarioRecord {
                    id: r.id,
                    metrics,
                    observations: r.observations,
                    job_mix: r.job_mix.clone(),
                },
            );
        }
        Ok(db)
    }

    /// Serializes the database to pretty JSON.
    ///
    /// # Errors
    ///
    /// Returns [`MetricsError::Persistence`] on serialization failure.
    pub fn to_json(&self) -> Result<String> {
        serde_json::to_string_pretty(self).map_err(|e| MetricsError::Persistence(e.to_string()))
    }

    /// Deserializes a database from JSON.
    ///
    /// # Errors
    ///
    /// Returns [`MetricsError::Persistence`] on parse failure.
    pub fn from_json(json: &str) -> Result<Self> {
        serde_json::from_str(json).map_err(|e| MetricsError::Persistence(e.to_string()))
    }

    /// Writes the database to a JSON file.
    ///
    /// # Errors
    ///
    /// Returns [`MetricsError::Persistence`] on I/O or serialization
    /// failure.
    pub fn save(&self, path: &Path) -> Result<()> {
        let json = self.to_json()?;
        std::fs::write(path, json).map_err(|e| MetricsError::Persistence(e.to_string()))
    }

    /// Reads a database from a JSON file.
    ///
    /// # Errors
    ///
    /// Returns [`MetricsError::Persistence`] on I/O or parse failure.
    pub fn load(path: &Path) -> Result<Self> {
        let json =
            std::fs::read_to_string(path).map_err(|e| MetricsError::Persistence(e.to_string()))?;
        Self::from_json(&json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::MetricSchema;

    fn tiny_schema() -> MetricSchema {
        MetricSchema::canonical().subset(&[0, 1, 2])
    }

    fn record(id: u32, base: f64) -> ScenarioRecord {
        ScenarioRecord {
            id: ScenarioId(id),
            metrics: vec![base, base + 1.0, base + 2.0],
            observations: 1 + id,
            job_mix: vec![("DC".into(), 2), ("GA".into(), 1)],
        }
    }

    #[test]
    fn insert_and_get() {
        let mut db = MetricDatabase::new(tiny_schema());
        db.insert(record(7, 1.0)).unwrap();
        assert_eq!(db.len(), 1);
        let r = db.get(ScenarioId(7)).unwrap();
        assert_eq!(r.metrics[2], 3.0);
        assert!(db.get(ScenarioId(8)).is_none());
    }

    #[test]
    fn insert_validates() {
        let mut db = MetricDatabase::new(tiny_schema());
        let mut bad = record(0, 1.0);
        bad.metrics.pop();
        assert!(matches!(
            db.insert(bad),
            Err(MetricsError::SchemaMismatch {
                expected: 3,
                actual: 2
            })
        ));
        let mut nan = record(0, 1.0);
        nan.metrics[0] = f64::NAN;
        assert!(db.insert(nan).is_err());
        let mut zero_obs = record(0, 1.0);
        zero_obs.observations = 0;
        assert!(db.insert(zero_obs).is_err());
    }

    #[test]
    fn replace_on_same_id() {
        let mut db = MetricDatabase::new(tiny_schema());
        db.insert(record(1, 1.0)).unwrap();
        db.insert(record(1, 5.0)).unwrap();
        assert_eq!(db.len(), 1);
        assert_eq!(db.get(ScenarioId(1)).unwrap().metrics[0], 5.0);
    }

    #[test]
    fn matrix_rows_follow_id_order() {
        let mut db = MetricDatabase::new(tiny_schema());
        db.insert(record(5, 50.0)).unwrap();
        db.insert(record(2, 20.0)).unwrap();
        let m = db.to_matrix().unwrap();
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m[(0, 0)], 20.0); // id 2 first
        assert_eq!(m[(1, 0)], 50.0);
    }

    #[test]
    fn empty_matrix_errors() {
        let db = MetricDatabase::new(tiny_schema());
        assert!(matches!(db.to_matrix(), Err(MetricsError::EmptyDatabase)));
    }

    #[test]
    fn projection_keeps_rows_and_narrows_schema() {
        let mut db = MetricDatabase::new(tiny_schema());
        db.insert(record(0, 1.0)).unwrap();
        db.insert(record(1, 4.0)).unwrap();
        let p = db.project(&[2, 0]).unwrap();
        assert_eq!(p.schema().len(), 2);
        assert_eq!(p.get(ScenarioId(0)).unwrap().metrics, vec![3.0, 1.0]);
        assert!(db.project(&[]).is_err());
        assert!(db.project(&[9]).is_err());
    }

    #[test]
    fn job_mix_queries() {
        let r = record(0, 1.0);
        assert_eq!(r.instances_of("DC"), 2);
        assert_eq!(r.instances_of("WSV"), 0);
        assert!(r.has_job("GA"));
        assert!(!r.has_job("WSV"));
    }

    #[test]
    fn observations_accumulate() {
        let mut db = MetricDatabase::new(tiny_schema());
        db.insert(record(0, 1.0)).unwrap(); // 1 obs
        db.insert(record(1, 1.0)).unwrap(); // 2 obs
        assert_eq!(db.total_observations(), 3);
    }

    #[test]
    fn json_roundtrip() {
        let mut db = MetricDatabase::new(tiny_schema());
        db.insert(record(0, 1.0)).unwrap();
        db.insert(record(3, 9.0)).unwrap();
        let json = db.to_json().unwrap();
        let back = MetricDatabase::from_json(&json).unwrap();
        assert_eq!(db, back);
    }

    #[test]
    fn file_roundtrip() {
        let mut db = MetricDatabase::new(tiny_schema());
        db.insert(record(0, 2.0)).unwrap();
        let dir = std::env::temp_dir().join("flare_metrics_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("db.json");
        db.save(&path).unwrap();
        let back = MetricDatabase::load(&path).unwrap();
        assert_eq!(db, back);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn scenario_display() {
        assert_eq!(ScenarioId(7).to_string(), "scenario#0007");
    }

    #[test]
    fn ingest_accepts_clean_batch() {
        let mut db = MetricDatabase::new(tiny_schema());
        let report = db.ingest(
            vec![record(0, 1.0), record(1, 2.0)],
            &IngestPolicy::default(),
        );
        assert_eq!(report.accepted, 2);
        assert!(report.is_clean());
        assert_eq!(db.len(), 2);
        assert!(!db.has_missing());
    }

    #[test]
    fn ingest_keeps_tolerably_degraded_records_with_markers() {
        let mut db = MetricDatabase::new(tiny_schema());
        let mut r = record(0, 1.0);
        r.metrics[1] = f64::INFINITY; // 1 of 3 missing ≤ default 50%
        let report = db.ingest(vec![r], &IngestPolicy::default());
        assert_eq!(report.accepted, 1);
        assert_eq!(report.missing_cells, 1);
        assert!(report.quarantined.is_empty());
        // ±∞ is normalized to the NaN missing marker.
        assert!(db.get(ScenarioId(0)).unwrap().metrics[1].is_nan());
        assert_eq!(db.missing_cells(), 1);
        assert!(db.has_missing());
    }

    #[test]
    fn ingest_quarantines_hopeless_records() {
        let mut db = MetricDatabase::new(tiny_schema());
        db.insert(record(3, 1.0)).unwrap();
        let mut short = record(0, 1.0);
        short.metrics.pop();
        let mut zero_obs = record(1, 1.0);
        zero_obs.observations = 0;
        let mut all_nan = record(2, 1.0);
        all_nan.metrics = vec![f64::NAN; 3];
        let dup_existing = record(3, 9.0);
        let batch = vec![
            short,
            zero_obs,
            all_nan,
            dup_existing,
            record(4, 5.0),
            record(4, 6.0), // duplicate within the batch
        ];
        let report = db.ingest(batch, &IngestPolicy::default());
        assert_eq!(report.accepted, 1);
        assert_eq!(report.quarantined_count(), 5);
        assert_eq!(
            report.quarantined[0].1,
            QuarantineReason::SchemaMismatch {
                expected: 3,
                actual: 2
            }
        );
        assert_eq!(report.quarantined[1].1, QuarantineReason::ZeroObservations);
        assert!(matches!(
            report.quarantined[2].1,
            QuarantineReason::TooManyMissing { missing: 3, .. }
        ));
        assert_eq!(report.quarantined[3].1, QuarantineReason::Duplicate);
        assert_eq!(report.quarantined[4].1, QuarantineReason::Duplicate);
        // The pre-existing record is untouched by the duplicate.
        assert_eq!(db.get(ScenarioId(3)).unwrap().metrics[0], 1.0);
        assert_eq!(db.len(), 2);
    }

    #[test]
    fn quarantine_reasons_escalate_to_typed_errors() {
        let id = ScenarioId(9);
        assert!(matches!(
            QuarantineReason::Duplicate.to_error(id),
            MetricsError::DuplicateScenario(9)
        ));
        assert!(matches!(
            QuarantineReason::SchemaMismatch {
                expected: 3,
                actual: 1
            }
            .to_error(id),
            MetricsError::SchemaMismatch { .. }
        ));
    }

    #[test]
    fn strict_insert_reports_offending_index() {
        let mut db = MetricDatabase::new(tiny_schema());
        let mut nan = record(0, 1.0);
        nan.metrics[2] = f64::NAN;
        assert!(matches!(
            db.insert(nan),
            Err(MetricsError::NonFiniteMetric { id: 0, index: 2 })
        ));
    }

    #[test]
    fn projection_preserves_missing_markers() {
        let mut db = MetricDatabase::new(tiny_schema());
        let mut r = record(0, 1.0);
        r.metrics[0] = f64::NAN;
        db.ingest(vec![r], &IngestPolicy::default());
        let p = db.project(&[0, 2]).unwrap();
        assert!(p.get(ScenarioId(0)).unwrap().metrics[0].is_nan());
        assert_eq!(p.get(ScenarioId(0)).unwrap().metrics[1], 3.0);
    }
}
