//! Table 3: configurations of datacenter job instances, plus the latent
//! profiles this reproduction substitutes for the real benchmarks.

use flare_bench::banner;
use flare_workloads::{catalog, job::JobName};

fn main() {
    banner("Job instance configurations", "Table 3");
    println!("\nHigh Priority (HP) jobs:");
    for &j in JobName::HIGH_PRIORITY {
        println!("  {:<4} {}", j.abbrev(), j.config_line());
    }
    println!("\nLow Priority (LP) jobs (four copies per 4-vCPU container):");
    for &j in JobName::LOW_PRIORITY {
        println!("  {}", j.config_line());
    }

    println!("\nLatent profiles (substituted for the real binaries; per 4-vCPU instance):");
    println!(
        "  {:<12} {:>6} {:>7} {:>8} {:>7} {:>8} {:>8} {:>6}",
        "job", "MIPS", "WS(MB)", "LLCmpki", "BW", "cpuFrac", "latSens", "smt"
    );
    for &j in JobName::ALL {
        let p = catalog::profile(j);
        println!(
            "  {:<12} {:>6.0} {:>7.1} {:>8.2} {:>7.1} {:>8.2} {:>8.2} {:>6.2}",
            j.abbrev(),
            p.inherent_mips,
            p.working_set_mb,
            p.base_llc_mpki,
            p.mem_bw_gbps,
            p.cpu_bound_fraction,
            p.latency_sensitivity,
            p.smt_friendliness,
        );
    }
}
