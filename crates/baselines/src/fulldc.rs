//! Full-datacenter evaluation: the ground truth.
//!
//! Evaluates a feature on *every* scenario of the corpus, weighted by how
//! often each scenario was observed — what the paper calls "the true
//! impact" measured from the whole datacenter (Fig. 12). It is accurate
//! and maximally expensive: the evaluation cost is the full corpus size,
//! the 50× baseline of Fig. 13.

use flare_core::replayer::{replay_impact, replay_job_impact, Testbed};
use flare_exec::par_map_indexed;
use flare_metrics::database::ScenarioId;
use flare_sim::datacenter::Corpus;
use flare_sim::machine::MachineConfig;
use flare_sim::scenario::Scenario;
use flare_workloads::job::JobName;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Ground-truth impact of a feature over the whole corpus.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroundTruth {
    /// Observation-weighted mean MIPS reduction over HP jobs, %.
    pub impact_pct: f64,
    /// Per-scenario impacts `(id, weight, impact_pct)` for scenarios with
    /// HP jobs.
    pub per_scenario: Vec<(ScenarioId, f64, f64)>,
    /// The evaluation's cost **as the paper accounts it**: one replay per
    /// HP-bearing corpus entry (counted before any replay runs, so replay
    /// failures don't change it). This is the 50× anchor of Fig. 13 and is
    /// identical between the serial, parallel, and naive paths; the
    /// replays actually performed after colocation-mix deduplication are
    /// in [`GroundTruth::distinct_replays`].
    pub evaluation_cost: usize,
    /// Replays actually performed: one per *distinct* HP-bearing
    /// colocation mix (`distinct_replays <= evaluation_cost`). Testbed
    /// runs are pure (see the `Testbed` determinism contract), so the
    /// deduplicated evaluation is byte-identical to replaying every entry.
    /// Defaults to 0 when absent from legacy serialized snapshots.
    #[serde(default)]
    pub distinct_replays: usize,
}

impl GroundTruth {
    /// The scenario impacts alone (for distribution analyses), in
    /// `per_scenario` order, without allocating a fresh vector.
    pub fn impacts(&self) -> impl Iterator<Item = f64> + '_ {
        self.per_scenario.iter().map(|&(_, _, i)| i)
    }
}

/// Shared core of the serial and parallel ground-truth paths, so the two
/// cannot drift: filter HP-bearing entries, replay each **distinct**
/// colocation mix once (first-occurrence order), then rebuild the
/// per-entry rows and the weighted aggregate in corpus order.
///
/// Both the deduplication and the thread fan-out are wall-clock knobs
/// only: per-mix impacts depend on nothing but `(scenario, baseline,
/// feature_config)`, and [`flare_exec::par_map_indexed`] returns results
/// in submission order, so every `(weight_by_observations, corpus)` input
/// produces one byte-exact `GroundTruth` for any thread count.
fn impact_core<T: Testbed + Sync>(
    corpus: &Corpus,
    testbed: &T,
    baseline: &MachineConfig,
    feature_config: &MachineConfig,
    weight_by_observations: bool,
    threads: Option<usize>,
) -> GroundTruth {
    let entries: Vec<_> = corpus
        .entries()
        .iter()
        .filter(|e| e.scenario.has_hp_job())
        .collect();

    // First-occurrence dedup: slot_of[i] = index of entry i's mix among
    // the distinct mixes.
    let mut distinct: Vec<&Scenario> = Vec::new();
    let mut slot_by_mix: HashMap<&Scenario, usize> = HashMap::new();
    let slot_of: Vec<usize> = entries
        .iter()
        .map(|e| {
            *slot_by_mix.entry(&e.scenario).or_insert_with(|| {
                distinct.push(&e.scenario);
                distinct.len() - 1
            })
        })
        .collect();

    let impacts: Vec<Option<f64>> = par_map_indexed(&distinct, threads, |_, s| {
        replay_impact(testbed, s, baseline, feature_config)
    });

    let per_scenario: Vec<(ScenarioId, f64, f64)> = entries
        .iter()
        .zip(&slot_of)
        .filter_map(|(e, &slot)| {
            impacts[slot].map(|impact| {
                let w = if weight_by_observations {
                    e.observations as f64
                } else {
                    1.0
                };
                (e.id, w, impact)
            })
        })
        .collect();

    aggregate(per_scenario, entries.len(), distinct.len())
}

/// Folds per-entry rows into the final [`GroundTruth`] (the one weighted
/// aggregation both documented cost definitions share).
fn aggregate(
    per_scenario: Vec<(ScenarioId, f64, f64)>,
    evaluation_cost: usize,
    distinct_replays: usize,
) -> GroundTruth {
    let total_w: f64 = per_scenario.iter().map(|&(_, w, _)| w).sum();
    let impact_pct = if total_w > 0.0 {
        per_scenario.iter().map(|&(_, w, i)| w * i).sum::<f64>() / total_w
    } else {
        0.0
    };
    GroundTruth {
        impact_pct,
        per_scenario,
        evaluation_cost,
        distinct_replays,
    }
}

/// Evaluates `feature_config` against `baseline` on every HP-bearing
/// scenario of the corpus (serial; use
/// [`full_datacenter_impact_parallel`] for a thread fan-out). Repeated
/// colocation mixes are replayed once — see
/// [`GroundTruth::distinct_replays`].
pub fn full_datacenter_impact<T: Testbed + Sync>(
    corpus: &Corpus,
    testbed: &T,
    baseline: &MachineConfig,
    feature_config: &MachineConfig,
    weight_by_observations: bool,
) -> GroundTruth {
    impact_core(
        corpus,
        testbed,
        baseline,
        feature_config,
        weight_by_observations,
        Some(1),
    )
}

/// Parallel variant of [`full_datacenter_impact`]: distinct scenarios are
/// replayed across `threads` worker threads via
/// [`flare_exec::par_map_indexed`], which returns per-scenario results in
/// submission order regardless of thread interleaving — the result is
/// byte-identical to the serial evaluation; only wall-clock changes.
///
/// Full-datacenter evaluation is the 50×-more-expensive baseline, so it is
/// the baseline most worth accelerating — FLARE itself only replays ~18
/// scenarios (and parallelizes its own profiling/clustering through the
/// same primitive).
pub fn full_datacenter_impact_parallel<T: Testbed + Sync>(
    corpus: &Corpus,
    testbed: &T,
    baseline: &MachineConfig,
    feature_config: &MachineConfig,
    weight_by_observations: bool,
    threads: usize,
) -> GroundTruth {
    impact_core(
        corpus,
        testbed,
        baseline,
        feature_config,
        weight_by_observations,
        Some(threads),
    )
}

/// Unbatched reference of the ground-truth evaluation: replays **every**
/// HP-bearing entry, duplicates included (`distinct_replays ==
/// evaluation_cost`). This is the pre-deduplication implementation, kept
/// as the in-tree differential oracle for [`impact_core`]'s mix dedup and
/// for the `abl15_sim_kernels` A/B timing — see DESIGN.md §9.
pub fn full_datacenter_impact_naive<T: Testbed + Sync>(
    corpus: &Corpus,
    testbed: &T,
    baseline: &MachineConfig,
    feature_config: &MachineConfig,
    weight_by_observations: bool,
    threads: Option<usize>,
) -> GroundTruth {
    let entries: Vec<_> = corpus
        .entries()
        .iter()
        .filter(|e| e.scenario.has_hp_job())
        .collect();
    let per_scenario: Vec<(ScenarioId, f64, f64)> = par_map_indexed(&entries, threads, |_, e| {
        replay_impact(testbed, &e.scenario, baseline, feature_config).map(|impact| {
            let w = if weight_by_observations {
                e.observations as f64
            } else {
                1.0
            };
            (e.id, w, impact)
        })
    })
    .into_iter()
    .flatten()
    .collect();
    let cost = entries.len();
    aggregate(per_scenario, cost, cost)
}

/// Ground-truth impact on one HP job: the observation-and-instance
/// weighted mean over every scenario containing the job (the paper's
/// "average of all instances of each service").
///
/// Returns `None` if the job never appears.
pub fn full_datacenter_job_impact<T: Testbed>(
    corpus: &Corpus,
    testbed: &T,
    job: JobName,
    baseline: &MachineConfig,
    feature_config: &MachineConfig,
    weight_by_observations: bool,
) -> Option<f64> {
    let mut num = 0.0;
    let mut den = 0.0;
    // Testbed runs are pure (see the `Testbed` determinism contract), so
    // repeated colocation mixes reuse the first replay's impact; the
    // accumulation below still visits entries in corpus order, keeping the
    // fold byte-identical to the unmemoized loop.
    let mut memo: HashMap<&Scenario, Option<f64>> = HashMap::new();
    for e in corpus.entries() {
        let instances = e.scenario.instances_of(job);
        if instances == 0 {
            continue;
        }
        if let Some(impact) = *memo.entry(&e.scenario).or_insert_with(|| {
            replay_job_impact(testbed, &e.scenario, job, baseline, feature_config)
        }) {
            let w = instances as f64
                * if weight_by_observations {
                    e.observations as f64
                } else {
                    1.0
                };
            num += w * impact;
            den += w;
        }
    }
    (den > 0.0).then(|| num / den)
}

#[cfg(test)]
mod tests {
    use super::*;
    use flare_core::replayer::SimTestbed;
    use flare_sim::datacenter::CorpusConfig;
    use flare_sim::feature::Feature;

    fn setup() -> (Corpus, MachineConfig) {
        let cfg = CorpusConfig {
            machines: 4,
            days: 2.0,
            tick_minutes: 15.0,
            ..CorpusConfig::default()
        };
        (Corpus::generate(&cfg), cfg.machine_config)
    }

    #[test]
    fn ground_truth_covers_hp_scenarios() {
        let (corpus, baseline) = setup();
        let f1 = Feature::paper_feature1().apply(&baseline);
        let gt = full_datacenter_impact(&corpus, &SimTestbed, &baseline, &f1, true);
        assert_eq!(gt.evaluation_cost, corpus.hp_entries().len());
        assert_eq!(gt.per_scenario.len(), gt.evaluation_cost);
        assert!(
            gt.impact_pct > 0.0 && gt.impact_pct < 40.0,
            "{}",
            gt.impact_pct
        );
    }

    #[test]
    fn baseline_vs_itself_is_zero() {
        let (corpus, baseline) = setup();
        let gt = full_datacenter_impact(&corpus, &SimTestbed, &baseline, &baseline, true);
        assert!(gt.impact_pct.abs() < 1e-9);
        assert!(gt.impacts().all(|i| i.abs() < 1e-9));
    }

    #[test]
    fn per_job_truth_exists_for_hp_jobs() {
        let (corpus, baseline) = setup();
        let f2 = Feature::paper_feature2().apply(&baseline);
        for &job in JobName::HIGH_PRIORITY {
            let impact =
                full_datacenter_job_impact(&corpus, &SimTestbed, job, &baseline, &f2, true);
            assert!(impact.is_some(), "{job} should appear in the corpus");
            let i = impact.unwrap();
            assert!(i > 0.0 && i < 50.0, "{job}: {i}%");
        }
    }

    #[test]
    fn per_job_truth_none_for_absent_job() {
        let (corpus, baseline) = setup();
        let f1 = Feature::paper_feature1().apply(&baseline);
        // LP jobs are never measured as HP.
        assert_eq!(
            full_datacenter_job_impact(&corpus, &SimTestbed, JobName::Mcf, &baseline, &f1, true),
            None
        );
    }

    #[test]
    fn weighting_mode_changes_result() {
        let (corpus, baseline) = setup();
        let f3 = Feature::paper_feature3().apply(&baseline);
        let w = full_datacenter_impact(&corpus, &SimTestbed, &baseline, &f3, true);
        let u = full_datacenter_impact(&corpus, &SimTestbed, &baseline, &f3, false);
        // Same scenario set, different weighting — results differ but stay
        // in the same ballpark.
        assert!((w.impact_pct - u.impact_pct).abs() < 10.0);
    }
}

#[cfg(test)]
mod parallel_tests {
    use super::*;
    use flare_core::replayer::SimTestbed;
    use flare_sim::datacenter::CorpusConfig;
    use flare_sim::feature::Feature;

    #[test]
    fn parallel_matches_serial_exactly() {
        let cfg = CorpusConfig {
            machines: 4,
            days: 2.0,
            tick_minutes: 15.0,
            ..CorpusConfig::default()
        };
        let corpus = Corpus::generate(&cfg);
        let baseline = cfg.machine_config.clone();
        let f1 = Feature::paper_feature1().apply(&baseline);
        let serial = full_datacenter_impact(&corpus, &SimTestbed, &baseline, &f1, true);
        for threads in [1, 2, 4, 64] {
            let parallel = full_datacenter_impact_parallel(
                &corpus,
                &SimTestbed,
                &baseline,
                &f1,
                true,
                threads,
            );
            assert_eq!(
                serial.per_scenario, parallel.per_scenario,
                "threads={threads}"
            );
            assert_eq!(serial.evaluation_cost, parallel.evaluation_cost);
            assert!((serial.impact_pct - parallel.impact_pct).abs() < 1e-12);
        }
    }

    /// A corpus whose entry list repeats each HP mix of a generated corpus
    /// several times — the shape where colocation-mix dedup pays off.
    fn duplicate_heavy() -> (Corpus, MachineConfig) {
        let cfg = CorpusConfig {
            machines: 2,
            days: 1.0,
            tick_minutes: 30.0,
            ..CorpusConfig::default()
        };
        let base = Corpus::generate(&cfg);
        let mut scenarios = Vec::new();
        for rep in 0..8u32 {
            for e in base.entries() {
                scenarios.push((e.scenario.clone(), e.observations + rep));
            }
        }
        let baseline = cfg.machine_config.clone();
        let corpus = Corpus::from_entries(scenarios, cfg).expect("valid duplicated corpus");
        (corpus, baseline)
    }

    #[test]
    fn dedup_is_bit_identical_to_naive_on_duplicate_heavy_corpus() {
        let (corpus, baseline) = duplicate_heavy();
        let f1 = Feature::paper_feature1().apply(&baseline);
        let naive =
            full_datacenter_impact_naive(&corpus, &SimTestbed, &baseline, &f1, true, Some(2));
        let dedup = full_datacenter_impact_parallel(&corpus, &SimTestbed, &baseline, &f1, true, 2);
        assert_eq!(naive.per_scenario.len(), dedup.per_scenario.len());
        for ((ia, wa, xa), (ib, wb, xb)) in naive.per_scenario.iter().zip(&dedup.per_scenario) {
            assert_eq!(ia, ib);
            assert_eq!(wa.to_bits(), wb.to_bits());
            assert_eq!(xa.to_bits(), xb.to_bits(), "scenario {ia:?}");
        }
        assert_eq!(naive.impact_pct.to_bits(), dedup.impact_pct.to_bits());
        // Both paths account cost as one replay per HP entry…
        assert_eq!(naive.evaluation_cost, dedup.evaluation_cost);
        assert_eq!(naive.distinct_replays, naive.evaluation_cost);
        // …but the deduplicated path actually replays far fewer mixes.
        assert!(
            dedup.distinct_replays * 4 <= dedup.evaluation_cost,
            "{} distinct vs {} entries",
            dedup.distinct_replays,
            dedup.evaluation_cost
        );
    }

    #[test]
    fn distinct_replays_never_exceeds_evaluation_cost() {
        let cfg = CorpusConfig {
            machines: 4,
            days: 2.0,
            tick_minutes: 15.0,
            ..CorpusConfig::default()
        };
        let corpus = Corpus::generate(&cfg);
        let baseline = cfg.machine_config.clone();
        let f3 = Feature::paper_feature3().apply(&baseline);
        let gt = full_datacenter_impact(&corpus, &SimTestbed, &baseline, &f3, true);
        assert!(gt.distinct_replays >= 1);
        assert!(gt.distinct_replays <= gt.evaluation_cost);
    }

    #[test]
    fn job_impact_is_unchanged_by_duplicate_memoization() {
        let (corpus, baseline) = duplicate_heavy();
        let f2 = Feature::paper_feature2().apply(&baseline);
        // The memoized per-job fold must agree with recomputing the replay
        // for a fresh single-copy corpus entry-by-entry: weights scale the
        // numerator and denominator together, so a duplicate-heavy corpus
        // with uniform weighting collapses to the base per-job means.
        for &job in JobName::HIGH_PRIORITY {
            let impact =
                full_datacenter_job_impact(&corpus, &SimTestbed, job, &baseline, &f2, false);
            assert!(impact.is_some(), "{job} should appear");
            let i = impact.unwrap();
            assert!(i > 0.0 && i < 50.0, "{job}: {i}%");
        }
    }

    #[test]
    fn parallel_handles_empty_population() {
        // A corpus whose snapshots are all LP-only: construct by evaluating
        // on an empty corpus is impossible via the driver, so check the
        // zero-entry path directly with a tiny corpus filtered to nothing.
        let cfg = CorpusConfig {
            machines: 2,
            days: 0.05,
            lp_submit_prob: 0.0,
            hp_peak_share: 0.0,
            ..CorpusConfig::default()
        };
        let corpus = Corpus::generate(&cfg);
        let baseline = cfg.machine_config.clone();
        let gt =
            full_datacenter_impact_parallel(&corpus, &SimTestbed, &baseline, &baseline, true, 4);
        assert_eq!(gt.impact_pct, 0.0);
    }
}
