//! Streaming ingest with drift-aware continuous refit, crash-safe
//! checkpoints, and degraded-mode operation (DESIGN.md §11).
//!
//! The paper fits FLARE once over a fixed trace; production telemetry
//! never stops. A [`StreamSession`] treats the corpus as an append-only
//! stream of arrival batches of `(Scenario, weight)`:
//!
//! - **Bounded-memory ingest** — each batch is absorbed in chunks of
//!   [`StreamConfig::chunk_size`]: the corpus is extended, only the new
//!   tail is profiled (the same delta-profiling contract as
//!   [`Flare::extend`]), and the records pass through the validating
//!   [`MetricDatabase::ingest`] path so degraded telemetry is quarantined
//!   with full accounting instead of poisoning the model.
//! - **Drift detection** — every accepted, fully-finite record is
//!   projected through the serving model's featurize stage (job-mix
//!   strip → correlation refinement → whitened PCA) and its distance to
//!   the nearest centroid compared against a cutoff calibrated as a
//!   quantile of the model's own distance distribution. Reclustering runs
//!   only when the drifted fraction crosses
//!   [`StreamConfig::drift_threshold`]; quiet batches are absorbed with
//!   zero re-profiling and zero refits. Coverage decay on
//!   [`StreamSession::evaluate`] feeds the same trigger.
//! - **Degraded mode** — a recluster failure never takes the session
//!   down: the last-good model keeps serving, the stall is recorded in
//!   the [`DriftReport`], and the refit is retried on later batches after
//!   a deterministic [`RetryPolicy`]-seeded backoff. Batches whose
//!   degraded fraction exceeds [`StreamConfig::max_degraded_fraction`]
//!   are quarantined — their drift statistic is distrusted, so a
//!   stuck-sensor or dropout burst cannot masquerade as drift.
//! - **Crash safety** — at every batch boundary the full session state
//!   (model snapshot, grown corpus/database, versioned [`StreamCursor`],
//!   drift log, fault plan) is written atomically (write-tmp-then-rename)
//!   to `checkpoint.json`, so a killed session resumes byte-identically.
//!
//! The clean path is byte-identical to a one-shot [`Flare::fit`] over the
//! concatenated corpus: batch extension appends scenarios with the same
//! dense ids a one-shot corpus would assign, per-scenario profiling noise
//! depends only on `(corpus seed, id)`, and reclustering runs the same
//! shared stage functions as `fit`.

use crate::error::{FlareError, Result};
use crate::estimate::AllJobEstimate;
use crate::pipeline::{Flare, FlareSnapshot};
use crate::replayer::RetryPolicy;
use crate::stages::FitReport;
use flare_cluster::distance::euclidean;
use flare_linalg::pca::RowProjector;
use flare_metrics::database::{IngestPolicy, MetricDatabase, ScenarioId};
use flare_sim::datacenter::Corpus;
use flare_sim::faults::{FaultInjector, FaultPlan};
use flare_sim::feature::Feature;
use flare_sim::kernel::{CacheStats, EvalCache};
use flare_sim::scenario::Scenario;
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};

/// Current checkpoint/cursor schema version written by
/// [`StreamSession::checkpoint`]. Older versions load (fields default);
/// newer versions are rejected.
pub const CURSOR_VERSION: u32 = 1;

/// Stable key mixed into the retry jitter for refit backoff, so stream
/// backoff draws a different (but deterministic) jitter stream than
/// scenario replays sharing the same [`RetryPolicy`] seed.
const REFIT_BACKOFF_KEY: u64 = 0x5712_EA4B_ACC0_FF5E;

/// Knobs of a [`StreamSession`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StreamConfig {
    /// Scenarios absorbed per corpus-extension step — the bounded-memory
    /// unit; a batch larger than this is split into chunks. Must be ≥ 1.
    pub chunk_size: usize,
    /// Fraction of a batch's clean accepted scenarios that must land
    /// beyond the calibrated distance cutoff for the batch to count as
    /// drifted (in `[0, 1]`).
    pub drift_threshold: f64,
    /// Quantile (in `(0, 1]`) of the serving model's own
    /// distance-to-assigned-centroid distribution used as the drift
    /// cutoff: new scenarios farther out than this fraction of the
    /// training data are "unlike anything represented".
    pub calibration_quantile: f64,
    /// Replay-coverage floor for [`StreamSession::evaluate`]: an estimate
    /// whose coverage decays below this marks the model as drifted (the
    /// representatives no longer answer for enough of the corpus).
    pub coverage_floor: f64,
    /// Largest tolerable fraction of a batch's records that are degraded
    /// (quarantined, or accepted with missing cells) before the batch is
    /// quarantined outright: its drift statistic is distrusted and no
    /// refit is attempted on its evidence (in `[0, 1]`).
    pub max_degraded_fraction: f64,
    /// Quarantine tolerances for the validating ingest path.
    pub ingest: IngestPolicy,
    /// Backoff policy for failed reclusters; with the default
    /// `backoff_base_ms: 0` retries are immediate on the next batch.
    pub retry: RetryPolicy,
    /// Directory for crash-safe checkpoints; `None` disables
    /// checkpointing entirely.
    pub checkpoint_dir: Option<PathBuf>,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            chunk_size: 64,
            drift_threshold: 0.25,
            calibration_quantile: 0.95,
            coverage_floor: 0.5,
            max_degraded_fraction: 0.5,
            ingest: IngestPolicy::default(),
            retry: RetryPolicy::default(),
            checkpoint_dir: None,
        }
    }
}

impl StreamConfig {
    /// Validates every knob, returning a description of the first
    /// offending field.
    ///
    /// # Errors
    ///
    /// Returns the offending field and value as a `String`.
    pub fn validate(&self) -> std::result::Result<(), String> {
        if self.chunk_size == 0 {
            return Err("chunk_size must be >= 1".into());
        }
        for (name, v) in [
            ("drift_threshold", self.drift_threshold),
            ("coverage_floor", self.coverage_floor),
            ("max_degraded_fraction", self.max_degraded_fraction),
        ] {
            if !(0.0..=1.0).contains(&v) || v.is_nan() {
                return Err(format!("{name} {v} outside [0, 1]"));
            }
        }
        let q = self.calibration_quantile;
        if !(q > 0.0 && q <= 1.0) {
            return Err(format!("calibration_quantile {q} outside (0, 1]"));
        }
        Ok(())
    }
}

/// What happened to one arrival batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BatchDisposition {
    /// Absorbed into the corpus/database without triggering a refit.
    Absorbed,
    /// Too degraded to trust: absorbed with quarantine accounting, drift
    /// evidence discarded, no refit attempted.
    Quarantined,
    /// Drift crossed the threshold and the recluster succeeded — the
    /// serving model was replaced.
    Reclustered,
    /// A refit was due but failed; the last-good model keeps serving and
    /// the refit will be retried on a later batch (degraded mode).
    Stalled,
}

/// Per-batch accounting appended to the [`DriftReport`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatchOutcome {
    /// 0-based batch index.
    pub batch: u64,
    /// Scenarios in the arrival batch.
    pub arrived: usize,
    /// Records accepted into the database (faults can duplicate or drop
    /// records, so this can differ from `arrived`).
    pub accepted: usize,
    /// Records refused by the validating ingest path.
    pub quarantined: usize,
    /// Accepted records carrying at least one missing (non-finite) cell.
    pub degraded_rows: usize,
    /// Degraded share of the batch's records:
    /// `(quarantined + degraded_rows) / records seen`.
    pub degraded_fraction: f64,
    /// Fraction of clean accepted records beyond the drift cutoff.
    pub drift_fraction: f64,
    /// The calibrated distance cutoff the batch was judged against.
    pub drift_cutoff: f64,
    /// What the session did with the batch.
    pub disposition: BatchDisposition,
    /// Milliseconds of deterministic backoff served before a refit
    /// retry (0 unless a previous refit stalled and
    /// `retry.backoff_base_ms > 0`).
    pub backoff_ms: u64,
    /// Why the refit stalled, when `disposition` is
    /// [`BatchDisposition::Stalled`].
    pub stall_reason: Option<String>,
}

/// The session's drift log: one entry per ingested batch, surviving
/// checkpoint/resume.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DriftReport {
    /// Per-batch outcomes in arrival order.
    pub batches: Vec<BatchOutcome>,
}

impl DriftReport {
    /// The most recent batch outcome.
    pub fn last(&self) -> Option<&BatchOutcome> {
        self.batches.last()
    }

    /// Batches that triggered a successful recluster.
    pub fn reclusters(&self) -> usize {
        self.batches
            .iter()
            .filter(|b| b.disposition == BatchDisposition::Reclustered)
            .count()
    }

    /// Batches on which a due refit failed (degraded-mode stalls).
    pub fn stalls(&self) -> usize {
        self.batches
            .iter()
            .filter(|b| b.disposition == BatchDisposition::Stalled)
            .count()
    }
}

/// Cumulative position of a session in its arrival stream — the small
/// versioned state that, together with the model snapshot and the grown
/// corpus/database, makes a checkpoint resumable.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamCursor {
    /// Checkpoint schema version; see [`CURSOR_VERSION`].
    #[serde(default)]
    pub version: u32,
    /// Batches fully ingested so far.
    pub batches: u64,
    /// Scenarios that arrived across all batches.
    pub arrivals: u64,
    /// Scenarios actually profiled (exactly once each — the zero
    /// re-profiling instrumentation).
    pub profiled: u64,
    /// Records accepted into the database.
    pub accepted: u64,
    /// Records quarantined by the validating ingest path.
    pub quarantined: u64,
    /// Missing-sample markers across accepted records.
    pub missing_cells: u64,
    /// Successful reclusters.
    pub reclusters: u64,
    /// Failed refit attempts (degraded-mode stalls).
    pub stalls: u64,
    /// Of `quarantined`, how many have already been folded into the
    /// serving model's cumulative [`FitReport`] counters by a successful
    /// refit (bookkeeping for honest multi-refit accounting).
    #[serde(default)]
    pub quarantined_folded: u64,
    /// A refit is due (drift or coverage decay seen) but has not run yet.
    pub pending_drift: bool,
    /// Consecutive failed refit attempts — the backoff exponent.
    pub stall_attempts: u32,
}

impl StreamCursor {
    fn new() -> StreamCursor {
        StreamCursor {
            version: CURSOR_VERSION,
            batches: 0,
            arrivals: 0,
            profiled: 0,
            accepted: 0,
            quarantined: 0,
            missing_cells: 0,
            reclusters: 0,
            stalls: 0,
            quarantined_folded: 0,
            pending_drift: false,
            stall_attempts: 0,
        }
    }
}

/// Everything needed to resume a session byte-identically: written
/// atomically at every batch boundary.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct StreamCheckpoint {
    cursor: StreamCursor,
    /// The last-good serving model (possibly stale relative to the grown
    /// corpus when drift has not yet crossed the threshold).
    model: FlareSnapshot,
    /// The session's grown corpus — the model's corpus plus every
    /// absorbed batch.
    corpus: Corpus,
    /// The session's grown database (profiled + ingested records).
    database: MetricDatabase,
    report: DriftReport,
    /// The fault plan replayed against arriving telemetry, so a resumed
    /// session corrupts the remaining batches identically.
    fault_plan: Option<FaultPlan>,
}

/// A continuously-fed FLARE model: ingest arrival batches, serve
/// estimates from the last-good model, recluster only on drift, and
/// checkpoint at every batch boundary. See the module docs for the full
/// state machine.
#[derive(Debug)]
pub struct StreamSession {
    model: Flare,
    corpus: Corpus,
    database: MetricDatabase,
    config: StreamConfig,
    cursor: StreamCursor,
    report: DriftReport,
    /// Calibrated distance cutoff; recomputed from the model, so it never
    /// needs to be checkpointed.
    cutoff: f64,
    /// Interference-solve memo shared by every plain (non-enriched)
    /// profiling chunk: streams re-observe the same colocation multisets
    /// constantly, so repeat arrivals skip the solver entirely. Purely a
    /// wall-clock optimization (stored solves are exact), so it is NOT
    /// checkpointed — a resumed session starts with a cold cache and
    /// fresh counters, and still produces byte-identical records.
    cache: EvalCache,
    injector: Option<FaultInjector>,
    #[cfg(test)]
    forced_refit_failures: u32,
}

impl StreamSession {
    /// Starts a session serving from a fitted model.
    ///
    /// # Errors
    ///
    /// Returns [`FlareError::InvalidParameter`] for invalid
    /// [`StreamConfig`] knobs.
    pub fn new(model: Flare, config: StreamConfig) -> Result<StreamSession> {
        config.validate().map_err(FlareError::InvalidParameter)?;
        let cutoff = calibrate_cutoff(&model, config.calibration_quantile);
        Ok(StreamSession {
            corpus: model.corpus().clone(),
            database: model.database().clone(),
            model,
            config,
            cursor: StreamCursor::new(),
            report: DriftReport::default(),
            cutoff,
            cache: EvalCache::new(),
            injector: None,
            #[cfg(test)]
            forced_refit_failures: 0,
        })
    }

    /// Replays a telemetry fault plan against every arriving batch — the
    /// end-to-end fault path of the PR 2 layer on the streaming ingest.
    ///
    /// # Errors
    ///
    /// Returns [`FlareError::InvalidParameter`] for an invalid plan.
    pub fn with_faults(mut self, plan: FaultPlan) -> Result<StreamSession> {
        self.injector = Some(FaultInjector::new(plan).map_err(FlareError::InvalidParameter)?);
        Ok(self)
    }

    /// The last-good serving model. Possibly stale relative to
    /// [`StreamSession::corpus`] between refits — that is the point:
    /// absorbing quiet batches costs no recluster.
    pub fn model(&self) -> &Flare {
        &self.model
    }

    /// The session's grown corpus (model corpus + every absorbed batch).
    pub fn corpus(&self) -> &Corpus {
        &self.corpus
    }

    /// The session's grown metric database.
    pub fn database(&self) -> &MetricDatabase {
        &self.database
    }

    /// Cumulative stream position and ingest accounting.
    pub fn cursor(&self) -> &StreamCursor {
        &self.cursor
    }

    /// Per-batch drift log.
    pub fn drift_report(&self) -> &DriftReport {
        &self.report
    }

    /// The session configuration.
    pub fn config(&self) -> &StreamConfig {
        &self.config
    }

    /// The calibrated drift cutoff currently in force.
    pub fn drift_cutoff(&self) -> f64 {
        self.cutoff
    }

    /// Hit/miss/entry counters of the session's interference-solve cache
    /// (plain profiling path only; enriched profiling is uncached).
    /// Counters cover this process's lifetime — the cache is not
    /// checkpointed, so a resumed session reports from zero.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Ingests one arrival batch: extend the corpus in bounded chunks,
    /// profile only the new tail, pass the (possibly fault-corrupted)
    /// records through validating ingest, score drift, and refit only
    /// when due. The session checkpoints after the batch is absorbed.
    ///
    /// A refit *failure* is not an ingest error — the session enters
    /// degraded mode (outcome [`BatchDisposition::Stalled`]) and the
    /// last-good model keeps serving.
    ///
    /// # Errors
    ///
    /// Returns [`FlareError::InvalidParameter`] for invalid batch entries
    /// (empty scenario, zero observations, vCPU overcommit) or checkpoint
    /// I/O failures. The batch is not absorbed on error.
    pub fn ingest_batch(&mut self, batch: Vec<(Scenario, u32)>) -> Result<BatchOutcome> {
        let arrived = batch.len();
        let first_new = self.corpus.len();
        let mut profiled = 0u64;
        // Bounded-memory absorption: extend + profile + ingest one chunk
        // at a time; only a chunk's records are ever held in flight.
        let mut accepted = 0usize;
        let mut quarantined = 0usize;
        let mut missing_cells = 0usize;
        let mut records_seen = 0usize;
        let mut batch_entries = batch;
        while !batch_entries.is_empty() {
            let rest = batch_entries.split_off(self.config.chunk_size.min(batch_entries.len()));
            let chunk = std::mem::replace(&mut batch_entries, rest);
            let start = self.corpus.len();
            let corpus = self
                .corpus
                .extended(chunk)
                .map_err(FlareError::InvalidParameter)?;
            let tail = match self.model.config().temporal_phases {
                Some(phases) => corpus
                    .profile_tail_enriched_threaded(
                        start,
                        self.model.baseline(),
                        phases,
                        self.model.config().threads,
                    )
                    .map_err(FlareError::InvalidParameter)?,
                None => corpus.profile_tail_cached_threaded(
                    start,
                    self.model.baseline(),
                    self.model.config().threads,
                    &self.cache,
                ),
            };
            profiled += tail.len() as u64;
            let tail = match &self.injector {
                Some(inj) => inj.corrupt_records(&tail),
                None => tail,
            };
            records_seen += tail.len();
            let ingest = self.database.ingest(tail, &self.config.ingest);
            accepted += ingest.accepted;
            quarantined += ingest.quarantined_count();
            missing_cells += ingest.missing_cells;
            self.corpus = corpus;
        }

        // Drift statistic over the batch's accepted records: clean rows
        // (no missing cells) are projected through the serving model and
        // scored against the calibrated cutoff; rows with missing cells
        // count as degraded, never as drift evidence.
        let mut clean = 0usize;
        let mut drifted = 0usize;
        let mut degraded_rows = 0usize;
        let mut scorer = DriftScorer::new(&self.model)?;
        for id in first_new as u32..self.corpus.len() as u32 {
            let Some(row) = self.database.get(ScenarioId(id)) else {
                continue; // quarantined or lost
            };
            if row.metrics.iter().any(|v| !v.is_finite()) {
                degraded_rows += 1;
                continue;
            }
            clean += 1;
            if let Some(scorer) = scorer.as_mut() {
                if scorer.nearest_centroid_distance(row.metrics)? > self.cutoff {
                    drifted += 1;
                }
            }
        }
        let degraded_fraction = if records_seen == 0 {
            0.0
        } else {
            (quarantined + degraded_rows) as f64 / records_seen as f64
        };
        let drift_fraction = if clean == 0 {
            0.0
        } else {
            drifted as f64 / clean as f64
        };

        // Decide: a too-degraded batch is quarantined outright (its drift
        // statistic is distrusted); otherwise fresh drift evidence or a
        // pending trigger runs the refit, with seeded backoff after a
        // previous stall.
        let poisoned = degraded_fraction > self.config.max_degraded_fraction;
        if !poisoned && drift_fraction > self.config.drift_threshold {
            self.cursor.pending_drift = true;
        }
        let mut disposition = if poisoned {
            BatchDisposition::Quarantined
        } else {
            BatchDisposition::Absorbed
        };
        let mut backoff_ms = 0;
        let mut stall_reason = None;
        if self.cursor.pending_drift && !poisoned {
            if self.cursor.stall_attempts > 0 {
                backoff_ms = self
                    .config
                    .retry
                    .backoff_ms(REFIT_BACKOFF_KEY, self.cursor.stall_attempts - 1);
                if backoff_ms > 0 {
                    std::thread::sleep(std::time::Duration::from_millis(backoff_ms));
                }
            }
            match self.recluster() {
                Ok(()) => {
                    disposition = BatchDisposition::Reclustered;
                    self.cursor.reclusters += 1;
                    self.cursor.pending_drift = false;
                    self.cursor.stall_attempts = 0;
                }
                Err(e) => {
                    // Degraded mode: hold the last good model, log the
                    // stall, retry on a later batch.
                    disposition = BatchDisposition::Stalled;
                    stall_reason = Some(e.to_string());
                    self.cursor.stalls += 1;
                    self.cursor.stall_attempts += 1;
                }
            }
        }

        self.cursor.batches += 1;
        self.cursor.arrivals += arrived as u64;
        self.cursor.profiled += profiled;
        self.cursor.accepted += accepted as u64;
        self.cursor.quarantined += quarantined as u64;
        self.cursor.missing_cells += missing_cells as u64;

        let outcome = BatchOutcome {
            batch: self.cursor.batches - 1,
            arrived,
            accepted,
            quarantined,
            degraded_rows,
            degraded_fraction,
            drift_fraction,
            drift_cutoff: self.cutoff,
            disposition,
            backoff_ms,
            stall_reason,
        };
        self.report.batches.push(outcome.clone());
        self.checkpoint()?;
        Ok(outcome)
    }

    /// Serves an estimate from the last-good model, feeding coverage
    /// decay back into the drift trigger: an estimate whose replay
    /// coverage falls below [`StreamConfig::coverage_floor`] (or fails
    /// outright with [`FlareError::ReplayFailed`]) marks the model as
    /// drifted, so the next clean batch refits.
    ///
    /// # Errors
    ///
    /// Propagates estimation errors.
    pub fn evaluate(&mut self, feature: &Feature) -> Result<AllJobEstimate> {
        match self.model.evaluate(feature) {
            Ok(est) => {
                if est.coverage < self.config.coverage_floor {
                    self.cursor.pending_drift = true;
                }
                Ok(est)
            }
            Err(e @ FlareError::ReplayFailed { .. }) => {
                self.cursor.pending_drift = true;
                Err(e)
            }
            Err(e) => Err(e),
        }
    }

    /// Forces the model current: reclusters if any absorbed data or a
    /// pending drift trigger has not been folded in yet, checkpoints, and
    /// returns the serving model. Unlike the per-batch path, a refit
    /// failure here *is* an error — finalize is the one place the caller
    /// asked for a current model, not continued service.
    ///
    /// # Errors
    ///
    /// Propagates refit and checkpoint errors.
    pub fn finalize(&mut self) -> Result<&Flare> {
        if self.model.corpus().len() != self.corpus.len() || self.cursor.pending_drift {
            self.recluster()?;
            self.cursor.reclusters += 1;
            self.cursor.pending_drift = false;
            self.cursor.stall_attempts = 0;
            self.checkpoint()?;
        }
        Ok(&self.model)
    }

    /// Refits the serving model over the session's grown corpus/database
    /// through the same shared stage functions as [`Flare::fit`], then
    /// recalibrates the drift cutoff.
    fn recluster(&mut self) -> Result<()> {
        #[cfg(test)]
        if self.forced_refit_failures > 0 {
            self.forced_refit_failures -= 1;
            return Err(FlareError::InsufficientData(
                "forced refit failure (test hook)".into(),
            ));
        }
        let delta = self.corpus.len() - self.model.corpus().len();
        let mut report = FitReport::extended(delta, self.model.fit_report());
        report.quarantined_total +=
            (self.cursor.quarantined - self.cursor.quarantined_folded) as usize;
        let next = self
            .model
            .refit_grown(self.corpus.clone(), self.database.clone(), report)?;
        self.model = next;
        self.cursor.quarantined_folded = self.cursor.quarantined;
        self.cutoff = calibrate_cutoff(&self.model, self.config.calibration_quantile);
        Ok(())
    }

    /// Atomically writes the full session state to
    /// `<checkpoint_dir>/checkpoint.json` (write-tmp-then-rename, so a
    /// crash mid-write leaves the previous checkpoint intact). A no-op
    /// when no checkpoint directory is configured.
    ///
    /// # Errors
    ///
    /// Returns [`FlareError::InvalidParameter`] wrapping serialization or
    /// I/O failures.
    pub fn checkpoint(&self) -> Result<()> {
        let Some(dir) = &self.config.checkpoint_dir else {
            return Ok(());
        };
        std::fs::create_dir_all(dir)
            .map_err(|e| FlareError::InvalidParameter(format!("create checkpoint dir: {e}")))?;
        let state = StreamCheckpoint {
            cursor: self.cursor.clone(),
            model: self.model.to_snapshot(),
            corpus: self.corpus.clone(),
            database: self.database.clone(),
            report: self.report.clone(),
            fault_plan: self.injector.as_ref().map(|i| *i.plan()),
        };
        let json = serde_json::to_string(&state)
            .map_err(|e| FlareError::InvalidParameter(format!("serialize checkpoint: {e}")))?;
        let tmp = dir.join("checkpoint.json.tmp");
        let dst = dir.join("checkpoint.json");
        std::fs::write(&tmp, json)
            .map_err(|e| FlareError::InvalidParameter(format!("write checkpoint: {e}")))?;
        std::fs::rename(&tmp, &dst)
            .map_err(|e| FlareError::InvalidParameter(format!("commit checkpoint: {e}")))
    }

    /// Resumes a session from the checkpoint in `dir`, restoring the
    /// model, grown corpus/database, cursor, drift log, and fault plan
    /// exactly as they were at the last batch boundary; the drift cutoff
    /// is recalibrated from the model (it is a pure function of it).
    /// `config` supplies the runtime knobs — pass the same values as the
    /// original session for byte-identical continuation.
    ///
    /// # Errors
    ///
    /// Returns [`FlareError::InvalidParameter`] for missing/corrupt
    /// checkpoints, a newer-than-supported cursor version, or invalid
    /// config/fault-plan knobs.
    pub fn resume(dir: &Path, config: StreamConfig) -> Result<StreamSession> {
        config.validate().map_err(FlareError::InvalidParameter)?;
        let path = dir.join("checkpoint.json");
        let json = std::fs::read_to_string(&path).map_err(|e| {
            FlareError::InvalidParameter(format!("read checkpoint {}: {e}", path.display()))
        })?;
        let state: StreamCheckpoint = serde_json::from_str(&json)
            .map_err(|e| FlareError::InvalidParameter(format!("parse checkpoint: {e}")))?;
        if state.cursor.version > CURSOR_VERSION {
            return Err(FlareError::InvalidParameter(format!(
                "checkpoint cursor version {} is newer than this build supports (max {CURSOR_VERSION})",
                state.cursor.version
            )));
        }
        let model = Flare::from_snapshot(state.model)?;
        let cutoff = calibrate_cutoff(&model, config.calibration_quantile);
        let injector = match state.fault_plan {
            Some(plan) => Some(FaultInjector::new(plan).map_err(FlareError::InvalidParameter)?),
            None => None,
        };
        Ok(StreamSession {
            model,
            corpus: state.corpus,
            database: state.database,
            config,
            cursor: state.cursor,
            report: state.report,
            cutoff,
            cache: EvalCache::new(),
            injector,
            #[cfg(test)]
            forced_refit_failures: 0,
        })
    }

    /// Test hook: make the next `n` recluster attempts fail, exercising
    /// the degraded-mode state machine without needing pathological data.
    #[cfg(test)]
    pub(crate) fn force_refit_failures(&mut self, n: u32) {
        self.forced_refit_failures = n;
    }
}

/// The drift cutoff: the `quantile`-th distance-to-assigned-centroid over
/// the model's own projected training rows. A pure, deterministic
/// function of the model — resuming from a checkpoint recomputes the
/// identical value. Returns `+inf` for a degenerate model with no rows
/// (nothing can ever drift).
fn calibrate_cutoff(model: &Flare, quantile: f64) -> f64 {
    let analyzer = model.analyzer();
    let projected = analyzer.projected();
    let clustering = analyzer.clustering();
    let mut distances: Vec<f64> = (0..projected.nrows())
        .map(|i| {
            euclidean(
                projected.row(i),
                &clustering.centroids[clustering.assignments[i]],
            )
        })
        .collect();
    if distances.is_empty() {
        return f64::INFINITY;
    }
    distances.sort_by(f64::total_cmp);
    let idx = ((distances.len() - 1) as f64 * quantile).ceil() as usize;
    distances[idx.min(distances.len() - 1)]
}

/// The model's featurize column pipeline (job-mix strip → refinement
/// columns → whitened PCA row projection) compiled once per batch, so
/// scoring each accepted record reuses fixed scratch buffers instead of
/// allocating a 1×d matrix and a 1×k result per row. The projection is
/// bit-identical to routing the row through `Pca::transform_whitened`.
///
/// The repair stage's winsorization is deliberately not applied: the
/// cutoff is calibrated against the model's *own* post-repair rows, and a
/// raw row clamped toward the training median could only look *less*
/// drifted — the detector errs on the sensitive side.
struct DriftScorer<'a> {
    /// Raw-row column index per refined feature: the job-mix strip and
    /// the refinement gather collapsed into one lookup.
    gather: Vec<usize>,
    refined: Vec<f64>,
    projector: RowProjector,
    projected: Vec<f64>,
    centroids: &'a [Vec<f64>],
}

impl<'a> DriftScorer<'a> {
    /// Compiles the scorer for `model`, or `None` when the model keeps
    /// zero PCs or zero centroids (no row can ever score as drifted).
    fn new(model: &'a Flare) -> Result<Option<Self>> {
        let analyzer = model.analyzer();
        let schema = model.database().schema();
        // Same column pipeline as stages::run_featurize, per-row.
        let strip: Vec<usize> = if model.config().per_job_augmentation {
            (0..schema.len()).collect()
        } else {
            schema.non_job_mix_indices()
        };
        let gather: Vec<usize> = analyzer
            .refinement()
            .kept_indices
            .iter()
            .map(|&j| strip[j])
            .collect();
        let k = analyzer.n_pcs();
        let centroids = analyzer.clustering().centroids.as_slice();
        if k == 0 || centroids.is_empty() {
            return Ok(None);
        }
        let projector = analyzer.pca().row_projector(k)?;
        Ok(Some(DriftScorer {
            refined: vec![0.0; gather.len()],
            gather,
            projector,
            projected: vec![0.0; k],
            centroids,
        }))
    }

    /// Distance from one fully-finite metric row to its nearest centroid.
    fn nearest_centroid_distance(&mut self, metrics: &[f64]) -> Result<f64> {
        for (dst, &j) in self.refined.iter_mut().zip(&self.gather) {
            *dst = metrics[j];
        }
        self.projector
            .project_whitened_into(&self.refined, &mut self.projected)?;
        Ok(self
            .centroids
            .iter()
            .map(|c| euclidean(&self.projected, c))
            .min_by(f64::total_cmp)
            .expect("scorer is only built for models with centroids"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ClusterCountRule, FlareConfig};
    use flare_sim::datacenter::CorpusConfig;
    use flare_workloads::job::JobName as Job;

    fn small_corpus() -> Corpus {
        let cfg = CorpusConfig {
            machines: 4,
            days: 2.0,
            tick_minutes: 15.0,
            ..CorpusConfig::default()
        };
        Corpus::generate(&cfg)
    }

    fn small_model() -> Flare {
        let cfg = FlareConfig {
            cluster_count: ClusterCountRule::Fixed(6),
            ..FlareConfig::default()
        };
        Flare::fit(small_corpus(), cfg).unwrap()
    }

    /// Arrivals far from the training distribution: a fully-packed
    /// (12 × 4 vCPUs = 48), LP-dominated mix the corpus generator never
    /// produces.
    fn heavy_batch(n: usize) -> Vec<(Scenario, u32)> {
        (0..n)
            .map(|i| {
                let s = Scenario::from_counts([
                    (Job::DataCaching, 6),
                    (Job::Mcf, 2 + (i % 3) as u32),
                    (Job::Libquantum, 2),
                ]);
                (s, 1 + i as u32)
            })
            .collect()
    }

    /// In-distribution arrivals: scenarios the model's own corpus already
    /// contains (re-observed colocations — the streaming steady state).
    fn quiet_batch(model: &Flare, n: usize) -> Vec<(Scenario, u32)> {
        (0..n)
            .map(|i| {
                let entry = &model.corpus().entries()[i % model.corpus().len()];
                (entry.scenario.clone(), 1 + i as u32)
            })
            .collect()
    }

    /// Everything that makes two fitted models "the same result".
    fn assert_same_model(a: &Flare, b: &Flare) {
        assert_eq!(a.database(), b.database());
        assert_eq!(
            a.analyzer().clustering().assignments,
            b.analyzer().clustering().assignments
        );
        assert_eq!(a.analyzer().projected(), b.analyzer().projected());
        assert_eq!(
            a.analyzer().representatives(),
            b.analyzer().representatives()
        );
    }

    #[test]
    fn config_validation_rejects_bad_knobs() {
        let model = small_model;
        for bad in [
            StreamConfig {
                chunk_size: 0,
                ..StreamConfig::default()
            },
            StreamConfig {
                drift_threshold: 1.5,
                ..StreamConfig::default()
            },
            StreamConfig {
                drift_threshold: f64::NAN,
                ..StreamConfig::default()
            },
            StreamConfig {
                calibration_quantile: 0.0,
                ..StreamConfig::default()
            },
            StreamConfig {
                max_degraded_fraction: -0.1,
                ..StreamConfig::default()
            },
        ] {
            assert!(StreamSession::new(model(), bad).is_err());
        }
    }

    #[test]
    fn cutoff_calibration_is_deterministic_and_monotone_in_quantile() {
        let model = small_model();
        let c95 = calibrate_cutoff(&model, 0.95);
        assert_eq!(c95.to_bits(), calibrate_cutoff(&model, 0.95).to_bits());
        let c50 = calibrate_cutoff(&model, 0.5);
        assert!(c95.is_finite() && c95 > 0.0);
        assert!(c50 <= c95);
        // The max quantile is the largest observed distance — no training
        // row can ever sit beyond it.
        let c100 = calibrate_cutoff(&model, 1.0);
        assert!(c95 <= c100);
    }

    #[test]
    fn quiet_batches_absorb_without_reprofiling_or_refit() {
        let model = small_model();
        let base_len = model.corpus().len();
        let quiet = quiet_batch(&model, 5);
        let mut session = StreamSession::new(
            model,
            StreamConfig {
                // Familiar scenarios should never cross this.
                drift_threshold: 0.9,
                chunk_size: 3,
                ..StreamConfig::default()
            },
        )
        .unwrap();
        let out = session.ingest_batch(quiet).unwrap();
        assert_eq!(out.disposition, BatchDisposition::Absorbed);
        assert_eq!(out.arrived, 5);
        assert_eq!(out.accepted, 5);
        assert_eq!(out.quarantined, 0);
        // Model unchanged (stale by design), corpus grown, each arrival
        // profiled exactly once.
        assert_eq!(session.model().corpus().len(), base_len);
        assert_eq!(session.corpus().len(), base_len + 5);
        assert_eq!(session.cursor().profiled, 5);
        assert_eq!(session.cursor().reclusters, 0);
    }

    #[test]
    fn streamed_finalize_matches_one_shot_fit() {
        let model = small_model();
        let mut session = StreamSession::new(
            model.clone(),
            StreamConfig {
                chunk_size: 2,
                drift_threshold: 0.9,
                ..StreamConfig::default()
            },
        )
        .unwrap();
        let batches = [
            quiet_batch(&model, 3),
            heavy_batch(4),
            quiet_batch(&model, 2),
        ];
        let all: Vec<(Scenario, u32)> = batches.iter().flatten().cloned().collect();
        for b in batches {
            session.ingest_batch(b).unwrap();
        }
        let streamed = session.finalize().unwrap();
        let one_shot = Flare::fit(
            model.corpus().clone().extended(all).unwrap(),
            model.config().clone(),
        )
        .unwrap();
        assert_same_model(streamed, &one_shot);
        // Cumulative ingest accounting carried on the report.
        assert_eq!(
            streamed.fit_report().ingested_total,
            model.corpus().len() + 9
        );
    }

    #[test]
    fn drifting_batch_triggers_recluster() {
        let model = small_model();
        let mut session = StreamSession::new(
            model,
            StreamConfig {
                // Lenient on purpose: the assertion is about the state
                // machine, not about tuning the detector's sharpness.
                drift_threshold: 0.2,
                calibration_quantile: 0.5,
                ..StreamConfig::default()
            },
        )
        .unwrap();
        // A burst of far-out colocations beyond the median-distance
        // cutoff → drift crosses the threshold → immediate recluster.
        let out = session.ingest_batch(heavy_batch(6)).unwrap();
        assert_eq!(out.disposition, BatchDisposition::Reclustered);
        assert!(out.drift_fraction > 0.2, "{}", out.drift_fraction);
        assert_eq!(session.cursor().reclusters, 1);
        // The refreshed model is current with the grown corpus.
        assert_eq!(session.model().corpus().len(), session.corpus().len());
    }

    #[test]
    fn stalled_refit_holds_last_good_model_and_recovers() {
        let model = small_model();
        let mut session = StreamSession::new(
            model.clone(),
            StreamConfig {
                drift_threshold: 0.2,
                calibration_quantile: 0.5,
                ..StreamConfig::default()
            },
        )
        .unwrap();
        session.force_refit_failures(1);
        let out = session.ingest_batch(heavy_batch(6)).unwrap();
        assert_eq!(out.disposition, BatchDisposition::Stalled);
        assert!(out.stall_reason.is_some());
        assert_eq!(session.cursor().stalls, 1);
        assert_eq!(session.cursor().stall_attempts, 1);
        assert!(session.cursor().pending_drift);
        // Degraded mode: the last-good model still serves.
        assert_same_model(session.model(), &model);
        let est = session.evaluate(&Feature::paper_feature1()).unwrap();
        assert!(est.impact_pct.is_finite());
        // Next batch retries the refit and recovers.
        let retry = quiet_batch(&model, 2);
        let out = session.ingest_batch(retry).unwrap();
        assert_eq!(out.disposition, BatchDisposition::Reclustered);
        assert!(!session.cursor().pending_drift);
        assert_eq!(session.cursor().stall_attempts, 0);
        assert_eq!(session.model().corpus().len(), session.corpus().len());
    }

    #[test]
    fn poisoned_batch_is_quarantined_not_mistaken_for_drift() {
        let model = small_model();
        let mut session = StreamSession::new(
            model.clone(),
            StreamConfig {
                drift_threshold: 0.25,
                max_degraded_fraction: 0.5,
                ..StreamConfig::default()
            },
        )
        .unwrap()
        .with_faults(FaultPlan {
            sample_dropout: 0.95,
            ..FaultPlan::default()
        })
        .unwrap();
        // Heavy dropout degrades (nearly) every record: the batch must be
        // quarantined, not treated as drift — no refit, model unchanged.
        let out = session.ingest_batch(heavy_batch(6)).unwrap();
        assert_eq!(out.disposition, BatchDisposition::Quarantined);
        assert!(out.degraded_fraction > 0.5);
        assert_eq!(session.cursor().reclusters, 0);
        assert!(!session.cursor().pending_drift);
        assert_same_model(session.model(), &model);
    }

    #[test]
    fn repeat_arrivals_hit_the_solve_cache() {
        let model = small_model();
        let mut session = StreamSession::new(
            model.clone(),
            StreamConfig {
                drift_threshold: 0.9,
                ..StreamConfig::default()
            },
        )
        .unwrap();
        assert_eq!(session.cache_stats().hits, 0);
        // The same 4 colocations re-observed twice: the second batch's
        // solves are all cache hits, and records stay byte-identical to
        // the uncached contract (asserted via the one-shot fit test
        // above; here we check the counters surface).
        let repeat: Vec<(Scenario, u32)> = quiet_batch(&model, 4);
        session.ingest_batch(repeat.clone()).unwrap();
        let after_first = session.cache_stats();
        session.ingest_batch(repeat).unwrap();
        let after_second = session.cache_stats();
        assert!(after_second.hits >= after_first.hits + 4);
        assert_eq!(after_second.misses, after_first.misses);
    }

    #[test]
    fn chunk_size_never_changes_the_absorbed_state() {
        let model = small_model();
        let mut grown: Vec<(Corpus, MetricDatabase)> = Vec::new();
        for chunk_size in [1, 3, 64] {
            let mut session = StreamSession::new(
                model.clone(),
                StreamConfig {
                    chunk_size,
                    drift_threshold: 0.9,
                    ..StreamConfig::default()
                },
            )
            .unwrap();
            session.ingest_batch(quiet_batch(&model, 7)).unwrap();
            grown.push((session.corpus().clone(), session.database().clone()));
        }
        for (corpus, database) in &grown[1..] {
            assert_eq!(corpus.len(), grown[0].0.len());
            assert_eq!(database, &grown[0].1);
        }
    }
}
