//! The end-to-end FLARE façade: corpus → database → analyzer → replayer →
//! estimates, plus the §5.6 scheduler-change workflow and the incremental
//! refit/extend paths built on the staged artifact pipeline of
//! [`crate::stages`].

use crate::analyzer::Analyzer;
use crate::config::FlareConfig;
use crate::error::Result;
use crate::estimate::{
    estimate_all_job_with, estimate_per_job_with, AllJobEstimate, EstimateOptions, PerJobEstimate,
};
use crate::replayer::{SimTestbed, Testbed};
use crate::stages::{self, FitReport, StageFingerprints, StageOutcome};
use flare_metrics::database::MetricDatabase;
use flare_sim::datacenter::{Corpus, CorpusEntry};
use flare_sim::feature::Feature;
use flare_sim::machine::MachineConfig;
use flare_sim::scenario::Scenario;
use flare_workloads::job::JobName;
use std::collections::HashMap;

/// Current on-disk schema version written by [`Flare::to_snapshot`].
///
/// Version history:
/// - `0` — the pre-versioning layout (no `version` field; row-oriented
///   database wire format). Still readable: the field defaults to 0 and
///   the database deserializer accepts the legacy layout.
/// - `1` — versioned snapshots introduced alongside the staged artifact
///   pipeline.
pub const SNAPSHOT_VERSION: u32 = 1;

/// A fitted FLARE instance: the representative scenarios of one datacenter
/// plus everything needed to evaluate features against them.
#[derive(Debug, Clone)]
pub struct Flare {
    corpus: Corpus,
    database: MetricDatabase,
    analyzer: Analyzer,
    config: FlareConfig,
    baseline: MachineConfig,
    /// Post-repair database cache (`None` when the profile was already
    /// clean). Kept out of snapshots — it is recomputed on load.
    repaired: Option<MetricDatabase>,
    /// How the current model came to be: which stages ran, which were
    /// reused. Diagnostics only — never serialized, never part of results.
    report: FitReport,
}

impl Flare {
    /// Runs FLARE steps 1–3 on a collected corpus: profile every scenario
    /// under the corpus's baseline machine configuration, refine, build
    /// high-level metrics, cluster, and extract representatives.
    ///
    /// # Errors
    ///
    /// Propagates analyzer errors (insufficient data, invalid config).
    pub fn fit(corpus: Corpus, config: FlareConfig) -> Result<Flare> {
        config
            .validate()
            .map_err(crate::FlareError::InvalidParameter)?;
        let baseline = corpus.config().machine_config.clone();
        let database = profile_corpus(&corpus, &baseline, &config)?;
        let fps = StageFingerprints::compute(stages::fingerprint_corpus(&corpus), &config);
        let (analyzer, repaired) = stages::fit_database(&database, &config, &fps)?;
        let mut report = FitReport::full_fit(corpus.len());
        report.spill = analyzer.spill_stats();
        Ok(Flare {
            corpus,
            database,
            analyzer,
            config,
            baseline,
            repaired,
            report,
        })
    }

    /// Re-fits under a new configuration, re-running **only the stages the
    /// config change invalidates**. Stage artifacts are reused whenever
    /// their chained content fingerprint (input + the config fields the
    /// stage reads) is unchanged — so changing the cluster count never
    /// re-profiles or re-fits the PCA, and changing only evaluation knobs
    /// (weighting, retry, coverage floor) reuses every stage.
    ///
    /// The result is byte-identical to `Flare::fit(corpus, new_config)`:
    /// reused artifacts are exact values a full fit would recompute, and
    /// recomputed stages run the same stage functions a full fit runs.
    /// K-means cluster-count sweeps additionally reuse per-`k` sweep
    /// points from the previous fit when only the sweep range changed.
    ///
    /// [`Flare::fit_report`] on the result shows what was reused. One
    /// caveat: on a model produced by [`Flare::recluster_with_weights`]
    /// the database no longer matches the corpus profile, so a refit that
    /// invalidates the profile stage re-profiles from the corpus and
    /// discards the reweighting.
    ///
    /// # Errors
    ///
    /// Propagates analyzer errors (insufficient data, invalid config).
    pub fn refit(&self, new_config: FlareConfig) -> Result<Flare> {
        new_config
            .validate()
            .map_err(crate::FlareError::InvalidParameter)?;
        let corpus_fp = stages::fingerprint_corpus(&self.corpus);
        let old = StageFingerprints::compute(corpus_fp, &self.config);
        let new = StageFingerprints::compute(corpus_fp, &new_config);
        let mut report = FitReport::loaded();

        let database = if new.profile == old.profile {
            self.database.clone()
        } else {
            report.profile = StageOutcome::Recomputed;
            report.scenarios_profiled = self.corpus.len();
            profile_corpus(&self.corpus, &self.baseline, &new_config)?
        };

        let (repaired, repair_report) =
            if report.profile == StageOutcome::Reused && new.repair == old.repair {
                (self.repaired.clone(), self.analyzer.repair_report().clone())
            } else {
                report.repair = StageOutcome::Recomputed;
                let art = stages::run_repair(&database, &new_config.repair_stage(), new.repair)?;
                (art.repaired, art.report)
            };
        let working = repaired.as_ref().unwrap_or(&database);

        let feat = if report.repair == StageOutcome::Reused && new.featurize == old.featurize {
            self.analyzer.extract_featurize(new.featurize)
        } else {
            report.featurize = StageOutcome::Recomputed;
            stages::run_featurize(
                working,
                &new_config.featurize_stage(),
                &new_config.scale.spill,
                new_config.threads,
                new.featurize,
            )?
        };
        report.spill = feat.spill;

        let cluster = if report.featurize == StageOutcome::Reused && new.cluster == old.cluster {
            self.analyzer.extract_cluster(new.cluster)
        } else {
            report.cluster = StageOutcome::Recomputed;
            // Sweep points carry over only when the feature matrix is
            // proven unchanged and the sweep parameters (modulo range)
            // are identical.
            let prev_sweep = if report.featurize == StageOutcome::Reused
                && sweep_reusable(&self.config, &new_config)
            {
                self.analyzer.sweep()
            } else {
                None
            };
            let (art, reused) = stages::run_cluster(
                &feat,
                &new_config.cluster_stage(),
                new_config.threads,
                prev_sweep,
                new.cluster,
            )?;
            report.sweep_points_reused = reused;
            art
        };

        let reps = if report.cluster == StageOutcome::Reused
            && new.representatives == old.representatives
        {
            self.analyzer.extract_representatives(new.representatives)
        } else {
            report.representatives = StageOutcome::Recomputed;
            stages::run_representatives(
                &feat,
                &cluster,
                &new_config.representatives_stage(),
                new.representatives,
            )?
        };

        let analyzer = Analyzer::from_artifacts(repair_report, feat, cluster, reps);
        Ok(Flare {
            corpus: self.corpus.clone(),
            database,
            analyzer,
            config: new_config,
            baseline: self.baseline.clone(),
            repaired,
            report,
        })
    }

    /// Grows the corpus with `new_scenarios` and re-fits, profiling **only
    /// the appended scenarios** — the existing database rows are reused
    /// verbatim and the tail records are appended to a clone.
    ///
    /// Byte-identical to a full `Flare::fit` over the extended corpus:
    /// per-scenario measurement-noise seeds depend only on the corpus seed
    /// and the scenario id, so profiling the tail reproduces exactly the
    /// records a from-scratch profile would emit for those ids, and every
    /// downstream stage runs through the same shared stage functions.
    ///
    /// [`Flare::fit_report`] on the result shows `profile:
    /// Extended` with `scenarios_profiled` equal to the delta size.
    ///
    /// # Errors
    ///
    /// Returns [`crate::FlareError::InvalidParameter`] for invalid
    /// extension entries (empty scenario, zero observations, vCPU
    /// overcommit), and propagates analyzer errors.
    pub fn extend(&self, new_scenarios: Vec<(Scenario, u32)>) -> Result<Flare> {
        let corpus = self
            .corpus
            .extended(new_scenarios)
            .map_err(crate::FlareError::InvalidParameter)?;
        let start = self.corpus.len();
        // The delta is profiled window-by-window (shard-sized), so even a
        // huge extension never buffers more than `scale.shard_rows`
        // records at once. Window boundaries are invisible in the output.
        let mut database = self.database.clone();
        let mut profiled = 0;
        let mut lo = start;
        while lo < corpus.len() {
            let hi = (lo + self.config.scale.shard_rows.max(1)).min(corpus.len());
            let chunk = match self.config.temporal_phases {
                Some(phases) => corpus
                    .profile_window_enriched_threaded(
                        lo..hi,
                        &self.baseline,
                        phases,
                        self.config.threads,
                    )
                    .map_err(crate::FlareError::InvalidParameter)?,
                None => corpus.profile_window_threaded(lo..hi, &self.baseline, self.config.threads),
            };
            profiled += chunk.len();
            // One capacity decision per window: `insert` then appends
            // without re-checking headroom until the window is drained.
            database.reserve_rows(chunk.len());
            for rec in chunk {
                database.insert(rec)?;
            }
            lo = hi;
        }
        let fps = StageFingerprints::compute(stages::fingerprint_corpus(&corpus), &self.config);
        let (analyzer, repaired) = stages::fit_database(&database, &self.config, &fps)?;
        let mut report = FitReport::extended(profiled, &self.report);
        report.spill = analyzer.spill_stats();
        Ok(Flare {
            corpus,
            database,
            analyzer,
            config: self.config.clone(),
            baseline: self.baseline.clone(),
            repaired,
            report,
        })
    }

    /// Re-fits over a corpus/database pair this model's streaming session
    /// has grown out-of-band (profiling each batch delta itself), running
    /// the same shared stage functions as [`Flare::fit`] so the result is
    /// byte-identical to a one-shot fit over the same corpus. `report`
    /// carries the session's cumulative ingest accounting.
    ///
    /// # Errors
    ///
    /// Propagates analyzer errors (insufficient data, invalid config).
    pub(crate) fn refit_grown(
        &self,
        corpus: Corpus,
        database: MetricDatabase,
        mut report: FitReport,
    ) -> Result<Flare> {
        let fps = StageFingerprints::compute(stages::fingerprint_corpus(&corpus), &self.config);
        let (analyzer, repaired) = stages::fit_database(&database, &self.config, &fps)?;
        report.spill = analyzer.spill_stats();
        Ok(Flare {
            corpus,
            database,
            analyzer,
            config: self.config.clone(),
            baseline: self.baseline.clone(),
            repaired,
            report,
        })
    }

    /// The scenario corpus FLARE was fitted on.
    pub fn corpus(&self) -> &Corpus {
        &self.corpus
    }

    /// The profiled metric database.
    pub fn database(&self) -> &MetricDatabase {
        &self.database
    }

    /// The fitted analyzer (refinement, PCA, clustering, representatives).
    pub fn analyzer(&self) -> &Analyzer {
        &self.analyzer
    }

    /// The pipeline configuration.
    pub fn config(&self) -> &FlareConfig {
        &self.config
    }

    /// The baseline machine configuration measurements compare against.
    pub fn baseline(&self) -> &MachineConfig {
        &self.baseline
    }

    /// How this model was produced: per-stage reuse outcomes plus the
    /// number of scenarios actually profiled. A clustering-only
    /// [`Flare::refit`] shows `scenarios_profiled == 0`; an
    /// [`Flare::extend`] shows exactly the delta size.
    pub fn fit_report(&self) -> &FitReport {
        &self.report
    }

    /// Number of representative scenarios (the evaluation cost unit).
    pub fn n_representatives(&self) -> usize {
        self.analyzer.representatives().len()
    }

    /// Estimates a feature's overall HP impact using the default simulator
    /// testbed (§4.5; Fig. 12a).
    ///
    /// # Errors
    ///
    /// Propagates estimation errors.
    pub fn evaluate(&self, feature: &Feature) -> Result<AllJobEstimate> {
        self.evaluate_on(&SimTestbed, feature)
    }

    /// Estimates a feature's overall HP impact on a caller-provided
    /// testbed.
    ///
    /// # Errors
    ///
    /// Propagates estimation errors.
    pub fn evaluate_on<T: Testbed>(
        &self,
        testbed: &T,
        feature: &Feature,
    ) -> Result<AllJobEstimate> {
        let feature_config = feature.apply(&self.baseline);
        estimate_all_job_with(
            &self.corpus,
            &self.analyzer,
            testbed,
            &self.baseline,
            &feature_config,
            &self.estimate_options(),
        )
    }

    /// Estimator options derived from the pipeline config (weighting,
    /// retry policy, coverage floor).
    pub fn estimate_options(&self) -> EstimateOptions {
        EstimateOptions {
            weight_by_observations: self.config.weight_by_observations,
            retry: self.config.retry,
            min_coverage: self.config.min_replay_coverage,
        }
    }

    /// Estimates a feature's impact on one HP job (§5.3; Fig. 12b).
    ///
    /// # Errors
    ///
    /// Propagates estimation errors, including
    /// [`crate::FlareError::JobNotObserved`].
    pub fn evaluate_job(&self, job: JobName, feature: &Feature) -> Result<PerJobEstimate> {
        self.evaluate_job_on(&SimTestbed, job, feature)
    }

    /// Estimates a feature's impact on one HP job on a caller-provided
    /// testbed.
    ///
    /// # Errors
    ///
    /// Propagates estimation errors, including
    /// [`crate::FlareError::JobNotObserved`] and
    /// [`crate::FlareError::ReplayFailed`].
    pub fn evaluate_job_on<T: Testbed>(
        &self,
        testbed: &T,
        job: JobName,
        feature: &Feature,
    ) -> Result<PerJobEstimate> {
        let feature_config = feature.apply(&self.baseline);
        estimate_per_job_with(
            &self.corpus,
            &self.analyzer,
            testbed,
            job,
            &self.baseline,
            &feature_config,
            &self.estimate_options(),
        )
    }

    /// Captures the whole fitted instance (corpus, database, analyzer,
    /// config) as a serializable snapshot — the representative extraction
    /// is a one-time cost reused for every future feature evaluation, so
    /// persisting it is the normal workflow.
    pub fn to_snapshot(&self) -> FlareSnapshot {
        FlareSnapshot {
            version: SNAPSHOT_VERSION,
            corpus: self.corpus.clone(),
            database: self.database.clone(),
            analyzer: self.analyzer.to_snapshot(),
            config: self.config.clone(),
            baseline: self.baseline.clone(),
        }
    }

    /// Restores a fitted instance from a snapshot. Snapshots written
    /// before schema versioning (no `version` field) load as version 0;
    /// snapshots from a newer schema than this build are rejected.
    ///
    /// # Errors
    ///
    /// Propagates snapshot-consistency errors;
    /// [`crate::FlareError::InvalidParameter`] for unsupported versions.
    pub fn from_snapshot(snapshot: FlareSnapshot) -> Result<Flare> {
        if snapshot.version > SNAPSHOT_VERSION {
            return Err(crate::FlareError::InvalidParameter(format!(
                "snapshot version {} is newer than this build supports (max {SNAPSHOT_VERSION})",
                snapshot.version
            )));
        }
        let analyzer = Analyzer::from_snapshot(snapshot.analyzer)?;
        // The repaired-database cache is intentionally not serialized;
        // rebuild it so refit/extend on a loaded model behave exactly
        // like on a freshly fitted one.
        let repaired =
            stages::run_repair(&snapshot.database, &snapshot.config.repair_stage(), 0)?.repaired;
        Ok(Flare {
            corpus: snapshot.corpus,
            database: snapshot.database,
            analyzer,
            config: snapshot.config,
            baseline: snapshot.baseline,
            repaired,
            report: FitReport::loaded(),
        })
    }

    /// Serializes the fitted instance to a JSON file.
    ///
    /// # Errors
    ///
    /// Returns [`crate::FlareError::InvalidParameter`] wrapping I/O or
    /// serialization failures.
    pub fn save(&self, path: &std::path::Path) -> Result<()> {
        let json = serde_json::to_string(&self.to_snapshot())
            .map_err(|e| crate::FlareError::InvalidParameter(format!("serialize model: {e}")))?;
        std::fs::write(path, json)
            .map_err(|e| crate::FlareError::InvalidParameter(format!("write model: {e}")))
    }

    /// Loads a fitted instance from a JSON file written by [`Flare::save`].
    ///
    /// # Errors
    ///
    /// Returns [`crate::FlareError::InvalidParameter`] wrapping I/O or
    /// parse failures, or snapshot-consistency errors.
    pub fn load(path: &std::path::Path) -> Result<Flare> {
        let json = std::fs::read_to_string(path)
            .map_err(|e| crate::FlareError::InvalidParameter(format!("read model: {e}")))?;
        let snapshot: FlareSnapshot = serde_json::from_str(&json)
            .map_err(|e| crate::FlareError::InvalidParameter(format!("parse model: {e}")))?;
        Flare::from_snapshot(snapshot)
    }

    /// The §5.6 scheduler-change workflow: a new scheduler does not create
    /// unseen scenarios, it shifts how often existing ones occur. Given a
    /// re-weighting of the corpus (estimated occurrence counts under the
    /// new scheduler), re-derive the representatives **from step 3** —
    /// reusing the collected metrics, skipping the expensive collection.
    /// Runs on the stage graph: the profile stage is reused (the fit
    /// report shows `scenarios_profiled == 0`) and the downstream stages
    /// re-run over the re-weighted database.
    ///
    /// Scenarios re-weighted to zero are dropped from the clustered
    /// population.
    ///
    /// # Errors
    ///
    /// Returns [`crate::FlareError::CorpusDatabaseMismatch`] if a
    /// surviving corpus entry has no profiled metrics behind it, and
    /// propagates analyzer errors (e.g. too few surviving scenarios).
    pub fn recluster_with_weights<F>(&self, reweight: F) -> Result<Flare>
    where
        F: Fn(&CorpusEntry) -> u32,
    {
        let mut weights: HashMap<_, u32> = HashMap::with_capacity(self.corpus.len());
        for entry in self.corpus.entries() {
            let w = reweight(entry);
            if w == 0 {
                continue;
            }
            if self.database.get(entry.id).is_none() {
                return Err(crate::FlareError::CorpusDatabaseMismatch {
                    scenario_id: entry.id,
                });
            }
            weights.insert(entry.id, w);
        }
        let database = self
            .database
            .reweighted(|id, _| weights.get(&id).copied().unwrap_or(0));
        let fps = StageFingerprints::compute(stages::fingerprint_database(&database), &self.config);
        let (analyzer, repaired) = stages::fit_database(&database, &self.config, &fps)?;
        let mut report = FitReport::full_fit(0);
        report.profile = StageOutcome::Reused;
        report.spill = analyzer.spill_stats();
        Ok(Flare {
            corpus: self.corpus.clone(),
            database,
            analyzer,
            config: self.config.clone(),
            baseline: self.baseline.clone(),
            repaired,
            report,
        })
    }
}

/// Profiles every corpus scenario under `baseline` per the config's
/// temporal-enrichment, threading, and shard-size knobs. Profiling runs
/// shard-by-shard into the sharded store, so the largest in-flight
/// buffer is bounded by `config.scale.shard_rows` — byte-identical to a
/// monolithic profile for every shard size (records depend only on
/// scenario ids, and the store coalesces bit-exactly).
fn profile_corpus(
    corpus: &Corpus,
    baseline: &MachineConfig,
    config: &FlareConfig,
) -> Result<MetricDatabase> {
    let shard_rows = config.scale.shard_rows;
    match config.temporal_phases {
        Some(phases) => corpus
            .to_metric_database_enriched_sharded_threaded(
                baseline,
                phases,
                config.threads,
                shard_rows,
            )
            .map_err(crate::FlareError::InvalidParameter),
        None => {
            Ok(corpus.to_metric_database_sharded_threaded(baseline, config.threads, shard_rows))
        }
    }
}

/// `true` when sweep points measured under `old` are valid under `new`:
/// both are K-means sweeps with identical K-means parameters (modulo the
/// wall-clock `threads` knob and the always-overridden `k`). Each sweep
/// point is computed independently and serially, so carrying points over
/// is byte-identical to re-measuring them.
fn sweep_reusable(old: &FlareConfig, new: &FlareConfig) -> bool {
    use crate::config::{ClusterCountRule, ClusterMethod};
    matches!(old.cluster_method, ClusterMethod::KMeans)
        && matches!(new.cluster_method, ClusterMethod::KMeans)
        && matches!(old.cluster_count, ClusterCountRule::Sweep { .. })
        && matches!(new.cluster_count, ClusterCountRule::Sweep { .. })
        && old.cluster_stage().fingerprint_view().kmeans
            == new.cluster_stage().fingerprint_view().kmeans
}

/// Serializable snapshot of a fitted [`Flare`] instance.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct FlareSnapshot {
    /// Snapshot schema version; see [`SNAPSHOT_VERSION`]. Absent in
    /// pre-versioning snapshots, which deserialize as 0.
    #[serde(default)]
    pub version: u32,
    /// The scenario corpus.
    pub corpus: Corpus,
    /// The profiled metric database.
    pub database: MetricDatabase,
    /// The fitted analyzer state.
    pub analyzer: crate::analyzer::AnalyzerSnapshot,
    /// The pipeline configuration.
    pub config: FlareConfig,
    /// The baseline machine configuration.
    pub baseline: MachineConfig,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ClusterCountRule;
    use flare_metrics::database::ScenarioRecord;
    use flare_sim::datacenter::CorpusConfig;
    use flare_workloads::job::JobName as Job;

    fn small_corpus() -> Corpus {
        let cfg = CorpusConfig {
            machines: 4,
            days: 2.0,
            tick_minutes: 15.0,
            ..CorpusConfig::default()
        };
        Corpus::generate(&cfg)
    }

    fn small_flare() -> Flare {
        let flare_cfg = FlareConfig {
            cluster_count: ClusterCountRule::Fixed(8),
            ..FlareConfig::default()
        };
        Flare::fit(small_corpus(), flare_cfg).unwrap()
    }

    /// Everything that makes two fitted models "the same result".
    fn assert_same_model(a: &Flare, b: &Flare) {
        assert_eq!(a.database(), b.database());
        assert_eq!(
            a.analyzer().clustering().assignments,
            b.analyzer().clustering().assignments
        );
        assert_eq!(a.analyzer().projected(), b.analyzer().projected());
        assert_eq!(
            a.analyzer().representatives(),
            b.analyzer().representatives()
        );
        assert_eq!(a.analyzer().sweep(), b.analyzer().sweep());
    }

    #[test]
    fn fit_produces_representatives() {
        let flare = small_flare();
        assert_eq!(flare.n_representatives(), 8);
        assert_eq!(flare.database().len(), flare.corpus().len());
        let report = flare.fit_report();
        assert_eq!(report.recomputed_stages(), 5);
        assert_eq!(report.scenarios_profiled, flare.corpus().len());
    }

    #[test]
    fn evaluate_all_paper_features() {
        let flare = small_flare();
        for feature in Feature::paper_features() {
            let est = flare.evaluate(&feature).unwrap();
            assert!(
                est.impact_pct > 0.0 && est.impact_pct < 60.0,
                "{feature}: {}%",
                est.impact_pct
            );
        }
    }

    #[test]
    fn per_job_evaluation_works() {
        let flare = small_flare();
        let est = flare
            .evaluate_job(Job::DataCaching, &Feature::paper_feature3())
            .unwrap();
        assert_eq!(est.job, Job::DataCaching);
        assert!(est.impact_pct.is_finite());
    }

    #[test]
    fn refit_clustering_only_skips_profiling() {
        let flare = small_flare();
        let new_cfg = FlareConfig {
            cluster_count: ClusterCountRule::Fixed(6),
            ..flare.config().clone()
        };
        let refitted = flare.refit(new_cfg.clone()).unwrap();
        assert_eq!(refitted.n_representatives(), 6);

        let report = refitted.fit_report();
        assert_eq!(report.profile, StageOutcome::Reused);
        assert_eq!(report.repair, StageOutcome::Reused);
        assert_eq!(report.featurize, StageOutcome::Reused);
        assert_eq!(report.cluster, StageOutcome::Recomputed);
        assert_eq!(report.representatives, StageOutcome::Recomputed);
        assert_eq!(report.scenarios_profiled, 0, "refit must never re-profile");

        // Identical to fitting the new config from scratch.
        let fresh = Flare::fit(flare.corpus().clone(), new_cfg).unwrap();
        assert_same_model(&refitted, &fresh);
    }

    #[test]
    fn refit_identical_config_reuses_every_stage() {
        let flare = small_flare();
        let refitted = flare.refit(flare.config().clone()).unwrap();
        assert_eq!(refitted.fit_report().reused_stages(), 5);
        assert_eq!(refitted.fit_report().scenarios_profiled, 0);
        assert_same_model(&refitted, &flare);
    }

    #[test]
    fn refit_evaluation_knobs_reuse_every_stage() {
        let flare = small_flare();
        let new_cfg = FlareConfig {
            weight_by_observations: false,
            min_replay_coverage: 0.25,
            ..flare.config().clone()
        };
        let refitted = flare.refit(new_cfg).unwrap();
        assert_eq!(refitted.fit_report().reused_stages(), 5);
        assert!(!refitted.estimate_options().weight_by_observations);
    }

    #[test]
    fn refit_featurize_change_reuses_profile_and_repair() {
        let flare = small_flare();
        let new_cfg = FlareConfig {
            variance_threshold: 0.90,
            ..flare.config().clone()
        };
        let refitted = flare.refit(new_cfg.clone()).unwrap();
        let report = refitted.fit_report();
        assert_eq!(report.profile, StageOutcome::Reused);
        assert_eq!(report.repair, StageOutcome::Reused);
        assert_eq!(report.featurize, StageOutcome::Recomputed);
        assert_eq!(report.scenarios_profiled, 0);
        let fresh = Flare::fit(flare.corpus().clone(), new_cfg).unwrap();
        assert_same_model(&refitted, &fresh);
    }

    #[test]
    fn refit_profile_change_reprofiles() {
        let flare = small_flare();
        let new_cfg = FlareConfig {
            temporal_phases: Some(4),
            ..flare.config().clone()
        };
        let refitted = flare.refit(new_cfg.clone()).unwrap();
        let report = refitted.fit_report();
        assert_eq!(report.profile, StageOutcome::Recomputed);
        assert_eq!(report.scenarios_profiled, flare.corpus().len());
        let fresh = Flare::fit(flare.corpus().clone(), new_cfg).unwrap();
        assert_same_model(&refitted, &fresh);
    }

    #[test]
    fn refit_sweep_range_extension_reuses_points() {
        let base_cfg = FlareConfig {
            cluster_count: ClusterCountRule::Sweep {
                min_k: 2,
                max_k: 6,
                step: 1,
            },
            ..FlareConfig::default()
        };
        let flare = Flare::fit(small_corpus(), base_cfg).unwrap();
        let wider = FlareConfig {
            cluster_count: ClusterCountRule::Sweep {
                min_k: 2,
                max_k: 8,
                step: 1,
            },
            ..flare.config().clone()
        };
        let refitted = flare.refit(wider.clone()).unwrap();
        let report = refitted.fit_report();
        assert_eq!(report.cluster, StageOutcome::Recomputed);
        assert_eq!(report.sweep_points_reused, 5, "k = 2..=6 carried over");
        assert_eq!(report.scenarios_profiled, 0);
        // Reused points change nothing.
        let fresh = Flare::fit(flare.corpus().clone(), wider).unwrap();
        assert_same_model(&refitted, &fresh);
    }

    #[test]
    fn extend_profiles_only_the_delta_and_matches_full_fit() {
        let flare = small_flare();
        let delta = vec![
            (Scenario::from_counts([(Job::DataCaching, 2)]), 9),
            (
                Scenario::from_counts([(Job::GraphAnalytics, 3), (Job::Mcf, 2)]),
                4,
            ),
        ];
        let extended = flare.extend(delta.clone()).unwrap();
        assert_eq!(extended.corpus().len(), flare.corpus().len() + 2);
        assert_eq!(extended.database().len(), flare.database().len() + 2);

        let report = extended.fit_report();
        assert_eq!(report.profile, StageOutcome::Extended);
        assert_eq!(report.scenarios_profiled, 2, "only the delta is profiled");

        // Byte-identical to profiling the extended corpus from scratch.
        let full_corpus = flare.corpus().extended(delta).unwrap();
        let fresh = Flare::fit(full_corpus, flare.config().clone()).unwrap();
        assert_same_model(&extended, &fresh);
    }

    #[test]
    fn extend_with_empty_delta_matches_refit() {
        let flare = small_flare();
        let extended = flare.extend(vec![]).unwrap();
        assert_eq!(extended.fit_report().scenarios_profiled, 0);
        assert_same_model(&extended, &flare);
    }

    #[test]
    fn extend_validates_entries() {
        let flare = small_flare();
        assert!(flare.extend(vec![(Scenario::empty(), 1)]).is_err());
        assert!(flare
            .extend(vec![(Scenario::from_counts([(Job::Mcf, 1)]), 0)])
            .is_err());
    }

    #[test]
    fn recluster_keeps_scenarios_but_changes_weights() {
        let flare = small_flare();
        // New scheduler: consolidation doubles high-occupancy scenarios,
        // halves light ones.
        let reclustered = flare
            .recluster_with_weights(|e| {
                if e.scenario.occupancy(48) > 0.5 {
                    e.observations * 3
                } else {
                    1
                }
            })
            .unwrap();
        assert_eq!(reclustered.n_representatives(), 8);
        // Same corpus, same scenarios available.
        assert_eq!(reclustered.corpus().len(), flare.corpus().len());
        // The profile stage is reused, not re-run.
        assert_eq!(reclustered.fit_report().profile, StageOutcome::Reused);
        assert_eq!(reclustered.fit_report().scenarios_profiled, 0);
        // Estimates still work after re-clustering.
        let est = reclustered.evaluate(&Feature::paper_feature3()).unwrap();
        assert!(est.impact_pct.is_finite());
    }

    #[test]
    fn recluster_on_stage_graph_matches_manual_rebuild() {
        let flare = small_flare();
        let reweight = |e: &CorpusEntry| {
            if e.scenario.occupancy(48) > 0.5 {
                e.observations * 3
            } else {
                1
            }
        };
        let reclustered = flare.recluster_with_weights(reweight).unwrap();

        // The pre-stage-graph implementation: rebuild the database record
        // by record with the new weights and run a monolithic fit.
        let mut db = MetricDatabase::new(flare.database().schema().clone());
        for entry in flare.corpus().entries() {
            let w = reweight(entry);
            if w == 0 {
                continue;
            }
            let row = flare.database().get(entry.id).unwrap();
            db.insert(ScenarioRecord {
                observations: w,
                ..row.to_record()
            })
            .unwrap();
        }
        let manual = Analyzer::fit(&db, flare.config()).unwrap();

        assert_eq!(reclustered.database(), &db);
        assert_eq!(
            reclustered.analyzer().representatives(),
            manual.representatives()
        );
        assert_eq!(
            reclustered.analyzer().clustering().assignments,
            manual.clustering().assignments
        );
    }

    #[test]
    fn snapshot_roundtrip_preserves_estimates() {
        let flare = small_flare();
        let feature = Feature::paper_feature1();
        let before = flare.evaluate(&feature).unwrap();

        let snapshot = flare.to_snapshot();
        let json = serde_json::to_string(&snapshot).unwrap();
        let restored: FlareSnapshot = serde_json::from_str(&json).unwrap();
        let reloaded = Flare::from_snapshot(restored).unwrap();
        let after = reloaded.evaluate(&feature).unwrap();

        assert_eq!(before.impact_pct, after.impact_pct);
        assert_eq!(
            flare.analyzer().representatives(),
            reloaded.analyzer().representatives()
        );
    }

    #[test]
    fn snapshot_carries_current_version() {
        let flare = small_flare();
        assert_eq!(flare.to_snapshot().version, SNAPSHOT_VERSION);
    }

    #[test]
    fn future_snapshot_version_rejected() {
        let flare = small_flare();
        let mut snapshot = flare.to_snapshot();
        snapshot.version = SNAPSHOT_VERSION + 1;
        match Flare::from_snapshot(snapshot) {
            Err(crate::FlareError::InvalidParameter(msg)) => {
                assert!(msg.contains("newer"), "unexpected message: {msg}");
            }
            other => panic!("expected InvalidParameter, got {other:?}"),
        }
    }

    #[test]
    fn legacy_version_snapshot_loads() {
        let flare = small_flare();
        let mut snapshot = flare.to_snapshot();
        snapshot.version = 0; // pre-versioning snapshots default to 0
        let loaded = Flare::from_snapshot(snapshot).unwrap();
        assert_eq!(loaded.n_representatives(), flare.n_representatives());
        assert_eq!(loaded.fit_report(), &FitReport::loaded());
    }

    #[test]
    fn loaded_model_refits_like_a_fresh_one() {
        let flare = small_flare();
        let reloaded = Flare::from_snapshot(flare.to_snapshot()).unwrap();
        let new_cfg = FlareConfig {
            cluster_count: ClusterCountRule::Fixed(5),
            ..flare.config().clone()
        };
        let a = flare.refit(new_cfg.clone()).unwrap();
        let b = reloaded.refit(new_cfg).unwrap();
        assert_eq!(a.fit_report(), b.fit_report());
        assert_same_model(&a, &b);
    }

    #[test]
    fn save_load_file_roundtrip() {
        let flare = small_flare();
        let dir = std::env::temp_dir().join("flare_model_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.json");
        flare.save(&path).unwrap();
        let reloaded = Flare::load(&path).unwrap();
        assert_eq!(flare.n_representatives(), reloaded.n_representatives());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_snapshot_rejected() {
        let flare = small_flare();
        let mut snapshot = flare.to_snapshot();
        snapshot.analyzer.observations.pop(); // break row alignment
        assert!(Flare::from_snapshot(snapshot).is_err());
    }

    #[test]
    fn temporal_enrichment_fits_and_evaluates() {
        let corpus = small_corpus();
        let flare_cfg = FlareConfig {
            cluster_count: ClusterCountRule::Fixed(8),
            temporal_phases: Some(6),
            ..FlareConfig::default()
        };
        let flare = Flare::fit(corpus, flare_cfg).unwrap();
        // The enriched schema doubles the raw metric count.
        assert_eq!(
            flare.database().schema().len(),
            2 * flare_metrics::schema::MetricSchema::canonical().len()
        );
        let est = flare.evaluate(&Feature::paper_feature1()).unwrap();
        assert!(est.impact_pct > 0.0 && est.impact_pct < 60.0);
    }

    #[test]
    fn temporal_extend_matches_full_fit() {
        let flare_cfg = FlareConfig {
            cluster_count: ClusterCountRule::Fixed(8),
            temporal_phases: Some(4),
            ..FlareConfig::default()
        };
        let flare = Flare::fit(small_corpus(), flare_cfg).unwrap();
        let delta = vec![(Scenario::from_counts([(Job::DataCaching, 3)]), 2)];
        let extended = flare.extend(delta.clone()).unwrap();
        assert_eq!(extended.fit_report().scenarios_profiled, 1);
        let fresh = Flare::fit(
            flare.corpus().extended(delta).unwrap(),
            flare.config().clone(),
        )
        .unwrap();
        assert_same_model(&extended, &fresh);
    }

    #[test]
    fn zero_phases_rejected() {
        let cfg = CorpusConfig {
            machines: 4,
            days: 1.0,
            ..CorpusConfig::default()
        };
        let corpus = Corpus::generate(&cfg);
        let bad = FlareConfig {
            temporal_phases: Some(0),
            ..FlareConfig::default()
        };
        assert!(Flare::fit(corpus, bad).is_err());
    }

    #[test]
    fn recluster_dropping_everything_fails() {
        let flare = small_flare();
        assert!(flare.recluster_with_weights(|_| 0).is_err());
    }

    #[test]
    fn recluster_detects_corpus_database_mismatch() {
        let flare = small_flare();
        let mut snapshot = flare.to_snapshot();
        // Rebuild the database without the last profiled record so one
        // corpus entry has no metrics behind it.
        let dropped = flare.corpus().entries().last().unwrap().id;
        let mut pruned = MetricDatabase::new(snapshot.database.schema().clone());
        for rec in snapshot.database.iter() {
            if rec.id != dropped {
                pruned.insert(rec.to_record()).unwrap();
            }
        }
        snapshot.database = pruned;
        let broken = Flare::from_snapshot(snapshot).unwrap();
        match broken.recluster_with_weights(|_| 1) {
            Err(crate::FlareError::CorpusDatabaseMismatch { scenario_id }) => {
                assert_eq!(scenario_id, dropped);
            }
            other => panic!("expected CorpusDatabaseMismatch, got {other:?}"),
        }
    }
}
