//! Ablation 6: FLARE vs a WSMeter-style canary cluster (the paper's
//! reference \[58\]) — the statistical live-cluster baseline the
//! introduction positions FLARE against.
//!
//! Costs are compared in two currencies: *scenario replays* (testbed work)
//! and *machine-days of live hardware* (the canary's real currency).

use flare_baselines::canary::{canary_impact, CanaryConfig};
use flare_baselines::fulldc::full_datacenter_impact;
use flare_bench::banner;
use flare_core::replayer::SimTestbed;
use flare_core::{Flare, FlareConfig};
use flare_sim::datacenter::{Corpus, CorpusConfig};
use flare_sim::feature::Feature;

fn main() {
    banner(
        "Ablation: FLARE vs WSMeter-style canary clusters",
        "§1/§2 (the 'statistical approach [58]' baseline)",
    );
    let prod_cfg = CorpusConfig::default();
    let corpus = Corpus::generate(&prod_cfg);
    let baseline = prod_cfg.machine_config.clone();
    let flare = Flare::fit(corpus.clone(), FlareConfig::default()).expect("fit");

    let canaries = [
        (
            "canary 1x3d",
            CanaryConfig {
                machines: 1,
                days: 3.0,
                seed: 1009,
            },
        ),
        (
            "canary 2x7d",
            CanaryConfig {
                machines: 2,
                days: 7.0,
                seed: 1013,
            },
        ),
        (
            "canary 4x7d",
            CanaryConfig {
                machines: 4,
                days: 7.0,
                seed: 1019,
            },
        ),
        (
            "canary 8x7d",
            CanaryConfig {
                machines: 8,
                days: 7.0,
                seed: 1021,
            },
        ),
    ];

    for feature in Feature::paper_features() {
        let fc = feature.apply(&baseline);
        let truth = full_datacenter_impact(&corpus, &SimTestbed, &baseline, &fc, true);
        let flare_est = flare.evaluate(&feature).expect("estimate");
        println!(
            "\n[{}] production truth = {:.2}%",
            feature.label(),
            truth.impact_pct
        );
        println!(
            "  {:<14} {:>9} {:>8} {:>13} {:>9}",
            "method", "estimate", "err pp", "mach-days", "replays"
        );
        println!(
            "  {:<14} {:>9.2} {:>8.2} {:>13} {:>9}",
            "FLARE",
            flare_est.impact_pct,
            (flare_est.impact_pct - truth.impact_pct).abs(),
            "0 (testbed)",
            flare_est.replay_count,
        );
        for (name, cfg) in &canaries {
            let c = canary_impact(&SimTestbed, &prod_cfg, cfg, &baseline, &fc);
            println!(
                "  {:<14} {:>9.2} {:>8.2} {:>13.1} {:>9}",
                name,
                c.impact_pct,
                (c.impact_pct - truth.impact_pct).abs(),
                c.machine_days,
                c.evaluation_cost,
            );
        }
    }
    println!(
        "\ntakeaway: a small canary mis-samples the colocation distribution (fewer\n\
         machines change scheduler packing), so matching FLARE's accuracy needs a\n\
         canary approaching the production fleet itself — the paper's §1 critique of\n\
         live statistical evaluation, reproduced."
    );
}
