//! Interpretation of high-level metrics: PC labeling (Fig. 8) and cluster
//! radar profiles (Fig. 10).
//!
//! FLARE's distinguishing analysis step (§4.3) is to *label* every kept
//! principal component so engineers can reason about clusters ("Cluster 8
//! is high PC12 / low PC7, both of which promote LLC misses — so it is the
//! group most sensitive to LLC features").

use crate::analyzer::{Analyzer, ClusterPcProfile};
use flare_metrics::schema::{Level, MetricFamily, MetricId};
use serde::{Deserialize, Serialize};

/// One signed loading of a raw metric on a principal component.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Loading {
    /// The raw metric.
    pub metric: MetricId,
    /// Signed weight of the metric on the PC.
    pub weight: f64,
}

/// A labeled principal component (one row of Fig. 8).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PcInterpretation {
    /// Component index (0-based).
    pub pc: usize,
    /// Fraction of corpus variance this PC explains.
    pub explained_variance: f64,
    /// The strongest signed loadings, by |weight| descending.
    pub top_loadings: Vec<Loading>,
    /// A generated natural-language-ish label.
    pub label: String,
}

/// Labels the kept PCs of a fitted analyzer.
///
/// `max_loadings` bounds how many raw metrics are listed per PC (the paper
/// "omits the metrics with small weights"); loadings below 40 % of the
/// strongest one are dropped regardless.
pub fn interpret_pcs(analyzer: &Analyzer, max_loadings: usize) -> Vec<PcInterpretation> {
    let pca = analyzer.pca();
    let schema = analyzer.refined_schema();
    let explained = pca.explained_variance_ratio();
    (0..analyzer.n_pcs())
        .map(|pc| {
            let component = pca.component(pc);
            let mut idx: Vec<usize> = (0..component.len()).collect();
            idx.sort_by(|&a, &b| {
                component[b]
                    .abs()
                    .partial_cmp(&component[a].abs())
                    .expect("finite loadings")
            });
            let strongest = component[idx[0]].abs().max(1e-12);
            let top_loadings: Vec<Loading> = idx
                .iter()
                .take(max_loadings)
                .filter(|&&i| component[i].abs() >= 0.4 * strongest)
                .map(|&i| Loading {
                    metric: schema.id_at(i),
                    weight: component[i],
                })
                .collect();
            let label = label_from_loadings(&top_loadings);
            PcInterpretation {
                pc,
                explained_variance: explained[pc],
                top_loadings,
                label,
            }
        })
        .collect()
}

/// Generates a compact description from signed loadings, grouping by
/// metric family and collection level (mirroring the style of Fig. 8's
/// hand-written interpretations).
fn label_from_loadings(loadings: &[Loading]) -> String {
    if loadings.is_empty() {
        return "(no dominant metric)".into();
    }
    let mut parts: Vec<String> = Vec::new();
    let mut described: Vec<(MetricFamily, Level, bool)> = Vec::new();
    for l in loadings {
        let key = (l.metric.kind.family(), l.metric.level, l.weight >= 0.0);
        if described.contains(&key) {
            continue;
        }
        described.push(key);
        let direction = if l.weight >= 0.0 { "high" } else { "low" };
        let family = match l.metric.kind.family() {
            MetricFamily::Performance => "throughput",
            MetricFamily::Topdown => "pipeline-stall",
            MetricFamily::Cache => "cache-pressure",
            MetricFamily::Memory => "memory-traffic",
            MetricFamily::Tlb => "TLB-pressure",
            MetricFamily::Branch => "branchy",
            MetricFamily::Cpu => "CPU-activity",
            MetricFamily::Storage => "storage-I/O",
            MetricFamily::Network => "network-I/O",
            MetricFamily::OsMemory => "OS-memory",
            MetricFamily::JobMix => "job-mix",
        };
        let level = match l.metric.level {
            Level::Machine => "machine",
            Level::Hp => "HP jobs",
        };
        parts.push(format!("{direction} {family} ({level})"));
        if parts.len() == 3 {
            break;
        }
    }
    parts.join(" + ")
}

/// Radar-plot data for every cluster (Fig. 10): per-PC mean ±1σ and the
/// cluster's weight.
#[derive(Debug, Clone, PartialEq)]
pub struct RadarChart {
    /// One profile per (non-empty) cluster.
    pub profiles: Vec<ClusterPcProfile>,
    /// Cluster weights (same indexing as `profiles[i].cluster`).
    pub weights: Vec<f64>,
    /// ±1σ of the whole corpus per PC (the dotted reference rings).
    pub corpus_std: Vec<f64>,
}

/// Builds the radar-chart dataset from a fitted analyzer.
pub fn radar_chart(analyzer: &Analyzer, by_observations: bool) -> RadarChart {
    let weights = analyzer.cluster_weights(by_observations);
    let profiles: Vec<ClusterPcProfile> = (0..analyzer.n_clusters())
        .filter_map(|c| analyzer.cluster_pc_profile(c))
        .collect();
    // Column extraction wants the dense view; the reporting path is cold,
    // so coalescing (cached inside the sharded plane) is fine here.
    let proj = analyzer.projected().coalesced();
    let corpus_std: Vec<f64> = (0..analyzer.n_pcs())
        .map(|j| flare_linalg::stats::std_dev(&proj.col(j)))
        .collect();
    RadarChart {
        profiles,
        weights,
        corpus_std,
    }
}

/// Explains why a cluster responds to a feature: the PCs on which the
/// cluster deviates most from the corpus mean (the §5.2 Cluster-8
/// analysis, automated). Returns `(pc, cluster_mean_in_sigma)` pairs,
/// strongest deviation first.
pub fn distinguishing_pcs(analyzer: &Analyzer, cluster: usize, top: usize) -> Vec<(usize, f64)> {
    let profile = match analyzer.cluster_pc_profile(cluster) {
        Some(p) => p,
        None => return Vec::new(),
    };
    // Whitened PCs have corpus std ≈ 1, so the mean itself is in σ units.
    let mut scored: Vec<(usize, f64)> = profile
        .mean
        .iter()
        .enumerate()
        .map(|(pc, &m)| (pc, m))
        .collect();
    scored.sort_by(|a, b| b.1.abs().partial_cmp(&a.1.abs()).expect("finite"));
    scored.truncate(top);
    scored
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyzer::Analyzer;
    use crate::config::{ClusterCountRule, FlareConfig};
    use flare_metrics::database::{MetricDatabase, ScenarioId, ScenarioRecord};
    use flare_metrics::schema::MetricSchema;

    fn fitted() -> Analyzer {
        let schema = MetricSchema::canonical();
        let d = schema.len();
        let mut db = MetricDatabase::new(schema);
        for i in 0..40u32 {
            let group = (i % 4) as f64;
            let metrics: Vec<f64> = (0..d)
                .map(|j| {
                    group * 50.0 * ((j % 7) as f64 + 1.0)
                        + ((i as f64 * 3.3 + j as f64 * 1.7).sin() * 2.0)
                })
                .collect();
            db.insert(ScenarioRecord {
                id: ScenarioId(i),
                metrics,
                observations: 1,
                job_mix: vec![],
            })
            .unwrap();
        }
        let cfg = FlareConfig {
            cluster_count: ClusterCountRule::Fixed(4),
            ..FlareConfig::default()
        };
        Analyzer::fit(&db, &cfg).unwrap()
    }

    #[test]
    fn interpretations_cover_all_kept_pcs() {
        let a = fitted();
        let interp = interpret_pcs(&a, 6);
        assert_eq!(interp.len(), a.n_pcs());
        for p in &interp {
            assert!(!p.top_loadings.is_empty());
            assert!(!p.label.is_empty());
            assert!(p.explained_variance >= 0.0);
            // Loadings are sorted by |weight| descending.
            for w in p.top_loadings.windows(2) {
                assert!(w[0].weight.abs() >= w[1].weight.abs() - 1e-12);
            }
            assert!(p.top_loadings.len() <= 6);
        }
    }

    #[test]
    fn labels_mention_direction() {
        let a = fitted();
        let interp = interpret_pcs(&a, 4);
        assert!(interp
            .iter()
            .any(|p| p.label.contains("high") || p.label.contains("low")));
    }

    #[test]
    fn radar_chart_dimensions() {
        let a = fitted();
        let radar = radar_chart(&a, true);
        assert_eq!(radar.profiles.len(), 4);
        assert_eq!(radar.weights.len(), 4);
        assert_eq!(radar.corpus_std.len(), a.n_pcs());
        assert!((radar.weights.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        // Whitened corpus: per-PC std ≈ 1.
        for &s in &radar.corpus_std {
            assert!((s - 1.0).abs() < 0.2, "whitened std {s}");
        }
    }

    #[test]
    fn distinguishing_pcs_sorted_by_magnitude() {
        let a = fitted();
        let top = distinguishing_pcs(&a, 0, 3);
        assert!(!top.is_empty());
        for w in top.windows(2) {
            assert!(w[0].1.abs() >= w[1].1.abs() - 1e-12);
        }
        assert!(distinguishing_pcs(&a, 99, 3).is_empty());
    }

    #[test]
    fn empty_loading_label() {
        assert_eq!(label_from_loadings(&[]), "(no dominant metric)");
    }
}
