//! A minimal dense, row-major, `f64` matrix.
//!
//! The FLARE pipeline works with modest data sizes (hundreds of scenarios ×
//! ~100 metrics), so a straightforward cache-friendly row-major layout with
//! `O(n^3)` multiplication is entirely adequate and keeps the substrate
//! dependency-free and auditable.

use crate::error::{LinalgError, Result};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Index, IndexMut};

/// Dense row-major matrix of `f64` values.
///
/// # Examples
///
/// ```
/// use flare_linalg::Matrix;
///
/// let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
/// assert_eq!(m[(1, 0)], 3.0);
/// assert_eq!(m.transpose()[(0, 1)], 3.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    ///
    /// # Examples
    ///
    /// ```
    /// let m = flare_linalg::Matrix::zeros(2, 3);
    /// assert_eq!(m.shape(), (2, 3));
    /// assert_eq!(m[(1, 2)], 0.0);
    /// ```
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n x n` identity matrix.
    ///
    /// # Examples
    ///
    /// ```
    /// let i = flare_linalg::Matrix::identity(3);
    /// assert_eq!(i[(0, 0)], 1.0);
    /// assert_eq!(i[(0, 1)], 0.0);
    /// ```
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from a slice of equal-length rows.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Empty`] if `rows` is empty or the first row is
    /// empty, and [`LinalgError::DimensionMismatch`] if rows have unequal
    /// lengths.
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self> {
        if rows.is_empty() || rows[0].is_empty() {
            return Err(LinalgError::Empty(
                "from_rows requires a non-empty row set".into(),
            ));
        }
        let cols = rows[0].len();
        for (i, r) in rows.iter().enumerate() {
            if r.len() != cols {
                return Err(LinalgError::DimensionMismatch(format!(
                    "row 0 has {cols} columns but row {i} has {}",
                    r.len()
                )));
            }
        }
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            data.extend_from_slice(r);
        }
        Ok(Matrix {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Builds a matrix from a flat row-major buffer.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(LinalgError::DimensionMismatch(format!(
                "buffer of length {} cannot form a {rows}x{cols} matrix",
                data.len()
            )));
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Immutable view of the `i`-th row.
    ///
    /// # Panics
    ///
    /// Panics if `i >= nrows()`.
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.rows, "row index {i} out of bounds ({})", self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable view of the `i`-th row.
    ///
    /// # Panics
    ///
    /// Panics if `i >= nrows()`.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        assert!(i < self.rows, "row index {i} out of bounds ({})", self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Flat view of a contiguous block of rows: the row-major slice
    /// covering rows `rows.start..rows.end` (each of `ncols()` entries).
    ///
    /// This is the substrate for blocked kernels: a worker thread takes one
    /// contiguous row block and walks it with `chunks_exact(ncols())`,
    /// avoiding per-row bounds checks and pointer chasing.
    ///
    /// # Panics
    ///
    /// Panics if `rows.start > rows.end` or `rows.end > nrows()`.
    ///
    /// # Examples
    ///
    /// ```
    /// let m = flare_linalg::Matrix::from_rows(&[
    ///     vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0],
    /// ]).unwrap();
    /// assert_eq!(m.row_block(1..3), &[3.0, 4.0, 5.0, 6.0]);
    /// ```
    pub fn row_block(&self, rows: std::ops::Range<usize>) -> &[f64] {
        assert!(
            rows.start <= rows.end && rows.end <= self.rows,
            "row block {}..{} out of bounds ({} rows)",
            rows.start,
            rows.end,
            self.rows
        );
        &self.data[rows.start * self.cols..rows.end * self.cols]
    }

    /// Copies the `j`-th column into a new `Vec`.
    ///
    /// # Panics
    ///
    /// Panics if `j >= ncols()`.
    pub fn col(&self, j: usize) -> Vec<f64> {
        assert!(j < self.cols, "col index {j} out of bounds ({})", self.cols);
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Iterator over row slices.
    pub fn rows_iter(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks_exact(self.cols)
    }

    /// The underlying row-major buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Consumes the matrix and returns the underlying row-major buffer.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Matrix product `self * rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `self.ncols() != rhs.nrows()`.
    pub fn matmul(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.cols != rhs.rows {
            return Err(LinalgError::DimensionMismatch(format!(
                "matmul: lhs is {}x{} but rhs is {}x{}",
                self.rows, self.cols, rhs.rows, rhs.cols
            )));
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        // ikj loop order: the inner loop walks both `rhs` and `out` rows
        // sequentially, which is the cache-friendly order for row-major data.
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                let rhs_row = rhs.row(k);
                let out_row = out.row_mut(i);
                for (o, &b) in out_row.iter_mut().zip(rhs_row) {
                    *o += a * b;
                }
            }
        }
        Ok(out)
    }

    /// Matrix–vector product `self * v`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `v.len() != ncols()`.
    pub fn matvec(&self, v: &[f64]) -> Result<Vec<f64>> {
        if v.len() != self.cols {
            return Err(LinalgError::DimensionMismatch(format!(
                "matvec: matrix is {}x{} but vector has length {}",
                self.rows,
                self.cols,
                v.len()
            )));
        }
        Ok(self
            .rows_iter()
            .map(|r| r.iter().zip(v).map(|(a, b)| a * b).sum())
            .collect())
    }

    /// Element-wise sum `self + rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if shapes differ.
    pub fn add(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.shape() != rhs.shape() {
            return Err(LinalgError::DimensionMismatch(format!(
                "add: {}x{} vs {}x{}",
                self.rows, self.cols, rhs.rows, rhs.cols
            )));
        }
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a + b)
            .collect();
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// Element-wise difference `self - rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if shapes differ.
    pub fn sub(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.shape() != rhs.shape() {
            return Err(LinalgError::DimensionMismatch(format!(
                "sub: {}x{} vs {}x{}",
                self.rows, self.cols, rhs.rows, rhs.cols
            )));
        }
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a - b)
            .collect();
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// Returns `self` scaled by `s`.
    pub fn scale(&self, s: f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|x| x * s).collect(),
        }
    }

    /// Frobenius norm (square root of the sum of squared entries).
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Maximum absolute entry, or 0.0 for an empty matrix.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0f64, |m, &x| m.max(x.abs()))
    }

    /// `true` if every entry is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    /// `true` if the matrix is square and `|a_ij - a_ji| <= tol` everywhere.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if self.rows != self.cols {
            return false;
        }
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                if (self[(i, j)] - self[(j, i)]).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Appends a row at the bottom of the matrix.
    ///
    /// A `0 x cols` matrix (e.g. from [`Matrix::zeros`]) grows into a
    /// `1 x cols` one, which is how incremental stores build matrices
    /// without a transient `Vec<Vec<f64>>`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `row.len() != ncols()`.
    pub fn push_row(&mut self, row: &[f64]) -> Result<()> {
        self.insert_row(self.rows, row)
    }

    /// Reserves capacity for at least `additional` more rows, so a chunk
    /// of known size appended via [`Matrix::push_row`] performs at most
    /// one reallocation instead of amortized doubling.
    pub fn reserve_rows(&mut self, additional: usize) {
        self.data.reserve(additional.saturating_mul(self.cols));
    }

    /// Inserts a row before index `at`, shifting later rows down.
    /// `at == nrows()` appends.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `row.len() != ncols()`
    /// and [`LinalgError::InvalidParameter`] if `at > nrows()`.
    pub fn insert_row(&mut self, at: usize, row: &[f64]) -> Result<()> {
        if row.len() != self.cols {
            return Err(LinalgError::DimensionMismatch(format!(
                "insert_row: row of length {} into a matrix with {} columns",
                row.len(),
                self.cols
            )));
        }
        if at > self.rows {
            return Err(LinalgError::InvalidParameter(format!(
                "insert_row: index {at} out of bounds for {} rows",
                self.rows
            )));
        }
        self.data
            .splice(at * self.cols..at * self.cols, row.iter().copied());
        self.rows += 1;
        Ok(())
    }

    /// Removes the row at index `at`, shifting later rows up.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidParameter`] if `at >= nrows()`.
    pub fn remove_row(&mut self, at: usize) -> Result<()> {
        if at >= self.rows {
            return Err(LinalgError::InvalidParameter(format!(
                "remove_row: index {at} out of bounds for {} rows",
                self.rows
            )));
        }
        self.data.drain(at * self.cols..(at + 1) * self.cols);
        self.rows -= 1;
        Ok(())
    }

    /// Extracts the sub-matrix consisting of the given columns, in order.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidParameter`] if any index is out of
    /// bounds and [`LinalgError::Empty`] if `indices` is empty.
    pub fn select_columns(&self, indices: &[usize]) -> Result<Matrix> {
        if indices.is_empty() {
            return Err(LinalgError::Empty("select_columns: no indices".into()));
        }
        if let Some(&bad) = indices.iter().find(|&&j| j >= self.cols) {
            return Err(LinalgError::InvalidParameter(format!(
                "select_columns: index {bad} out of bounds for {} columns",
                self.cols
            )));
        }
        let mut out = Matrix::zeros(self.rows, indices.len());
        for i in 0..self.rows {
            for (oj, &j) in indices.iter().enumerate() {
                out[(i, oj)] = self[(i, j)];
            }
        }
        Ok(out)
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds for {}x{} matrix",
            self.rows,
            self.cols
        );
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds for {}x{} matrix",
            self.rows,
            self.cols
        );
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in self.rows_iter() {
            write!(f, "  ")?;
            for v in r {
                write!(f, "{v:>12.5} ")?;
            }
            writeln!(f)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m22() -> Matrix {
        Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap()
    }

    #[test]
    fn zeros_and_identity() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.shape(), (2, 3));
        assert!(z.as_slice().iter().all(|&x| x == 0.0));
        let i = Matrix::identity(3);
        assert_eq!(i[(1, 1)], 1.0);
        assert_eq!(i[(1, 2)], 0.0);
    }

    #[test]
    fn from_rows_rejects_ragged() {
        let e = Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]);
        assert!(matches!(e, Err(LinalgError::DimensionMismatch(_))));
    }

    #[test]
    fn from_rows_rejects_empty() {
        assert!(matches!(Matrix::from_rows(&[]), Err(LinalgError::Empty(_))));
        assert!(matches!(
            Matrix::from_rows(&[vec![]]),
            Err(LinalgError::Empty(_))
        ));
    }

    #[test]
    fn from_vec_checks_length() {
        assert!(Matrix::from_vec(2, 2, vec![1.0; 4]).is_ok());
        assert!(matches!(
            Matrix::from_vec(2, 2, vec![1.0; 3]),
            Err(LinalgError::DimensionMismatch(_))
        ));
    }

    #[test]
    fn transpose_roundtrip() {
        let m = m22();
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose()[(0, 1)], 3.0);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let m = m22();
        let i = Matrix::identity(2);
        assert_eq!(m.matmul(&i).unwrap(), m);
        assert_eq!(i.matmul(&m).unwrap(), m);
    }

    #[test]
    fn matmul_known_product() {
        let a = m22();
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(
            c,
            Matrix::from_rows(&[vec![19.0, 22.0], vec![43.0, 50.0]]).unwrap()
        );
    }

    #[test]
    fn matmul_dimension_check() {
        let a = m22();
        let b = Matrix::zeros(3, 2);
        assert!(matches!(
            a.matmul(&b),
            Err(LinalgError::DimensionMismatch(_))
        ));
    }

    #[test]
    fn matvec_known() {
        let m = m22();
        assert_eq!(m.matvec(&[1.0, 1.0]).unwrap(), vec![3.0, 7.0]);
        assert!(m.matvec(&[1.0]).is_err());
    }

    #[test]
    fn add_sub_scale() {
        let m = m22();
        let s = m.add(&m).unwrap();
        assert_eq!(s, m.scale(2.0));
        assert_eq!(s.sub(&m).unwrap(), m);
        assert!(m.add(&Matrix::zeros(3, 3)).is_err());
    }

    #[test]
    fn frobenius_norm_known() {
        let m = Matrix::from_rows(&[vec![3.0, 0.0], vec![0.0, 4.0]]).unwrap();
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn symmetry_detection() {
        let sym = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 5.0]]).unwrap();
        assert!(sym.is_symmetric(1e-12));
        assert!(!m22().is_symmetric(1e-12));
        assert!(!Matrix::zeros(2, 3).is_symmetric(1e-12));
    }

    #[test]
    fn select_columns_picks_and_validates() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap();
        let s = m.select_columns(&[2, 0]).unwrap();
        assert_eq!(
            s,
            Matrix::from_rows(&[vec![3.0, 1.0], vec![6.0, 4.0]]).unwrap()
        );
        assert!(m.select_columns(&[3]).is_err());
        assert!(m.select_columns(&[]).is_err());
    }

    #[test]
    fn push_and_insert_rows_grow_from_empty() {
        let mut m = Matrix::zeros(0, 2);
        m.push_row(&[3.0, 4.0]).unwrap();
        m.insert_row(0, &[1.0, 2.0]).unwrap();
        m.insert_row(2, &[5.0, 6.0]).unwrap();
        assert_eq!(
            m,
            Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]).unwrap()
        );
        assert!(m.push_row(&[1.0]).is_err());
        assert!(m.insert_row(9, &[0.0, 0.0]).is_err());
    }

    #[test]
    fn remove_row_shifts_up() {
        let mut m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]).unwrap();
        m.remove_row(1).unwrap();
        assert_eq!(
            m,
            Matrix::from_rows(&[vec![1.0, 2.0], vec![5.0, 6.0]]).unwrap()
        );
        assert!(m.remove_row(2).is_err());
    }

    #[test]
    fn row_block_views_are_flat_and_checked() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]).unwrap();
        assert_eq!(m.row_block(0..3), m.as_slice());
        assert_eq!(m.row_block(1..2), m.row(1));
        assert!(m.row_block(2..2).is_empty());
        // Block rows agree with `row` for every chunk decomposition.
        for r in m.row_block(0..3).chunks_exact(2).zip(0..3) {
            assert_eq!(r.0, m.row(r.1));
        }
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn row_block_out_of_bounds_panics() {
        let _ = m22().row_block(1..3);
    }

    #[test]
    fn col_extracts_column() {
        let m = m22();
        assert_eq!(m.col(1), vec![2.0, 4.0]);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!format!("{}", m22()).is_empty());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn index_out_of_bounds_panics() {
        let _ = m22()[(2, 0)];
    }
}
