//! The Replayer: step 4 of the FLARE pipeline (Fig. 4).
//!
//! The Replayer reconstructs a representative scenario on a testbed — in
//! the paper, by re-executing the recorded job commands under Docker; here,
//! through the [`Testbed`] abstraction — and measures performance under a
//! machine configuration. Running each representative under the baseline
//! and under the feature yields the per-representative impact that the
//! estimator aggregates.

use flare_sim::interference::evaluate;
use flare_sim::machine::MachineConfig;
use flare_sim::scenario::Scenario;
use flare_workloads::job::JobName;
use serde::{Deserialize, Serialize};

/// What one testbed run of a scenario reports.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Measurement {
    /// Mean normalized performance over HP instances (`None` if the
    /// scenario has no HP jobs).
    pub hp_perf: Option<f64>,
    /// Mean normalized performance per HP job present in the scenario.
    pub per_job_perf: Vec<(JobName, f64)>,
    /// Total HP MIPS (absolute).
    pub hp_mips: f64,
}

impl Measurement {
    /// Normalized performance of `job` in this measurement, if present.
    pub fn job_perf(&self, job: JobName) -> Option<f64> {
        self.per_job_perf
            .iter()
            .find(|(j, _)| *j == job)
            .map(|&(_, p)| p)
    }
}

/// A load-testing environment able to reconstruct a job colocation under a
/// machine configuration and measure it.
///
/// The paper's testbed is one rack of real machines driven by Docker and
/// client load generators; the default implementation here is the
/// simulator ([`SimTestbed`]). The trait keeps FLARE's estimator agnostic
/// so a physical-testbed implementation could be dropped in.
pub trait Testbed {
    /// Runs `scenario` under `config` and reports the measurement.
    fn run(&self, scenario: &Scenario, config: &MachineConfig) -> Measurement;
}

/// The simulator-backed testbed (the reproduction's default).
#[derive(Debug, Clone, Copy, Default)]
pub struct SimTestbed;

impl Testbed for SimTestbed {
    fn run(&self, scenario: &Scenario, config: &MachineConfig) -> Measurement {
        let perf = evaluate(scenario, config);
        let per_job_perf = JobName::HIGH_PRIORITY
            .iter()
            .filter_map(|&j| perf.job_normalized_perf(j).map(|p| (j, p)))
            .collect();
        Measurement {
            hp_perf: perf.hp_normalized_perf(),
            per_job_perf,
            hp_mips: perf.hp_mips(),
        }
    }
}

/// A testbed that reconstructs scenarios with **calibrated synthetic
/// stressors** instead of the real service stacks (the §5.1 iBench idea):
/// each job is replaced by a load-generator profile whose coarse knobs
/// were dialed to match the job's measured resource behaviour.
///
/// Use when the real services cannot be deployed on the evaluation
/// testbed (licensing, data gravity, stack complexity). Fidelity is
/// bounded by knob quantization — `abl04_proxy_replay` measures the cost.
#[derive(Debug, Clone, Default)]
pub struct ProxyTestbed {
    overrides: std::collections::BTreeMap<JobName, flare_workloads::profile::JobProfile>,
}

impl ProxyTestbed {
    /// A proxy testbed with every catalog job replaced by its calibrated
    /// stressor.
    pub fn calibrated() -> Self {
        let overrides = JobName::ALL
            .iter()
            .map(|&j| (j, flare_workloads::stressor::proxy_profile(j)))
            .collect();
        ProxyTestbed { overrides }
    }

    /// A proxy testbed with explicit per-job profiles; jobs without an
    /// entry fall back to the real catalog profile (mixed replay).
    pub fn with_overrides(
        overrides: std::collections::BTreeMap<JobName, flare_workloads::profile::JobProfile>,
    ) -> Self {
        ProxyTestbed { overrides }
    }
}

impl Testbed for ProxyTestbed {
    fn run(&self, scenario: &Scenario, config: &MachineConfig) -> Measurement {
        let perf = flare_sim::interference::evaluate_with_profiles(scenario, config, &|job| {
            self.overrides
                .get(&job)
                .cloned()
                .unwrap_or_else(|| flare_workloads::catalog::profile(job))
        });
        let per_job_perf = JobName::HIGH_PRIORITY
            .iter()
            .filter_map(|&j| perf.job_normalized_perf(j).map(|p| (j, p)))
            .collect();
        Measurement {
            hp_perf: perf.hp_normalized_perf(),
            per_job_perf,
            hp_mips: perf.hp_mips(),
        }
    }
}

/// Impact of a feature on one scenario: the paper's "MIPS reduction (%)"
/// (positive = the feature slowed HP jobs down).
pub fn mips_reduction_pct(baseline_perf: f64, feature_perf: f64) -> f64 {
    if baseline_perf <= 0.0 {
        return 0.0;
    }
    (baseline_perf - feature_perf) / baseline_perf * 100.0
}

/// Replays one scenario under baseline and feature configs and returns the
/// all-HP-job MIPS reduction, or `None` if the scenario has no HP jobs.
pub fn replay_impact<T: Testbed>(
    testbed: &T,
    scenario: &Scenario,
    baseline: &MachineConfig,
    feature: &MachineConfig,
) -> Option<f64> {
    let b = testbed.run(scenario, baseline).hp_perf?;
    let f = testbed.run(scenario, feature).hp_perf?;
    Some(mips_reduction_pct(b, f))
}

/// Replays one scenario and returns the MIPS reduction of a specific job,
/// or `None` if the job is absent.
pub fn replay_job_impact<T: Testbed>(
    testbed: &T,
    scenario: &Scenario,
    job: JobName,
    baseline: &MachineConfig,
    feature: &MachineConfig,
) -> Option<f64> {
    let b = testbed.run(scenario, baseline).job_perf(job)?;
    let f = testbed.run(scenario, feature).job_perf(job)?;
    Some(mips_reduction_pct(b, f))
}

#[cfg(test)]
mod tests {
    use super::*;
    use flare_sim::feature::Feature;
    use flare_sim::machine::MachineShape;

    fn baseline() -> MachineConfig {
        MachineShape::default_shape().baseline_config()
    }

    #[test]
    fn sim_testbed_reports_hp_only() {
        let s = Scenario::from_counts([(JobName::DataCaching, 2), (JobName::Mcf, 3)]);
        let m = SimTestbed.run(&s, &baseline());
        assert!(m.hp_perf.is_some());
        assert_eq!(m.per_job_perf.len(), 1);
        assert!(m.job_perf(JobName::DataCaching).is_some());
        assert!(m.job_perf(JobName::Mcf).is_none()); // LP jobs unmanaged
    }

    #[test]
    fn lp_only_scenario_measures_nothing() {
        let s = Scenario::from_counts([(JobName::Sjeng, 2)]);
        let m = SimTestbed.run(&s, &baseline());
        assert_eq!(m.hp_perf, None);
        assert!(m.per_job_perf.is_empty());
        assert_eq!(m.hp_mips, 0.0);
    }

    #[test]
    fn mips_reduction_math() {
        assert!((mips_reduction_pct(1.0, 0.9) - 10.0).abs() < 1e-9);
        assert_eq!(mips_reduction_pct(0.0, 0.5), 0.0);
        assert!(mips_reduction_pct(0.8, 0.9) < 0.0); // improvements are negative
    }

    #[test]
    fn replay_impact_positive_for_capability_reducing_features() {
        let b = baseline();
        let f2 = Feature::paper_feature2().apply(&b);
        let s = Scenario::from_counts([(JobName::DataAnalytics, 4), (JobName::Perlbench, 4)]);
        let impact = replay_impact(&SimTestbed, &s, &b, &f2).unwrap();
        assert!(impact > 5.0, "DVFS cap should cost >5%: {impact}");
        assert!(impact < 50.0);
    }

    #[test]
    fn replay_job_impact_only_for_present_jobs() {
        let b = baseline();
        let f1 = Feature::paper_feature1().apply(&b);
        let s = Scenario::from_counts([(JobName::GraphAnalytics, 4), (JobName::Mcf, 4)]);
        assert!(replay_job_impact(&SimTestbed, &s, JobName::GraphAnalytics, &b, &f1).is_some());
        assert!(replay_job_impact(&SimTestbed, &s, JobName::WebSearch, &b, &f1).is_none());
    }

    #[test]
    fn proxy_testbed_tracks_real_replay_direction() {
        let b = baseline();
        let f1 = Feature::paper_feature1().apply(&b);
        let s = Scenario::from_counts([
            (JobName::GraphAnalytics, 3),
            (JobName::InMemoryAnalytics, 3),
            (JobName::Mcf, 4),
        ]);
        let real = replay_impact(&SimTestbed, &s, &b, &f1).unwrap();
        let proxy = replay_impact(&ProxyTestbed::calibrated(), &s, &b, &f1).unwrap();
        // Same sign and same order of magnitude; not exact (quantized knobs).
        assert!(proxy > 0.0, "proxy should see the cache cut: {proxy}");
        assert!(
            (proxy - real).abs() < real.max(5.0),
            "proxy {proxy}% should be within ~2x of real {real}%"
        );
    }

    #[test]
    fn proxy_overrides_fall_back_to_catalog() {
        let b = baseline();
        let empty = ProxyTestbed::with_overrides(Default::default());
        let s = Scenario::from_counts([(JobName::DataCaching, 2)]);
        let m_proxy = empty.run(&s, &b);
        let m_real = SimTestbed.run(&s, &b);
        assert_eq!(m_proxy, m_real, "no overrides == real replay");
    }

    #[test]
    fn replay_impact_none_without_hp() {
        let b = baseline();
        let f1 = Feature::paper_feature1().apply(&b);
        let s = Scenario::from_counts([(JobName::Libquantum, 4)]);
        assert!(replay_impact(&SimTestbed, &s, &b, &f1).is_none());
    }
}
