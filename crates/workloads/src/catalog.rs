//! The job catalog: a latent [`JobProfile`] for each of Table 3's jobs.
//!
//! Parameter values are synthetic but calibrated to the qualitative
//! characterizations of CloudSuite (Ferdman et al., ASPLOS'12) and SPEC
//! CPU2006 (Phansalkar et al., ISCA'07) the paper builds on:
//!
//! - memcached (DC) and media streaming (MS) are network/latency bound with
//!   small cache footprints;
//! - Spark analytics (GA, IA) and Cassandra (DS) have multi-MB working sets
//!   and real bandwidth appetites;
//! - web search (WSC) and web serving (WSV) are frontend-bound with large
//!   instruction footprints;
//! - among the SPEC LP jobs, `mcf`/`omnetpp` are memory-latency bound with
//!   huge working sets, `libquantum` is a bandwidth streamer, and
//!   `sjeng`/`perlbench` are core-bound.

use crate::job::JobName;
use crate::profile::JobProfile;

/// The latent profile of one 4-vCPU instance of `job`.
///
/// # Examples
///
/// ```
/// use flare_workloads::{catalog, job::JobName};
///
/// let dc = catalog::profile(JobName::DataCaching);
/// let mcf = catalog::profile(JobName::Mcf);
/// // memcached's footprint is tiny next to mcf's.
/// assert!(dc.working_set_mb < mcf.working_set_mb);
/// ```
pub fn profile(job: JobName) -> JobProfile {
    match job {
        JobName::DataAnalytics => JobProfile {
            inherent_mips: 6000.0,
            working_set_mb: 6.0,
            miss_curve_alpha: 0.15,
            base_llc_mpki: 6.0,
            base_l2_mpki: 6.0,
            base_l1d_mpki: 25.0,
            base_l1i_mpki: 4.0,
            mem_bw_gbps: 2.8,
            latency_sensitivity: 0.15,
            cpu_bound_fraction: 0.60,
            smt_friendliness: 0.72,
            cpu_util: 0.85,
            frontend_bound: 0.22,
            bad_speculation: 0.06,
            branch_mpki: 4.0,
            itlb_mpki: 0.30,
            dtlb_mpki: 1.2,
            alu_stall_pct: 0.12,
            div_stall_pct: 0.02,
            disk_read_mbps: 80.0,
            disk_write_mbps: 40.0,
            net_rx_mbps: 5.0,
            net_tx_mbps: 5.0,
            rss_gb: 10.0,
            syscalls_ps: 2.0e4,
        },
        JobName::DataCaching => JobProfile {
            inherent_mips: 3500.0,
            working_set_mb: 3.0,
            miss_curve_alpha: 0.50,
            base_llc_mpki: 0.8,
            base_l2_mpki: 5.0,
            base_l1d_mpki: 30.0,
            base_l1i_mpki: 6.0,
            mem_bw_gbps: 1.0,
            latency_sensitivity: 0.85,
            cpu_bound_fraction: 0.35,
            smt_friendliness: 0.80,
            cpu_util: 0.60,
            frontend_bound: 0.30,
            bad_speculation: 0.04,
            branch_mpki: 3.0,
            itlb_mpki: 0.50,
            dtlb_mpki: 2.0,
            alu_stall_pct: 0.05,
            div_stall_pct: 0.01,
            disk_read_mbps: 0.5,
            disk_write_mbps: 0.5,
            net_rx_mbps: 120.0,
            net_tx_mbps: 120.0,
            rss_gb: 4.5,
            syscalls_ps: 8.0e4,
        },
        JobName::DataServing => JobProfile {
            inherent_mips: 4500.0,
            working_set_mb: 10.0,
            miss_curve_alpha: 0.75,
            base_llc_mpki: 2.0,
            base_l2_mpki: 7.0,
            base_l1d_mpki: 28.0,
            base_l1i_mpki: 7.0,
            mem_bw_gbps: 2.5,
            latency_sensitivity: 0.35,
            cpu_bound_fraction: 0.50,
            smt_friendliness: 0.70,
            cpu_util: 0.75,
            frontend_bound: 0.28,
            bad_speculation: 0.05,
            branch_mpki: 5.0,
            itlb_mpki: 0.60,
            dtlb_mpki: 2.5,
            alu_stall_pct: 0.10,
            div_stall_pct: 0.02,
            disk_read_mbps: 60.0,
            disk_write_mbps: 90.0,
            net_rx_mbps: 30.0,
            net_tx_mbps: 30.0,
            rss_gb: 14.0,
            syscalls_ps: 5.0e4,
        },
        JobName::GraphAnalytics => JobProfile {
            inherent_mips: 5000.0,
            working_set_mb: 18.0,
            miss_curve_alpha: 0.95,
            base_llc_mpki: 3.5,
            base_l2_mpki: 9.0,
            base_l1d_mpki: 32.0,
            base_l1i_mpki: 3.0,
            mem_bw_gbps: 5.0,
            latency_sensitivity: 0.70,
            cpu_bound_fraction: 0.50,
            smt_friendliness: 0.60,
            cpu_util: 0.90,
            frontend_bound: 0.15,
            bad_speculation: 0.05,
            branch_mpki: 6.0,
            itlb_mpki: 0.20,
            dtlb_mpki: 3.0,
            alu_stall_pct: 0.15,
            div_stall_pct: 0.03,
            disk_read_mbps: 10.0,
            disk_write_mbps: 5.0,
            net_rx_mbps: 8.0,
            net_tx_mbps: 8.0,
            rss_gb: 4.0,
            syscalls_ps: 1.5e4,
        },
        JobName::InMemoryAnalytics => JobProfile {
            inherent_mips: 5500.0,
            working_set_mb: 14.0,
            miss_curve_alpha: 0.90,
            base_llc_mpki: 2.8,
            base_l2_mpki: 8.0,
            base_l1d_mpki: 30.0,
            base_l1i_mpki: 3.0,
            mem_bw_gbps: 4.2,
            latency_sensitivity: 0.65,
            cpu_bound_fraction: 0.55,
            smt_friendliness: 0.62,
            cpu_util: 0.92,
            frontend_bound: 0.14,
            bad_speculation: 0.05,
            branch_mpki: 5.0,
            itlb_mpki: 0.20,
            dtlb_mpki: 2.8,
            alu_stall_pct: 0.18,
            div_stall_pct: 0.04,
            disk_read_mbps: 8.0,
            disk_write_mbps: 4.0,
            net_rx_mbps: 6.0,
            net_tx_mbps: 6.0,
            rss_gb: 4.0,
            syscalls_ps: 1.2e4,
        },
        JobName::MediaStreaming => JobProfile {
            inherent_mips: 4000.0,
            working_set_mb: 2.5,
            miss_curve_alpha: 0.15,
            base_llc_mpki: 6.5,
            base_l2_mpki: 8.0,
            base_l1d_mpki: 18.0,
            base_l1i_mpki: 8.0,
            mem_bw_gbps: 3.0,
            latency_sensitivity: 0.10,
            cpu_bound_fraction: 0.40,
            smt_friendliness: 0.82,
            cpu_util: 0.55,
            frontend_bound: 0.35,
            bad_speculation: 0.03,
            branch_mpki: 2.5,
            itlb_mpki: 0.80,
            dtlb_mpki: 1.0,
            alu_stall_pct: 0.04,
            div_stall_pct: 0.01,
            disk_read_mbps: 150.0,
            disk_write_mbps: 2.0,
            net_rx_mbps: 200.0,
            net_tx_mbps: 250.0,
            rss_gb: 3.0,
            syscalls_ps: 9.0e4,
        },
        JobName::WebSearch => JobProfile {
            inherent_mips: 4200.0,
            working_set_mb: 9.0,
            miss_curve_alpha: 0.80,
            base_llc_mpki: 1.1,
            base_l2_mpki: 6.5,
            base_l1d_mpki: 26.0,
            base_l1i_mpki: 10.0,
            mem_bw_gbps: 1.4,
            latency_sensitivity: 0.85,
            cpu_bound_fraction: 0.50,
            smt_friendliness: 0.68,
            cpu_util: 0.70,
            frontend_bound: 0.40,
            bad_speculation: 0.07,
            branch_mpki: 7.0,
            itlb_mpki: 1.20,
            dtlb_mpki: 1.8,
            alu_stall_pct: 0.08,
            div_stall_pct: 0.02,
            disk_read_mbps: 20.0,
            disk_write_mbps: 2.0,
            net_rx_mbps: 15.0,
            net_tx_mbps: 40.0,
            rss_gb: 12.0,
            syscalls_ps: 4.0e4,
        },
        JobName::WebServing => JobProfile {
            inherent_mips: 3800.0,
            working_set_mb: 5.0,
            miss_curve_alpha: 0.65,
            base_llc_mpki: 1.0,
            base_l2_mpki: 5.5,
            base_l1d_mpki: 27.0,
            base_l1i_mpki: 9.0,
            mem_bw_gbps: 1.3,
            latency_sensitivity: 0.50,
            cpu_bound_fraction: 0.45,
            smt_friendliness: 0.75,
            cpu_util: 0.65,
            frontend_bound: 0.33,
            bad_speculation: 0.08,
            branch_mpki: 6.5,
            itlb_mpki: 1.00,
            dtlb_mpki: 2.2,
            alu_stall_pct: 0.07,
            div_stall_pct: 0.02,
            disk_read_mbps: 25.0,
            disk_write_mbps: 15.0,
            net_rx_mbps: 60.0,
            net_tx_mbps: 80.0,
            rss_gb: 6.0,
            syscalls_ps: 7.0e4,
        },
        JobName::Perlbench => JobProfile {
            inherent_mips: 7000.0,
            working_set_mb: 2.0,
            miss_curve_alpha: 0.50,
            base_llc_mpki: 0.3,
            base_l2_mpki: 2.0,
            base_l1d_mpki: 15.0,
            base_l1i_mpki: 3.0,
            mem_bw_gbps: 0.4,
            latency_sensitivity: 0.30,
            cpu_bound_fraction: 0.85,
            smt_friendliness: 0.65,
            cpu_util: 1.0,
            frontend_bound: 0.18,
            bad_speculation: 0.09,
            branch_mpki: 8.0,
            itlb_mpki: 0.15,
            dtlb_mpki: 0.8,
            alu_stall_pct: 0.20,
            div_stall_pct: 0.03,
            disk_read_mbps: 0.1,
            disk_write_mbps: 0.1,
            net_rx_mbps: 0.0,
            net_tx_mbps: 0.0,
            rss_gb: 2.0,
            syscalls_ps: 1.0e3,
        },
        JobName::Sjeng => JobProfile {
            inherent_mips: 7500.0,
            working_set_mb: 1.5,
            miss_curve_alpha: 0.40,
            base_llc_mpki: 0.25,
            base_l2_mpki: 1.5,
            base_l1d_mpki: 12.0,
            base_l1i_mpki: 1.0,
            mem_bw_gbps: 0.3,
            latency_sensitivity: 0.25,
            cpu_bound_fraction: 0.90,
            smt_friendliness: 0.60,
            cpu_util: 1.0,
            frontend_bound: 0.12,
            bad_speculation: 0.10,
            branch_mpki: 10.0,
            itlb_mpki: 0.05,
            dtlb_mpki: 0.6,
            alu_stall_pct: 0.25,
            div_stall_pct: 0.02,
            disk_read_mbps: 0.1,
            disk_write_mbps: 0.1,
            net_rx_mbps: 0.0,
            net_tx_mbps: 0.0,
            rss_gb: 1.5,
            syscalls_ps: 1.0e3,
        },
        JobName::Libquantum => JobProfile {
            inherent_mips: 5200.0,
            working_set_mb: 28.0,
            miss_curve_alpha: 0.30,
            base_llc_mpki: 8.0,
            base_l2_mpki: 10.0,
            base_l1d_mpki: 35.0,
            base_l1i_mpki: 0.5,
            mem_bw_gbps: 10.0,
            latency_sensitivity: 0.35,
            cpu_bound_fraction: 0.30,
            smt_friendliness: 0.85,
            cpu_util: 1.0,
            frontend_bound: 0.05,
            bad_speculation: 0.02,
            branch_mpki: 1.0,
            itlb_mpki: 0.02,
            dtlb_mpki: 1.5,
            alu_stall_pct: 0.05,
            div_stall_pct: 0.01,
            disk_read_mbps: 0.1,
            disk_write_mbps: 0.1,
            net_rx_mbps: 0.0,
            net_tx_mbps: 0.0,
            rss_gb: 1.0,
            syscalls_ps: 5.0e2,
        },
        JobName::Xalancbmk => JobProfile {
            inherent_mips: 6200.0,
            working_set_mb: 4.0,
            miss_curve_alpha: 0.70,
            base_llc_mpki: 1.8,
            base_l2_mpki: 6.0,
            base_l1d_mpki: 30.0,
            base_l1i_mpki: 2.0,
            mem_bw_gbps: 2.2,
            latency_sensitivity: 0.50,
            cpu_bound_fraction: 0.60,
            smt_friendliness: 0.70,
            cpu_util: 1.0,
            frontend_bound: 0.20,
            bad_speculation: 0.07,
            branch_mpki: 9.0,
            itlb_mpki: 0.30,
            dtlb_mpki: 3.5,
            alu_stall_pct: 0.10,
            div_stall_pct: 0.02,
            disk_read_mbps: 0.1,
            disk_write_mbps: 0.1,
            net_rx_mbps: 0.0,
            net_tx_mbps: 0.0,
            rss_gb: 2.0,
            syscalls_ps: 1.0e3,
        },
        JobName::Omnetpp => JobProfile {
            inherent_mips: 4800.0,
            working_set_mb: 12.0,
            miss_curve_alpha: 0.85,
            base_llc_mpki: 4.5,
            base_l2_mpki: 8.0,
            base_l1d_mpki: 28.0,
            base_l1i_mpki: 1.5,
            mem_bw_gbps: 4.0,
            latency_sensitivity: 0.80,
            cpu_bound_fraction: 0.45,
            smt_friendliness: 0.72,
            cpu_util: 1.0,
            frontend_bound: 0.10,
            bad_speculation: 0.06,
            branch_mpki: 7.0,
            itlb_mpki: 0.10,
            dtlb_mpki: 4.0,
            alu_stall_pct: 0.08,
            div_stall_pct: 0.01,
            disk_read_mbps: 0.1,
            disk_write_mbps: 0.1,
            net_rx_mbps: 0.0,
            net_tx_mbps: 0.0,
            rss_gb: 2.0,
            syscalls_ps: 1.0e3,
        },
        JobName::Mcf => JobProfile {
            inherent_mips: 3000.0,
            working_set_mb: 25.0,
            miss_curve_alpha: 0.90,
            base_llc_mpki: 12.0,
            base_l2_mpki: 16.0,
            base_l1d_mpki: 40.0,
            base_l1i_mpki: 0.8,
            mem_bw_gbps: 6.5,
            latency_sensitivity: 0.90,
            cpu_bound_fraction: 0.25,
            smt_friendliness: 0.80,
            cpu_util: 1.0,
            frontend_bound: 0.06,
            bad_speculation: 0.04,
            branch_mpki: 12.0,
            itlb_mpki: 0.05,
            dtlb_mpki: 6.0,
            alu_stall_pct: 0.04,
            div_stall_pct: 0.01,
            disk_read_mbps: 0.1,
            disk_write_mbps: 0.1,
            net_rx_mbps: 0.0,
            net_tx_mbps: 0.0,
            rss_gb: 3.0,
            syscalls_ps: 8.0e2,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobName;

    #[test]
    fn every_profile_is_valid() {
        for &j in JobName::ALL {
            assert!(profile(j).is_valid(), "{j} profile invalid");
        }
    }

    #[test]
    fn profiles_are_distinct() {
        for (i, &a) in JobName::ALL.iter().enumerate() {
            for &b in &JobName::ALL[i + 1..] {
                assert_ne!(profile(a), profile(b), "{a} and {b} share a profile");
            }
        }
    }

    #[test]
    fn qualitative_signatures_hold() {
        let dc = profile(JobName::DataCaching);
        let ga = profile(JobName::GraphAnalytics);
        let mcf = profile(JobName::Mcf);
        let sjeng = profile(JobName::Sjeng);
        let libq = profile(JobName::Libquantum);
        let wsc = profile(JobName::WebSearch);

        // Analytics have bigger cache appetites than caching.
        assert!(ga.working_set_mb > 3.0 * dc.working_set_mb);
        // mcf is the classic latency-bound monster.
        assert!(mcf.latency_sensitivity > 0.8 && mcf.base_llc_mpki > 10.0);
        // sjeng barely touches memory.
        assert!(sjeng.mem_bw_gbps < 0.5);
        // libquantum streams: bandwidth-heavy but latency-tolerant.
        assert!(libq.mem_bw_gbps > 8.0 && libq.latency_sensitivity < 0.5);
        // Web search is the frontend-bound one (scale-out ISCA'12 insight).
        assert!(wsc.frontend_bound >= 0.35 && wsc.base_l1i_mpki >= 8.0);
    }

    #[test]
    fn network_services_have_network_traffic() {
        for j in [
            JobName::DataCaching,
            JobName::MediaStreaming,
            JobName::WebServing,
        ] {
            assert!(
                profile(j).net_rx_mbps > 10.0,
                "{j} should be network-active"
            );
        }
        for j in JobName::LOW_PRIORITY {
            assert!(profile(*j).net_rx_mbps < 0.1, "{j} is batch, no network");
        }
    }
}
