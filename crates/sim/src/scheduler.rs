//! The datacenter job scheduler (§5.1).
//!
//! "The scheduler greedily runs a job in the datacenter machine with the
//! least resource utilization for load-balancing purposes. As we do not
//! overcommit the resources, saturation of the machines would result in a
//! denial of scheduling requests."
//!
//! An alternative utilization-packing policy is provided for the §5.6
//! scheduler-change workflow.

use crate::machine::MachineConfig;
use flare_workloads::job::JobInstance;
use serde::{Deserialize, Serialize};

/// Placement policy for incoming containers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SchedulerPolicy {
    /// The paper's default: place on the least-utilized machine
    /// (load balancing / spreading).
    LeastUtilized,
    /// Bin-packing alternative for §5.6: place on the *most* utilized
    /// machine that still fits, consolidating load.
    MostUtilized,
}

/// A running container with its departure time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RunningContainer {
    /// The placed instance.
    pub instance: JobInstance,
    /// Simulation time (minutes) at which the container exits.
    pub ends_at_min: f64,
}

/// One schedulable machine: its config and current containers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineState {
    /// Runtime configuration (capacity source).
    pub config: MachineConfig,
    /// Containers currently running.
    pub containers: Vec<RunningContainer>,
}

impl MachineState {
    /// An empty machine with the given config.
    pub fn new(config: MachineConfig) -> Self {
        MachineState {
            config,
            containers: Vec::new(),
        }
    }

    /// vCPUs currently allocated to containers.
    pub fn allocated_vcpus(&self) -> u32 {
        self.containers.iter().map(|c| c.instance.vcpus).sum()
    }

    /// Allocation fraction of schedulable vCPUs.
    pub fn utilization(&self) -> f64 {
        let cap = self.config.schedulable_vcpus();
        if cap == 0 {
            return 1.0;
        }
        self.allocated_vcpus() as f64 / cap as f64
    }

    /// `true` if `instance` fits without overcommit.
    pub fn fits(&self, instance: &JobInstance) -> bool {
        self.allocated_vcpus() + instance.vcpus <= self.config.schedulable_vcpus()
    }

    /// Removes containers whose end time has passed, returning how many
    /// exited.
    pub fn expire(&mut self, now_min: f64) -> usize {
        let before = self.containers.len();
        self.containers.retain(|c| c.ends_at_min > now_min);
        before - self.containers.len()
    }

    /// The current job-colocation scenario on this machine.
    pub fn scenario(&self) -> crate::scenario::Scenario {
        let instances: Vec<JobInstance> = self.containers.iter().map(|c| c.instance).collect();
        crate::scenario::Scenario::from_instances(&instances)
    }
}

/// Outcome of a scheduling request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Placement {
    /// The container was placed on machine `machine_index`.
    Placed {
        /// Index of the chosen machine in the fleet.
        machine_index: usize,
    },
    /// Every machine was saturated — the request is denied (the paper's
    /// no-overcommit rule).
    Denied,
}

/// The fleet scheduler.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scheduler {
    policy: SchedulerPolicy,
}

impl Scheduler {
    /// A scheduler with the given policy.
    pub fn new(policy: SchedulerPolicy) -> Self {
        Scheduler { policy }
    }

    /// The active policy.
    pub fn policy(&self) -> SchedulerPolicy {
        self.policy
    }

    /// Attempts to place `instance` on one of `machines`, mutating the
    /// chosen machine's container list on success.
    pub fn place(
        &self,
        machines: &mut [MachineState],
        instance: JobInstance,
        ends_at_min: f64,
    ) -> Placement {
        let candidate = match self.policy {
            SchedulerPolicy::LeastUtilized => {
                // Primary criterion: least utilization (the paper's rule).
                // Tie-break: prefer a machine that already hosts this job
                // (container-image affinity), which keeps per-machine job
                // mixes repetitive the way production placements are.
                let min_util = machines
                    .iter()
                    .filter(|m| m.fits(&instance))
                    .map(|m| m.utilization())
                    .fold(f64::INFINITY, f64::min);
                // Machines within one container slot of the minimum count
                // as equally loaded for affinity purposes.
                let slot = JobInstance::CONTAINER_VCPUS as f64
                    / machines
                        .first()
                        .map(|m| m.config.schedulable_vcpus().max(1) as f64)
                        .unwrap_or(1.0);
                machines
                    .iter()
                    .enumerate()
                    .filter(|(_, m)| {
                        m.fits(&instance) && m.utilization() <= min_util + slot + 1e-12
                    })
                    .max_by_key(|(i, m)| {
                        let same_job = m
                            .containers
                            .iter()
                            .filter(|c| c.instance.job == instance.job)
                            .count();
                        // Fewest distinct jobs as a secondary affinity pull;
                        // negative index keeps the choice deterministic.
                        let distinct = m.scenario().iter().count();
                        (same_job, usize::MAX - distinct, usize::MAX - *i)
                    })
                    .map(|(i, _)| i)
            }
            SchedulerPolicy::MostUtilized => machines
                .iter()
                .enumerate()
                .filter(|(_, m)| m.fits(&instance))
                .max_by(|a, b| {
                    a.1.utilization()
                        .partial_cmp(&b.1.utilization())
                        .expect("finite utilization")
                })
                .map(|(i, _)| i),
        };
        match candidate {
            Some(i) => {
                machines[i].containers.push(RunningContainer {
                    instance,
                    ends_at_min,
                });
                Placement::Placed { machine_index: i }
            }
            None => Placement::Denied,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::MachineShape;
    use flare_workloads::job::JobName;

    fn fleet(n: usize) -> Vec<MachineState> {
        (0..n)
            .map(|_| MachineState::new(MachineShape::default_shape().baseline_config()))
            .collect()
    }

    fn inst() -> JobInstance {
        JobInstance::new(JobName::DataCaching)
    }

    #[test]
    fn least_utilized_spreads_distinct_jobs() {
        let mut machines = fleet(3);
        let sched = Scheduler::new(SchedulerPolicy::LeastUtilized);
        for job in [
            JobName::DataCaching,
            JobName::GraphAnalytics,
            JobName::WebSearch,
        ] {
            sched.place(&mut machines, JobInstance::new(job), 100.0);
        }
        for m in &machines {
            assert_eq!(
                m.containers.len(),
                1,
                "distinct jobs spread one per machine"
            );
        }
    }

    #[test]
    fn same_job_consolidates_within_band() {
        // Affinity tie-break: instances of the same job pack onto the same
        // machine while it stays within one container slot of the minimum.
        let mut machines = fleet(3);
        let sched = Scheduler::new(SchedulerPolicy::LeastUtilized);
        sched.place(&mut machines, inst(), 100.0);
        sched.place(&mut machines, inst(), 100.0);
        let counts: Vec<usize> = machines.iter().map(|m| m.containers.len()).collect();
        assert!(counts.contains(&2), "same job should co-locate: {counts:?}");
    }

    #[test]
    fn utilization_gap_overrides_affinity() {
        // Once a machine is clearly more loaded than the band allows, the
        // least-utilized rule wins even against job affinity.
        let mut machines = fleet(2);
        let sched = Scheduler::new(SchedulerPolicy::LeastUtilized);
        for _ in 0..3 {
            sched.place(&mut machines, inst(), 100.0);
        }
        // 3 same-type placements on 2 machines: the third must spill.
        let counts: Vec<usize> = machines.iter().map(|m| m.containers.len()).collect();
        assert_eq!(counts.iter().sum::<usize>(), 3);
        assert!(counts.iter().all(|&c| c >= 1), "spill expected: {counts:?}");
    }

    #[test]
    fn most_utilized_packs() {
        let mut machines = fleet(3);
        let sched = Scheduler::new(SchedulerPolicy::MostUtilized);
        for _ in 0..3 {
            sched.place(&mut machines, inst(), 100.0);
        }
        let counts: Vec<usize> = machines.iter().map(|m| m.containers.len()).collect();
        assert_eq!(counts.iter().sum::<usize>(), 3);
        assert_eq!(
            counts.iter().max(),
            Some(&3),
            "packing piles onto one machine"
        );
    }

    #[test]
    fn no_overcommit_denies_when_full() {
        let mut machines = fleet(1);
        let sched = Scheduler::new(SchedulerPolicy::LeastUtilized);
        // 48 vCPUs / 4 = 12 containers fit.
        for i in 0..12 {
            assert!(
                matches!(
                    sched.place(&mut machines, inst(), 100.0),
                    Placement::Placed { .. }
                ),
                "placement {i} should succeed"
            );
        }
        assert_eq!(sched.place(&mut machines, inst(), 100.0), Placement::Denied);
        assert_eq!(machines[0].utilization(), 1.0);
    }

    #[test]
    fn smt_off_config_halves_capacity() {
        let mut shape_cfg = MachineShape::default_shape().baseline_config();
        shape_cfg.smt_enabled = false;
        let mut machines = vec![MachineState::new(shape_cfg)];
        let sched = Scheduler::new(SchedulerPolicy::LeastUtilized);
        let mut placed = 0;
        while matches!(
            sched.place(&mut machines, inst(), 1.0),
            Placement::Placed { .. }
        ) {
            placed += 1;
        }
        assert_eq!(placed, 6); // 24 cores / 4 vCPUs
    }

    #[test]
    fn expiry_frees_capacity() {
        let mut machines = fleet(1);
        let sched = Scheduler::new(SchedulerPolicy::LeastUtilized);
        sched.place(&mut machines, inst(), 50.0);
        sched.place(&mut machines, inst(), 150.0);
        assert_eq!(machines[0].expire(100.0), 1);
        assert_eq!(machines[0].containers.len(), 1);
        assert_eq!(machines[0].allocated_vcpus(), 4);
    }

    #[test]
    fn scenario_snapshot_matches_contents() {
        let mut machines = fleet(1);
        let sched = Scheduler::new(SchedulerPolicy::LeastUtilized);
        sched.place(&mut machines, JobInstance::new(JobName::Mcf), 10.0);
        sched.place(&mut machines, JobInstance::new(JobName::Mcf), 10.0);
        let s = machines[0].scenario();
        assert_eq!(s.instances_of(JobName::Mcf), 2);
    }
}
