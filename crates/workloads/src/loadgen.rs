//! Load-generation models: job durations, diurnal request-rate variation,
//! and the conventional load-testing recipe of §3.1.

use crate::job::{JobInstance, JobName};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Job-duration model of §5.1: "each job runs for at least 30 minutes",
/// with an exponential tail so the corpus sees a wide mix of short- and
/// long-lived containers.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DurationModel {
    /// Minimum duration, minutes (paper: 30).
    pub min_minutes: f64,
    /// Mean of the exponential tail added on top of the minimum, minutes.
    pub mean_extra_minutes: f64,
}

impl Default for DurationModel {
    fn default() -> Self {
        DurationModel {
            min_minutes: 30.0,
            mean_extra_minutes: 60.0,
        }
    }
}

impl DurationModel {
    /// Samples a job duration in minutes.
    ///
    /// # Examples
    ///
    /// ```
    /// use flare_workloads::loadgen::DurationModel;
    /// use rand::SeedableRng;
    ///
    /// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    /// let d = DurationModel::default().sample_minutes(&mut rng);
    /// assert!(d >= 30.0);
    /// ```
    pub fn sample_minutes<R: Rng>(&self, rng: &mut R) -> f64 {
        // Inverse-CDF exponential sampling; guard the log away from 0.
        let u: f64 = rng.gen_range(1e-12..1.0);
        self.min_minutes + self.mean_extra_minutes * (-u.ln())
    }
}

/// Diurnal load pattern: user request rates (and hence how many instances
/// a service needs) swing over the day. Modeled as a raised sinusoid.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DiurnalPattern {
    /// Mean load factor (fraction of peak capacity requested).
    pub mean: f64,
    /// Peak-to-mean swing amplitude.
    pub amplitude: f64,
    /// Phase offset in hours (services peak at different times).
    pub phase_hours: f64,
}

impl DiurnalPattern {
    /// Load factor at `hour` (0–24, wraps), clamped to `[0.05, 1.0]`.
    pub fn load_at(&self, hour: f64) -> f64 {
        let angle = (hour - self.phase_hours) / 24.0 * std::f64::consts::TAU;
        (self.mean + self.amplitude * angle.sin()).clamp(0.05, 1.0)
    }
}

/// Per-service diurnal pattern roughly matching service classes: user-facing
/// services swing hard, analytics are steadier (and often anti-phased,
/// running overnight).
pub fn diurnal_pattern(job: JobName) -> DiurnalPattern {
    match job {
        JobName::DataCaching | JobName::WebServing | JobName::WebSearch => DiurnalPattern {
            mean: 0.6,
            amplitude: 0.3,
            phase_hours: 14.0,
        },
        JobName::MediaStreaming => DiurnalPattern {
            mean: 0.55,
            amplitude: 0.35,
            phase_hours: 20.0,
        },
        JobName::DataServing => DiurnalPattern {
            mean: 0.6,
            amplitude: 0.2,
            phase_hours: 12.0,
        },
        JobName::DataAnalytics | JobName::GraphAnalytics | JobName::InMemoryAnalytics => {
            DiurnalPattern {
                mean: 0.5,
                amplitude: 0.25,
                phase_hours: 2.0, // batch analytics peak overnight
            }
        }
        // LP batch: constant opportunistic pressure.
        _ => DiurnalPattern {
            mean: 0.7,
            amplitude: 0.1,
            phase_hours: 0.0,
        },
    }
}

/// The conventional load-testing recipe of §3.1: "populate instances of
/// each service on a single machine and measure the feature's impact on
/// it". Returns the instance list for one machine with `machine_vcpus`
/// logical CPUs.
///
/// # Examples
///
/// ```
/// use flare_workloads::loadgen::load_test_instances;
/// use flare_workloads::job::JobName;
///
/// let insts = load_test_instances(JobName::WebSearch, 48);
/// assert_eq!(insts.len(), 12); // 48 vCPUs / 4 vCPUs per container
/// assert!(insts.iter().all(|i| i.job == JobName::WebSearch));
/// ```
pub fn load_test_instances(job: JobName, machine_vcpus: u32) -> Vec<JobInstance> {
    let n = (machine_vcpus / JobInstance::CONTAINER_VCPUS).max(1);
    (0..n).map(|_| JobInstance::new(job)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn durations_respect_minimum() {
        let model = DurationModel::default();
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            assert!(model.sample_minutes(&mut rng) >= 30.0);
        }
    }

    #[test]
    fn duration_mean_is_plausible() {
        let model = DurationModel::default();
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let total: f64 = (0..n).map(|_| model.sample_minutes(&mut rng)).sum();
        let mean = total / n as f64;
        // Expected mean = 30 + 60 = 90 minutes.
        assert!((mean - 90.0).abs() < 3.0, "observed mean {mean}");
    }

    #[test]
    fn diurnal_load_bounded_and_periodic() {
        for &j in JobName::ALL {
            let p = diurnal_pattern(j);
            for h in 0..48 {
                let l = p.load_at(h as f64);
                assert!((0.05..=1.0).contains(&l));
            }
            assert!((p.load_at(3.0) - p.load_at(27.0)).abs() < 1e-12);
        }
    }

    #[test]
    fn user_facing_services_swing_more_than_batch() {
        let dc = diurnal_pattern(JobName::DataCaching);
        let lp = diurnal_pattern(JobName::Mcf);
        assert!(dc.amplitude > lp.amplitude);
    }

    #[test]
    fn load_test_fills_machine() {
        let insts = load_test_instances(JobName::DataCaching, 48);
        assert_eq!(insts.len(), 12);
        // Tiny machine still gets one instance.
        assert_eq!(load_test_instances(JobName::DataCaching, 2).len(), 1);
    }
}
