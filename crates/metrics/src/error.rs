//! Error types for the metrics crate.

use std::error::Error;
use std::fmt;

/// Error produced by metric-database and refinement operations.
#[derive(Debug)]
pub enum MetricsError {
    /// A metric vector did not match the schema length.
    SchemaMismatch {
        /// Expected number of metrics (schema length).
        expected: usize,
        /// Observed vector length.
        actual: usize,
    },
    /// A scenario id was not present in the database.
    UnknownScenario(u32),
    /// A scenario id arrived twice through the validating ingest path
    /// (duplicated telemetry records are quarantined, never merged).
    DuplicateScenario(u32),
    /// A record carried a non-finite metric where finiteness is required.
    NonFiniteMetric {
        /// Scenario id of the offending record.
        id: u32,
        /// Index of the first non-finite metric in the schema.
        index: usize,
    },
    /// The database was empty where data was required.
    EmptyDatabase,
    /// A parameter was outside its valid range.
    InvalidParameter(String),
    /// Persistence (I/O or serialization) failed.
    Persistence(String),
    /// An underlying linear-algebra operation failed.
    Linalg(flare_linalg::LinalgError),
}

impl fmt::Display for MetricsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MetricsError::SchemaMismatch { expected, actual } => write!(
                f,
                "metric vector length {actual} does not match schema length {expected}"
            ),
            MetricsError::UnknownScenario(id) => write!(f, "unknown scenario id {id}"),
            MetricsError::DuplicateScenario(id) => {
                write!(f, "duplicate record for scenario id {id}")
            }
            MetricsError::NonFiniteMetric { id, index } => write!(
                f,
                "scenario id {id}: non-finite value for metric index {index}"
            ),
            MetricsError::EmptyDatabase => write!(f, "metric database is empty"),
            MetricsError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            MetricsError::Persistence(msg) => write!(f, "persistence failure: {msg}"),
            MetricsError::Linalg(e) => write!(f, "linear algebra failure: {e}"),
        }
    }
}

impl Error for MetricsError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            MetricsError::Linalg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<flare_linalg::LinalgError> for MetricsError {
    fn from(e: flare_linalg::LinalgError) -> Self {
        MetricsError::Linalg(e)
    }
}

/// Convenience alias for metrics results.
pub type Result<T> = std::result::Result<T, MetricsError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_schema_mismatch() {
        let e = MetricsError::SchemaMismatch {
            expected: 106,
            actual: 4,
        };
        assert!(e.to_string().contains("106"));
        assert!(e.to_string().contains('4'));
    }

    #[test]
    fn linalg_source_chain() {
        let e = MetricsError::from(flare_linalg::LinalgError::Empty("x".into()));
        assert!(e.source().is_some());
    }

    #[test]
    fn error_traits() {
        fn assert_send_sync<T: Send + Sync + std::error::Error>() {}
        assert_send_sync::<MetricsError>();
    }
}
