//! Configuration of the FLARE pipeline.

use crate::replayer::RetryPolicy;
use flare_cluster::hierarchical::Linkage;
use flare_cluster::kmeans::KMeansConfig;
use serde::{Deserialize, Serialize};
use std::path::PathBuf;

/// Which clustering algorithm groups the scenarios (§4.4: "we use K-means
/// clustering ... but alternatives (e.g., hierarchical clustering) can
/// also be applied").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ClusterMethod {
    /// K-means with k-means++ initialization (the paper's default).
    KMeans,
    /// Agglomerative hierarchical clustering cut at the chosen count.
    Hierarchical(Linkage),
}

/// How the representative scenario of each group is selected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum RepresentativeRule {
    /// The scenario nearest the cluster centroid (the paper's rule, §4.4).
    #[default]
    NearestToCentroid,
    /// The cluster medoid: the member minimizing total distance to all
    /// other members. More robust when a cluster is elongated or skewed
    /// (the centroid can sit in a low-density region).
    Medoid,
}

/// How the Analyzer chooses the number of representative groups.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ClusterCountRule {
    /// Use a fixed cluster count (the paper settles on 18 for its
    /// environment after inspecting Fig. 9).
    Fixed(usize),
    /// Sweep candidate counts and apply the SSE-knee + silhouette rule of
    /// §4.4 automatically.
    Sweep {
        /// Minimum candidate count (inclusive, ≥ 2).
        min_k: usize,
        /// Maximum candidate count (inclusive).
        max_k: usize,
        /// Step between candidates.
        step: usize,
    },
}

/// Scale-out knobs of the metric data plane and the clustering tier.
///
/// `shard_rows` is a **layout-only** knob: the sharded columnar store
/// coalesces to the same dense matrix bit-for-bit regardless of shard
/// size, so it is normalized away from stage fingerprints and never
/// invalidates cached artifacts. The remaining fields change *results*
/// above their thresholds (the mini-batch tier trades exactness for a
/// documented SSE tolerance; the silhouette subsample estimates rather
/// than computes) and therefore participate in the cluster-stage
/// fingerprint.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScaleConfig {
    /// Rows per shard of the columnar metric store (bounds the largest
    /// single allocation the ingest path makes).
    pub shard_rows: usize,
    /// Row count above which the cluster stage warm-starts exact Lloyd
    /// iterations from a mini-batch/coreset solution instead of running
    /// k-means++ from scratch. At or below the threshold routing is
    /// byte-identical to the exact path.
    pub tier_threshold: usize,
    /// Mini-batch size of the tier's refinement passes.
    pub minibatch_size: usize,
    /// Largest pairwise-distance cache the cluster-count sweep may
    /// allocate, in bytes; above it silhouettes are estimated on a
    /// seeded subsample.
    pub silhouette_cache_bytes: usize,
    /// Subsample size of the above-cap silhouette estimate (0 = exact).
    pub silhouette_sample: usize,
    /// Cold-shard spill of the featurize data plane. Like `shard_rows`,
    /// a **layout-only** knob: spilling changes where shard bytes live,
    /// never what they are, so it is normalized out of stage
    /// fingerprints. Off by default — the clean path never touches the
    /// filesystem, and at the default the key is omitted from the wire
    /// so existing config/snapshot JSON is byte-identical.
    #[serde(default, skip_serializing_if = "SpillConfig::is_default")]
    pub spill: SpillConfig,
}

impl Default for ScaleConfig {
    fn default() -> Self {
        ScaleConfig {
            shard_rows: 8192,
            tier_threshold: 20_000,
            minibatch_size: 1024,
            silhouette_cache_bytes: 64 << 20,
            silhouette_sample: 4096,
            spill: SpillConfig::default(),
        }
    }
}

/// Cold-shard spill knobs: when enabled, the featurize stage moves the
/// refined metric shards into an LRU-pinned
/// [`ShardStore`](flare_linalg::ShardStore) that writes
/// least-recently-touched shards to a spill directory and faults them
/// back on access, bounding resident featurize memory to
/// `max_resident_shards × shard_rows × d` regardless of corpus size.
///
/// Spilling is byte-transparent: every streaming algorithm reads shards
/// through the same access trait whether they are resident or faulted
/// back, so fits with spill on and off are bit-identical.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpillConfig {
    /// Enables cold-shard spill during featurization.
    #[serde(default)]
    pub enabled: bool,
    /// Spill root directory; `None` (default) uses the OS temp dir. The
    /// store creates a uniquely-named subdirectory and removes it when
    /// the fit completes.
    #[serde(default)]
    pub dir: Option<PathBuf>,
    /// Maximum shards kept resident in memory (≥ 1).
    #[serde(default = "default_max_resident_shards")]
    pub max_resident_shards: usize,
    /// How many shards ahead the background prefetcher faults into
    /// residency while compute runs on the current one (0 disables
    /// readahead). Wall-clock-only: prefetching changes when bytes are
    /// read, never what they are.
    #[serde(default = "default_prefetch_depth")]
    pub prefetch_depth: usize,
}

fn default_max_resident_shards() -> usize {
    4
}

fn default_prefetch_depth() -> usize {
    1
}

impl Default for SpillConfig {
    fn default() -> Self {
        SpillConfig {
            enabled: false,
            dir: None,
            max_resident_shards: default_max_resident_shards(),
            prefetch_depth: default_prefetch_depth(),
        }
    }
}

impl SpillConfig {
    /// `true` when every field is at its default — the serde
    /// skip-at-default gate that keeps spill-off JSON byte-identical to
    /// pre-spill versions.
    pub fn is_default(&self) -> bool {
        *self == SpillConfig::default()
    }
}

/// All tunables of the four-step FLARE pipeline (Fig. 4).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlareConfig {
    /// |Pearson| threshold above which a raw metric is pruned as redundant
    /// during refinement (§4.2).
    pub correlation_threshold: f64,
    /// Cumulative explained-variance target for choosing the number of
    /// principal components (§4.3; the paper uses 0.95 → 18 PCs).
    pub variance_threshold: f64,
    /// Cluster-count selection rule (§4.4).
    pub cluster_count: ClusterCountRule,
    /// Clustering algorithm (§4.4).
    pub cluster_method: ClusterMethod,
    /// Representative-selection rule within each group.
    pub representative_rule: RepresentativeRule,
    /// K-means settings (restarts, iteration budget, seed); ignored when
    /// `cluster_method` is hierarchical.
    pub kmeans: KMeansConfig,
    /// Weight clusters by summed observation counts (`true`, the paper's
    /// "likelihood to observe a scenario") or by scenario counts (`false`).
    pub weight_by_observations: bool,
    /// §5.3 per-job augmentation: keep the per-job colocation-mix columns
    /// (`INSTANCES-*`) in the clustered feature space. The paper predicts
    /// this improves per-job estimates but warns it "would increase the
    /// dimension of the feature space and may deteriorate the clustering
    /// quality" — hence off by default.
    pub per_job_augmentation: bool,
    /// §4.1 temporal enrichment: profile each scenario over this many
    /// load phases and record mean **and** std-dev per metric. `None`
    /// (default) collects averages only, as the paper's main evaluation
    /// does.
    pub temporal_phases: Option<usize>,
    /// Worker-thread budget for the parallel stages of the pipeline
    /// (metric-database profiling, k-means restarts, the cluster-count
    /// sweep). `None` (default) uses the machine's available parallelism;
    /// `Some(1)` runs fully serial. This is a wall-clock knob only: every
    /// setting produces byte-identical results.
    #[serde(default)]
    pub threads: Option<usize>,
    /// Normalize with per-column median and MAD instead of mean and
    /// standard deviation before PCA. Robust to the outlier spikes a
    /// faulty telemetry pipeline injects; off by default so the clean
    /// path matches the paper's z-score exactly.
    #[serde(default)]
    pub robust_normalization: bool,
    /// When set, the Analyzer's repair stage winsorizes each metric
    /// column to `median ± k·MAD(σ-scaled)` with this `k` before
    /// normalization. `None` (default) leaves values untouched.
    #[serde(default)]
    pub winsorize_mad: Option<f64>,
    /// Retry policy for fallible testbed runs during estimation.
    #[serde(default)]
    pub retry: RetryPolicy,
    /// Minimum share of cluster weight that must yield a measurement for
    /// an estimate to be reported; below this floor the estimator returns
    /// [`crate::error::FlareError::ReplayFailed`] instead of silently
    /// extrapolating from the surviving clusters.
    #[serde(default = "default_min_replay_coverage")]
    pub min_replay_coverage: f64,
    /// Scale-out knobs: metric-store shard size, mini-batch clustering
    /// tier, and silhouette cache/subsample limits.
    #[serde(default)]
    pub scale: ScaleConfig,
}

fn default_min_replay_coverage() -> f64 {
    0.5
}

impl Default for FlareConfig {
    fn default() -> Self {
        FlareConfig {
            correlation_threshold: 0.98,
            variance_threshold: 0.95,
            cluster_count: ClusterCountRule::Fixed(18),
            cluster_method: ClusterMethod::KMeans,
            representative_rule: RepresentativeRule::NearestToCentroid,
            kmeans: KMeansConfig::new(18).with_restarts(32),
            weight_by_observations: true,
            per_job_augmentation: false,
            temporal_phases: None,
            threads: None,
            robust_normalization: false,
            winsorize_mad: None,
            retry: RetryPolicy::default(),
            min_replay_coverage: default_min_replay_coverage(),
            scale: ScaleConfig::default(),
        }
    }
}

/// The config slice the Profile stage reads (see [`crate::stages`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileConfig {
    /// §4.1 temporal enrichment phase count (`None` = averages only).
    pub temporal_phases: Option<usize>,
}

/// The config slice the Ingest/Repair stage reads.
#[derive(Debug, Clone, PartialEq)]
pub struct RepairConfig {
    /// MAD winsorization band width (`None` = no winsorization).
    pub winsorize_mad: Option<f64>,
}

/// The config slice the Featurize (refinement + PCA) stage reads.
#[derive(Debug, Clone, PartialEq)]
pub struct FeaturizeConfig {
    /// Keep per-job colocation-mix columns in the feature space (§5.3).
    pub per_job_augmentation: bool,
    /// |Pearson| threshold for refinement pruning (§4.2).
    pub correlation_threshold: f64,
    /// Cumulative explained-variance target for the kept PCs (§4.3).
    pub variance_threshold: f64,
    /// Median/MAD normalization instead of mean/std before PCA.
    pub robust_normalization: bool,
}

/// The config slice the Cluster stage reads.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterStageConfig {
    /// Cluster-count selection rule (§4.4).
    pub cluster_count: ClusterCountRule,
    /// Clustering algorithm (§4.4).
    pub cluster_method: ClusterMethod,
    /// K-means settings; ignored when the method is hierarchical.
    pub kmeans: KMeansConfig,
    /// Scale knobs the cluster stage reads: the mini-batch tier
    /// threshold/batch size and the silhouette cache/subsample limits.
    pub scale: ScaleConfig,
}

impl ClusterStageConfig {
    /// The copy a content fingerprint should see: `kmeans.k` is always
    /// overridden by the cluster-count rule, `kmeans.threads` is a
    /// wall-clock knob, and `scale.shard_rows` / `scale.spill` are
    /// layout-only knobs (the sharded store coalesces bit-identically at
    /// any shard size, and spilled shards read back the same bytes), so
    /// all of them are normalized away to keep them from spuriously
    /// invalidating the cluster stage. The remaining scale fields stay:
    /// they change which code path (and, above their thresholds, which
    /// bits) the stage produces.
    pub fn fingerprint_view(&self) -> ClusterStageConfig {
        let mut view = self.clone();
        view.kmeans.k = 0;
        view.kmeans.threads = None;
        view.scale.shard_rows = 0;
        view.scale.spill = SpillConfig::default();
        view
    }
}

/// The config slice the Representatives stage reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RepresentativesConfig {
    /// How each group's representative scenario is selected.
    pub representative_rule: RepresentativeRule,
}

impl FlareConfig {
    /// The Profile stage's sub-config.
    pub fn profile_stage(&self) -> ProfileConfig {
        ProfileConfig {
            temporal_phases: self.temporal_phases,
        }
    }

    /// The Ingest/Repair stage's sub-config.
    pub fn repair_stage(&self) -> RepairConfig {
        RepairConfig {
            winsorize_mad: self.winsorize_mad,
        }
    }

    /// The Featurize stage's sub-config.
    pub fn featurize_stage(&self) -> FeaturizeConfig {
        FeaturizeConfig {
            per_job_augmentation: self.per_job_augmentation,
            correlation_threshold: self.correlation_threshold,
            variance_threshold: self.variance_threshold,
            robust_normalization: self.robust_normalization,
        }
    }

    /// The Cluster stage's sub-config.
    pub fn cluster_stage(&self) -> ClusterStageConfig {
        ClusterStageConfig {
            cluster_count: self.cluster_count.clone(),
            cluster_method: self.cluster_method,
            kmeans: self.kmeans.clone(),
            scale: self.scale.clone(),
        }
    }

    /// The Representatives stage's sub-config.
    pub fn representatives_stage(&self) -> RepresentativesConfig {
        RepresentativesConfig {
            representative_rule: self.representative_rule,
        }
    }
}

impl FlareConfig {
    /// Validates parameter ranges.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.correlation_threshold > 0.0 && self.correlation_threshold <= 1.0) {
            return Err(format!(
                "correlation_threshold {} outside (0, 1]",
                self.correlation_threshold
            ));
        }
        if !(self.variance_threshold > 0.0 && self.variance_threshold <= 1.0) {
            return Err(format!(
                "variance_threshold {} outside (0, 1]",
                self.variance_threshold
            ));
        }
        if self.temporal_phases == Some(0) {
            return Err("temporal_phases must be >= 1 when enabled".into());
        }
        if self.threads == Some(0) {
            return Err("threads must be >= 1 when set (use None for automatic)".into());
        }
        if let Some(k) = self.winsorize_mad {
            if !(k.is_finite() && k > 0.0) {
                return Err(format!("winsorize_mad {k} must be finite and > 0"));
            }
        }
        if !(self.min_replay_coverage.is_finite()
            && (0.0..=1.0).contains(&self.min_replay_coverage))
        {
            return Err(format!(
                "min_replay_coverage {} outside [0, 1]",
                self.min_replay_coverage
            ));
        }
        if self.scale.shard_rows == 0 {
            return Err("scale.shard_rows must be >= 1".into());
        }
        if self.scale.tier_threshold == 0 {
            return Err("scale.tier_threshold must be >= 1".into());
        }
        if self.scale.minibatch_size == 0 {
            return Err("scale.minibatch_size must be >= 1".into());
        }
        if self.scale.spill.enabled && self.scale.spill.max_resident_shards == 0 {
            return Err(
                "scale.spill.max_resident_shards must be >= 1 when spill is enabled".into(),
            );
        }
        match &self.cluster_count {
            ClusterCountRule::Fixed(k) if *k == 0 => {
                return Err("fixed cluster count must be >= 1".into())
            }
            ClusterCountRule::Sweep { min_k, max_k, step } => {
                if *min_k < 2 {
                    return Err("sweep min_k must be >= 2".into());
                }
                if max_k < min_k {
                    return Err("sweep max_k must be >= min_k".into());
                }
                if *step == 0 {
                    return Err("sweep step must be >= 1".into());
                }
            }
            _ => {}
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let c = FlareConfig::default();
        assert_eq!(c.correlation_threshold, 0.98);
        assert_eq!(c.variance_threshold, 0.95);
        assert_eq!(c.cluster_count, ClusterCountRule::Fixed(18));
        assert!(c.validate().is_ok());
    }

    #[test]
    fn validation_catches_bad_values() {
        let c = FlareConfig {
            correlation_threshold: 0.0,
            ..FlareConfig::default()
        };
        assert!(c.validate().is_err());

        let c = FlareConfig {
            variance_threshold: 1.5,
            ..FlareConfig::default()
        };
        assert!(c.validate().is_err());

        let c = FlareConfig {
            cluster_count: ClusterCountRule::Fixed(0),
            ..FlareConfig::default()
        };
        assert!(c.validate().is_err());

        let c = FlareConfig {
            cluster_count: ClusterCountRule::Sweep {
                min_k: 1,
                max_k: 10,
                step: 1,
            },
            ..FlareConfig::default()
        };
        assert!(c.validate().is_err());

        let c = FlareConfig {
            cluster_count: ClusterCountRule::Sweep {
                min_k: 5,
                max_k: 3,
                step: 1,
            },
            ..FlareConfig::default()
        };
        assert!(c.validate().is_err());

        let mut c = FlareConfig {
            threads: Some(0),
            ..FlareConfig::default()
        };
        assert!(c.validate().is_err());
        c.threads = Some(4);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn stage_sub_configs_carry_exactly_their_fields() {
        let c = FlareConfig {
            correlation_threshold: 0.9,
            variance_threshold: 0.8,
            temporal_phases: Some(3),
            winsorize_mad: Some(2.0),
            per_job_augmentation: true,
            robust_normalization: true,
            ..FlareConfig::default()
        };
        assert_eq!(c.profile_stage().temporal_phases, Some(3));
        assert_eq!(c.repair_stage().winsorize_mad, Some(2.0));
        let f = c.featurize_stage();
        assert!(f.per_job_augmentation && f.robust_normalization);
        assert_eq!(f.correlation_threshold, 0.9);
        assert_eq!(f.variance_threshold, 0.8);
        assert_eq!(c.cluster_stage().cluster_count, c.cluster_count);
        assert_eq!(
            c.representatives_stage().representative_rule,
            c.representative_rule
        );
        // The fingerprint view normalizes the knobs the pipeline never
        // reads as-is: the overridden `k`, the wall-clock `threads`, and
        // the layout-only shard size.
        let mut c2 = c.clone();
        c2.kmeans.threads = Some(5);
        c2.kmeans.k = 3;
        c2.scale.shard_rows = 512;
        c2.scale.spill.enabled = true;
        c2.scale.spill.max_resident_shards = 2;
        assert_eq!(
            c.cluster_stage().fingerprint_view(),
            c2.cluster_stage().fingerprint_view()
        );
        assert_ne!(c.cluster_stage(), c2.cluster_stage());
        // The result-affecting scale knobs are NOT normalized away.
        let mut c3 = c.clone();
        c3.scale.tier_threshold = 7;
        assert_ne!(
            c.cluster_stage().fingerprint_view(),
            c3.cluster_stage().fingerprint_view()
        );
    }

    #[test]
    fn scale_config_defaults_and_validation() {
        let c = FlareConfig::default();
        assert_eq!(c.scale.shard_rows, 8192);
        assert_eq!(c.scale.tier_threshold, 20_000);
        assert_eq!(c.scale.minibatch_size, 1024);
        assert_eq!(c.scale.silhouette_cache_bytes, 64 << 20);
        assert_eq!(c.scale.silhouette_sample, 4096);

        for bad in [
            ScaleConfig {
                shard_rows: 0,
                ..ScaleConfig::default()
            },
            ScaleConfig {
                tier_threshold: 0,
                ..ScaleConfig::default()
            },
            ScaleConfig {
                minibatch_size: 0,
                ..ScaleConfig::default()
            },
        ] {
            let c = FlareConfig {
                scale: bad.clone(),
                ..FlareConfig::default()
            };
            assert!(c.validate().is_err(), "{bad:?}");
        }
        // A zero silhouette sample means "exact" and is valid.
        let c = FlareConfig {
            scale: ScaleConfig {
                silhouette_sample: 0,
                ..ScaleConfig::default()
            },
            ..FlareConfig::default()
        };
        assert!(c.validate().is_ok());
    }

    #[test]
    fn spill_config_defaults_off_and_validates() {
        let c = FlareConfig::default();
        assert!(!c.scale.spill.enabled);
        assert_eq!(c.scale.spill.dir, None);
        assert_eq!(c.scale.spill.max_resident_shards, 4);
        assert!(c.scale.spill.is_default());

        // A zero residency budget is only rejected when spill is on.
        let mut c = FlareConfig::default();
        c.scale.spill.max_resident_shards = 0;
        assert!(c.validate().is_ok());
        c.scale.spill.enabled = true;
        assert!(c.validate().is_err());
        c.scale.spill.max_resident_shards = 1;
        assert!(c.validate().is_ok());
    }

    #[test]
    fn robustness_knobs_default_off_and_validate() {
        let c = FlareConfig::default();
        assert!(!c.robust_normalization);
        assert_eq!(c.winsorize_mad, None);
        assert_eq!(c.min_replay_coverage, 0.5);

        let c = FlareConfig {
            winsorize_mad: Some(0.0),
            ..FlareConfig::default()
        };
        assert!(c.validate().is_err());
        let c = FlareConfig {
            winsorize_mad: Some(f64::NAN),
            ..FlareConfig::default()
        };
        assert!(c.validate().is_err());
        let c = FlareConfig {
            winsorize_mad: Some(3.0),
            ..FlareConfig::default()
        };
        assert!(c.validate().is_ok());

        let c = FlareConfig {
            min_replay_coverage: 1.5,
            ..FlareConfig::default()
        };
        assert!(c.validate().is_err());
        let c = FlareConfig {
            min_replay_coverage: -0.1,
            ..FlareConfig::default()
        };
        assert!(c.validate().is_err());
    }
}
