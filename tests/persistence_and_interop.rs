//! Integration tests for persistence (serde) and cross-crate interop: the
//! database survives JSON round-trips, corpora serialize, and the analyzer
//! consumes what the simulator produces without adapters.

use flare::metrics::database::MetricDatabase;
use flare::prelude::*;

fn small_corpus() -> (Corpus, CorpusConfig) {
    let cfg = CorpusConfig {
        machines: 4,
        days: 2.0,
        tick_minutes: 15.0,
        ..CorpusConfig::default()
    };
    (Corpus::generate(&cfg), cfg)
}

#[test]
fn metric_database_json_roundtrip_preserves_pipeline_results() {
    let (corpus, cfg) = small_corpus();
    let db = corpus.to_metric_database(&cfg.machine_config);
    let json = db.to_json().expect("serialize");
    let restored = MetricDatabase::from_json(&json).expect("parse");
    assert_eq!(db, restored);

    // Fitting on the restored database yields identical representatives.
    let config = FlareConfig {
        cluster_count: ClusterCountRule::Fixed(8),
        ..FlareConfig::default()
    };
    let a = flare::core::analyzer::Analyzer::fit(&db, &config).expect("fit original");
    let b = flare::core::analyzer::Analyzer::fit(&restored, &config).expect("fit restored");
    assert_eq!(a.representatives(), b.representatives());
    assert_eq!(a.clustering().assignments, b.clustering().assignments);
}

#[test]
fn corpus_serializes() {
    let (corpus, _) = small_corpus();
    let json = serde_json::to_string(&corpus).expect("serialize corpus");
    let restored: Corpus = serde_json::from_str(&json).expect("parse corpus");
    assert_eq!(corpus.entries(), restored.entries());
}

#[test]
fn database_save_load_file() {
    let (corpus, cfg) = small_corpus();
    let db = corpus.to_metric_database(&cfg.machine_config);
    let dir = std::env::temp_dir().join("flare_integration");
    std::fs::create_dir_all(&dir).expect("tmpdir");
    let path = dir.join("corpus_db.json");
    db.save(&path).expect("save");
    let loaded = MetricDatabase::load(&path).expect("load");
    assert_eq!(db, loaded);
    std::fs::remove_file(&path).ok();
}

#[test]
fn job_mix_strings_reconstruct_scenarios() {
    // The Replayer contract: the database's job_mix is sufficient to
    // rebuild the exact scenario (the paper's "recorded commands").
    let (corpus, cfg) = small_corpus();
    let db = corpus.to_metric_database(&cfg.machine_config);
    for e in corpus.entries().iter().take(50) {
        let rec = db.get(e.id).expect("aligned databases");
        let rebuilt = Scenario::from_counts(rec.job_mix.iter().map(|(name, n)| {
            let job: JobName = name.parse().expect("abbrev roundtrip");
            (job, *n)
        }));
        assert_eq!(rebuilt, e.scenario, "scenario {} mismatch", e.id);
    }
}

#[test]
fn custom_testbed_implementations_plug_in() {
    // A user-supplied testbed (here: a simulator wrapper that injects a
    // fixed measurement bias) drops into the estimation path.
    struct BiasedTestbed(f64);
    impl Testbed for BiasedTestbed {
        fn run(
            &self,
            scenario: &Scenario,
            config: &MachineConfig,
        ) -> flare::core::replayer::Measurement {
            let mut m = SimTestbed.run(scenario, config);
            if let Some(p) = m.hp_perf.as_mut() {
                *p *= self.0;
            }
            m
        }
    }

    let (corpus, _) = small_corpus();
    let flare = Flare::fit(
        corpus,
        FlareConfig {
            cluster_count: ClusterCountRule::Fixed(6),
            ..FlareConfig::default()
        },
    )
    .expect("fit");
    let feature = Feature::paper_feature1();
    let unbiased = flare.evaluate_on(&SimTestbed, &feature).expect("unbiased");
    // A multiplicative bias on BOTH baseline and feature runs cancels in
    // the relative MIPS-reduction metric.
    let biased = flare
        .evaluate_on(&BiasedTestbed(0.9), &feature)
        .expect("biased");
    assert!((unbiased.impact_pct - biased.impact_pct).abs() < 1e-9);
}
