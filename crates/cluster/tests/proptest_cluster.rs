//! Property-based tests for the clustering substrate.

use flare_cluster::hierarchical::{agglomerative, Linkage};
use flare_cluster::kmeans::{compute_sse, kmeans, KMeansConfig};
use flare_cluster::quality::{silhouette_score, sse};
use flare_linalg::Matrix;
use proptest::prelude::*;

fn points(n: usize, d: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(prop::collection::vec(-50.0f64..50.0, d), n..=n)
        .prop_map(|rows| Matrix::from_rows(&rows).expect("rectangular"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn kmeans_assignments_in_range(data in points(20, 3), k in 1usize..6) {
        let r = kmeans(&data, &KMeansConfig::new(k)).unwrap();
        prop_assert_eq!(r.assignments.len(), 20);
        prop_assert!(r.assignments.iter().all(|&a| a < k));
        prop_assert_eq!(r.centroids.len(), k);
    }

    #[test]
    fn kmeans_sse_matches_reported(data in points(15, 2), k in 1usize..5) {
        let r = kmeans(&data, &KMeansConfig::new(k)).unwrap();
        let recomputed = compute_sse(&data, &r.centroids, &r.assignments);
        prop_assert!((recomputed - r.sse).abs() < 1e-9);
        let via_quality = sse(&data, &r.centroids, &r.assignments).unwrap();
        prop_assert!((via_quality - r.sse).abs() < 1e-9);
    }

    #[test]
    fn kmeans_each_point_assigned_to_nearest_centroid(data in points(12, 2)) {
        let r = kmeans(&data, &KMeansConfig::new(3)).unwrap();
        for i in 0..12 {
            let assigned = r.assignments[i];
            let d_assigned = flare_cluster::distance::squared_euclidean(
                data.row(i), &r.centroids[assigned]);
            for c in &r.centroids {
                let d = flare_cluster::distance::squared_euclidean(data.row(i), c);
                prop_assert!(d_assigned <= d + 1e-9);
            }
        }
    }

    #[test]
    fn kmeans_weights_partition_unity(data in points(18, 3), k in 1usize..6) {
        let r = kmeans(&data, &KMeansConfig::new(k)).unwrap();
        let total: f64 = r.cluster_weights().iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn kmeans_deterministic(data in points(10, 2), seed in 0u64..1000) {
        let cfg = KMeansConfig::new(3).with_seed(seed);
        let a = kmeans(&data, &cfg).unwrap();
        let b = kmeans(&data, &cfg).unwrap();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn silhouette_bounded(data in points(10, 2)) {
        let r = kmeans(&data, &KMeansConfig::new(3)).unwrap();
        // Degenerate draws can collapse to <2 populated clusters; skip those.
        let populated = r.cluster_sizes().iter().filter(|&&s| s > 0).count();
        prop_assume!(populated >= 2);
        let s = silhouette_score(&data, &r.assignments, 3).unwrap();
        prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&s));
    }

    #[test]
    fn dendrogram_cut_is_consistent_partition(data in points(12, 2), k in 1usize..12) {
        let d = agglomerative(&data, Linkage::Ward).unwrap();
        let labels = d.cut(k).unwrap();
        prop_assert_eq!(labels.len(), 12);
        let mut distinct = labels.clone();
        distinct.sort_unstable();
        distinct.dedup();
        prop_assert_eq!(distinct.len(), k);
        // Labels are dense 0..k.
        prop_assert!(labels.iter().all(|&l| l < k));
    }

    #[test]
    fn dendrogram_cuts_are_nested(data in points(10, 2)) {
        // A refinement property: merging from k+1 to k only fuses clusters,
        // never splits them — any pair together at k+1 stays together at k.
        let d = agglomerative(&data, Linkage::Average).unwrap();
        for k in 2..=9usize {
            let coarse = d.cut(k - 1).unwrap();
            let fine = d.cut(k).unwrap();
            for i in 0..10 {
                for j in 0..10 {
                    if fine[i] == fine[j] {
                        prop_assert_eq!(coarse[i], coarse[j]);
                    }
                }
            }
        }
    }
}
