//! Error type for the FLARE pipeline.

use std::error::Error;
use std::fmt;

/// Error produced by the FLARE pipeline.
#[derive(Debug)]
pub enum FlareError {
    /// The metric database/corpus was empty or too small for the requested
    /// analysis.
    InsufficientData(String),
    /// A parameter was outside its valid range.
    InvalidParameter(String),
    /// A requested job never appears in any scenario of a cluster's
    /// population, so no per-job estimate exists for it.
    JobNotObserved(String),
    /// A corpus entry has no matching record in the fitted metric
    /// database. Raised when reclustering is attempted against a corpus
    /// that diverged from the one the model was fitted on.
    CorpusDatabaseMismatch {
        /// The corpus scenario missing from the metric database.
        scenario_id: flare_metrics::database::ScenarioId,
    },
    /// Too much of the cluster weight failed to replay: the surviving
    /// measurements cover less of the corpus than the configured floor,
    /// so an estimate would silently extrapolate from an unrepresentative
    /// remainder.
    ReplayFailed {
        /// Share of cluster weight that produced a measurement.
        coverage: f64,
        /// The configured `min_replay_coverage` floor.
        floor: f64,
        /// Clusters whose every candidate scenario failed permanently.
        failed_clusters: Vec<usize>,
    },
    /// Linear-algebra failure (PCA, normalization).
    Linalg(flare_linalg::LinalgError),
    /// Clustering failure.
    Cluster(flare_cluster::ClusterError),
    /// Metric database failure.
    Metrics(flare_metrics::MetricsError),
}

impl fmt::Display for FlareError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlareError::InsufficientData(msg) => write!(f, "insufficient data: {msg}"),
            FlareError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            FlareError::JobNotObserved(job) => {
                write!(f, "job `{job}` not observed in any clustered scenario")
            }
            FlareError::CorpusDatabaseMismatch { scenario_id } => {
                write!(
                    f,
                    "corpus scenario {scenario_id} has no record in the metric database; \
                     the corpus and the fitted model have diverged"
                )
            }
            FlareError::ReplayFailed {
                coverage,
                floor,
                failed_clusters,
            } => {
                write!(
                    f,
                    "replay coverage {:.1}% below the {:.1}% floor ({} cluster(s) failed: {:?})",
                    coverage * 100.0,
                    floor * 100.0,
                    failed_clusters.len(),
                    failed_clusters
                )
            }
            FlareError::Linalg(e) => write!(f, "linear algebra failure: {e}"),
            FlareError::Cluster(e) => write!(f, "clustering failure: {e}"),
            FlareError::Metrics(e) => write!(f, "metric database failure: {e}"),
        }
    }
}

impl Error for FlareError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            FlareError::Linalg(e) => Some(e),
            FlareError::Cluster(e) => Some(e),
            FlareError::Metrics(e) => Some(e),
            _ => None,
        }
    }
}

impl From<flare_linalg::LinalgError> for FlareError {
    fn from(e: flare_linalg::LinalgError) -> Self {
        FlareError::Linalg(e)
    }
}

impl From<flare_cluster::ClusterError> for FlareError {
    fn from(e: flare_cluster::ClusterError) -> Self {
        FlareError::Cluster(e)
    }
}

impl From<flare_metrics::MetricsError> for FlareError {
    fn from(e: flare_metrics::MetricsError) -> Self {
        FlareError::Metrics(e)
    }
}

/// Convenience alias for FLARE results.
pub type Result<T> = std::result::Result<T, FlareError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_nonempty() {
        let errors: Vec<FlareError> = vec![
            FlareError::InsufficientData("x".into()),
            FlareError::InvalidParameter("y".into()),
            FlareError::JobNotObserved("DC".into()),
            FlareError::CorpusDatabaseMismatch {
                scenario_id: flare_metrics::database::ScenarioId(7),
            },
            FlareError::ReplayFailed {
                coverage: 0.25,
                floor: 0.5,
                failed_clusters: vec![1, 4],
            },
            FlareError::Linalg(flare_linalg::LinalgError::Empty("z".into())),
        ];
        for e in errors {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn sources_chain() {
        let e = FlareError::from(flare_cluster::ClusterError::TooFewPoints { points: 1, k: 2 });
        assert!(e.source().is_some());
    }

    #[test]
    fn error_traits() {
        fn assert_send_sync<T: Send + Sync + std::error::Error>() {}
        assert_send_sync::<FlareError>();
    }
}
