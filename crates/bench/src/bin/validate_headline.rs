//! Quick headline validation: FLARE vs sampling vs ground truth for the
//! three paper features on the full-size corpus.

use flare_baselines::fulldc::full_datacenter_impact;
use flare_baselines::sampling::{sampling_distribution, SamplingConfig};
use flare_core::replayer::SimTestbed;
use flare_core::{Flare, FlareConfig};
use flare_sim::datacenter::{Corpus, CorpusConfig};
use flare_sim::feature::Feature;

fn main() {
    let cfg = CorpusConfig::default();
    let corpus = Corpus::generate(&cfg);
    println!(
        "corpus: {} distinct scenarios ({} HP)",
        corpus.len(),
        corpus.hp_entries().len()
    );
    let baseline = cfg.machine_config.clone();
    let flare = Flare::fit(corpus.clone(), FlareConfig::default()).unwrap();
    println!("representatives: {}", flare.n_representatives());
    println!("PCs kept: {}", flare.analyzer().n_pcs());
    println!(
        "refined metrics: {}",
        flare.analyzer().refined_schema().len()
    );

    for feature in Feature::paper_features() {
        let fc = feature.apply(&baseline);
        let truth = full_datacenter_impact(&corpus, &SimTestbed, &baseline, &fc, true);
        let est = flare.evaluate(&feature).unwrap();
        let dist = sampling_distribution(
            &corpus,
            &SimTestbed,
            &baseline,
            &fc,
            &SamplingConfig {
                n_samples: 18,
                trials: 1000,
                ..Default::default()
            },
        )
        .unwrap();
        println!(
            "{}: truth={:.2}% flare={:.2}% (err {:.2}pp) sampling: mean={:.2}% p2.5={:.2}% p97.5={:.2}% maxerr={:.2}pp",
            feature.label(),
            truth.impact_pct,
            est.impact_pct,
            (est.impact_pct - truth.impact_pct).abs(),
            dist.summary.mean,
            dist.summary.p2_5,
            dist.summary.p97_5,
            dist.expected_max_error(truth.impact_pct),
        );
    }
}
