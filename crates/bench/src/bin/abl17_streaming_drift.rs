//! Ablation 17: streaming ingest with drift-aware continuous refit — how
//! does the drift threshold trade re-clustering work against staleness,
//! and does the degraded-mode machinery actually protect the model?
//!
//! Three parts over one arrival schedule (quiet → drifting → quiet):
//!
//! 1. **threshold sweep** — the same stream under increasing
//!    `drift_threshold`: low thresholds re-cluster eagerly, high ones
//!    serve a stale model longer; the table reports every disposition.
//! 2. **no-drift gate** — quiet (in-distribution) batches must be
//!    absorbed with each arrival profiled exactly once and zero refits:
//!    streaming must not silently re-profile the corpus.
//! 3. **fault-recovery gate** — a poisoned batch (heavy dropout) is
//!    quarantined rather than mistaken for drift; once the fault clears,
//!    the same drifting content re-clusters — and a session killed after
//!    the poisoned batch resumes from its checkpoint to the identical
//!    final model.
//!
//! Run with `--smoke` for the small CI variant, which asserts the gates.
//! Writes `results/abl17_streaming_drift.txt`.

use flare_bench::banner;
use flare_core::{
    BatchDisposition, ClusterCountRule, Flare, FlareConfig, StreamConfig, StreamSession,
};
use flare_sim::datacenter::{Corpus, CorpusConfig};
use flare_sim::faults::FaultPlan;
use flare_sim::scenario::Scenario;
use flare_workloads::job::JobName;

/// In-distribution arrivals: re-observations of scenarios the model's
/// corpus already holds.
fn quiet_batch(model: &Flare, n: usize) -> Vec<(Scenario, u32)> {
    (0..n)
        .map(|i| {
            let entry = &model.corpus().entries()[i % model.corpus().len()];
            (entry.scenario.clone(), 1 + i as u32)
        })
        .collect()
}

/// Out-of-distribution arrivals: a fully-packed, LP-dominated mix the
/// corpus generator never produces.
fn drift_batch(n: usize) -> Vec<(Scenario, u32)> {
    (0..n)
        .map(|i| {
            let s = Scenario::from_counts([
                (JobName::DataCaching, 6),
                (JobName::Mcf, 2 + (i % 3) as u32),
                (JobName::Libquantum, 2),
            ]);
            (s, 1 + i as u32)
        })
        .collect()
}

fn disposition_tag(d: BatchDisposition) -> &'static str {
    match d {
        BatchDisposition::Absorbed => "absorb",
        BatchDisposition::Quarantined => "quarant",
        BatchDisposition::Reclustered => "recluster",
        BatchDisposition::Stalled => "stall",
    }
}

/// Everything that makes two fitted models "the same result", without
/// touching serialization.
fn assert_same(a: &Flare, b: &Flare, label: &str) {
    assert_eq!(a.database(), b.database(), "{label}: databases diverged");
    assert_eq!(
        a.analyzer().clustering().assignments,
        b.analyzer().clustering().assignments,
        "{label}: assignments diverged"
    );
    assert_eq!(
        a.analyzer().representatives(),
        b.analyzer().representatives(),
        "{label}: representatives diverged"
    );
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    banner(
        "Ablation: streaming ingest with drift-aware refit",
        "robustness extension — DESIGN.md §11 streaming / degraded mode",
    );

    let corpus_cfg = if smoke {
        CorpusConfig {
            machines: 4,
            days: 2.0,
            tick_minutes: 15.0,
            ..CorpusConfig::default()
        }
    } else {
        CorpusConfig::default()
    };
    let k = if smoke { 6 } else { 12 };
    let corpus = Corpus::generate(&corpus_cfg);
    let model = Flare::fit(
        corpus.clone(),
        FlareConfig {
            cluster_count: ClusterCountRule::Fixed(k),
            ..FlareConfig::default()
        },
    )
    .expect("fit base model");

    let mut out = String::new();
    let mut emit = |line: String| {
        println!("{line}");
        out.push_str(&line);
        out.push('\n');
    };

    emit(format!(
        "\ncorpus: {} scenarios ({} machines, {} days), k={k}\n",
        corpus.len(),
        corpus_cfg.machines,
        corpus_cfg.days
    ));

    // --- Part 1: drift-threshold sweep -----------------------------------
    // One arrival schedule, swept across thresholds: batch 1 quiet,
    // batch 2 far out of distribution, batch 3 quiet again.
    emit(format!(
        "  {:<10} | {:>9} {:>9} {:>9} | {:>10} | {:>11}",
        "threshold", "batch 1", "batch 2", "batch 3", "reclusters", "drift(b2)"
    ));
    for threshold in [0.05, 0.15, 0.25, 0.5, 0.75, 1.0] {
        let mut session = StreamSession::new(
            model.clone(),
            StreamConfig {
                drift_threshold: threshold,
                ..StreamConfig::default()
            },
        )
        .expect("valid config");
        let mut tags = Vec::new();
        let mut b2_drift = 0.0;
        for (i, batch) in [
            quiet_batch(&model, 4),
            drift_batch(6),
            quiet_batch(&model, 3),
        ]
        .into_iter()
        .enumerate()
        {
            let outcome = session.ingest_batch(batch).expect("ingest");
            if i == 1 {
                b2_drift = outcome.drift_fraction;
            }
            tags.push(disposition_tag(outcome.disposition));
        }
        emit(format!(
            "  {:<10.2} | {:>9} {:>9} {:>9} | {:>10} | {:>11.2}",
            threshold,
            tags[0],
            tags[1],
            tags[2],
            session.cursor().reclusters,
            b2_drift
        ));
    }

    // --- Part 2: no-drift gate — zero re-profiling on quiet batches ------
    // Threshold 0.5: a quiet batch would need half its rows past the 95th
    // percentile cutoff to refit — re-observation noise can't get there.
    let mut quiet_session = StreamSession::new(
        model.clone(),
        StreamConfig {
            drift_threshold: 0.5,
            ..StreamConfig::default()
        },
    )
    .expect("valid config");
    let mut absorbed = true;
    for batch in [
        quiet_batch(&model, 4),
        quiet_batch(&model, 3),
        quiet_batch(&model, 5),
    ] {
        let outcome = quiet_session.ingest_batch(batch).expect("ingest");
        absorbed &= outcome.disposition == BatchDisposition::Absorbed;
    }
    let cursor = quiet_session.cursor();
    emit(format!(
        "\nno-drift stream: {} arrivals, {} profiled, {} mid-stream refits, all absorbed: {}",
        cursor.arrivals, cursor.profiled, cursor.reclusters, absorbed
    ));
    if smoke {
        assert!(absorbed, "smoke gate: quiet batches must be absorbed");
        assert_eq!(
            cursor.profiled, cursor.arrivals,
            "smoke gate: each arrival profiled exactly once, never re-profiled"
        );
        assert_eq!(
            cursor.reclusters, 0,
            "smoke gate: no-drift batches must not trigger refits"
        );
    }

    // --- Part 3: fault-recovery gate --------------------------------------
    // Drift-sensitive knobs (median-calibrated cutoff) so the clean
    // drifting batch reliably re-clusters.
    let stream_cfg = |dir: Option<std::path::PathBuf>| StreamConfig {
        drift_threshold: 0.2,
        calibration_quantile: 0.5,
        checkpoint_dir: dir,
        ..StreamConfig::default()
    };
    let poisoned = FaultPlan {
        seed: 0xAB17,
        sample_dropout: 0.95,
        ..FaultPlan::default()
    };

    // Uninterrupted timeline: poisoned drifting batch, fault clears,
    // same drifting content arrives clean.
    let mut uninterrupted = StreamSession::new(model.clone(), stream_cfg(None))
        .expect("valid config")
        .with_faults(poisoned)
        .expect("valid plan");
    let hit = uninterrupted.ingest_batch(drift_batch(6)).expect("ingest");
    let mut uninterrupted = uninterrupted
        .with_faults(FaultPlan::default())
        .expect("clean plan");
    let healed = uninterrupted.ingest_batch(drift_batch(6)).expect("ingest");
    emit(format!(
        "fault recovery:  poisoned batch -> {} (degraded {:.0}%), cleared batch -> {} \
         ({} recluster)",
        disposition_tag(hit.disposition),
        hit.degraded_fraction * 100.0,
        disposition_tag(healed.disposition),
        uninterrupted.cursor().reclusters
    ));

    // Killed-and-resumed timeline over the same arrivals: checkpoint
    // after the poisoned batch, drop the session, resume, clear the
    // fault, finish.
    let dir = std::env::temp_dir().join(format!("flare_abl17_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    {
        let mut doomed = StreamSession::new(model.clone(), stream_cfg(Some(dir.clone())))
            .expect("valid config")
            .with_faults(poisoned)
            .expect("valid plan");
        doomed.ingest_batch(drift_batch(6)).expect("ingest");
        // Dropped without finalize: the simulated kill.
    }
    let resumed = StreamSession::resume(&dir, stream_cfg(Some(dir.clone()))).expect("resume");
    let mut resumed = resumed
        .with_faults(FaultPlan::default())
        .expect("clean plan");
    let healed_resumed = resumed.ingest_batch(drift_batch(6)).expect("ingest");
    assert_same(
        uninterrupted.model(),
        resumed.model(),
        "resumed vs uninterrupted",
    );
    let _ = std::fs::remove_dir_all(&dir);
    emit(format!(
        "crash safety:    killed after poisoned batch, resumed -> {} — final model identical \
         to the uninterrupted run",
        disposition_tag(healed_resumed.disposition)
    ));
    if smoke {
        assert_eq!(
            hit.disposition,
            BatchDisposition::Quarantined,
            "smoke gate: poisoned batch must be quarantined, not treated as drift"
        );
        assert_eq!(
            healed.disposition,
            BatchDisposition::Reclustered,
            "smoke gate: cleared drifting batch must re-cluster"
        );
        assert_eq!(
            healed_resumed.disposition,
            BatchDisposition::Reclustered,
            "smoke gate: resumed session must re-cluster like the uninterrupted one"
        );
    }

    emit(
        "\ntakeaway: the calibrated drift cutoff lets quiet streams ride a stale model\n\
         with zero re-clustering and exactly-once profiling, the threshold knob dials\n\
         how far the stream may wander before a refit, and quarantine + checkpoints\n\
         keep telemetry faults and crashes from ever corrupting the serving model."
            .to_string(),
    );

    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../results/abl17_streaming_drift.txt"
    );
    std::fs::write(path, &out).expect("write abl17_streaming_drift.txt");
    println!("\nresults written to results/abl17_streaming_drift.txt");
}
