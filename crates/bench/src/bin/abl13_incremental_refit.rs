//! Ablation 13: incremental refit on the staged artifact pipeline — what
//! does fingerprint-driven stage reuse actually buy over re-running the
//! whole Profiler→Analyzer pipeline?
//!
//! Three workflows over the same corpus, each timed against a from-scratch
//! `Flare::fit`:
//!
//! 1. **clustering-only refit** — change the cluster count; profile,
//!    repair, and featurize (PCA) artifacts are reused verbatim.
//! 2. **sweep-range refit** — widen a cluster-count sweep; previously
//!    measured per-`k` sweep points carry over.
//! 3. **extend** — append a handful of new scenarios; only the delta is
//!    profiled, everything downstream re-runs over the grown database.
//!
//! Every incremental result is asserted identical to its from-scratch
//! equivalent (same representatives, same assignments), so the timings
//! compare equal outputs. Run with `--smoke` for the small CI variant,
//! which also asserts that refit is strictly faster than a full fit.

use flare_bench::banner;
use flare_core::{ClusterCountRule, Flare, FlareConfig, StageOutcome};
use flare_sim::datacenter::{Corpus, CorpusConfig};
use flare_sim::scenario::Scenario;
use flare_workloads::job::JobName;
use std::time::Instant;

fn time<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let value = f();
    (value, start.elapsed().as_secs_f64())
}

fn assert_same(a: &Flare, b: &Flare, label: &str) {
    assert_eq!(
        a.analyzer().representatives(),
        b.analyzer().representatives(),
        "{label}: representatives diverged from the from-scratch fit"
    );
    assert_eq!(
        a.analyzer().clustering().assignments,
        b.analyzer().clustering().assignments,
        "{label}: assignments diverged from the from-scratch fit"
    );
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    banner(
        "Ablation: incremental refit vs full fit",
        "staged artifact pipeline — fingerprint-driven stage reuse",
    );

    let corpus_cfg = if smoke {
        CorpusConfig {
            machines: 4,
            days: 2.0,
            tick_minutes: 15.0,
            ..CorpusConfig::default()
        }
    } else {
        CorpusConfig::default()
    };
    let corpus = Corpus::generate(&corpus_cfg);
    let (k_a, k_b) = if smoke { (8, 6) } else { (18, 12) };
    let sweep_narrow = if smoke {
        ClusterCountRule::Sweep {
            min_k: 2,
            max_k: 6,
            step: 1,
        }
    } else {
        ClusterCountRule::Sweep {
            min_k: 4,
            max_k: 16,
            step: 2,
        }
    };
    let sweep_wide = if smoke {
        ClusterCountRule::Sweep {
            min_k: 2,
            max_k: 8,
            step: 1,
        }
    } else {
        ClusterCountRule::Sweep {
            min_k: 4,
            max_k: 22,
            step: 2,
        }
    };

    let base_cfg = FlareConfig {
        cluster_count: ClusterCountRule::Fixed(k_a),
        ..FlareConfig::default()
    };
    println!(
        "\ncorpus: {} scenarios ({} machines, {} days)\n",
        corpus.len(),
        corpus_cfg.machines,
        corpus_cfg.days
    );
    println!(
        "  {:<26} | {:>9} | {:>9} | {:>8} | {}",
        "workflow", "full fit", "increm.", "speedup", "stage reuse"
    );

    // --- Workflow 1: clustering-only refit -------------------------------
    let (fitted, t_full) = time(|| Flare::fit(corpus.clone(), base_cfg.clone()).expect("fit"));
    let new_cfg = FlareConfig {
        cluster_count: ClusterCountRule::Fixed(k_b),
        ..base_cfg.clone()
    };
    let (refitted, t_refit) = time(|| fitted.refit(new_cfg.clone()).expect("refit"));
    let report = refitted.fit_report();
    assert_eq!(report.scenarios_profiled, 0, "refit must never re-profile");
    assert_eq!(report.profile, StageOutcome::Reused);
    assert_eq!(report.featurize, StageOutcome::Reused);
    let (fresh, t_fresh) = time(|| Flare::fit(corpus.clone(), new_cfg).expect("fit"));
    assert_same(&refitted, &fresh, "clustering-only refit");
    println!(
        "  {:<26} | {:>8.2}s | {:>8.2}s | {:>7.1}x | {} of 5 stages reused",
        format!("refit k={k_a} -> k={k_b}"),
        t_fresh,
        t_refit,
        t_fresh / t_refit,
        report.reused_stages()
    );

    // --- Workflow 2: sweep-range refit -----------------------------------
    let narrow_cfg = FlareConfig {
        cluster_count: sweep_narrow,
        ..FlareConfig::default()
    };
    let swept = Flare::fit(corpus.clone(), narrow_cfg).expect("sweep fit");
    let wide_cfg = FlareConfig {
        cluster_count: sweep_wide,
        ..swept.config().clone()
    };
    let (resweep, t_resweep) = time(|| swept.refit(wide_cfg.clone()).expect("sweep refit"));
    let sweep_report = resweep.fit_report();
    assert!(
        sweep_report.sweep_points_reused > 0,
        "widened sweep must carry points over"
    );
    let (fresh_sweep, t_fresh_sweep) =
        time(|| Flare::fit(corpus.clone(), wide_cfg).expect("sweep fit"));
    assert_same(&resweep, &fresh_sweep, "sweep-range refit");
    println!(
        "  {:<26} | {:>8.2}s | {:>8.2}s | {:>7.1}x | {} sweep points reused",
        "refit widened sweep",
        t_fresh_sweep,
        t_resweep,
        t_fresh_sweep / t_resweep,
        sweep_report.sweep_points_reused
    );

    // --- Workflow 3: extend with a scenario delta ------------------------
    let delta = vec![
        (Scenario::from_counts([(JobName::DataCaching, 2)]), 6),
        (
            Scenario::from_counts([(JobName::GraphAnalytics, 2), (JobName::Mcf, 1)]),
            3,
        ),
        (Scenario::from_counts([(JobName::WebServing, 4)]), 2),
    ];
    let (extended, t_extend) = time(|| fitted.extend(delta.clone()).expect("extend"));
    let extend_report = extended.fit_report();
    assert_eq!(extend_report.profile, StageOutcome::Extended);
    assert_eq!(
        extend_report.scenarios_profiled,
        delta.len(),
        "extend must profile exactly the delta"
    );
    let grown = corpus.extended(delta).expect("extended corpus");
    let (fresh_ext, t_fresh_ext) = time(|| Flare::fit(grown, base_cfg).expect("fit"));
    assert_same(&extended, &fresh_ext, "extend");
    println!(
        "  {:<26} | {:>8.2}s | {:>8.2}s | {:>7.1}x | {} of {} scenarios profiled",
        format!("extend +{} scenarios", extend_report.scenarios_profiled),
        t_fresh_ext,
        t_extend,
        t_fresh_ext / t_extend,
        extend_report.scenarios_profiled,
        extended.corpus().len()
    );

    if smoke {
        assert!(
            t_refit < t_full && t_refit < t_fresh,
            "smoke gate: clustering-only refit ({t_refit:.3}s) must beat a full fit \
             ({t_full:.3}s first, {t_fresh:.3}s repeat)"
        );
    }
    println!(
        "\ntakeaway: the fingerprint chain turns config iteration into cheap\n\
         cluster-stage re-runs (profiling and PCA are never repeated), widened\n\
         sweeps only measure the new k values, and corpus growth profiles just\n\
         the appended scenarios — all with byte-identical results to full fits."
    );
}
