//! Full-datacenter evaluation: the ground truth.
//!
//! Evaluates a feature on *every* scenario of the corpus, weighted by how
//! often each scenario was observed — what the paper calls "the true
//! impact" measured from the whole datacenter (Fig. 12). It is accurate
//! and maximally expensive: the evaluation cost is the full corpus size,
//! the 50× baseline of Fig. 13.

use flare_core::replayer::{replay_impact, replay_job_impact, Testbed};
use flare_exec::par_map_indexed;
use flare_metrics::database::ScenarioId;
use flare_sim::datacenter::Corpus;
use flare_sim::machine::MachineConfig;
use flare_workloads::job::JobName;
use serde::{Deserialize, Serialize};

/// Ground-truth impact of a feature over the whole corpus.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroundTruth {
    /// Observation-weighted mean MIPS reduction over HP jobs, %.
    pub impact_pct: f64,
    /// Per-scenario impacts `(id, weight, impact_pct)` for scenarios with
    /// HP jobs.
    pub per_scenario: Vec<(ScenarioId, f64, f64)>,
    /// Number of scenario replays this evaluation cost.
    pub evaluation_cost: usize,
}

impl GroundTruth {
    /// The scenario impacts alone (for distribution analyses).
    pub fn impacts(&self) -> Vec<f64> {
        self.per_scenario.iter().map(|&(_, _, i)| i).collect()
    }
}

/// Evaluates `feature_config` against `baseline` on every HP-bearing
/// scenario of the corpus.
pub fn full_datacenter_impact<T: Testbed>(
    corpus: &Corpus,
    testbed: &T,
    baseline: &MachineConfig,
    feature_config: &MachineConfig,
    weight_by_observations: bool,
) -> GroundTruth {
    let mut per_scenario = Vec::new();
    let mut cost = 0usize;
    for e in corpus.entries() {
        if !e.scenario.has_hp_job() {
            continue;
        }
        cost += 1;
        if let Some(impact) = replay_impact(testbed, &e.scenario, baseline, feature_config) {
            let w = if weight_by_observations {
                e.observations as f64
            } else {
                1.0
            };
            per_scenario.push((e.id, w, impact));
        }
    }
    let total_w: f64 = per_scenario.iter().map(|&(_, w, _)| w).sum();
    let impact_pct = if total_w > 0.0 {
        per_scenario.iter().map(|&(_, w, i)| w * i).sum::<f64>() / total_w
    } else {
        0.0
    };
    GroundTruth {
        impact_pct,
        per_scenario,
        evaluation_cost: cost,
    }
}

/// Parallel variant of [`full_datacenter_impact`]: scenarios are replayed
/// across `threads` worker threads via [`flare_exec::par_map_indexed`],
/// which returns per-scenario results in corpus order regardless of
/// thread interleaving — the result is byte-identical to the serial
/// evaluation; only wall-clock changes.
///
/// Full-datacenter evaluation is the 50×-more-expensive baseline, so it is
/// the baseline most worth parallelizing — FLARE itself only replays ~18
/// scenarios (and parallelizes its own profiling/clustering through the
/// same primitive).
pub fn full_datacenter_impact_parallel<T: Testbed + Sync>(
    corpus: &Corpus,
    testbed: &T,
    baseline: &MachineConfig,
    feature_config: &MachineConfig,
    weight_by_observations: bool,
    threads: usize,
) -> GroundTruth {
    let entries: Vec<_> = corpus
        .entries()
        .iter()
        .filter(|e| e.scenario.has_hp_job())
        .collect();
    let per_scenario: Vec<(ScenarioId, f64, f64)> =
        par_map_indexed(&entries, Some(threads), |_, e| {
            replay_impact(testbed, &e.scenario, baseline, feature_config).map(|impact| {
                let w = if weight_by_observations {
                    e.observations as f64
                } else {
                    1.0
                };
                (e.id, w, impact)
            })
        })
        .into_iter()
        .flatten()
        .collect();

    let cost = entries.len();
    let total_w: f64 = per_scenario.iter().map(|&(_, w, _)| w).sum();
    let impact_pct = if total_w > 0.0 {
        per_scenario.iter().map(|&(_, w, i)| w * i).sum::<f64>() / total_w
    } else {
        0.0
    };
    GroundTruth {
        impact_pct,
        per_scenario,
        evaluation_cost: cost,
    }
}

/// Ground-truth impact on one HP job: the observation-and-instance
/// weighted mean over every scenario containing the job (the paper's
/// "average of all instances of each service").
///
/// Returns `None` if the job never appears.
pub fn full_datacenter_job_impact<T: Testbed>(
    corpus: &Corpus,
    testbed: &T,
    job: JobName,
    baseline: &MachineConfig,
    feature_config: &MachineConfig,
    weight_by_observations: bool,
) -> Option<f64> {
    let mut num = 0.0;
    let mut den = 0.0;
    for e in corpus.entries() {
        let instances = e.scenario.instances_of(job);
        if instances == 0 {
            continue;
        }
        if let Some(impact) = replay_job_impact(testbed, &e.scenario, job, baseline, feature_config)
        {
            let w = instances as f64
                * if weight_by_observations {
                    e.observations as f64
                } else {
                    1.0
                };
            num += w * impact;
            den += w;
        }
    }
    (den > 0.0).then(|| num / den)
}

#[cfg(test)]
mod tests {
    use super::*;
    use flare_core::replayer::SimTestbed;
    use flare_sim::datacenter::CorpusConfig;
    use flare_sim::feature::Feature;

    fn setup() -> (Corpus, MachineConfig) {
        let cfg = CorpusConfig {
            machines: 4,
            days: 2.0,
            tick_minutes: 15.0,
            ..CorpusConfig::default()
        };
        (Corpus::generate(&cfg), cfg.machine_config)
    }

    #[test]
    fn ground_truth_covers_hp_scenarios() {
        let (corpus, baseline) = setup();
        let f1 = Feature::paper_feature1().apply(&baseline);
        let gt = full_datacenter_impact(&corpus, &SimTestbed, &baseline, &f1, true);
        assert_eq!(gt.evaluation_cost, corpus.hp_entries().len());
        assert_eq!(gt.per_scenario.len(), gt.evaluation_cost);
        assert!(
            gt.impact_pct > 0.0 && gt.impact_pct < 40.0,
            "{}",
            gt.impact_pct
        );
    }

    #[test]
    fn baseline_vs_itself_is_zero() {
        let (corpus, baseline) = setup();
        let gt = full_datacenter_impact(&corpus, &SimTestbed, &baseline, &baseline, true);
        assert!(gt.impact_pct.abs() < 1e-9);
        assert!(gt.impacts().iter().all(|i| i.abs() < 1e-9));
    }

    #[test]
    fn per_job_truth_exists_for_hp_jobs() {
        let (corpus, baseline) = setup();
        let f2 = Feature::paper_feature2().apply(&baseline);
        for &job in JobName::HIGH_PRIORITY {
            let impact =
                full_datacenter_job_impact(&corpus, &SimTestbed, job, &baseline, &f2, true);
            assert!(impact.is_some(), "{job} should appear in the corpus");
            let i = impact.unwrap();
            assert!(i > 0.0 && i < 50.0, "{job}: {i}%");
        }
    }

    #[test]
    fn per_job_truth_none_for_absent_job() {
        let (corpus, baseline) = setup();
        let f1 = Feature::paper_feature1().apply(&baseline);
        // LP jobs are never measured as HP.
        assert_eq!(
            full_datacenter_job_impact(&corpus, &SimTestbed, JobName::Mcf, &baseline, &f1, true),
            None
        );
    }

    #[test]
    fn weighting_mode_changes_result() {
        let (corpus, baseline) = setup();
        let f3 = Feature::paper_feature3().apply(&baseline);
        let w = full_datacenter_impact(&corpus, &SimTestbed, &baseline, &f3, true);
        let u = full_datacenter_impact(&corpus, &SimTestbed, &baseline, &f3, false);
        // Same scenario set, different weighting — results differ but stay
        // in the same ballpark.
        assert!((w.impact_pct - u.impact_pct).abs() < 10.0);
    }
}

#[cfg(test)]
mod parallel_tests {
    use super::*;
    use flare_core::replayer::SimTestbed;
    use flare_sim::datacenter::CorpusConfig;
    use flare_sim::feature::Feature;

    #[test]
    fn parallel_matches_serial_exactly() {
        let cfg = CorpusConfig {
            machines: 4,
            days: 2.0,
            tick_minutes: 15.0,
            ..CorpusConfig::default()
        };
        let corpus = Corpus::generate(&cfg);
        let baseline = cfg.machine_config.clone();
        let f1 = Feature::paper_feature1().apply(&baseline);
        let serial = full_datacenter_impact(&corpus, &SimTestbed, &baseline, &f1, true);
        for threads in [1, 2, 4, 64] {
            let parallel = full_datacenter_impact_parallel(
                &corpus,
                &SimTestbed,
                &baseline,
                &f1,
                true,
                threads,
            );
            assert_eq!(
                serial.per_scenario, parallel.per_scenario,
                "threads={threads}"
            );
            assert_eq!(serial.evaluation_cost, parallel.evaluation_cost);
            assert!((serial.impact_pct - parallel.impact_pct).abs() < 1e-12);
        }
    }

    #[test]
    fn parallel_handles_empty_population() {
        // A corpus whose snapshots are all LP-only: construct by evaluating
        // on an empty corpus is impossible via the driver, so check the
        // zero-entry path directly with a tiny corpus filtered to nothing.
        let cfg = CorpusConfig {
            machines: 2,
            days: 0.05,
            lp_submit_prob: 0.0,
            hp_peak_share: 0.0,
            ..CorpusConfig::default()
        };
        let corpus = Corpus::generate(&cfg);
        let baseline = cfg.machine_config.clone();
        let gt =
            full_datacenter_impact_parallel(&corpus, &SimTestbed, &baseline, &baseline, true, 4);
        assert_eq!(gt.impact_pct, 0.0);
    }
}
