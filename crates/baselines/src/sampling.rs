//! Random-sampling evaluation: the statistical baseline of Figs. 12/13.
//!
//! "For the sampling, we randomly pick 18 job co-location scenarios (the
//! same evaluation overheads as FLARE) and estimate the performance from
//! them. We perform 1,000 sampling trials and show the resulting
//! distribution" (§5.3).

use flare_core::replayer::{replay_impact, replay_job_impact, Testbed};
use flare_linalg::stats::DistributionSummary;
use flare_sim::datacenter::Corpus;
use flare_sim::machine::MachineConfig;
use flare_workloads::job::JobName;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Configuration of a sampling experiment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SamplingConfig {
    /// Scenarios replayed per trial (paper: 18 to match FLARE's cost).
    pub n_samples: usize,
    /// Independent trials (paper: 1 000).
    pub trials: usize,
    /// RNG seed.
    pub seed: u64,
    /// Sample scenarios proportionally to their observation counts
    /// (`true` = observing the datacenter at random instants).
    pub weight_by_observations: bool,
}

impl Default for SamplingConfig {
    fn default() -> Self {
        SamplingConfig {
            n_samples: 18,
            trials: 1000,
            seed: 0x5A3717,
            weight_by_observations: true,
        }
    }
}

/// The distribution of estimates across sampling trials.
#[derive(Debug, Clone, PartialEq)]
pub struct SamplingDistribution {
    /// One estimate per trial.
    pub estimates: Vec<f64>,
    /// Summary statistics (violin/box data of Fig. 12a).
    pub summary: DistributionSummary,
    /// Scenario replays a *single* trial costs.
    pub cost_per_trial: usize,
}

impl SamplingDistribution {
    /// The 95 %-band half-width around the median — the paper's "expected
    /// max error" proxy for Fig. 13 when centred on the truth.
    pub fn central95_half_width(&self) -> f64 {
        self.summary.central95_half_width()
    }

    /// Worst absolute deviation of any trial estimate from `truth`.
    pub fn max_abs_error(&self, truth: f64) -> f64 {
        self.estimates
            .iter()
            .map(|e| (e - truth).abs())
            .fold(0.0, f64::max)
    }

    /// The 97.5th percentile of |estimate − truth| — a robust "expected
    /// max error" (Fig. 13's y-axis).
    pub fn expected_max_error(&self, truth: f64) -> f64 {
        let mut errs: Vec<f64> = self.estimates.iter().map(|e| (e - truth).abs()).collect();
        errs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let idx = ((errs.len() as f64 - 1.0) * 0.975).round() as usize;
        errs[idx]
    }
}

/// Weighted random index sampler (linear scan; populations are ≤ ~1 000).
///
/// Returns `None` when the weights cannot support a draw — an empty slice,
/// a non-finite total, or no strictly positive mass left. The previous
/// version fell through to `weights.len() - 1` in those cases, silently
/// re-drawing an already-exhausted (zero-weight) slot. The degenerate check
/// happens *before* the RNG draw, so valid inputs consume exactly the same
/// random stream as before the guard existed.
fn sample_index(weights: &[f64], rng: &mut StdRng) -> Option<usize> {
    let total: f64 = weights.iter().sum();
    if !total.is_finite() || total <= 0.0 {
        return None;
    }
    let mut target = rng.gen::<f64>() * total;
    for (i, &w) in weights.iter().enumerate() {
        if target < w {
            return Some(i);
        }
        target -= w;
    }
    // Floating-point residue pushed `target` past every weight: fall back
    // to the last slot that still has mass (never a zero-weight one).
    weights.iter().rposition(|&w| w > 0.0)
}

/// Runs the all-job sampling experiment: each trial draws `n_samples`
/// HP-bearing scenarios (without replacement) and averages their impacts.
///
/// Returns `None` if the corpus has no HP scenarios or `n_samples == 0`.
pub fn sampling_distribution<T: Testbed>(
    corpus: &Corpus,
    testbed: &T,
    baseline: &MachineConfig,
    feature_config: &MachineConfig,
    config: &SamplingConfig,
) -> Option<SamplingDistribution> {
    if config.n_samples == 0 || config.trials == 0 {
        return None;
    }
    // Pre-compute every HP scenario's impact once (the testbed is
    // deterministic, so this is exact and keeps 1 000 trials fast).
    let population: Vec<(f64, f64)> = corpus
        .entries()
        .iter()
        .filter(|e| e.scenario.has_hp_job())
        .filter_map(|e| {
            replay_impact(testbed, &e.scenario, baseline, feature_config).map(|impact| {
                let w = if config.weight_by_observations {
                    e.observations as f64
                } else {
                    1.0
                };
                (w, impact)
            })
        })
        .collect();
    if population.is_empty() {
        return None;
    }
    run_trials(&population, config)
}

/// Runs the per-job sampling experiment over scenarios containing `job`.
pub fn sampling_job_distribution<T: Testbed>(
    corpus: &Corpus,
    testbed: &T,
    job: JobName,
    baseline: &MachineConfig,
    feature_config: &MachineConfig,
    config: &SamplingConfig,
) -> Option<SamplingDistribution> {
    if config.n_samples == 0 || config.trials == 0 {
        return None;
    }
    let population: Vec<(f64, f64)> = corpus
        .entries()
        .iter()
        .filter(|e| e.scenario.has_job(job))
        .filter_map(|e| {
            replay_job_impact(testbed, &e.scenario, job, baseline, feature_config).map(|impact| {
                let w = e.scenario.instances_of(job) as f64
                    * if config.weight_by_observations {
                        e.observations as f64
                    } else {
                        1.0
                    };
                (w, impact)
            })
        })
        .collect();
    if population.is_empty() {
        return None;
    }
    run_trials(&population, config)
}

fn run_trials(population: &[(f64, f64)], config: &SamplingConfig) -> Option<SamplingDistribution> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let n = config.n_samples.min(population.len());
    let mut estimates = Vec::with_capacity(config.trials);
    for _ in 0..config.trials {
        // Weighted sampling without replacement.
        let mut weights: Vec<f64> = population.iter().map(|&(w, _)| w).collect();
        let mut total_impact = 0.0;
        let mut drawn = 0usize;
        for _ in 0..n {
            // The weight mass can run dry before `n` draws when the
            // population carries zero or non-finite weights; stop rather
            // than re-draw an exhausted slot.
            let Some(idx) = sample_index(&weights, &mut rng) else {
                break;
            };
            total_impact += population[idx].1;
            weights[idx] = 0.0;
            drawn += 1;
        }
        if drawn == 0 {
            return None;
        }
        estimates.push(total_impact / drawn as f64);
    }
    let summary = DistributionSummary::from_samples(&estimates).ok()?;
    Some(SamplingDistribution {
        estimates,
        summary,
        cost_per_trial: n,
    })
}

/// Occupancy-stratified sampling: a smarter baseline than the paper's
/// uniform sampling. Scenarios are bucketed by machine occupancy decile;
/// each trial draws proportionally from every bucket (a heuristic a
/// practitioner might reach for before FLARE: "cover the load range").
///
/// Returns `None` under the same conditions as [`sampling_distribution`].
pub fn stratified_sampling_distribution<T: Testbed>(
    corpus: &Corpus,
    testbed: &T,
    baseline: &MachineConfig,
    feature_config: &MachineConfig,
    config: &SamplingConfig,
) -> Option<SamplingDistribution> {
    if config.n_samples == 0 || config.trials == 0 {
        return None;
    }
    let vcpus = baseline.schedulable_vcpus();
    // Bucket the HP population by occupancy decile.
    let mut buckets: Vec<Vec<(f64, f64)>> = vec![Vec::new(); 11];
    for e in corpus.entries() {
        if !e.scenario.has_hp_job() {
            continue;
        }
        if let Some(impact) = replay_impact(testbed, &e.scenario, baseline, feature_config) {
            let w = if config.weight_by_observations {
                e.observations as f64
            } else {
                1.0
            };
            let b = ((e.scenario.occupancy(vcpus) * 10.0).floor() as usize).min(10);
            buckets[b].push((w, impact));
        }
    }
    let total_w: f64 = buckets.iter().flatten().map(|&(w, _)| w).sum();
    // `!(x > 0.0)` also rejects a NaN total, which `x <= 0.0` lets through.
    if !(total_w > 0.0) || !total_w.is_finite() {
        return None;
    }

    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut estimates = Vec::with_capacity(config.trials);
    for _ in 0..config.trials {
        // Allocate the sample budget proportionally to bucket weight
        // (at least 1 draw per non-empty bucket while budget lasts).
        let mut drawn = Vec::new();
        let mut budget = config.n_samples;
        let nonempty: Vec<usize> = (0..buckets.len())
            .filter(|&b| !buckets[b].is_empty())
            .collect();
        for &b in &nonempty {
            if budget == 0 {
                break;
            }
            let bucket_w: f64 = buckets[b].iter().map(|&(w, _)| w).sum();
            let quota = ((bucket_w / total_w * config.n_samples as f64).round() as usize)
                .clamp(1, budget)
                .min(buckets[b].len());
            let mut weights: Vec<f64> = buckets[b].iter().map(|&(w, _)| w).collect();
            for _ in 0..quota {
                let Some(idx) = sample_index(&weights, &mut rng) else {
                    break;
                };
                drawn.push(buckets[b][idx].1);
                weights[idx] = 0.0;
            }
            budget -= quota;
        }
        estimates.push(drawn.iter().sum::<f64>() / drawn.len() as f64);
    }
    let summary = DistributionSummary::from_samples(&estimates).ok()?;
    let cost = estimates
        .first()
        .map(|_| config.n_samples.min(buckets.iter().map(Vec::len).sum()))
        .unwrap_or(0);
    Some(SamplingDistribution {
        estimates,
        summary,
        cost_per_trial: cost,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use flare_core::replayer::SimTestbed;
    use flare_sim::datacenter::CorpusConfig;
    use flare_sim::feature::Feature;

    fn setup() -> (Corpus, MachineConfig) {
        let cfg = CorpusConfig {
            machines: 4,
            days: 2.0,
            tick_minutes: 15.0,
            ..CorpusConfig::default()
        };
        (Corpus::generate(&cfg), cfg.machine_config)
    }

    fn quick_config() -> SamplingConfig {
        SamplingConfig {
            n_samples: 10,
            trials: 200,
            ..SamplingConfig::default()
        }
    }

    #[test]
    fn sampling_centers_on_truth() {
        let (corpus, baseline) = setup();
        let f2 = Feature::paper_feature2().apply(&baseline);
        let truth =
            crate::fulldc::full_datacenter_impact(&corpus, &SimTestbed, &baseline, &f2, true)
                .impact_pct;
        let dist =
            sampling_distribution(&corpus, &SimTestbed, &baseline, &f2, &quick_config()).unwrap();
        // Sampling is unbiased: the mean of estimates tracks the truth.
        assert!(
            (dist.summary.mean - truth).abs() < 1.5,
            "sampling mean {} vs truth {truth}",
            dist.summary.mean
        );
        // But individual trials scatter.
        assert!(dist.summary.std_dev > 0.0);
        assert_eq!(dist.estimates.len(), 200);
        assert_eq!(dist.cost_per_trial, 10);
    }

    #[test]
    fn more_samples_reduce_spread() {
        let (corpus, baseline) = setup();
        let f1 = Feature::paper_feature1().apply(&baseline);
        let small = sampling_distribution(
            &corpus,
            &SimTestbed,
            &baseline,
            &f1,
            &SamplingConfig {
                n_samples: 5,
                trials: 300,
                ..SamplingConfig::default()
            },
        )
        .unwrap();
        let large = sampling_distribution(
            &corpus,
            &SimTestbed,
            &baseline,
            &f1,
            &SamplingConfig {
                n_samples: 50,
                trials: 300,
                ..SamplingConfig::default()
            },
        )
        .unwrap();
        assert!(
            large.summary.std_dev < small.summary.std_dev,
            "50-sample σ {} !< 5-sample σ {}",
            large.summary.std_dev,
            small.summary.std_dev
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let (corpus, baseline) = setup();
        let f3 = Feature::paper_feature3().apply(&baseline);
        let a =
            sampling_distribution(&corpus, &SimTestbed, &baseline, &f3, &quick_config()).unwrap();
        let b =
            sampling_distribution(&corpus, &SimTestbed, &baseline, &f3, &quick_config()).unwrap();
        assert_eq!(a.estimates, b.estimates);
    }

    #[test]
    fn per_job_sampling_works() {
        let (corpus, baseline) = setup();
        let f1 = Feature::paper_feature1().apply(&baseline);
        let dist = sampling_job_distribution(
            &corpus,
            &SimTestbed,
            JobName::GraphAnalytics,
            &baseline,
            &f1,
            &quick_config(),
        )
        .unwrap();
        assert!(dist.summary.mean.is_finite());
        // LP job: no HP measurements → None.
        assert!(sampling_job_distribution(
            &corpus,
            &SimTestbed,
            JobName::Sjeng,
            &baseline,
            &f1,
            &quick_config(),
        )
        .is_none());
    }

    #[test]
    fn error_metrics_behave() {
        let (corpus, baseline) = setup();
        let f2 = Feature::paper_feature2().apply(&baseline);
        let dist =
            sampling_distribution(&corpus, &SimTestbed, &baseline, &f2, &quick_config()).unwrap();
        let truth = dist.summary.mean;
        assert!(dist.expected_max_error(truth) <= dist.max_abs_error(truth) + 1e-12);
        assert!(dist.central95_half_width() >= 0.0);
    }

    #[test]
    fn stratified_sampling_is_unbiased_and_often_tighter() {
        let (corpus, baseline) = setup();
        let f3 = Feature::paper_feature3().apply(&baseline);
        let truth =
            crate::fulldc::full_datacenter_impact(&corpus, &SimTestbed, &baseline, &f3, true)
                .impact_pct;
        let cfg = SamplingConfig {
            n_samples: 15,
            trials: 300,
            ..SamplingConfig::default()
        };
        let uniform = sampling_distribution(&corpus, &SimTestbed, &baseline, &f3, &cfg).unwrap();
        let strat =
            stratified_sampling_distribution(&corpus, &SimTestbed, &baseline, &f3, &cfg).unwrap();
        // Near-unbiased (stratification can introduce small quota rounding
        // bias; allow a slightly wider band than uniform sampling).
        assert!(
            (strat.summary.mean - truth).abs() < 2.0,
            "stratified mean {} vs truth {truth}",
            strat.summary.mean
        );
        // Stratification should not be wildly worse than uniform.
        assert!(strat.summary.std_dev < uniform.summary.std_dev * 2.0);
        // Deterministic given the seed.
        let again =
            stratified_sampling_distribution(&corpus, &SimTestbed, &baseline, &f3, &cfg).unwrap();
        assert_eq!(strat.estimates, again.estimates);
    }

    #[test]
    fn sample_index_guards_degenerate_weights() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(sample_index(&[], &mut rng), None);
        assert_eq!(sample_index(&[0.0, 0.0, 0.0], &mut rng), None);
        assert_eq!(sample_index(&[f64::NAN, 1.0], &mut rng), None);
        assert_eq!(sample_index(&[f64::INFINITY, 1.0], &mut rng), None);
        assert_eq!(sample_index(&[1.0, f64::NEG_INFINITY], &mut rng), None);
        // A valid draw still lands on a slot with mass, never a zeroed one.
        for _ in 0..32 {
            let idx = sample_index(&[0.0, 2.0, 0.0, 3.0], &mut rng).unwrap();
            assert!(idx == 1 || idx == 3, "drew zero-weight slot {idx}");
        }
        // Degenerate calls must not consume randomness: after rejecting an
        // all-zero slice, the stream matches a fresh RNG that never saw it.
        let mut guarded = StdRng::seed_from_u64(7);
        let mut fresh = StdRng::seed_from_u64(7);
        assert_eq!(sample_index(&[0.0; 4], &mut guarded), None);
        assert_eq!(
            sample_index(&[1.0, 2.0, 3.0], &mut guarded),
            sample_index(&[1.0, 2.0, 3.0], &mut fresh)
        );
    }

    #[test]
    fn all_zero_weight_population_yields_no_distribution() {
        // Regression: this used to "sample" the last index every draw and
        // return a distribution built from duplicate picks.
        let population = vec![(0.0, 1.0), (0.0, 2.0), (0.0, 3.0)];
        assert!(run_trials(&population, &quick_config()).is_none());
        let nan_population = vec![(f64::NAN, 1.0), (1.0, 2.0)];
        assert!(run_trials(&nan_population, &quick_config()).is_none());
    }

    #[test]
    fn degenerate_configs_rejected() {
        let (corpus, baseline) = setup();
        let f1 = Feature::paper_feature1().apply(&baseline);
        let zero = SamplingConfig {
            n_samples: 0,
            ..quick_config()
        };
        assert!(sampling_distribution(&corpus, &SimTestbed, &baseline, &f1, &zero).is_none());
    }
}
