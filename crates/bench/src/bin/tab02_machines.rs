//! Table 2 & Table 5: datacenter machine specifications.

use flare_bench::banner;
use flare_sim::machine::MachineShape;

fn print_shape(name: &str, s: &MachineShape) {
    println!("\n[{name}] {}", s.model);
    println!("  sockets:          {}", s.sockets);
    println!(
        "  cores/socket:     {} ({} vCPUs/socket with SMT)",
        s.cores_per_socket, s.vcpus_per_socket
    );
    println!(
        "  LLC/socket:       {} MB (total {} MB)",
        s.llc_mb_per_socket,
        s.total_llc_mb()
    );
    println!(
        "  DRAM:             {} GB, {} GB/s usable",
        s.dram_gb, s.dram_bw_gbps
    );
    println!(
        "  clock:            {} - {} GHz",
        s.freq_min_ghz, s.freq_max_ghz
    );
    println!("  disk:             {} MB/s", s.disk_mbps);
    println!("  NIC:              {} Gb/s", s.nic_gbps);
}

fn main() {
    banner(
        "Datacenter machine specifications",
        "Table 2 (Default) and Table 5 (Default vs Small)",
    );
    print_shape("Default", &MachineShape::default_shape());
    print_shape("Small", &MachineShape::small_shape());
}
