//! # flare-bench
//!
//! The experiment harness that regenerates every table and figure of the
//! FLARE paper's evaluation (§3 and §5). Each `fig*`/`tab*` binary prints
//! the same rows/series the paper reports; `cargo bench` runs Criterion
//! micro-benchmarks of the computational kernels.
//!
//! Run e.g. `cargo run --release -p flare-bench --bin fig12a_alljob_accuracy`.

#![warn(missing_docs)]

use flare_core::{Flare, FlareConfig};
use flare_sim::datacenter::{Corpus, CorpusConfig};
use flare_sim::machine::MachineConfig;

/// The standard experimental context every figure binary shares: the
/// default 8-machine / 7-day corpus and a FLARE instance fitted with the
/// default (paper-matching) configuration.
pub struct ExperimentContext {
    /// The collected scenario corpus.
    pub corpus: Corpus,
    /// The baseline machine configuration (Table 4's "Baseline").
    pub baseline: MachineConfig,
    /// FLARE fitted on the corpus.
    pub flare: Flare,
}

impl ExperimentContext {
    /// Builds the standard context (deterministic; takes a few seconds).
    pub fn standard() -> Self {
        Self::with_corpus_config(&CorpusConfig::default())
    }

    /// Builds a context over an explicit corpus configuration.
    pub fn with_corpus_config(cfg: &CorpusConfig) -> Self {
        let corpus = Corpus::generate(cfg);
        let baseline = cfg.machine_config.clone();
        let flare = Flare::fit(corpus.clone(), FlareConfig::default()).expect("corpus fits");
        ExperimentContext {
            corpus,
            baseline,
            flare,
        }
    }
}

/// Prints a figure/table header in a consistent style.
pub fn banner(title: &str, paper_ref: &str) {
    println!("{}", "=".repeat(76));
    println!("{title}");
    println!("(reproduces {paper_ref})");
    println!("{}", "=".repeat(76));
}

/// Formats a float with fixed width for table alignment.
pub fn f(v: f64) -> String {
    format!("{v:>8.2}")
}

/// Renders a crude inline bar for terminal "plots".
pub fn bar(value: f64, max: f64, width: usize) -> String {
    if max <= 0.0 {
        return String::new();
    }
    let n = ((value / max) * width as f64).round().max(0.0) as usize;
    "#".repeat(n.min(width))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bar_scales() {
        assert_eq!(bar(5.0, 10.0, 10), "#####");
        assert_eq!(bar(0.0, 10.0, 10), "");
        assert_eq!(bar(20.0, 10.0, 10).len(), 10);
        assert_eq!(bar(1.0, 0.0, 10), "");
    }

    #[test]
    fn formatter_width() {
        assert_eq!(f(1.0).len(), 8);
    }
}
