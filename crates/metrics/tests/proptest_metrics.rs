//! Property-based tests of the metric-refinement invariants and of the
//! sharded-storage determinism contract (shard layout never changes
//! contents, queries, or the wire format).

use flare_metrics::correlation::{apply_refinement, correlation_matrix, refine};
use flare_metrics::database::{IngestPolicy, MetricDatabase, ScenarioId, ScenarioRecord};
use flare_metrics::schema::MetricSchema;
use proptest::prelude::*;

/// Builds a database over the first `d` canonical metrics with arbitrary
/// bounded values.
fn db_strategy(n: usize, d: usize) -> impl Strategy<Value = MetricDatabase> {
    prop::collection::vec(prop::collection::vec(0.0f64..1000.0, d), n..=n).prop_map(move |rows| {
        let schema = MetricSchema::canonical().subset(&(0..d).collect::<Vec<_>>());
        let mut db = MetricDatabase::new(schema);
        for (i, metrics) in rows.into_iter().enumerate() {
            db.insert(ScenarioRecord {
                id: ScenarioId(i as u32),
                metrics,
                observations: 1,
                job_mix: vec![],
            })
            .expect("schema-aligned");
        }
        db
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// THE refinement invariant: after pruning at threshold t, no kept
    /// pair correlates at |r| >= t.
    #[test]
    fn refined_set_has_no_pair_above_threshold(
        db in db_strategy(15, 8),
        threshold in 0.5f64..0.99,
    ) {
        let report = refine(&db, threshold).unwrap();
        let refined = apply_refinement(&db, &report).unwrap();
        let data = refined.to_matrix().unwrap();
        let corr = correlation_matrix(data).unwrap();
        for i in 0..data.ncols() {
            for j in (i + 1)..data.ncols() {
                prop_assert!(
                    corr[(i, j)].abs() < threshold,
                    "kept pair ({i},{j}) correlates at {}",
                    corr[(i, j)]
                );
            }
        }
    }

    /// Every dropped metric names a kept subsumer it correlates with at or
    /// above the threshold.
    #[test]
    fn dropped_metrics_have_valid_justification(
        db in db_strategy(12, 6),
        threshold in 0.5f64..0.99,
    ) {
        let report = refine(&db, threshold).unwrap();
        for d in &report.dropped {
            prop_assert!(d.correlation.abs() >= threshold);
            // The subsumer must itself be kept.
            let kept_ids: Vec<_> = report
                .kept_indices
                .iter()
                .map(|&i| db.schema().id_at(i))
                .collect();
            prop_assert!(kept_ids.contains(&d.kept));
        }
        // Kept + dropped partition the schema.
        prop_assert_eq!(
            report.kept_count() + report.dropped_count(),
            db.schema().len()
        );
    }

    /// Refinement at a lower threshold never keeps more metrics.
    #[test]
    fn lower_threshold_prunes_at_least_as_much(db in db_strategy(12, 6)) {
        let strict = refine(&db, 0.6).unwrap();
        let loose = refine(&db, 0.95).unwrap();
        prop_assert!(strict.kept_count() <= loose.kept_count());
    }

    /// Projection through a refinement report preserves scenario rows and
    /// observation weights.
    #[test]
    fn refinement_preserves_rows(db in db_strategy(10, 5)) {
        let report = refine(&db, 0.9).unwrap();
        let refined = apply_refinement(&db, &report).unwrap();
        prop_assert_eq!(refined.len(), db.len());
        prop_assert_eq!(refined.total_observations(), db.total_observations());
        for rec in db.iter() {
            let r = refined.get(rec.id).unwrap();
            prop_assert_eq!(r.observations, rec.observations);
        }
    }

    /// The correlation matrix is symmetric with a unit diagonal and
    /// entries in [-1, 1].
    #[test]
    fn correlation_matrix_well_formed(db in db_strategy(10, 5)) {
        let data = db.to_matrix().unwrap();
        let c = correlation_matrix(data).unwrap();
        for i in 0..5 {
            prop_assert!((c[(i, i)] - 1.0).abs() < 1e-12);
            for j in 0..5 {
                prop_assert!((c[(i, j)] - c[(j, i)]).abs() < 1e-12);
                prop_assert!(c[(i, j)].abs() <= 1.0 + 1e-9);
            }
        }
    }
}

/// Arbitrary small record batches over a 3-metric schema: unsorted,
/// possibly duplicated ids, possibly non-finite cells.
fn batch_strategy() -> impl Strategy<Value = Vec<ScenarioRecord>> {
    prop::collection::vec(
        (
            0u32..30,
            prop::collection::vec(-1000.0f64..1000.0, 3),
            1u32..5,
        ),
        1..40,
    )
    .prop_map(|raw| {
        raw.into_iter()
            .map(|(id, metrics, observations)| ScenarioRecord {
                id: ScenarioId(id),
                metrics,
                observations,
                job_mix: vec![("DC".into(), 1 + id % 3)],
            })
            .collect()
    })
}

fn small_schema() -> MetricSchema {
    MetricSchema::canonical().subset(&[0, 1, 2])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// THE sharding invariant: for any shard size, a sharded database is
    /// byte-identical to the unsharded (default single-shard) one — same
    /// equality, same row views, same dense matrix.
    #[test]
    fn sharded_database_is_byte_identical_to_unsharded(
        batch in batch_strategy(),
        shard_rows in 1usize..6,
    ) {
        let mut sharded = MetricDatabase::with_shard_rows(small_schema(), shard_rows);
        let mut unsharded = MetricDatabase::new(small_schema());
        for r in &batch {
            sharded.insert(r.clone()).unwrap();
            unsharded.insert(r.clone()).unwrap();
        }
        prop_assert_eq!(&sharded, &unsharded);
        for i in 0..sharded.len() {
            prop_assert_eq!(sharded.row_at(i).to_record(), unsharded.row_at(i).to_record());
        }
        let a = sharded.to_matrix().unwrap();
        let b = unsharded.to_matrix().unwrap();
        prop_assert_eq!(a.shape(), b.shape());
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    /// Serde round-trip preserves both contents and the shard-size knob,
    /// and the sharded wire payload differs from the legacy shape only by
    /// the optional shard_rows key.
    #[test]
    fn sharded_serde_roundtrip_matches_unsharded(
        batch in batch_strategy(),
        shard_rows in 1usize..6,
    ) {
        let mut sharded = MetricDatabase::with_shard_rows(small_schema(), shard_rows);
        let mut unsharded = MetricDatabase::new(small_schema());
        let policy = IngestPolicy::default();
        // ingest (vs insert) also exercises the quarantine path equally.
        let ra = sharded.ingest(batch.clone(), &policy);
        let rb = unsharded.ingest(batch, &policy);
        prop_assert_eq!(ra, rb);

        let back = MetricDatabase::from_json(&sharded.to_json().unwrap()).unwrap();
        prop_assert_eq!(&back, &sharded);
        prop_assert_eq!(back.shard_rows(), shard_rows.max(1));

        let mut vs: serde_json::Value =
            serde_json::from_str(&sharded.to_json().unwrap()).unwrap();
        let vu: serde_json::Value =
            serde_json::from_str(&unsharded.to_json().unwrap()).unwrap();
        vs.as_object_mut().unwrap().remove("shard_rows");
        prop_assert_eq!(vs, vu);
    }
}
