//! Fig. 9: SSE and Silhouette Score across cluster counts; the selection
//! rule picks where returns diminish.

use flare_bench::{banner, bar, ExperimentContext};
use flare_cluster::kmeans::KMeansConfig;
use flare_cluster::sweep::sweep_kmeans;

fn main() {
    banner("SSE and Silhouette Score vs cluster count", "Fig. 9");
    let ctx = ExperimentContext::standard();
    let projected = ctx.flare.analyzer().projected().coalesced();

    let ks: Vec<usize> = (2..=40).step_by(2).collect();
    let sweep = sweep_kmeans(projected, &ks, &KMeansConfig::new(2).with_restarts(4))
        .expect("sweep over whitened corpus");

    let max_sse = sweep.points.iter().map(|p| p.sse).fold(0.0, f64::max);
    println!("\n  {:>4} {:>12} {:>12}", "k", "SSE", "silhouette");
    for p in &sweep.points {
        println!(
            "  {:>4} {:>12.1} {:>12.3}  SSE|{:<24}",
            p.k,
            p.sse,
            p.silhouette,
            bar(p.sse, max_sse, 24),
        );
    }
    println!("\nSSE knee at k = {:?}", sweep.knee_k());
    println!("best silhouette at k = {:?}", sweep.best_silhouette_k());
    println!("recommended k = {:?}", sweep.recommended_k());
    println!("paper's choice for its corpus: 18 (balance of quality and cost)");
}
