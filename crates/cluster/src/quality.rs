//! Clustering quality metrics: SSE and Silhouette Score.
//!
//! The paper (§4.4, Fig. 9) selects the cluster count by inspecting the Sum
//! of Squared Errors elbow together with the Silhouette Score, because the
//! scenarios have no ground-truth labels (unsupervised setting).

use crate::distance::squared_euclidean;
use crate::error::{ClusterError, Result};
use flare_linalg::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Mean Silhouette Score over all points, in `[-1, 1]`; higher is better.
///
/// For each point: `a` = mean distance to other members of its own cluster,
/// `b` = lowest mean distance to the members of any other cluster, and the
/// silhouette is `(b - a) / max(a, b)`. Points in singleton clusters score 0
/// by convention (Rousseeuw 1987).
///
/// # Errors
///
/// - [`ClusterError::DimensionMismatch`] if `assignments.len() != data.nrows()`.
/// - [`ClusterError::InvalidParameter`] if fewer than 2 clusters are
///   present, or an assignment index is out of range.
/// - [`ClusterError::TooFewPoints`] if `data` has fewer than 2 rows.
///
/// # Examples
///
/// ```
/// use flare_cluster::quality::silhouette_score;
/// use flare_linalg::Matrix;
///
/// let data = Matrix::from_rows(&[
///     vec![0.0], vec![0.1], vec![10.0], vec![10.1],
/// ]).unwrap();
/// let s = silhouette_score(&data, &[0, 0, 1, 1], 2).unwrap();
/// assert!(s > 0.9);
/// ```
pub fn silhouette_score(data: &Matrix, assignments: &[usize], k: usize) -> Result<f64> {
    silhouette_with(data.nrows(), assignments, k, |i, sums| {
        let ri = data.row(i);
        for (j, &a) in assignments.iter().enumerate() {
            if j != i {
                sums[a] += squared_euclidean(ri, data.row(j)).sqrt();
            }
        }
    })
}

/// [`silhouette_score`] over a prebuilt [`PairwiseDistances`] cache.
///
/// The cluster-count sweep evaluates a silhouette per candidate `k` over
/// the *same* points; the pairwise distances depend only on the data, so
/// the sweep builds the cache once and calls this per candidate instead
/// of re-deriving the full O(n²·d) distance set every time. The cache
/// stores exactly the bits the on-the-fly computation produces and the
/// accumulation order is unchanged, so cached and uncached scores are
/// byte-identical (held by a differential proptest).
///
/// # Errors
///
/// Same conditions as [`silhouette_score`], with `n` taken from the cache.
pub fn silhouette_score_cached(
    dists: &crate::kernel::PairwiseDistances,
    assignments: &[usize],
    k: usize,
) -> Result<f64> {
    silhouette_with(dists.n(), assignments, k, |i, sums| {
        // The cache row is a contiguous slice (full-matrix layout), so
        // this is a straight sequential walk — same j order, same values,
        // same bits as the on-the-fly accumulation above.
        for (j, (&d, &a)) in dists.row(i).iter().zip(assignments).enumerate() {
            if j != i {
                sums[a] += d;
            }
        }
    })
}

/// [`silhouette_score`] estimated on a deterministic, seeded, stratified
/// subsample of at most `sample` points — the scale fallback for corpora
/// too large for the O(n²) pairwise cache *and* too large for the exact
/// O(n²·d) on-the-fly recompute.
///
/// The subsample is stratified by cluster: each populated cluster
/// contributes `ceil(sample · size/n)` members (always at least one, so no
/// populated cluster vanishes from the estimate), drawn without
/// replacement by a seeded partial Fisher–Yates shuffle and re-sorted into
/// ascending row order. The exact silhouette is then computed on the
/// subset. Fully deterministic given `(assignments, sample, seed)` —
/// repeated sweeps produce identical estimates.
///
/// `sample == 0` disables subsampling; it and `n <= sample` delegate to
/// the exact [`silhouette_score`] (bit-identical).
///
/// # Errors
///
/// Same conditions as [`silhouette_score`], validated against the *full*
/// input.
pub fn silhouette_score_subsampled(
    data: &Matrix,
    assignments: &[usize],
    k: usize,
    sample: usize,
    seed: u64,
) -> Result<f64> {
    let n = data.nrows();
    if sample == 0 || n <= sample {
        return silhouette_score(data, assignments, k);
    }
    // Validate the full input up front so error messages refer to it, then
    // score the subset exactly.
    validate_silhouette_input(n, assignments, k)?;
    let picked = stratified_sample(assignments, k, sample, seed);
    let rows: Vec<Vec<f64>> = picked.iter().map(|&i| data.row(i).to_vec()).collect();
    let sub_assignments: Vec<usize> = picked.iter().map(|&i| assignments[i]).collect();
    let sub = Matrix::from_rows(&rows).expect("sampled rows share the data's width");
    silhouette_score(&sub, &sub_assignments, k)
}

/// Stratified sampling core of [`silhouette_score_subsampled`]: per-cluster
/// proportional allocation (ceil, so every populated cluster keeps at
/// least one member), seeded partial Fisher–Yates within each cluster,
/// ascending row order out.
fn stratified_sample(assignments: &[usize], k: usize, sample: usize, seed: u64) -> Vec<usize> {
    let n = assignments.len();
    let mut members: Vec<Vec<usize>> = vec![Vec::new(); k];
    for (i, &a) in assignments.iter().enumerate() {
        members[a].push(i);
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut picked = Vec::with_capacity(sample + k);
    for cluster in members.iter_mut().filter(|m| !m.is_empty()) {
        let take = (sample * cluster.len()).div_ceil(n).min(cluster.len());
        // Partial Fisher–Yates: the first `take` slots end up holding a
        // uniform without-replacement draw.
        for slot in 0..take {
            let j = rng.gen_range(slot..cluster.len());
            cluster.swap(slot, j);
        }
        picked.extend_from_slice(&cluster[..take]);
    }
    picked.sort_unstable();
    picked
}

/// The validation half of [`silhouette_with`], shared with the subsampled
/// estimator (which must reject bad input by looking at the full
/// assignment vector, not the subset).
fn validate_silhouette_input(n: usize, assignments: &[usize], k: usize) -> Result<()> {
    if n < 2 {
        return Err(ClusterError::TooFewPoints { points: n, k });
    }
    if assignments.len() != n {
        return Err(ClusterError::DimensionMismatch(format!(
            "{} assignments for {n} points",
            assignments.len()
        )));
    }
    if let Some(&bad) = assignments.iter().find(|&&a| a >= k) {
        return Err(ClusterError::InvalidParameter(format!(
            "assignment {bad} out of range for k={k}"
        )));
    }
    let mut sizes = vec![0usize; k];
    for &a in assignments {
        sizes[a] += 1;
    }
    if sizes.iter().filter(|&&s| s > 0).count() < 2 {
        return Err(ClusterError::InvalidParameter(
            "silhouette requires at least two non-empty clusters".into(),
        ));
    }
    Ok(())
}

/// The shared silhouette core: validation plus the Rousseeuw 1987
/// accumulation, generic over the per-point distance accumulator.
/// `fill_sums(i, sums)` must add point `i`'s distance to every other
/// point `j` into `sums[assignments[j]]`, in ascending `j` order — both
/// providers feed the same values in the same order, so they produce the
/// same bits.
fn silhouette_with(
    n: usize,
    assignments: &[usize],
    k: usize,
    fill_sums: impl Fn(usize, &mut [f64]),
) -> Result<f64> {
    validate_silhouette_input(n, assignments, k)?;
    let mut sizes = vec![0usize; k];
    for &a in assignments {
        sizes[a] += 1;
    }

    let mut total = 0.0;
    let mut sums = vec![0.0f64; k];
    for (i, &own) in assignments.iter().enumerate() {
        if sizes[own] <= 1 {
            // Singleton clusters contribute silhouette 0.
            continue;
        }
        // Mean distance from i to every cluster.
        sums.fill(0.0);
        fill_sums(i, &mut sums);
        let a = sums[own] / (sizes[own] - 1) as f64;
        let b = (0..k)
            .filter(|&c| c != own && sizes[c] > 0)
            .map(|c| sums[c] / sizes[c] as f64)
            .fold(f64::INFINITY, f64::min);
        let denom = a.max(b);
        if denom > 0.0 {
            total += (b - a) / denom;
        }
    }
    Ok(total / n as f64)
}

/// Sum of squared errors of an assignment against explicit centroids.
///
/// # Errors
///
/// - [`ClusterError::DimensionMismatch`] if lengths or dimensionalities
///   disagree.
/// - [`ClusterError::InvalidParameter`] if an assignment is out of range.
pub fn sse(data: &Matrix, centroids: &[Vec<f64>], assignments: &[usize]) -> Result<f64> {
    if assignments.len() != data.nrows() {
        return Err(ClusterError::DimensionMismatch(format!(
            "{} assignments for {} points",
            assignments.len(),
            data.nrows()
        )));
    }
    for c in centroids {
        if c.len() != data.ncols() {
            return Err(ClusterError::DimensionMismatch(format!(
                "centroid of dim {} for data of dim {}",
                c.len(),
                data.ncols()
            )));
        }
    }
    if let Some(&bad) = assignments.iter().find(|&&a| a >= centroids.len()) {
        return Err(ClusterError::InvalidParameter(format!(
            "assignment {bad} out of range for {} centroids",
            centroids.len()
        )));
    }
    Ok(assignments
        .iter()
        .enumerate()
        .map(|(i, &a)| squared_euclidean(data.row(i), &centroids[a]))
        .sum())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_blobs() -> (Matrix, Vec<usize>) {
        let data = Matrix::from_rows(&[
            vec![0.0, 0.0],
            vec![0.2, 0.1],
            vec![0.1, 0.3],
            vec![8.0, 8.0],
            vec![8.2, 8.1],
            vec![8.1, 8.3],
        ])
        .unwrap();
        (data, vec![0, 0, 0, 1, 1, 1])
    }

    #[test]
    fn well_separated_blobs_score_high() {
        let (data, asg) = two_blobs();
        let s = silhouette_score(&data, &asg, 2).unwrap();
        assert!(s > 0.9, "silhouette {s}");
    }

    #[test]
    fn bad_assignment_scores_low() {
        let (data, _) = two_blobs();
        // Deliberately mix the blobs.
        let bad = vec![0, 1, 0, 1, 0, 1];
        let s = silhouette_score(&data, &bad, 2).unwrap();
        assert!(s < 0.1, "silhouette {s}");
    }

    #[test]
    fn silhouette_bounds() {
        let (data, asg) = two_blobs();
        let s = silhouette_score(&data, &asg, 2).unwrap();
        assert!((-1.0..=1.0).contains(&s));
    }

    #[test]
    fn singleton_cluster_counts_zero() {
        let data = Matrix::from_rows(&[vec![0.0], vec![0.1], vec![5.0]]).unwrap();
        let s = silhouette_score(&data, &[0, 0, 1], 2).unwrap();
        // The singleton contributes 0; the pair contributes ~1 each → ~2/3.
        assert!(s > 0.5 && s < 1.0);
    }

    #[test]
    fn silhouette_validates() {
        let (data, asg) = two_blobs();
        assert!(silhouette_score(&data, &asg[..5], 2).is_err());
        assert!(silhouette_score(&data, &[0; 6], 2).is_err()); // single populated cluster
        assert!(silhouette_score(&data, &[0, 0, 0, 1, 1, 5], 2).is_err());
    }

    #[test]
    fn subsampled_delegates_to_exact_when_not_needed() {
        let (data, asg) = two_blobs();
        let exact = silhouette_score(&data, &asg, 2).unwrap();
        // sample >= n and sample == 0 are both exact, bit for bit.
        for sample in [0, 6, 100] {
            let s = silhouette_score_subsampled(&data, &asg, 2, sample, 7).unwrap();
            assert_eq!(s.to_bits(), exact.to_bits(), "sample={sample}");
        }
    }

    #[test]
    fn subsampled_is_deterministic_and_bounded() {
        // 3 clusters of very different sizes, far apart.
        let mut rows = Vec::new();
        let mut asg = Vec::new();
        for (c, (cx, size)) in [(0.0, 40), (100.0, 12), (200.0, 3)].iter().enumerate() {
            for p in 0..*size {
                rows.push(vec![cx + (p as f64 * 0.01), 0.0]);
                asg.push(c);
            }
        }
        let data = Matrix::from_rows(&rows).unwrap();
        let a = silhouette_score_subsampled(&data, &asg, 3, 10, 42).unwrap();
        let b = silhouette_score_subsampled(&data, &asg, 3, 10, 42).unwrap();
        assert_eq!(a.to_bits(), b.to_bits());
        assert!((-1.0..=1.0).contains(&a));
        // Well-separated clusters estimate high even from 10 of 55 points.
        assert!(a > 0.9, "subsampled silhouette {a}");
    }

    #[test]
    fn stratified_sample_keeps_every_populated_cluster() {
        // Heavily skewed sizes: 50 / 5 / 1. Proportional-floor sampling
        // would drop the singleton; the ceil allocation must keep it.
        let mut asg = vec![0usize; 50];
        asg.extend(vec![1usize; 5]);
        asg.push(2);
        for seed in 0..20u64 {
            let picked = stratified_sample(&asg, 3, 8, seed);
            assert!(picked.len() >= 3 && picked.len() <= 8 + 3, "{picked:?}");
            assert!(picked.windows(2).all(|w| w[0] < w[1]), "sorted, unique");
            for c in 0..3 {
                assert!(
                    picked.iter().any(|&i| asg[i] == c),
                    "cluster {c} lost from {picked:?} (seed {seed})"
                );
            }
        }
    }

    #[test]
    fn subsampled_validates_against_the_full_input() {
        let (data, asg) = two_blobs();
        // Length mismatch and out-of-range assignments are caught even
        // though only a subset would be scored.
        assert!(silhouette_score_subsampled(&data, &asg[..5], 2, 3, 0).is_err());
        assert!(silhouette_score_subsampled(&data, &[0, 0, 0, 1, 1, 5], 2, 3, 0).is_err());
        assert!(silhouette_score_subsampled(&data, &[0; 6], 2, 3, 0).is_err());
    }

    #[test]
    fn sse_known_value() {
        let data = Matrix::from_rows(&[vec![0.0], vec![2.0]]).unwrap();
        let v = sse(&data, &[vec![1.0]], &[0, 0]).unwrap();
        assert_eq!(v, 2.0);
    }

    #[test]
    fn sse_validates() {
        let data = Matrix::from_rows(&[vec![0.0], vec![2.0]]).unwrap();
        assert!(sse(&data, &[vec![1.0, 2.0]], &[0, 0]).is_err());
        assert!(sse(&data, &[vec![1.0]], &[0]).is_err());
        assert!(sse(&data, &[vec![1.0]], &[0, 1]).is_err());
    }
}
