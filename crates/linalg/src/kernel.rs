//! Eigendecomposition kernel layer: Householder tridiagonalization followed
//! by implicit-shift QL iteration.
//!
//! The cyclic Jacobi solver behind the Analyzer's PCA (§4.3 of the paper)
//! was the last un-kerneled O(n³) hot path. Jacobi needs ~8 full sweeps of
//! ~6n³ flops each to drive the off-diagonal mass below threshold; the
//! classic EISPACK pair used here — `tred2` (Householder reduction to
//! tridiagonal form with the orthogonal transform accumulated) and `tql2`
//! (implicit-shift QL on the tridiagonal) — does one ~3n³ reduction plus an
//! O(n²)-per-eigenvalue iteration. At the covariance sizes FLARE produces
//! (~60–250 metric columns) that is an order of magnitude fewer flops.
//!
//! # Exactness contract
//!
//! Mirroring the k-means and evaluation kernel layers, the slow path stays
//! in-tree as a differential oracle
//! ([`crate::eigen::symmetric_eigen_naive`]). Unlike those layers the two
//! eigen paths are *different algorithms*, so they agree to a documented
//! tolerance rather than bit-for-bit:
//!
//! - eigenvalues agree within [`ORACLE_EIGENVALUE_RTOL`] × the spectral
//!   scale `max(1, max|λ|)`, per eigenvalue ([`eigenvalues_agree`]);
//! - both produce orthonormal eigenvectors that reconstruct
//!   `A = V diag(λ) Vᵀ` to the same scale;
//! - both emit eigenpairs in descending order with the shared
//!   sign-canonicalization (largest-|·| component of each eigenvector made
//!   positive), because both finish through the same finalize helper.
//!
//! Speed is a wall-clock knob, never a results knob: the differential
//! proptests and the `abl16_eigen_kernels` bench assert agreement *before*
//! any timing.

use crate::eigen::{finalize_pairs, validate_symmetric_input, EigenDecomposition};
use crate::error::{LinalgError, Result};
use crate::matrix::Matrix;

/// Per-eigenvalue iteration budget for the implicit-shift QL stage. QL with
/// Wilkinson-style shifts converges cubically; EISPACK's historical budget
/// of 30 has never been exhausted on a finite symmetric tridiagonal input.
const MAX_QL_ITERS: usize = 30;

/// Relative tolerance at which kernel and oracle eigenvalues must agree.
///
/// Both solvers compute eigenvalues accurate to O(n·ε·‖A‖); the Jacobi
/// oracle additionally accepts a loosened `1e-9`-relative off-diagonal norm
/// after its sweep budget, so `1e-9` × the spectral scale is the contract
/// the differential tests and the `abl16_eigen_kernels` bench enforce.
pub const ORACLE_EIGENVALUE_RTOL: f64 = 1e-9;

/// `true` if two descending eigenvalue lists agree within
/// [`ORACLE_EIGENVALUE_RTOL`] × `max(1, max|λ|)` element-wise.
///
/// Shared by the differential proptests and the bench so "agreement" means
/// exactly one thing everywhere.
pub fn eigenvalues_agree(kernel: &[f64], oracle: &[f64]) -> bool {
    if kernel.len() != oracle.len() {
        return false;
    }
    let scale = oracle.iter().fold(1.0f64, |m, &l| m.max(l.abs()));
    kernel
        .iter()
        .zip(oracle)
        .all(|(a, b)| (a - b).abs() <= ORACLE_EIGENVALUE_RTOL * scale)
}

/// Full symmetric eigendecomposition via `tred2` + `tql2` — the kernel fast
/// path behind [`crate::eigen::symmetric_eigen`].
///
/// # Errors
///
/// - Input validation errors as documented on
///   [`crate::eigen::symmetric_eigen`].
/// - [`LinalgError::NoConvergence`] if an eigenvalue fails to settle within
///   [`MAX_QL_ITERS`] QL iterations (practically unreachable for finite
///   symmetric input).
pub fn symmetric_eigen_tridiagonal(a: &Matrix) -> Result<EigenDecomposition> {
    let n = validate_symmetric_input(a, "symmetric_eigen")?;
    let mut z = a.clone();
    let mut d = vec![0.0; n];
    let mut e = vec![0.0; n];
    tred2(&mut z, &mut d, &mut e);
    tql2(&mut d, &mut e, &mut z)?;
    Ok(finalize_pairs(d, z))
}

/// Householder reduction of the symmetric matrix in `z` to tridiagonal form
/// (EISPACK `tred2`). On return `d` holds the diagonal, `e` the subdiagonal
/// (with `e[0] == 0`), and `z` the accumulated orthogonal transform `Q` such
/// that `Qᵀ A Q` is tridiagonal.
fn tred2(z: &mut Matrix, d: &mut [f64], e: &mut [f64]) {
    let n = z.nrows();
    for i in (1..n).rev() {
        let l = i - 1;
        let mut h = 0.0;
        if l > 0 {
            let scale: f64 = (0..=l).map(|k| z[(i, k)].abs()).sum();
            if scale == 0.0 {
                // Row already tridiagonal at this step; skip the reflection.
                e[i] = z[(i, l)];
            } else {
                for k in 0..=l {
                    z[(i, k)] /= scale;
                    h += z[(i, k)] * z[(i, k)];
                }
                let mut f = z[(i, l)];
                let mut g = if f >= 0.0 { -h.sqrt() } else { h.sqrt() };
                e[i] = scale * g;
                h -= f * g;
                z[(i, l)] = f - g;
                f = 0.0;
                for j in 0..=l {
                    // Store u/H in column i for the accumulation pass below.
                    z[(j, i)] = z[(i, j)] / h;
                    g = 0.0;
                    for k in 0..=j {
                        g += z[(j, k)] * z[(i, k)];
                    }
                    for k in (j + 1)..=l {
                        g += z[(k, j)] * z[(i, k)];
                    }
                    e[j] = g / h;
                    f += e[j] * z[(i, j)];
                }
                let hh = f / (h + h);
                for j in 0..=l {
                    f = z[(i, j)];
                    g = e[j] - hh * f;
                    e[j] = g;
                    for k in 0..=j {
                        let upd = f * e[k] + g * z[(i, k)];
                        z[(j, k)] -= upd;
                    }
                }
            }
        } else {
            e[i] = z[(i, l)];
        }
        d[i] = h;
    }
    d[0] = 0.0;
    e[0] = 0.0;
    // Accumulate the Householder transformations into z.
    for i in 0..n {
        if d[i] != 0.0 {
            for j in 0..i {
                let mut g = 0.0;
                for k in 0..i {
                    g += z[(i, k)] * z[(k, j)];
                }
                for k in 0..i {
                    let upd = g * z[(k, i)];
                    z[(k, j)] -= upd;
                }
            }
        }
        d[i] = z[(i, i)];
        z[(i, i)] = 1.0;
        for j in 0..i {
            z[(j, i)] = 0.0;
            z[(i, j)] = 0.0;
        }
    }
}

/// Implicit-shift QL iteration on the tridiagonal matrix `(d, e)` produced
/// by [`tred2`] (EISPACK `tql2`). On success `d` holds the (unordered)
/// eigenvalues and the columns of `z` the matching eigenvectors.
fn tql2(d: &mut [f64], e: &mut [f64], z: &mut Matrix) -> Result<()> {
    let n = d.len();
    if n < 2 {
        return Ok(());
    }
    for i in 1..n {
        e[i - 1] = e[i];
    }
    e[n - 1] = 0.0;

    for l in 0..n {
        let mut iter = 0;
        loop {
            // Find the first negligible subdiagonal element at or after l.
            let mut m = l;
            while m < n - 1 {
                let dd = d[m].abs() + d[m + 1].abs();
                if e[m].abs() <= f64::EPSILON * dd {
                    break;
                }
                m += 1;
            }
            if m == l {
                break;
            }
            iter += 1;
            if iter > MAX_QL_ITERS {
                return Err(LinalgError::NoConvergence {
                    algorithm: "implicit-shift QL eigendecomposition",
                    iterations: MAX_QL_ITERS,
                });
            }
            // Wilkinson-style shift from the leading 2×2.
            let mut g = (d[l + 1] - d[l]) / (2.0 * e[l]);
            let mut r = g.hypot(1.0);
            g = d[m] - d[l] + e[l] / (g + r.copysign(g));
            let mut s = 1.0;
            let mut c = 1.0;
            let mut p = 0.0;
            let mut underflow = false;
            let mut i = m - 1;
            loop {
                let mut f = s * e[i];
                let b = c * e[i];
                r = f.hypot(g);
                e[i + 1] = r;
                if r == 0.0 {
                    // Recover from underflow by restarting the search.
                    d[i + 1] -= p;
                    e[m] = 0.0;
                    underflow = true;
                    break;
                }
                s = f / r;
                c = g / r;
                g = d[i + 1] - p;
                r = (d[i] - g) * s + 2.0 * c * b;
                p = s * r;
                d[i + 1] = g + p;
                g = c * r - b;
                for k in 0..n {
                    f = z[(k, i + 1)];
                    z[(k, i + 1)] = s * z[(k, i)] + c * f;
                    z[(k, i)] = c * z[(k, i)] - s * f;
                }
                if i == l {
                    break;
                }
                i -= 1;
            }
            if underflow {
                continue;
            }
            d[l] -= p;
            e[l] = g;
            e[m] = 0.0;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eigen::symmetric_eigen_naive;

    fn reconstruction_error(a: &Matrix, e: &EigenDecomposition) -> f64 {
        let n = a.nrows();
        let mut lambda = Matrix::zeros(n, n);
        for i in 0..n {
            lambda[(i, i)] = e.eigenvalues[i];
        }
        let recon = e
            .eigenvectors
            .matmul(&lambda)
            .unwrap()
            .matmul(&e.eigenvectors.transpose())
            .unwrap();
        recon.sub(a).unwrap().frobenius_norm()
    }

    fn orthonormality_error(e: &EigenDecomposition) -> f64 {
        let n = e.len();
        let vtv = e.eigenvectors.transpose().matmul(&e.eigenvectors).unwrap();
        vtv.sub(&Matrix::identity(n)).unwrap().frobenius_norm()
    }

    fn assert_matches_oracle(a: &Matrix) {
        let kernel = symmetric_eigen_tridiagonal(a).unwrap();
        let oracle = symmetric_eigen_naive(a).unwrap();
        assert!(
            eigenvalues_agree(&kernel.eigenvalues, &oracle.eigenvalues),
            "kernel {:?} vs oracle {:?}",
            kernel.eigenvalues,
            oracle.eigenvalues
        );
        let scale = a.max_abs().max(1.0);
        assert!(reconstruction_error(a, &kernel) < 1e-9 * scale);
        assert!(orthonormality_error(&kernel) < 1e-10);
        // Descending order.
        for w in kernel.eigenvalues.windows(2) {
            assert!(w[0] >= w[1] - 1e-12 * scale);
        }
    }

    #[test]
    fn matches_oracle_on_fixed_matrices() {
        let cases = [
            Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 2.0]]).unwrap(),
            Matrix::from_rows(&[
                vec![4.0, 1.0, 0.5, 0.0],
                vec![1.0, 3.0, 0.2, 0.1],
                vec![0.5, 0.2, 2.0, 0.3],
                vec![0.0, 0.1, 0.3, 1.0],
            ])
            .unwrap(),
            Matrix::from_rows(&[
                vec![5.0, 2.0, 1.0],
                vec![2.0, 4.0, 0.5],
                vec![1.0, 0.5, 3.0],
            ])
            .unwrap(),
        ];
        for a in &cases {
            assert_matches_oracle(a);
        }
    }

    #[test]
    fn matches_oracle_on_covariance_sized_matrix() {
        // A deterministic Gram matrix at PCA scale (n = 40 keeps the test
        // fast; the bench covers the full ~120-column size).
        let rows: Vec<Vec<f64>> = (0..60)
            .map(|i| {
                (0..40)
                    .map(|j| ((i * 37 + j * 11) as f64 * 0.37).sin())
                    .collect()
            })
            .collect();
        let b = Matrix::from_rows(&rows).unwrap();
        let g = b.transpose().matmul(&b).unwrap();
        assert_matches_oracle(&g);
    }

    #[test]
    fn repeated_eigenvalues_are_handled() {
        // Eigenvalues {3, 3, 1}: the repeated pair spans a 2-D eigenspace,
        // so eigenvectors are not unique — compare eigenvalues and the
        // reconstruction instead.
        let a = Matrix::from_rows(&[
            vec![2.0, 1.0, 0.0],
            vec![1.0, 2.0, 0.0],
            vec![0.0, 0.0, 3.0],
        ])
        .unwrap();
        let e = symmetric_eigen_tridiagonal(&a).unwrap();
        let oracle = symmetric_eigen_naive(&a).unwrap();
        assert!(eigenvalues_agree(&e.eigenvalues, &oracle.eigenvalues));
        assert!((e.eigenvalues[0] - 3.0).abs() < 1e-10);
        assert!((e.eigenvalues[1] - 3.0).abs() < 1e-10);
        assert!((e.eigenvalues[2] - 1.0).abs() < 1e-10);
        assert!(reconstruction_error(&a, &e) < 1e-9);
        assert!(orthonormality_error(&e) < 1e-10);
    }

    #[test]
    fn rank_deficient_psd_is_handled() {
        // Gram matrix of a rank-2 factor: at least n-2 exact zero
        // eigenvalues, none meaningfully negative.
        let b = Matrix::from_rows(&[vec![1.0, 2.0, 3.0, 4.0], vec![0.5, -1.0, 0.25, 2.0]]).unwrap();
        let g = b.transpose().matmul(&b).unwrap();
        let e = symmetric_eigen_tridiagonal(&g).unwrap();
        let oracle = symmetric_eigen_naive(&g).unwrap();
        assert!(eigenvalues_agree(&e.eigenvalues, &oracle.eigenvalues));
        let scale = g.max_abs();
        assert!(e.eigenvalues.iter().all(|&l| l > -1e-10 * scale));
        assert!(e.eigenvalues[2].abs() < 1e-10 * scale);
        assert!(e.eigenvalues[3].abs() < 1e-10 * scale);
        assert!(reconstruction_error(&g, &e) < 1e-9 * scale);
    }

    #[test]
    fn one_by_one_is_exact() {
        let a = Matrix::from_rows(&[vec![7.0]]).unwrap();
        let e = symmetric_eigen_tridiagonal(&a).unwrap();
        assert_eq!(e.eigenvalues, vec![7.0]);
        assert_eq!(e.eigenvector(0), vec![1.0]);
    }

    #[test]
    fn diagonal_input_is_exact() {
        let a = Matrix::from_rows(&[
            vec![3.0, 0.0, 0.0],
            vec![0.0, 1.0, 0.0],
            vec![0.0, 0.0, 2.0],
        ])
        .unwrap();
        let e = symmetric_eigen_tridiagonal(&a).unwrap();
        assert_eq!(e.eigenvalues, vec![3.0, 2.0, 1.0]);
    }

    #[test]
    fn validates_input_like_the_oracle() {
        assert!(symmetric_eigen_tridiagonal(&Matrix::zeros(2, 3)).is_err());
        assert!(matches!(
            symmetric_eigen_tridiagonal(&Matrix::zeros(0, 0)),
            Err(LinalgError::Empty(_))
        ));
        let asym = Matrix::from_rows(&[vec![1.0, 2.0], vec![0.0, 1.0]]).unwrap();
        assert!(matches!(
            symmetric_eigen_tridiagonal(&asym),
            Err(LinalgError::InvalidParameter(_))
        ));
        let nan = Matrix::from_rows(&[vec![f64::NAN, 0.0], vec![0.0, 1.0]]).unwrap();
        assert!(matches!(
            symmetric_eigen_tridiagonal(&nan),
            Err(LinalgError::NonFinite(_))
        ));
    }

    #[test]
    fn eigenvalues_agree_rejects_mismatches() {
        assert!(eigenvalues_agree(&[1.0, 2.0], &[1.0, 2.0]));
        assert!(!eigenvalues_agree(&[1.0], &[1.0, 2.0]));
        assert!(!eigenvalues_agree(&[1.0, 2.1], &[1.0, 2.0]));
        // Tolerance scales with the spectrum.
        assert!(eigenvalues_agree(&[1e9 + 0.1, 1.0], &[1e9, 1.0]));
    }
}
