//! Canary-cluster evaluation, à la WSMeter (Lee et al., ASPLOS'18 — the
//! paper's reference \[58\]).
//!
//! Instead of sampling scenarios from the production corpus, a *canary*
//! dedicates a few live machines to the feature: the canary runs the same
//! workload mix, the feature is applied to it, and its observed
//! colocations are measured directly. The paper's critique (§1): the
//! canary "still suffers from nontrivial overheads (tens to hundreds of
//! machines) and the possibility of damaging production jobs" — and, being
//! a small fleet, it *samples a different colocation distribution* than
//! the full datacenter (fewer machines change scheduler packing).

use crate::fulldc::full_datacenter_impact;
use flare_core::replayer::Testbed;
use flare_sim::datacenter::{Corpus, CorpusConfig};
use flare_sim::machine::MachineConfig;
use serde::{Deserialize, Serialize};

/// Sizing of a canary deployment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CanaryConfig {
    /// Machines dedicated to the canary.
    pub machines: usize,
    /// Observation period, days.
    pub days: f64,
    /// Seed for the canary's own submission randomness (a canary sees its
    /// own arrival sample, not the production one).
    pub seed: u64,
}

/// A canary measurement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CanaryEstimate {
    /// Observation-weighted mean MIPS reduction measured on the canary, %.
    pub impact_pct: f64,
    /// Distinct scenarios the canary exhibited (its replay-equivalent
    /// evaluation cost).
    pub evaluation_cost: usize,
    /// Machine-days of live hardware the canary consumed.
    pub machine_days: f64,
}

/// Runs a canary deployment: a `canary.machines`-machine fleet with the
/// production workload model, measured under baseline and feature
/// configurations.
///
/// The canary inherits every workload parameter from
/// `production_config` except fleet size, duration, and seed.
///
/// Pass one shared [`flare_core::replayer::CachedSimTestbed`] when running
/// several baselines side by side: its evaluation memo is keyed on
/// colocation content, so any scenario the canary shares with the
/// production corpus (or with a sampling/cost run on the same testbed) is
/// solved once and reused byte-identically everywhere.
pub fn canary_impact<T: Testbed + Sync>(
    testbed: &T,
    production_config: &CorpusConfig,
    canary: &CanaryConfig,
    baseline: &MachineConfig,
    feature_config: &MachineConfig,
) -> CanaryEstimate {
    let canary_corpus_cfg = CorpusConfig {
        machines: canary.machines,
        days: canary.days,
        seed: canary.seed,
        ..production_config.clone()
    };
    let canary_corpus = Corpus::generate(&canary_corpus_cfg);
    let truth = full_datacenter_impact(&canary_corpus, testbed, baseline, feature_config, true);
    CanaryEstimate {
        impact_pct: truth.impact_pct,
        evaluation_cost: truth.evaluation_cost,
        machine_days: canary.machines as f64 * canary.days,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flare_core::replayer::{CachedSimTestbed, SimTestbed};
    use flare_sim::feature::Feature;

    fn production() -> CorpusConfig {
        CorpusConfig {
            machines: 6,
            days: 3.0,
            tick_minutes: 15.0,
            ..CorpusConfig::default()
        }
    }

    #[test]
    fn canary_measures_same_direction_as_production() {
        let prod_cfg = production();
        let baseline = prod_cfg.machine_config.clone();
        let f2 = Feature::paper_feature2().apply(&baseline);
        let prod_corpus = Corpus::generate(&prod_cfg);
        let truth =
            full_datacenter_impact(&prod_corpus, &SimTestbed, &baseline, &f2, true).impact_pct;
        let canary = canary_impact(
            &SimTestbed,
            &prod_cfg,
            &CanaryConfig {
                machines: 2,
                days: 2.0,
                seed: 777,
            },
            &baseline,
            &f2,
        );
        assert!(canary.impact_pct > 0.0);
        // Small canary approximates, does not match, the truth.
        assert!(
            (canary.impact_pct - truth).abs() < 10.0,
            "canary {:.2}% vs truth {truth:.2}%",
            canary.impact_pct
        );
        assert_eq!(canary.machine_days, 4.0);
        assert!(canary.evaluation_cost > 0);
    }

    #[test]
    fn bigger_canary_sees_more_scenarios() {
        let prod_cfg = production();
        let baseline = prod_cfg.machine_config.clone();
        let f1 = Feature::paper_feature1().apply(&baseline);
        let small = canary_impact(
            &SimTestbed,
            &prod_cfg,
            &CanaryConfig {
                machines: 1,
                days: 1.0,
                seed: 7,
            },
            &baseline,
            &f1,
        );
        let large = canary_impact(
            &SimTestbed,
            &prod_cfg,
            &CanaryConfig {
                machines: 4,
                days: 3.0,
                seed: 7,
            },
            &baseline,
            &f1,
        );
        assert!(large.evaluation_cost > small.evaluation_cost);
    }

    #[test]
    fn shared_cache_is_byte_identical_and_free_on_repeat() {
        let prod_cfg = production();
        let baseline = prod_cfg.machine_config.clone();
        let f1 = Feature::paper_feature1().apply(&baseline);
        let canary_cfg = CanaryConfig {
            machines: 2,
            days: 1.0,
            seed: 9,
        };
        let truth = canary_impact(&SimTestbed, &prod_cfg, &canary_cfg, &baseline, &f1);
        let cached = CachedSimTestbed::new();
        let first = canary_impact(&cached, &prod_cfg, &canary_cfg, &baseline, &f1);
        assert_eq!(first, truth, "cached canary must match the plain testbed");
        let before = cached.stats();
        let second = canary_impact(&cached, &prod_cfg, &canary_cfg, &baseline, &f1);
        assert_eq!(second, truth);
        let after = cached.stats();
        assert_eq!(after.misses, before.misses, "repeat canary re-solved");
        assert!(after.hits > before.hits, "repeat canary must hit the cache");
    }
}
