//! Fig. 1 quantified: the accuracy-vs-overhead landscape of every
//! datacenter evaluation method, measured (the paper's Fig. 1 is the
//! conceptual sketch; this binary fills in the numbers for our corpus).

use flare_baselines::canary::{canary_impact, CanaryConfig};
use flare_baselines::fulldc::full_datacenter_impact;
use flare_baselines::loadtest::load_test_all_hp;
use flare_baselines::sampling::{sampling_distribution, SamplingConfig};
use flare_bench::banner;
use flare_core::replayer::SimTestbed;
use flare_core::{Flare, FlareConfig};
use flare_sim::datacenter::{Corpus, CorpusConfig};
use flare_sim::feature::Feature;

fn main() {
    banner(
        "The evaluation-method landscape: accuracy vs overhead (quantified)",
        "Fig. 1 (conceptual in the paper; measured here)",
    );
    let prod_cfg = CorpusConfig::default();
    let corpus = Corpus::generate(&prod_cfg);
    let baseline = prod_cfg.machine_config.clone();
    let flare = Flare::fit(corpus.clone(), FlareConfig::default()).expect("fit");

    // Mean absolute error across the three paper features, per method.
    let features = Feature::paper_features();
    let truths: Vec<f64> = features
        .iter()
        .map(|f| {
            full_datacenter_impact(&corpus, &SimTestbed, &baseline, &f.apply(&baseline), true)
                .impact_pct
        })
        .collect();

    // Conventional load-testing: mean over HP jobs as the fleet estimate.
    let loadtest_err: f64 = features
        .iter()
        .zip(&truths)
        .map(|(f, &t)| {
            let results = load_test_all_hp(&SimTestbed, &baseline, &f.apply(&baseline));
            let mean = results.iter().map(|r| r.impact_pct).sum::<f64>() / results.len() as f64;
            (mean - t).abs()
        })
        .sum::<f64>()
        / features.len() as f64;

    let sampling18_err: f64 = features
        .iter()
        .zip(&truths)
        .map(|(f, &t)| {
            sampling_distribution(
                &corpus,
                &SimTestbed,
                &baseline,
                &f.apply(&baseline),
                &SamplingConfig::default(),
            )
            .expect("population")
            .expected_max_error(t)
        })
        .sum::<f64>()
        / features.len() as f64;

    let canary_err: f64 = features
        .iter()
        .zip(&truths)
        .map(|(f, &t)| {
            let c = canary_impact(
                &SimTestbed,
                &prod_cfg,
                &CanaryConfig {
                    machines: 2,
                    days: 7.0,
                    seed: 4242,
                },
                &baseline,
                &f.apply(&baseline),
            );
            (c.impact_pct - t).abs()
        })
        .sum::<f64>()
        / features.len() as f64;

    let flare_err: f64 = features
        .iter()
        .zip(&truths)
        .map(|(f, &t)| (flare.evaluate(f).expect("estimate").impact_pct - t).abs())
        .sum::<f64>()
        / features.len() as f64;

    println!("\nmean |error| across the three Table 4 features:");
    println!(
        "  {:<28} {:>10} {:>26}",
        "method", "error pp", "overhead (replays/live)"
    );
    println!(
        "  {:<28} {:>10.2} {:>26}",
        "load-testing (single job)", loadtest_err, "8 single-job runs"
    );
    println!(
        "  {:<28} {:>10.2} {:>26}",
        "random sampling (exp. max)", sampling18_err, "18 replays"
    );
    println!(
        "  {:<28} {:>10.2} {:>26}",
        "canary cluster (2 machines)", canary_err, "14 machine-days live"
    );
    println!("  {:<28} {:>10.2} {:>26}", "FLARE", flare_err, "18 replays");
    println!(
        "  {:<28} {:>10.2} {:>26}",
        "full datacenter",
        0.0,
        format!("{} replays", corpus.hp_entries().len())
    );
    println!(
        "\nthe paper's Fig. 1 quadrant: FLARE is the only method in the\n\
         low-overhead / high-accuracy corner."
    );
}
