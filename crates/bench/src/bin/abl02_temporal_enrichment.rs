//! Ablation 2: §4.1 temporal enrichment — does recording per-metric
//! standard deviations (phase behaviour) improve estimation over plain
//! scenario averages, and what does it cost in dimensionality?

use flare_baselines::fulldc::{full_datacenter_impact, full_datacenter_job_impact};
use flare_bench::banner;
use flare_core::replayer::SimTestbed;
use flare_core::{Flare, FlareConfig};
use flare_sim::datacenter::{Corpus, CorpusConfig};
use flare_sim::feature::Feature;
use flare_workloads::job::JobName;

fn main() {
    banner(
        "Ablation: temporal (phase) enrichment of the metric vectors",
        "§4.1 (optional extension the paper describes but does not evaluate)",
    );
    let corpus_cfg = CorpusConfig::default();
    let corpus = Corpus::generate(&corpus_cfg);
    let baseline = corpus_cfg.machine_config.clone();

    let variants: Vec<(&str, Option<usize>)> =
        vec![("averages only", None), ("mean + std, 8 phases", Some(8))];

    for (name, phases) in variants {
        let flare = Flare::fit(
            corpus.clone(),
            FlareConfig {
                temporal_phases: phases,
                ..FlareConfig::default()
            },
        )
        .expect("fit");
        println!(
            "\n[{name}] raw metrics: {}, refined: {}, PCs: {}",
            flare.database().schema().len(),
            flare.analyzer().refined_schema().len(),
            flare.analyzer().n_pcs()
        );
        let mut all_errs = Vec::new();
        let mut job_errs = Vec::new();
        for feature in Feature::paper_features() {
            let fc = feature.apply(&baseline);
            let truth =
                full_datacenter_impact(&corpus, &SimTestbed, &baseline, &fc, true).impact_pct;
            let est = flare.evaluate(&feature).expect("estimate").impact_pct;
            all_errs.push((est - truth).abs());
            for &job in JobName::HIGH_PRIORITY {
                let jt =
                    full_datacenter_job_impact(&corpus, &SimTestbed, job, &baseline, &fc, true)
                        .expect("job present");
                let je = flare
                    .evaluate_job(job, &feature)
                    .expect("estimate")
                    .impact_pct;
                job_errs.push((je - jt).abs());
            }
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        let max = |v: &[f64]| v.iter().cloned().fold(0.0, f64::max);
        println!(
            "  all-job error: mean {:.2}pp max {:.2}pp | per-job error: mean {:.2}pp max {:.2}pp",
            mean(&all_errs),
            max(&all_errs),
            mean(&job_errs),
            max(&job_errs)
        );
    }
    println!(
        "\ntakeaway: enrichment doubles the raw dimension; whether it pays off depends on\n\
         how load-sensitive the scenario population is (§4.1 leaves it as a user option)."
    );
}
