//! Determinism of the parallel execution layer, checked end-to-end: every
//! thread-count setting must produce *byte-identical* pipeline output.
//! Parallelism in FLARE is a wall-clock knob, never a result knob.

use flare::baselines::canary::{canary_impact, CanaryConfig};
use flare::baselines::cost::cost_accuracy_curve;
use flare::baselines::fulldc::{full_datacenter_impact, full_datacenter_impact_parallel};
use flare::baselines::loadtest::load_test_all_hp;
use flare::baselines::sampling::{sampling_distribution, SamplingConfig};
use flare::cluster::kmeans::{kmeans, KMeansConfig};
use flare::cluster::sweep::sweep_kmeans;
use flare::linalg::Matrix;
use flare::prelude::*;

fn small_corpus() -> (Corpus, CorpusConfig) {
    let cfg = CorpusConfig {
        machines: 4,
        days: 2.0,
        tick_minutes: 15.0,
        ..CorpusConfig::default()
    };
    (Corpus::generate(&cfg), cfg)
}

fn fit_with_threads(corpus: Corpus, threads: Option<usize>) -> Flare {
    let cfg = FlareConfig {
        cluster_count: ClusterCountRule::Fixed(8),
        threads,
        ..FlareConfig::default()
    };
    Flare::fit(corpus, cfg).expect("fit")
}

/// Serializes a fitted model with the thread knob normalized away, so two
/// fits that differ *only* in their thread count serialize identically.
fn snapshot_json(flare: &Flare) -> String {
    let mut snapshot = flare.to_snapshot();
    snapshot.config.threads = None;
    serde_json::to_string(&snapshot).expect("serialize")
}

#[test]
fn fit_is_byte_identical_across_thread_counts() {
    let (corpus, _) = small_corpus();
    let serial = fit_with_threads(corpus.clone(), Some(1));
    let serial_json = snapshot_json(&serial);
    for threads in [Some(2), Some(4), Some(7), Some(64), None] {
        let parallel = fit_with_threads(corpus.clone(), threads);
        assert_eq!(
            serial_json,
            snapshot_json(&parallel),
            "threads={threads:?} diverged from serial fit"
        );
        assert_eq!(
            serial.analyzer().representatives(),
            parallel.analyzer().representatives()
        );
    }
}

#[test]
fn fit_with_sweep_is_thread_count_invariant() {
    let (corpus, _) = small_corpus();
    let fit = |threads| {
        let cfg = FlareConfig {
            cluster_count: ClusterCountRule::Sweep {
                min_k: 2,
                max_k: 8,
                step: 2,
            },
            threads,
            ..FlareConfig::default()
        };
        Flare::fit(corpus.clone(), cfg).expect("fit")
    };
    let serial = fit(Some(1));
    let parallel = fit(Some(4));
    assert_eq!(serial.n_representatives(), parallel.n_representatives());
    assert_eq!(snapshot_json(&serial), snapshot_json(&parallel));
}

#[test]
fn temporal_enriched_fit_is_thread_count_invariant() {
    let (corpus, _) = small_corpus();
    let fit = |threads| {
        let cfg = FlareConfig {
            cluster_count: ClusterCountRule::Fixed(8),
            temporal_phases: Some(4),
            threads,
            ..FlareConfig::default()
        };
        Flare::fit(corpus.clone(), cfg).expect("fit")
    };
    assert_eq!(snapshot_json(&fit(Some(1))), snapshot_json(&fit(Some(4))));
}

#[test]
fn refit_is_byte_identical_across_thread_counts() {
    // The incremental path must honor the same contract as fresh fits:
    // re-clustering under any thread knob (including through the kernel
    // layer's intra-restart split) serializes identically.
    let (corpus, _) = small_corpus();
    let refit_with = |threads| {
        let base = fit_with_threads(corpus.clone(), threads);
        let recluster = FlareConfig {
            cluster_count: ClusterCountRule::Fixed(5),
            threads,
            ..FlareConfig::default()
        };
        base.refit(recluster).expect("refit")
    };
    let serial_json = snapshot_json(&refit_with(Some(1)));
    for threads in [Some(2), Some(7), None] {
        assert_eq!(
            serial_json,
            snapshot_json(&refit_with(threads)),
            "refit threads={threads:?} diverged from serial"
        );
    }
}

#[test]
fn estimates_are_identical_across_thread_counts() {
    let (corpus, _) = small_corpus();
    let serial = fit_with_threads(corpus.clone(), Some(1));
    let parallel = fit_with_threads(corpus, Some(4));
    for feature in Feature::paper_features() {
        let a = serial.evaluate(&feature).expect("serial estimate");
        let b = parallel.evaluate(&feature).expect("parallel estimate");
        assert_eq!(a.impact_pct, b.impact_pct, "{feature}");
        assert_eq!(a.replay_count, b.replay_count, "{feature}");
    }
}

#[test]
fn streamed_ingest_matches_one_shot_fit_byte_identically() {
    // The streaming acceptance contract: feeding N clean arrival batches
    // through a StreamSession and finalizing must serialize byte-identically
    // to a one-shot `Flare::fit` over the concatenated corpus.
    let (corpus, _) = small_corpus();
    let model = fit_with_threads(corpus, Some(2));
    let in_distribution: Vec<(Scenario, u32)> = model
        .corpus()
        .entries()
        .iter()
        .take(4)
        .enumerate()
        .map(|(i, e)| (e.scenario.clone(), 1 + i as u32))
        .collect();
    let novel: Vec<(Scenario, u32)> = (0..3)
        .map(|i| {
            let s = Scenario::from_counts([(JobName::WebSearch, 2), (JobName::Omnetpp, 1 + i)]);
            (s, 2)
        })
        .collect();
    let batches = [in_distribution, novel];
    let all: Vec<(Scenario, u32)> = batches.iter().flatten().cloned().collect();

    let mut session = StreamSession::new(
        model.clone(),
        StreamConfig {
            chunk_size: 2,
            drift_threshold: 0.9,
            ..StreamConfig::default()
        },
    )
    .expect("valid config");
    for b in batches {
        session.ingest_batch(b).expect("ingest");
    }
    let streamed_json = snapshot_json(session.finalize().expect("finalize"));

    let one_shot = Flare::fit(
        model.corpus().clone().extended(all).expect("extend"),
        model.config().clone(),
    )
    .expect("one-shot fit");
    assert_eq!(
        streamed_json,
        snapshot_json(&one_shot),
        "streamed finalize diverged from the one-shot fit"
    );
}

#[test]
fn killed_stream_session_resumes_to_identical_snapshot() {
    // Crash safety, deterministically: a fault-injected session killed
    // after the first batch resumes from its checkpoint and finishes with
    // the same snapshot bytes as the uninterrupted run.
    use flare::sim::faults::FaultPlan;
    let (corpus, _) = small_corpus();
    let model = fit_with_threads(corpus, Some(2));
    let plan = FaultPlan {
        seed: 7,
        sample_dropout: 0.05,
        stuck_sensor: 0.05,
        ..FaultPlan::default()
    };
    let batches = || {
        [
            model
                .corpus()
                .entries()
                .iter()
                .take(3)
                .map(|e| (e.scenario.clone(), 2))
                .collect::<Vec<_>>(),
            (0..4)
                .map(|i| {
                    let s = Scenario::from_counts([
                        (JobName::DataCaching, 6),
                        (JobName::Mcf, 2 + (i % 3)),
                        (JobName::Libquantum, 2),
                    ]);
                    (s, 1 + i)
                })
                .collect::<Vec<_>>(),
        ]
    };
    let config = |dir: Option<std::path::PathBuf>| StreamConfig {
        chunk_size: 2,
        drift_threshold: 0.2,
        calibration_quantile: 0.5,
        checkpoint_dir: dir,
        ..StreamConfig::default()
    };

    let mut uninterrupted = StreamSession::new(model.clone(), config(None))
        .expect("valid config")
        .with_faults(plan)
        .expect("valid plan");
    for b in batches() {
        uninterrupted.ingest_batch(b).expect("ingest");
    }
    let snap_a = snapshot_json(uninterrupted.finalize().expect("finalize"));

    let dir = std::env::temp_dir().join(format!("flare_stream_kill_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    {
        let mut doomed = StreamSession::new(model.clone(), config(Some(dir.clone())))
            .expect("valid config")
            .with_faults(plan)
            .expect("valid plan");
        doomed
            .ingest_batch(batches().into_iter().next().unwrap())
            .expect("ingest");
        // Dropped here without finalize: the simulated kill.
    }
    let mut resumed = StreamSession::resume(&dir, config(Some(dir.clone()))).expect("resume");
    assert_eq!(resumed.cursor().batches, 1);
    for b in batches().into_iter().skip(1) {
        resumed.ingest_batch(b).expect("ingest");
    }
    let snap_b = snapshot_json(resumed.finalize().expect("finalize"));
    let _ = std::fs::remove_dir_all(&dir);
    assert_eq!(
        snap_a, snap_b,
        "resumed run diverged from uninterrupted run"
    );
}

#[test]
fn spill_on_fit_matches_in_memory_fit_byte_identically() {
    // Out-of-core featurization is a layout knob, not a math knob: a fit
    // whose cold shards live on disk (1 resident shard, maximal churn)
    // must produce the same model bits as the all-in-memory fit. Only
    // the knob itself and the observability counters may differ, so the
    // comparison normalizes those exactly like the thread knob above.
    let (corpus, _) = small_corpus();
    let base_config = |spill_dir: Option<std::path::PathBuf>| {
        let mut cfg = FlareConfig {
            cluster_count: ClusterCountRule::Fixed(8),
            threads: Some(2),
            ..FlareConfig::default()
        };
        // Small shards so the corpus spans many of them.
        cfg.scale.shard_rows = 16;
        if let Some(dir) = spill_dir {
            cfg.scale.spill.enabled = true;
            cfg.scale.spill.dir = Some(dir);
            cfg.scale.spill.max_resident_shards = 1;
        }
        cfg
    };
    let normalized_json = |flare: &Flare| {
        let mut snapshot = flare.to_snapshot();
        snapshot.config.threads = None;
        snapshot.config.scale.spill = Default::default();
        snapshot.analyzer.spill = None;
        serde_json::to_string(&snapshot).expect("serialize")
    };

    let in_memory = Flare::fit(corpus.clone(), base_config(None)).expect("fit");
    let dir = std::env::temp_dir().join(format!("flare_det_spill_{}", std::process::id()));
    let spilled = Flare::fit(corpus, base_config(Some(dir.clone()))).expect("spilled fit");
    let _ = std::fs::remove_dir_all(&dir);

    let stats = spilled.fit_report().spill.expect("spill counters recorded");
    assert!(
        stats.faults > 0,
        "1 resident shard across a multi-shard fit must fault: {stats:?}"
    );
    assert_eq!(
        in_memory.analyzer().representatives(),
        spilled.analyzer().representatives()
    );
    assert_eq!(
        in_memory.analyzer().clustering().assignments,
        spilled.analyzer().clustering().assignments
    );
    assert_eq!(
        in_memory.analyzer().projected(),
        spilled.analyzer().projected()
    );
    assert_eq!(
        normalized_json(&in_memory),
        normalized_json(&spilled),
        "spill-on fit diverged from the in-memory fit"
    );
}

#[test]
fn killed_spill_enabled_stream_session_resumes_identically() {
    // Crash safety and out-of-core featurization compose: a session
    // serving a spill-enabled model, killed after its first batch,
    // resumes from the checkpoint and finishes with the same snapshot
    // bytes (spill counters included) as the uninterrupted run.
    let (corpus, _) = small_corpus();
    let mut fit_config = FlareConfig {
        cluster_count: ClusterCountRule::Fixed(8),
        threads: Some(2),
        ..FlareConfig::default()
    };
    fit_config.scale.shard_rows = 16;
    fit_config.scale.spill.enabled = true;
    fit_config.scale.spill.max_resident_shards = 2;
    let model = Flare::fit(corpus, fit_config).expect("spilled fit");

    let batches = || {
        [
            model
                .corpus()
                .entries()
                .iter()
                .take(3)
                .map(|e| (e.scenario.clone(), 2))
                .collect::<Vec<_>>(),
            (0..4)
                .map(|i| {
                    let s = Scenario::from_counts([
                        (JobName::DataCaching, 6),
                        (JobName::Mcf, 2 + (i % 3)),
                    ]);
                    (s, 1 + i)
                })
                .collect::<Vec<_>>(),
        ]
    };
    let config = |dir: Option<std::path::PathBuf>| StreamConfig {
        chunk_size: 2,
        drift_threshold: 0.2,
        calibration_quantile: 0.5,
        checkpoint_dir: dir,
        ..StreamConfig::default()
    };

    let mut uninterrupted = StreamSession::new(model.clone(), config(None)).expect("valid config");
    for b in batches() {
        uninterrupted.ingest_batch(b).expect("ingest");
    }
    let snap_a = snapshot_json(uninterrupted.finalize().expect("finalize"));

    let dir = std::env::temp_dir().join(format!("flare_stream_spill_kill_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    {
        let mut doomed =
            StreamSession::new(model.clone(), config(Some(dir.clone()))).expect("valid config");
        doomed
            .ingest_batch(batches().into_iter().next().unwrap())
            .expect("ingest");
        // Dropped here without finalize: the simulated kill.
    }
    let mut resumed = StreamSession::resume(&dir, config(Some(dir.clone()))).expect("resume");
    assert_eq!(resumed.cursor().batches, 1);
    for b in batches().into_iter().skip(1) {
        resumed.ingest_batch(b).expect("ingest");
    }
    let snap_b = snapshot_json(resumed.finalize().expect("finalize"));
    let _ = std::fs::remove_dir_all(&dir);
    assert_eq!(
        snap_a, snap_b,
        "spill-enabled resumed run diverged from uninterrupted run"
    );
}

#[test]
fn kmeans_restarts_are_thread_count_invariant() {
    // 3 planted blobs, deterministic coordinates.
    let rows: Vec<Vec<f64>> = (0..60)
        .map(|i| {
            let center = (i % 3) as f64 * 10.0;
            let jitter = ((i as f64) * 0.73).sin();
            vec![center + jitter, center - jitter * 0.5]
        })
        .collect();
    let data = Matrix::from_rows(&rows).unwrap();
    let base = KMeansConfig::new(3).with_restarts(16);
    let serial = kmeans(&data, &base.clone().with_threads(Some(1))).unwrap();
    for threads in [Some(2), Some(7), Some(8), None] {
        let parallel = kmeans(&data, &base.clone().with_threads(threads)).unwrap();
        assert_eq!(serial, parallel, "threads={threads:?}");
    }
    let ks = [2, 3, 4, 5];
    let serial_sweep = sweep_kmeans(&data, &ks, &base.clone().with_threads(Some(1))).unwrap();
    let parallel_sweep = sweep_kmeans(&data, &ks, &base.with_threads(Some(4))).unwrap();
    assert_eq!(serial_sweep.points, parallel_sweep.points);
}

#[test]
fn full_datacenter_parallel_matches_serial() {
    let (corpus, cfg) = small_corpus();
    let baseline = &cfg.machine_config;
    for feature in Feature::paper_features() {
        let feature_config = feature.apply(baseline);
        let serial = full_datacenter_impact(&corpus, &SimTestbed, baseline, &feature_config, true);
        for threads in [1, 2, 4, 64] {
            let parallel = full_datacenter_impact_parallel(
                &corpus,
                &SimTestbed,
                baseline,
                &feature_config,
                true,
                threads,
            );
            assert_eq!(
                serde_json::to_string(&serial).unwrap(),
                serde_json::to_string(&parallel).unwrap(),
                "{feature} threads={threads}"
            );
        }
    }
}

#[test]
fn evaluation_cache_and_thread_count_are_jointly_result_invariant() {
    // One CachedSimTestbed shared across every thread count and feature:
    // the cache accumulates entries run over run (later runs are mostly
    // hits, and hit/miss interleavings differ per thread count), yet every
    // configuration must serialize byte-identically to the uncached
    // serial ground truth. Cache reuse and parallelism are wall-clock
    // knobs, never result knobs.
    let (corpus, cfg) = small_corpus();
    let baseline = &cfg.machine_config;
    let cached = CachedSimTestbed::new();
    for feature in Feature::paper_features() {
        let feature_config = feature.apply(baseline);
        let uncached_serial = serde_json::to_string(&full_datacenter_impact(
            &corpus,
            &SimTestbed,
            baseline,
            &feature_config,
            true,
        ))
        .unwrap();
        for threads in [1, 2, 4, 64] {
            let with_cache = full_datacenter_impact_parallel(
                &corpus,
                &cached,
                baseline,
                &feature_config,
                true,
                threads,
            );
            assert_eq!(
                uncached_serial,
                serde_json::to_string(&with_cache).unwrap(),
                "{feature} threads={threads} diverged through the shared cache"
            );
        }
    }
    let stats = cached.stats();
    assert!(stats.hits > 0, "repeat runs must hit the shared cache");
    assert!(
        stats.hit_rate() > 0.5,
        "three repeat runs per feature should be hit-dominated, got {:.3}",
        stats.hit_rate()
    );
}

#[test]
fn one_shared_cache_serves_every_baseline_byte_identically() {
    // The cache-reach contract: canary, sampling, load-test, and cost
    // baselines all route through ONE CachedSimTestbed. Every estimate
    // must serialize byte-identically to its uncached SimTestbed ground
    // truth, and because the experiments replay overlapping
    // (scenario, config) pairs, the shared cache must record
    // cross-baseline hits.
    let (corpus, cfg) = small_corpus();
    let baseline = &cfg.machine_config;
    let feature_config = Feature::paper_feature2().apply(baseline);
    let cached = CachedSimTestbed::new();

    let canary_cfg = CanaryConfig {
        machines: 2,
        days: 1.0,
        seed: 13,
    };
    let canary_truth = canary_impact(&SimTestbed, &cfg, &canary_cfg, baseline, &feature_config);
    let canary_cached = canary_impact(&cached, &cfg, &canary_cfg, baseline, &feature_config);
    assert_eq!(
        serde_json::to_string(&canary_truth).unwrap(),
        serde_json::to_string(&canary_cached).unwrap(),
        "canary diverged through the shared cache"
    );

    let sampling_cfg = SamplingConfig {
        n_samples: 10,
        trials: 100,
        ..SamplingConfig::default()
    };
    let dist_truth = sampling_distribution(
        &corpus,
        &SimTestbed,
        baseline,
        &feature_config,
        &sampling_cfg,
    )
    .expect("sampling truth");
    let dist_cached =
        sampling_distribution(&corpus, &cached, baseline, &feature_config, &sampling_cfg)
            .expect("sampling cached");
    assert!(
        dist_truth
            .estimates
            .iter()
            .zip(&dist_cached.estimates)
            .all(|(a, b)| a.to_bits() == b.to_bits()),
        "sampling estimates diverged through the shared cache"
    );

    let bars_truth = load_test_all_hp(&SimTestbed, baseline, &feature_config);
    let bars_cached = load_test_all_hp(&cached, baseline, &feature_config);
    assert_eq!(
        serde_json::to_string(&bars_truth).unwrap(),
        serde_json::to_string(&bars_cached).unwrap(),
        "load-test bar set diverged through the shared cache"
    );

    let sizes = [5usize, 20];
    let curve_truth = cost_accuracy_curve(
        &corpus,
        &SimTestbed,
        baseline,
        &feature_config,
        &sizes,
        100,
        3,
        0.0,
        18,
    );
    let curve_cached = cost_accuracy_curve(
        &corpus,
        &cached,
        baseline,
        &feature_config,
        &sizes,
        100,
        3,
        0.0,
        18,
    );
    assert_eq!(
        serde_json::to_string(&curve_truth).unwrap(),
        serde_json::to_string(&curve_cached).unwrap(),
        "cost/accuracy curve diverged through the shared cache"
    );

    let stats = cached.stats();
    assert!(
        stats.hits > 0,
        "baselines replay overlapping scenarios; the shared cache must \
         record cross-baseline hits (stats: {stats:?})"
    );
    assert!(stats.misses > 0 && stats.entries > 0);
}

#[test]
fn exec_primitive_preserves_order_under_load() {
    let items: Vec<u64> = (0..997).collect();
    let serial = flare::core::exec::par_map_indexed(&items, Some(1), |i, &x| x * 3 + i as u64);
    for threads in [Some(2), Some(7), Some(64), None] {
        let parallel =
            flare::core::exec::par_map_indexed(&items, threads, |i, &x| x * 3 + i as u64);
        assert_eq!(serial, parallel, "threads={threads:?}");
    }
}
