//! Integration tests for the §5.5 heterogeneous-shape and §5.6
//! scheduler-change workflows.

use flare::prelude::*;
use flare::sim::scheduler::SchedulerPolicy;

fn corpus_for(shape: MachineShape, policy: SchedulerPolicy) -> (Corpus, MachineConfig) {
    let cfg = CorpusConfig {
        machines: 5,
        days: 3.0,
        tick_minutes: 15.0,
        machine_config: shape.baseline_config(),
        policy,
        ..CorpusConfig::default()
    };
    (Corpus::generate(&cfg), cfg.machine_config)
}

#[test]
fn small_shape_pipeline_works_end_to_end() {
    let (corpus, baseline) =
        corpus_for(MachineShape::small_shape(), SchedulerPolicy::LeastUtilized);
    assert!(corpus.len() > 50);
    // No scenario exceeds the small machine's capacity.
    for e in corpus.entries() {
        assert!(e.scenario.total_vcpus() <= baseline.schedulable_vcpus());
    }
    let flare = Flare::fit(corpus, FlareConfig::default()).expect("fit on small shape");
    let estimate = flare
        .evaluate(&Feature::paper_feature2())
        .expect("estimate on small shape");
    assert!(estimate.impact_pct > 0.0 && estimate.impact_pct < 50.0);
}

#[test]
fn default_representatives_overflow_small_machines() {
    // The Fig. 14a phenomenon: scenarios extracted on the big shape need
    // more vCPUs than the small shape offers.
    let (corpus, _) = corpus_for(
        MachineShape::default_shape(),
        SchedulerPolicy::LeastUtilized,
    );
    let small = MachineShape::small_shape().baseline_config();
    let overflowing = corpus
        .entries()
        .iter()
        .filter(|e| e.scenario.total_vcpus() > small.schedulable_vcpus())
        .count();
    assert!(
        overflowing > 0,
        "some default-shape colocations must exceed small-machine capacity"
    );
}

#[test]
fn shapes_rank_features_differently_or_scale_them() {
    // The same DVFS cap has a different absolute cost per shape (the small
    // shape's lower ceiling means a 1.8 GHz cap cuts less headroom).
    let feature = Feature::DvfsCap { freq_max_ghz: 1.8 };
    let (big_corpus, _) = corpus_for(
        MachineShape::default_shape(),
        SchedulerPolicy::LeastUtilized,
    );
    let (small_corpus, _) = corpus_for(MachineShape::small_shape(), SchedulerPolicy::LeastUtilized);
    let big = Flare::fit(big_corpus, FlareConfig::default())
        .expect("fit big")
        .evaluate(&feature)
        .expect("estimate big");
    let small = Flare::fit(small_corpus, FlareConfig::default())
        .expect("fit small")
        .evaluate(&feature)
        .expect("estimate small");
    assert!(
        big.impact_pct > small.impact_pct,
        "2.9->1.8 GHz should hurt the default shape ({:.2}%) more than the \
         2.6->1.8 GHz cut hurts the small shape ({:.2}%)",
        big.impact_pct,
        small.impact_pct
    );
}

#[test]
fn scheduler_policies_produce_different_corpora() {
    // Use a lightly-loaded fleet so spreading and packing can actually
    // diverge (a saturated fleet looks the same under any policy).
    let corpus_with = |policy| {
        let cfg = CorpusConfig {
            machines: 5,
            days: 3.0,
            tick_minutes: 15.0,
            hp_peak_share: 0.07,
            lp_submit_prob: 0.04,
            policy,
            ..CorpusConfig::default()
        };
        Corpus::generate(&cfg)
    };
    let spread = corpus_with(SchedulerPolicy::LeastUtilized);
    let packed = corpus_with(SchedulerPolicy::MostUtilized);
    // Consolidation produces far more near-saturated machine snapshots.
    let high_occ_share = |c: &Corpus| {
        let (mut hi, mut w) = (0.0, 0.0);
        for e in c.entries() {
            let obs = e.observations as f64;
            if e.scenario.occupancy(48) > 0.8 {
                hi += obs;
            }
            w += obs;
        }
        hi / w
    };
    let so = high_occ_share(&spread);
    let po = high_occ_share(&packed);
    assert!(
        po > so + 0.05,
        "packing should yield more near-full machines: spread {so:.3} vs packed {po:.3}"
    );
}

#[test]
fn recluster_workflow_reuses_metrics_and_changes_weights() {
    let (corpus, _) = corpus_for(
        MachineShape::default_shape(),
        SchedulerPolicy::LeastUtilized,
    );
    let flare = Flare::fit(corpus, FlareConfig::default()).expect("fit");
    let before_weights = flare.analyzer().cluster_weights(true);

    let reclustered = flare
        .recluster_with_weights(|e| {
            if e.scenario.occupancy(48) > 0.6 {
                e.observations * 5
            } else {
                e.observations
            }
        })
        .expect("recluster");
    let after_weights = reclustered.analyzer().cluster_weights(true);

    // The corpus and metric set stay put; weights move.
    assert_eq!(reclustered.corpus().len(), flare.corpus().len());
    assert_eq!(
        reclustered.database().schema().len(),
        flare.database().schema().len()
    );
    assert_ne!(before_weights, after_weights);

    // And it still evaluates.
    let est = reclustered
        .evaluate(&Feature::paper_feature3())
        .expect("estimate after recluster");
    assert!(est.impact_pct.is_finite());
}
