//! Fig. 13: evaluation cost vs expected max estimation error — sampling
//! needs far more than FLARE's budget to match its fidelity, and the full
//! datacenter costs ~50× more.

use flare_baselines::cost::cost_accuracy_curve;
use flare_bench::{banner, bar, ExperimentContext};
use flare_core::replayer::SimTestbed;
use flare_sim::feature::Feature;

fn main() {
    banner("Evaluation cost vs expected max error", "Fig. 13 / §5.4");
    let ctx = ExperimentContext::standard();

    for feature in Feature::paper_features() {
        let fc = feature.apply(&ctx.baseline);
        let flare_est = ctx.flare.evaluate(&feature).expect("estimate");
        let flare_cost = ctx.flare.n_representatives();
        let sizes: Vec<usize> = (1..=10).map(|m| m * flare_cost).collect();
        let curve = cost_accuracy_curve(
            &ctx.corpus,
            &SimTestbed,
            &ctx.baseline,
            &fc,
            &sizes,
            1000,
            0x5A3717,
            flare_est.impact_pct,
            flare_cost,
        );

        println!("\n[{}] truth = {:.2}%", feature.label(), curve.truth_pct);
        println!("  {:>16} {:>8} {:>16}", "method", "cost", "exp. max err pp");
        let max_err = curve
            .sampling
            .iter()
            .map(|p| p.expected_max_error)
            .fold(curve.flare.expected_max_error, f64::max);
        for p in &curve.sampling {
            println!(
                "  {:>16} {:>8} {:>16.2}  |{}",
                format!("sampling x{}", p.cost / flare_cost),
                p.cost,
                p.expected_max_error,
                bar(p.expected_max_error, max_err, 24)
            );
        }
        println!(
            "  {:>16} {:>8} {:>16.2}  |{}",
            "FLARE",
            curve.flare.cost,
            curve.flare.expected_max_error,
            bar(curve.flare.expected_max_error, max_err, 24)
        );
        println!(
            "  {:>16} {:>8} {:>16}",
            "full datacenter", curve.full_cost, "0.00 (truth)"
        );
        println!(
            "  overhead reduction vs full datacenter: {:.1}x",
            curve.flare_overhead_reduction()
        );
        match curve.sampling_cost_to_match_flare() {
            Some(c) => println!(
                "  sampling needs {c} replays ({}x FLARE's cost) to match FLARE's error",
                c / flare_cost
            ),
            None => println!(
                "  sampling cannot match FLARE's error even at 10x the cost (paper's finding)"
            ),
        }
    }
}
