//! Proxy replay: evaluate a feature when the real services cannot run on
//! the testbed (licensing, data gravity, stack complexity) by
//! reconstructing the representative scenarios with **calibrated synthetic
//! stressors** — the iBench idea the paper sketches in §5.1.
//!
//! ```sh
//! cargo run --release --example proxy_replay
//! ```

use flare::baselines::fulldc::full_datacenter_impact;
use flare::core::replayer::ProxyTestbed;
use flare::prelude::*;
use flare::workloads::stressor::StressorSpec;

fn main() -> Result<(), FlareError> {
    println!("fitting FLARE on the production corpus...");
    let corpus_config = CorpusConfig::default();
    let corpus = Corpus::generate(&corpus_config);
    let baseline = corpus_config.machine_config.clone();
    let flare = Flare::fit(corpus.clone(), FlareConfig::default())?;

    // Calibrate one stressor per service from its profiled behaviour.
    println!("\ncalibrated stressor knobs (0-10 per resource):");
    println!(
        "  {:<5} {:>4} {:>8} {:>6} {:>7} {:>10} {:>8} {:>5}",
        "job", "cpu", "threads", "cache", "memory", "bandwidth", "network", "disk"
    );
    for &job in JobName::HIGH_PRIORITY {
        let s = StressorSpec::calibrate(job);
        println!(
            "  {:<5} {:>4} {:>8} {:>6} {:>7} {:>10} {:>8} {:>5}",
            job.abbrev(),
            s.cpu,
            s.threads,
            s.cache,
            s.memory,
            s.bandwidth,
            s.network,
            s.disk
        );
    }

    // Evaluate every paper feature twice: real-service replay vs stressors.
    let proxy = ProxyTestbed::calibrated();
    println!(
        "\n{:<24} {:>9} {:>12} {:>13}",
        "feature", "truth %", "real replay", "proxy replay"
    );
    for feature in Feature::paper_features() {
        let fc = feature.apply(&baseline);
        let truth = full_datacenter_impact(&corpus, &SimTestbed, &baseline, &fc, true).impact_pct;
        let real = flare.evaluate_on(&SimTestbed, &feature)?.impact_pct;
        let prox = flare.evaluate_on(&proxy, &feature)?.impact_pct;
        println!(
            "{:<24} {:>9.2} {:>12.2} {:>13.2}",
            feature.label(),
            truth,
            real,
            prox
        );
    }
    println!(
        "\nproxy replay needs no service deployment — only {} stressor containers per\n\
         scenario — at the fidelity cost of the generator's quantized knobs.",
        JobInstance::CONTAINER_VCPUS
    );
    Ok(())
}
