//! The datacenter corpus driver: simulates weeks of job submission on a
//! fleet and collects the job-colocation scenarios that occur (§4.1–4.2).
//!
//! This is the "data collection" half of FLARE's Profiler: it produces the
//! scenario corpus with observation weights, and can materialize the
//! corpus as a [`MetricDatabase`] by evaluating each scenario under a
//! machine configuration and synthesizing the raw metrics.

use crate::interference::{evaluate, evaluate_with_profiles, MachinePerf};
use crate::kernel::{EvalCache, EvalScratch};
use crate::machine::{MachineConfig, MachineShape};
use crate::profiler::synthesize;
use crate::scenario::Scenario;
use crate::scheduler::{MachineState, Placement, Scheduler, SchedulerPolicy};
use flare_exec::par_map_chunks;
use flare_metrics::database::{MetricDatabase, ScenarioId, ScenarioRecord};
use flare_metrics::schema::MetricSchema;
use flare_workloads::job::{JobInstance, JobName};
use flare_workloads::loadgen::{diurnal_pattern, DurationModel};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Configuration of a corpus-collection run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CorpusConfig {
    /// Machines in the serving rack (paper: 8).
    pub machines: usize,
    /// Simulated collection period, days.
    pub days: f64,
    /// Snapshot/scheduling tick, minutes.
    pub tick_minutes: f64,
    /// Master RNG seed; the whole corpus is deterministic given it.
    pub seed: u64,
    /// Duration model for HP service containers (long-lived servers).
    pub hp_duration: DurationModel,
    /// Duration model for LP batch containers (shorter-lived).
    pub lp_duration: DurationModel,
    /// Scheduler placement policy.
    pub policy: SchedulerPolicy,
    /// Probability that one free container slot receives an LP job per
    /// tick (opportunistic batch pressure).
    pub lp_submit_prob: f64,
    /// Fraction of fleet container slots each HP service targets at its
    /// diurnal peak.
    pub hp_peak_share: f64,
    /// Machine configuration during collection (normally the baseline).
    pub machine_config: MachineConfig,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        CorpusConfig {
            machines: 8,
            days: 7.0,
            tick_minutes: 10.0,
            seed: 0xF1A7E,
            hp_duration: DurationModel {
                min_minutes: 30.0,
                mean_extra_minutes: 600.0,
            },
            lp_duration: DurationModel {
                min_minutes: 30.0,
                mean_extra_minutes: 60.0,
            },
            policy: SchedulerPolicy::LeastUtilized,
            lp_submit_prob: 0.12,
            hp_peak_share: 0.14,
            machine_config: MachineShape::default_shape().baseline_config(),
        }
    }
}

/// One distinct job-colocation scenario with its observation weight.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CorpusEntry {
    /// Stable id (first-seen order).
    pub id: ScenarioId,
    /// The colocation.
    pub scenario: Scenario,
    /// How many machine-ticks exhibited the scenario.
    pub observations: u32,
}

/// Rows per block of the sharded corpus entry store. Fixed (not a
/// config knob): it only shapes allocation granularity, never output.
const ENTRY_SHARD_ROWS: usize = 4096;

/// Sharded backing store for corpus entries: fixed-size blocks instead
/// of one contiguous `Vec`, so growing to 10⁶ scenarios never asks the
/// allocator for one giant slab and never doubles the whole corpus
/// transiently during a `Vec` regrow. Append-only; id order is block
/// order.
#[derive(Debug, Clone, Default)]
struct EntryStore {
    shards: Vec<Vec<CorpusEntry>>,
    len: usize,
}

impl EntryStore {
    fn with_capacity(n: usize) -> EntryStore {
        EntryStore {
            shards: Vec::with_capacity(n.div_ceil(ENTRY_SHARD_ROWS)),
            len: 0,
        }
    }

    fn push(&mut self, entry: CorpusEntry) {
        if self.len % ENTRY_SHARD_ROWS == 0 {
            self.shards.push(Vec::with_capacity(ENTRY_SHARD_ROWS));
        }
        self.shards
            .last_mut()
            .expect("push created the tail shard")
            .push(entry);
        self.len += 1;
    }

    fn len(&self) -> usize {
        self.len
    }

    fn get(&self, i: usize) -> Option<&CorpusEntry> {
        if i >= self.len {
            return None;
        }
        Some(&self.shards[i / ENTRY_SHARD_ROWS][i % ENTRY_SHARD_ROWS])
    }

    /// Panicking index (the window paths only touch validated ranges).
    fn index(&self, i: usize) -> &CorpusEntry {
        self.get(i).expect("entry index out of bounds")
    }

    fn iter(&self) -> std::iter::Flatten<std::slice::Iter<'_, Vec<CorpusEntry>>> {
        self.shards.iter().flatten()
    }
}

impl PartialEq for EntryStore {
    fn eq(&self, other: &Self) -> bool {
        self.len == other.len && self.iter().eq(other.iter())
    }
}

impl FromIterator<CorpusEntry> for EntryStore {
    fn from_iter<I: IntoIterator<Item = CorpusEntry>>(iter: I) -> Self {
        let iter = iter.into_iter();
        let mut store = EntryStore::with_capacity(iter.size_hint().0);
        for entry in iter {
            store.push(entry);
        }
        store
    }
}

/// Borrowed view over the sharded entry store, in id order. `Copy`,
/// iterable, and indexable like the slice it replaced; its `Debug`
/// rendering is exactly the slice's list rendering (the corpus
/// fingerprint hashes that rendering, so the sharded store changes no
/// fingerprints).
#[derive(Clone, Copy)]
pub struct Entries<'a> {
    store: &'a EntryStore,
}

impl<'a> Entries<'a> {
    /// Number of entries.
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// `true` if the corpus has no entries.
    pub fn is_empty(&self) -> bool {
        self.store.len() == 0
    }

    /// Iterates entries in id order.
    pub fn iter(&self) -> std::iter::Flatten<std::slice::Iter<'a, Vec<CorpusEntry>>> {
        self.store.iter()
    }

    /// Entry at index `i`, if in bounds.
    pub fn get(&self, i: usize) -> Option<&'a CorpusEntry> {
        self.store.get(i)
    }

    /// The highest-id entry.
    pub fn last(&self) -> Option<&'a CorpusEntry> {
        let n = self.store.len();
        if n == 0 {
            None
        } else {
            self.store.get(n - 1)
        }
    }
}

impl<'a> IntoIterator for Entries<'a> {
    type Item = &'a CorpusEntry;
    type IntoIter = std::iter::Flatten<std::slice::Iter<'a, Vec<CorpusEntry>>>;
    fn into_iter(self) -> Self::IntoIter {
        self.store.iter()
    }
}

impl std::ops::Index<usize> for Entries<'_> {
    type Output = CorpusEntry;
    fn index(&self, i: usize) -> &CorpusEntry {
        self.store.index(i)
    }
}

impl PartialEq for Entries<'_> {
    fn eq(&self, other: &Self) -> bool {
        self.store == other.store
    }
}

impl std::fmt::Debug for Entries<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.iter()).finish()
    }
}

/// The collected scenario corpus of a datacenter.
///
/// Serialized through [`CorpusWire`] — the flat `{entries, config}`
/// shape the pre-sharded store used — so the wire format is unchanged.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(from = "CorpusWire", into = "CorpusWire")]
pub struct Corpus {
    entries: EntryStore,
    config: CorpusConfig,
}

impl PartialEq for Corpus {
    fn eq(&self, other: &Self) -> bool {
        self.config == other.config && self.entries == other.entries
    }
}

/// Wire shape of [`Corpus`]: the legacy flat entry list. Serialization
/// coalesces the sharded store (a save already materializes the whole
/// JSON string, so the transient flat copy does not change peak-memory
/// class); deserialization re-shards.
#[derive(Serialize, Deserialize)]
struct CorpusWire {
    entries: Vec<CorpusEntry>,
    config: CorpusConfig,
}

impl From<CorpusWire> for Corpus {
    fn from(wire: CorpusWire) -> Corpus {
        Corpus {
            entries: wire.entries.into_iter().collect(),
            config: wire.config,
        }
    }
}

impl From<Corpus> for CorpusWire {
    fn from(corpus: Corpus) -> CorpusWire {
        CorpusWire {
            entries: corpus.entries.shards.into_iter().flatten().collect(),
            config: corpus.config,
        }
    }
}

impl Corpus {
    /// Simulates the submission/scheduling timeline and collects every
    /// distinct non-empty colocation scenario with its observation count.
    ///
    /// Deterministic given `config.seed`.
    pub fn generate(config: &CorpusConfig) -> Corpus {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let scheduler = Scheduler::new(config.policy);
        let mut machines: Vec<MachineState> = (0..config.machines)
            .map(|_| MachineState::new(config.machine_config.clone()))
            .collect();

        let slots_per_machine =
            (config.machine_config.schedulable_vcpus() / JobInstance::CONTAINER_VCPUS) as f64;
        let fleet_slots = slots_per_machine * config.machines as f64;

        let mut seen: HashMap<Scenario, (usize, u32)> = HashMap::new();
        let mut order: Vec<Scenario> = Vec::new();

        // LP batch work arrives in waves: a job array submits many
        // identical containers, then a different array takes over. This is
        // how production batch tiers behave and it keeps colocation mixes
        // repetitive (the paper observes only ~900 distinct mixes).
        let mut lp_wave = JobName::LOW_PRIORITY[rng.gen_range(0..JobName::LOW_PRIORITY.len())];
        let ticks_per_snapshot = (60.0 / config.tick_minutes).round().max(1.0) as u64;

        let total_ticks = (config.days * 24.0 * 60.0 / config.tick_minutes).ceil() as u64;
        for tick in 0..total_ticks {
            let now = tick as f64 * config.tick_minutes;
            let hour = (now / 60.0) % 24.0;

            // 1. Container departures.
            for m in &mut machines {
                m.expire(now);
            }

            // 2. HP services track their diurnal targets.
            for &job in JobName::HIGH_PRIORITY {
                // Autoscalers react to coarse load levels, not every blip:
                // quantize the diurnal load to 1/8 steps before sizing.
                let load = (diurnal_pattern(job).load_at(hour) * 8.0).round() / 8.0;
                let target = (load * config.hp_peak_share * fleet_slots).round() as u32;
                let running: u32 = machines
                    .iter()
                    .map(|m| m.scenario().instances_of(job))
                    .sum();
                for _ in running..target {
                    let ends = now + config.hp_duration.sample_minutes(&mut rng);
                    if scheduler.place(&mut machines, JobInstance::new(job), ends)
                        == Placement::Denied
                    {
                        break; // fleet saturated; stop trying this tick
                    }
                }
            }

            // 3. LP batch fills some of the remaining capacity.
            let free_slots: u32 = machines
                .iter()
                .map(|m| {
                    (m.config.schedulable_vcpus() - m.allocated_vcpus())
                        / JobInstance::CONTAINER_VCPUS
                })
                .sum();
            if rng.gen::<f64>() < 0.05 {
                lp_wave = JobName::LOW_PRIORITY[rng.gen_range(0..JobName::LOW_PRIORITY.len())];
            }
            // Batch-tier pressure ebbs and flows over multiple days (job
            // arrays complete, pipelines pause): a slow tide scales the
            // submission probability, producing the wide occupancy range
            // real corpora show (Fig. 3a).
            let day = now / (24.0 * 60.0);
            let tide = 0.55 + 0.45 * (std::f64::consts::TAU * day / 3.0).sin();
            for _ in 0..free_slots {
                if rng.gen::<f64>() < config.lp_submit_prob * tide {
                    let ends = now + config.lp_duration.sample_minutes(&mut rng);
                    let _ = scheduler.place(&mut machines, JobInstance::new(lp_wave), ends);
                }
            }

            // 4. Snapshot colocations (hourly — the profiler's logging
            // granularity; scheduling still happens every tick).
            if tick % ticks_per_snapshot != 0 {
                continue;
            }
            for m in &machines {
                let s = m.scenario();
                if s.is_empty() {
                    continue;
                }
                match seen.get_mut(&s) {
                    Some((_, count)) => *count += 1,
                    None => {
                        seen.insert(s.clone(), (order.len(), 1));
                        order.push(s);
                    }
                }
            }
        }

        let entries: EntryStore = order
            .into_iter()
            .enumerate()
            .map(|(i, scenario)| {
                let (_, observations) = seen[&scenario];
                CorpusEntry {
                    id: ScenarioId(i as u32),
                    scenario,
                    observations,
                }
            })
            .collect();
        Corpus {
            entries,
            config: config.clone(),
        }
    }

    /// Builds a corpus from externally collected entries — the ingestion
    /// path for *real* datacenter traces (e.g. converted cluster-manager
    /// logs) instead of the built-in submission simulator. Entries are
    /// re-indexed densely in the given order.
    ///
    /// # Errors
    ///
    /// Returns a message if entries are empty, contain an empty scenario,
    /// have zero observations, or exceed the machine's schedulable vCPUs.
    pub fn from_entries(
        scenarios: Vec<(Scenario, u32)>,
        config: CorpusConfig,
    ) -> std::result::Result<Corpus, String> {
        if scenarios.is_empty() {
            return Err("a corpus needs at least one scenario".into());
        }
        let cap = config.machine_config.schedulable_vcpus();
        let mut entries = EntryStore::with_capacity(scenarios.len());
        for (i, (scenario, observations)) in scenarios.into_iter().enumerate() {
            if scenario.is_empty() {
                return Err(format!("entry {i}: empty scenario"));
            }
            if observations == 0 {
                return Err(format!("entry {i}: zero observations"));
            }
            if scenario.total_vcpus() > cap {
                return Err(format!(
                    "entry {i}: {} vCPUs exceed the machine's {cap}",
                    scenario.total_vcpus()
                ));
            }
            entries.push(CorpusEntry {
                id: ScenarioId(i as u32),
                scenario,
                observations,
            });
        }
        Ok(Corpus { entries, config })
    }

    /// Returns a copy of this corpus with `scenarios` appended, their ids
    /// continuing the dense first-seen sequence. The original corpus is
    /// untouched — this is the growth primitive behind incremental refits:
    /// profiling the extension's tail and appending it to an existing
    /// database is byte-identical to re-profiling the extended corpus from
    /// scratch, because per-scenario noise seeds depend only on the corpus
    /// seed and the scenario id.
    ///
    /// An empty `scenarios` list is allowed and yields an identical copy.
    ///
    /// # Errors
    ///
    /// Returns a message under the same per-entry rules as
    /// [`Corpus::from_entries`] (empty scenario, zero observations, vCPU
    /// overcommit).
    pub fn extended(&self, scenarios: Vec<(Scenario, u32)>) -> std::result::Result<Corpus, String> {
        let cap = self.config.machine_config.schedulable_vcpus();
        let mut entries = self.entries.clone();
        for (i, (scenario, observations)) in scenarios.into_iter().enumerate() {
            if scenario.is_empty() {
                return Err(format!("extension entry {i}: empty scenario"));
            }
            if observations == 0 {
                return Err(format!("extension entry {i}: zero observations"));
            }
            if scenario.total_vcpus() > cap {
                return Err(format!(
                    "extension entry {i}: {} vCPUs exceed the machine's {cap}",
                    scenario.total_vcpus()
                ));
            }
            entries.push(CorpusEntry {
                id: ScenarioId(entries.len() as u32),
                scenario,
                observations,
            });
        }
        Ok(Corpus {
            entries,
            config: self.config.clone(),
        })
    }

    /// The distinct scenarios, in first-seen (id) order: a borrowed view
    /// over the sharded store that iterates, indexes, and `Debug`-renders
    /// like the contiguous slice it replaced.
    pub fn entries(&self) -> Entries<'_> {
        Entries {
            store: &self.entries,
        }
    }

    /// Number of distinct scenarios.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if no scenarios were collected.
    pub fn is_empty(&self) -> bool {
        self.entries.len() == 0
    }

    /// The configuration the corpus was collected under.
    pub fn config(&self) -> &CorpusConfig {
        &self.config
    }

    /// Entry lookup by scenario id.
    pub fn get(&self, id: ScenarioId) -> Option<&CorpusEntry> {
        self.entries.get(id.0 as usize)
    }

    /// Entries that contain at least one HP container (the population for
    /// performance accounting; LP-only scenarios carry no managed
    /// performance).
    pub fn hp_entries(&self) -> Vec<&CorpusEntry> {
        self.entries
            .iter()
            .filter(|e| e.scenario.has_hp_job())
            .collect()
    }

    /// Evaluates one scenario of the corpus under an arbitrary machine
    /// configuration (the ground-truth primitive).
    pub fn evaluate_scenario(&self, id: ScenarioId, config: &MachineConfig) -> Option<MachinePerf> {
        self.get(id).map(|e| evaluate(&e.scenario, config))
    }

    /// Materializes the corpus as a [`MetricDatabase`]: every scenario is
    /// evaluated under `machine_config` and its raw metric vector is
    /// synthesized with deterministic per-scenario measurement noise.
    ///
    /// Profiling fans out over all available cores; the result is
    /// byte-identical to a serial pass (per-scenario noise seeds depend
    /// only on scenario ids). Use [`Corpus::to_metric_database_threaded`]
    /// to pin the worker count.
    pub fn to_metric_database(&self, machine_config: &MachineConfig) -> MetricDatabase {
        self.to_metric_database_threaded(machine_config, None)
    }

    /// [`Corpus::to_metric_database`] with an explicit thread knob:
    /// `None` = available parallelism, `Some(1)` = serial. Every setting
    /// produces the identical database.
    pub fn to_metric_database_threaded(
        &self,
        machine_config: &MachineConfig,
        threads: Option<usize>,
    ) -> MetricDatabase {
        let records = self.profile_tail_threaded(0, machine_config, threads);
        let mut db = MetricDatabase::new(MetricSchema::canonical());
        for record in records {
            db.insert(record)
                .expect("synthesized vector matches canonical schema");
        }
        db
    }

    /// [`Corpus::to_metric_database_threaded`] into a sharded store:
    /// profiling proceeds shard-by-shard, so the largest in-flight record
    /// buffer and the largest single matrix allocation are both bounded
    /// by `shard_rows` — the bounded-memory path for 10⁵+-scenario
    /// corpora. Byte-identical to the unsharded materialization (per-
    /// scenario noise seeds depend only on the corpus seed and the
    /// scenario id, never on batch boundaries).
    pub fn to_metric_database_sharded_threaded(
        &self,
        machine_config: &MachineConfig,
        threads: Option<usize>,
        shard_rows: usize,
    ) -> MetricDatabase {
        let shard_rows = shard_rows.max(1);
        let mut db = MetricDatabase::with_shard_rows(MetricSchema::canonical(), shard_rows);
        let mut start = 0;
        while start < self.entries.len() {
            let end = (start + shard_rows).min(self.entries.len());
            // One capacity decision per window instead of one per insert.
            db.reserve_rows(end - start);
            for record in self.profile_window_threaded(start..end, machine_config, threads) {
                db.insert(record)
                    .expect("synthesized vector matches canonical schema");
            }
            start = end;
        }
        db
    }

    /// Profiles only the entries with index `>= start` and returns their
    /// records (canonical schema), in id order. `profile_tail_threaded(0, …)`
    /// produces exactly the records of [`Corpus::to_metric_database_threaded`];
    /// a nonzero `start` is the incremental path — profile just the scenarios
    /// appended by [`Corpus::extended`] and insert them into an existing
    /// database. A `start` at or past the corpus length yields no records.
    pub fn profile_tail_threaded(
        &self,
        start: usize,
        machine_config: &MachineConfig,
        threads: Option<usize>,
    ) -> Vec<ScenarioRecord> {
        self.profile_window_threaded(start..self.entries.len(), machine_config, threads)
    }

    /// Profiles exactly the entries whose index falls in `range`
    /// (clamped to the corpus) and returns their records in id order —
    /// the windowed primitive behind both the tail paths and the
    /// shard-by-shard materialization of
    /// [`Corpus::to_metric_database_sharded_threaded`]. Window boundaries
    /// are invisible in the output: records depend on nothing but
    /// (scenario, config, id).
    pub fn profile_window_threaded(
        &self,
        range: std::ops::Range<usize>,
        machine_config: &MachineConfig,
        threads: Option<usize>,
    ) -> Vec<ScenarioRecord> {
        let end = range.end.min(self.entries.len());
        let start = range.start.min(end);
        let entries = &self.entries;
        // Chunked so each worker owns one scratch arena for its whole range
        // of interference solves (`flare_sim::kernel`); the chunk split is a
        // wall-clock knob only.
        par_map_chunks(end - start, threads, 8, |r| {
            let mut scratch = EvalScratch::new();
            r.map(|i| {
                let e = entries.index(start + i);
                let perf =
                    crate::kernel::evaluate_catalog(&e.scenario, machine_config, &mut scratch);
                let metrics = synthesize(&e.scenario, &perf, machine_config, self.noise_seed(e.id));
                ScenarioRecord {
                    id: e.id,
                    metrics,
                    observations: e.observations,
                    job_mix: e.scenario.job_mix_strings(),
                }
            })
            .collect()
        })
    }

    /// [`Corpus::profile_tail_threaded`] through an [`EvalCache`]:
    /// repeated colocation multisets (ubiquitous in real corpora — the
    /// paper observes only ~900 distinct mixes) are solved once and
    /// served from the cache thereafter. Bit-identical to the uncached
    /// path: the cache stores exact solver outputs, and metric synthesis
    /// runs per scenario id regardless of cache hits.
    pub fn profile_tail_cached_threaded(
        &self,
        start: usize,
        machine_config: &MachineConfig,
        threads: Option<usize>,
        cache: &EvalCache,
    ) -> Vec<ScenarioRecord> {
        let start = start.min(self.entries.len());
        let entries = &self.entries;
        par_map_chunks(self.entries.len() - start, threads, 8, |range| {
            let mut scratch = EvalScratch::new();
            range
                .map(|i| {
                    let e = entries.index(start + i);
                    let perf = cache.evaluate(&e.scenario, machine_config, &mut scratch);
                    let metrics =
                        synthesize(&e.scenario, &perf, machine_config, self.noise_seed(e.id));
                    ScenarioRecord {
                        id: e.id,
                        metrics,
                        observations: e.observations,
                        job_mix: e.scenario.job_mix_strings(),
                    }
                })
                .collect()
        })
    }

    /// Unbatched serial reference of [`Corpus::profile_tail_threaded`]:
    /// solves every scenario through the per-instance
    /// [`evaluate_with_profiles`] oracle instead of the grouped kernel
    /// (metric synthesis is shared, so this pins exactly the interference
    /// solve). Kept for differential tests and the `abl15_sim_kernels`
    /// bench — see DESIGN.md §9.
    pub fn profile_tail_naive(
        &self,
        start: usize,
        machine_config: &MachineConfig,
    ) -> Vec<ScenarioRecord> {
        let start = start.min(self.entries.len());
        self.entries
            .iter()
            .skip(start)
            .map(|e| {
                let perf = evaluate_with_profiles(
                    &e.scenario,
                    machine_config,
                    &flare_workloads::catalog::profile,
                );
                let metrics = synthesize(&e.scenario, &perf, machine_config, self.noise_seed(e.id));
                ScenarioRecord {
                    id: e.id,
                    metrics,
                    observations: e.observations,
                    job_mix: e.scenario.job_mix_strings(),
                }
            })
            .collect()
    }

    /// Materializes the corpus with §4.1 temporal enrichment: every metric
    /// is recorded as mean **and** across-phase standard deviation (see
    /// [`crate::profiler::synthesize_enriched`]). Parallel like
    /// [`Corpus::to_metric_database`].
    ///
    /// # Errors
    ///
    /// Returns a message if `phases == 0`.
    pub fn to_metric_database_enriched(
        &self,
        machine_config: &MachineConfig,
        phases: usize,
    ) -> Result<MetricDatabase, String> {
        self.to_metric_database_enriched_threaded(machine_config, phases, None)
    }

    /// [`Corpus::to_metric_database_enriched`] with an explicit thread
    /// knob: `None` = available parallelism, `Some(1)` = serial. Every
    /// setting produces the identical database.
    ///
    /// # Errors
    ///
    /// Returns a message if `phases == 0`.
    pub fn to_metric_database_enriched_threaded(
        &self,
        machine_config: &MachineConfig,
        phases: usize,
        threads: Option<usize>,
    ) -> Result<MetricDatabase, String> {
        let records = self.profile_tail_enriched_threaded(0, machine_config, phases, threads)?;
        let mut db = MetricDatabase::new(MetricSchema::canonical_enriched());
        for record in records {
            db.insert(record)
                .expect("enriched vector matches enriched schema");
        }
        Ok(db)
    }

    /// Sharded counterpart of
    /// [`Corpus::to_metric_database_enriched_threaded`]; bounded-memory
    /// like [`Corpus::to_metric_database_sharded_threaded`], byte-identical
    /// to the unsharded enriched materialization.
    ///
    /// # Errors
    ///
    /// Returns a message if `phases == 0`.
    pub fn to_metric_database_enriched_sharded_threaded(
        &self,
        machine_config: &MachineConfig,
        phases: usize,
        threads: Option<usize>,
        shard_rows: usize,
    ) -> Result<MetricDatabase, String> {
        if phases == 0 {
            return Err("temporal enrichment requires at least one phase".into());
        }
        let shard_rows = shard_rows.max(1);
        let mut db =
            MetricDatabase::with_shard_rows(MetricSchema::canonical_enriched(), shard_rows);
        let mut start = 0;
        while start < self.entries.len() {
            let end = (start + shard_rows).min(self.entries.len());
            // One capacity decision per window instead of one per insert.
            db.reserve_rows(end - start);
            let records =
                self.profile_window_enriched_threaded(start..end, machine_config, phases, threads)?;
            for record in records {
                db.insert(record)
                    .expect("enriched vector matches enriched schema");
            }
            start = end;
        }
        Ok(db)
    }

    /// Temporally-enriched counterpart of [`Corpus::profile_tail_threaded`]:
    /// profiles only the entries with index `>= start` against the enriched
    /// schema.
    ///
    /// # Errors
    ///
    /// Returns a message if `phases == 0`.
    pub fn profile_tail_enriched_threaded(
        &self,
        start: usize,
        machine_config: &MachineConfig,
        phases: usize,
        threads: Option<usize>,
    ) -> Result<Vec<ScenarioRecord>, String> {
        self.profile_window_enriched_threaded(
            start..self.entries.len(),
            machine_config,
            phases,
            threads,
        )
    }

    /// Enriched counterpart of [`Corpus::profile_window_threaded`]:
    /// profiles exactly the entries whose index falls in `range` against
    /// the enriched schema.
    ///
    /// # Errors
    ///
    /// Returns a message if `phases == 0`.
    pub fn profile_window_enriched_threaded(
        &self,
        range: std::ops::Range<usize>,
        machine_config: &MachineConfig,
        phases: usize,
        threads: Option<usize>,
    ) -> Result<Vec<ScenarioRecord>, String> {
        if phases == 0 {
            return Err("temporal enrichment requires at least one phase".into());
        }
        let end = range.end.min(self.entries.len());
        let start = range.start.min(end);
        let entries = &self.entries;
        // Smaller chunks than the plain path: each record costs `phases`
        // interference solves. Chunking shares one scratch arena per worker.
        Ok(par_map_chunks(end - start, threads, 4, |range| {
            let mut scratch = EvalScratch::new();
            range
                .map(|i| {
                    let e = entries.index(start + i);
                    let metrics = crate::profiler::synthesize_enriched_scratch(
                        &e.scenario,
                        machine_config,
                        phases,
                        self.noise_seed(e.id),
                        &mut scratch,
                    )
                    .expect("phases > 0 checked above");
                    ScenarioRecord {
                        id: e.id,
                        metrics,
                        observations: e.observations,
                        job_mix: e.scenario.job_mix_strings(),
                    }
                })
                .collect()
        }))
    }

    /// Deterministic per-scenario measurement-noise seed.
    fn noise_seed(&self, id: ScenarioId) -> u64 {
        self.config
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(id.0 as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> CorpusConfig {
        CorpusConfig {
            machines: 4,
            days: 2.0,
            tick_minutes: 15.0,
            ..CorpusConfig::default()
        }
    }

    #[test]
    fn from_entries_ingests_external_traces() {
        use flare_workloads::job::JobName;
        let cfg = CorpusConfig::default();
        let corpus = Corpus::from_entries(
            vec![
                (Scenario::from_counts([(JobName::DataCaching, 2)]), 5),
                (
                    Scenario::from_counts([(JobName::GraphAnalytics, 3), (JobName::Mcf, 2)]),
                    2,
                ),
            ],
            cfg.clone(),
        )
        .unwrap();
        assert_eq!(corpus.len(), 2);
        assert_eq!(corpus.entries()[0].id, ScenarioId(0));
        assert_eq!(corpus.entries()[0].observations, 5);
        // Ingested corpora flow through the normal pipeline.
        let db = corpus.to_metric_database(&corpus.config().machine_config);
        assert_eq!(db.len(), 2);
    }

    #[test]
    fn from_entries_validates() {
        use flare_workloads::job::JobName;
        let cfg = CorpusConfig::default();
        assert!(Corpus::from_entries(vec![], cfg.clone()).is_err());
        assert!(Corpus::from_entries(vec![(Scenario::empty(), 1)], cfg.clone()).is_err());
        assert!(Corpus::from_entries(
            vec![(Scenario::from_counts([(JobName::DataCaching, 1)]), 0)],
            cfg.clone()
        )
        .is_err());
        // 13 containers = 52 vCPUs > 48.
        assert!(Corpus::from_entries(
            vec![(Scenario::from_counts([(JobName::DataCaching, 13)]), 1)],
            cfg
        )
        .is_err());
    }

    #[test]
    fn corpus_is_deterministic() {
        let cfg = small_config();
        let a = Corpus::generate(&cfg);
        let b = Corpus::generate(&cfg);
        assert_eq!(a.entries(), b.entries());
    }

    #[test]
    fn corpus_has_diverse_scenarios() {
        let corpus = Corpus::generate(&small_config());
        assert!(corpus.len() > 30, "only {} scenarios", corpus.len());
        // Mix of occupancies.
        let occs: Vec<f64> = corpus
            .entries()
            .iter()
            .map(|e| e.scenario.occupancy(48))
            .collect();
        let min = occs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = occs.iter().cloned().fold(0.0, f64::max);
        assert!(max - min > 0.3, "occupancy range [{min}, {max}] too narrow");
    }

    #[test]
    fn ids_are_dense_first_seen() {
        let corpus = Corpus::generate(&small_config());
        for (i, e) in corpus.entries().iter().enumerate() {
            assert_eq!(e.id, ScenarioId(i as u32));
            assert!(e.observations >= 1);
        }
    }

    #[test]
    fn most_scenarios_have_hp_jobs() {
        let corpus = Corpus::generate(&small_config());
        let hp = corpus.hp_entries().len();
        assert!(
            hp * 2 > corpus.len(),
            "{hp} of {} scenarios have HP jobs",
            corpus.len()
        );
    }

    #[test]
    fn no_scenario_overcommits() {
        let corpus = Corpus::generate(&small_config());
        let cap = corpus.config().machine_config.schedulable_vcpus();
        for e in corpus.entries() {
            assert!(e.scenario.total_vcpus() <= cap);
        }
    }

    #[test]
    fn metric_database_covers_corpus() {
        let corpus = Corpus::generate(&small_config());
        let db = corpus.to_metric_database(&corpus.config().machine_config);
        assert_eq!(db.len(), corpus.len());
        assert_eq!(db.schema().len(), MetricSchema::canonical().len());
        // Observation weights survive.
        let total: u64 = corpus.entries().iter().map(|e| e.observations as u64).sum();
        assert_eq!(db.total_observations(), total);
    }

    #[test]
    fn extended_appends_with_continuing_ids() {
        use flare_workloads::job::JobName;
        let corpus = Corpus::generate(&small_config());
        let n = corpus.len();
        let grown = corpus
            .extended(vec![
                (Scenario::from_counts([(JobName::DataCaching, 2)]), 7),
                (Scenario::from_counts([(JobName::Mcf, 3)]), 1),
            ])
            .unwrap();
        assert_eq!(grown.len(), n + 2);
        assert!(grown.entries().iter().take(n).eq(corpus.entries().iter()));
        assert_eq!(grown.entries()[n].id, ScenarioId(n as u32));
        assert_eq!(grown.entries()[n].observations, 7);
        assert_eq!(grown.entries()[n + 1].id, ScenarioId(n as u32 + 1));
        // Empty extension is an identical copy.
        let same = corpus.extended(vec![]).unwrap();
        assert_eq!(same, corpus);
    }

    #[test]
    fn extended_validates_like_from_entries() {
        use flare_workloads::job::JobName;
        let corpus = Corpus::generate(&small_config());
        assert!(corpus.extended(vec![(Scenario::empty(), 1)]).is_err());
        assert!(corpus
            .extended(vec![(Scenario::from_counts([(JobName::Mcf, 1)]), 0)])
            .is_err());
        assert!(corpus
            .extended(vec![(
                Scenario::from_counts([(JobName::DataCaching, 13)]),
                1
            )])
            .is_err());
    }

    #[test]
    fn profile_tail_matches_full_profile() {
        let corpus = Corpus::generate(&small_config());
        let mcfg = corpus.config().machine_config.clone();
        let full = corpus.to_metric_database(&mcfg);
        // tail(0) reproduces the full profile record-for-record.
        let records = corpus.profile_tail_threaded(0, &mcfg, Some(1));
        assert_eq!(records.len(), full.len());
        for rec in &records {
            let row = full.get(rec.id).unwrap();
            assert_eq!(row.to_record(), *rec);
        }
        // A mid-corpus tail covers exactly the suffix.
        let start = corpus.len() / 2;
        let tail = corpus.profile_tail_threaded(start, &mcfg, None);
        assert_eq!(tail.len(), corpus.len() - start);
        assert_eq!(tail[0].id, ScenarioId(start as u32));
        // Past-the-end tails are empty, not a panic.
        assert!(corpus
            .profile_tail_threaded(corpus.len() + 5, &mcfg, None)
            .is_empty());
    }

    #[test]
    fn profile_tail_naive_is_bit_identical_to_kernel_path() {
        let corpus = Corpus::generate(&small_config());
        let mcfg = corpus.config().machine_config.clone();
        let naive = corpus.profile_tail_naive(0, &mcfg);
        for threads in [Some(1), Some(3), None] {
            let fast = corpus.profile_tail_threaded(0, &mcfg, threads);
            assert_eq!(naive.len(), fast.len());
            for (a, b) in naive.iter().zip(&fast) {
                assert_eq!(a.id, b.id);
                assert_eq!(a.observations, b.observations);
                assert_eq!(a.job_mix, b.job_mix);
                assert_eq!(a.metrics.len(), b.metrics.len());
                for (x, y) in a.metrics.iter().zip(&b.metrics) {
                    assert_eq!(
                        x.to_bits(),
                        y.to_bits(),
                        "scenario {:?} diverged under threads {threads:?}",
                        a.id
                    );
                }
            }
        }
        // Naive tails slice identically.
        let start = corpus.len() / 2;
        assert_eq!(
            corpus.profile_tail_naive(start, &mcfg),
            corpus.profile_tail_threaded(start, &mcfg, Some(2))
        );
        assert!(corpus
            .profile_tail_naive(corpus.len() + 5, &mcfg)
            .is_empty());
    }

    #[test]
    fn enriched_profile_tail_matches_full_profile() {
        let corpus = Corpus::generate(&small_config());
        let mcfg = corpus.config().machine_config.clone();
        let full = corpus.to_metric_database_enriched(&mcfg, 4).unwrap();
        let records = corpus
            .profile_tail_enriched_threaded(0, &mcfg, 4, Some(1))
            .unwrap();
        assert_eq!(records.len(), full.len());
        for rec in &records {
            assert_eq!(full.get(rec.id).unwrap().to_record(), *rec);
        }
        assert!(corpus
            .profile_tail_enriched_threaded(0, &mcfg, 0, None)
            .is_err());
    }

    #[test]
    fn sharded_materialization_is_byte_identical_and_bounded() {
        let corpus = Corpus::generate(&small_config());
        let mcfg = corpus.config().machine_config.clone();
        let dense = corpus.to_metric_database(&mcfg);
        for shard_rows in [7, 64, 100_000] {
            let sharded = corpus.to_metric_database_sharded_threaded(&mcfg, None, shard_rows);
            assert_eq!(sharded.shard_rows(), shard_rows);
            assert_eq!(sharded, dense, "shard_rows={shard_rows}");
            // Every shard respects the bound.
            for shard in sharded.data_shards().shards() {
                assert!(shard.nrows() <= shard_rows);
            }
            // The coalesced matrix carries identical bits.
            let a = dense.to_matrix().unwrap();
            let b = sharded.to_matrix().unwrap();
            for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn enriched_sharded_materialization_is_byte_identical() {
        let corpus = Corpus::generate(&small_config());
        let mcfg = corpus.config().machine_config.clone();
        let dense = corpus.to_metric_database_enriched(&mcfg, 3).unwrap();
        let sharded = corpus
            .to_metric_database_enriched_sharded_threaded(&mcfg, 3, None, 11)
            .unwrap();
        assert_eq!(sharded, dense);
        assert!(corpus
            .to_metric_database_enriched_sharded_threaded(&mcfg, 0, None, 11)
            .is_err());
    }

    #[test]
    fn profile_window_slices_consistently() {
        let corpus = Corpus::generate(&small_config());
        let mcfg = corpus.config().machine_config.clone();
        let full = corpus.profile_tail_threaded(0, &mcfg, Some(1));
        // Stitching adjacent windows reproduces the tail record-for-record.
        let mid = corpus.len() / 3;
        let mut stitched = corpus.profile_window_threaded(0..mid, &mcfg, None);
        stitched.extend(corpus.profile_window_threaded(mid..corpus.len(), &mcfg, None));
        assert_eq!(stitched, full);
        // Out-of-range windows clamp instead of panicking.
        assert!(corpus
            .profile_window_threaded(corpus.len() + 1..corpus.len() + 9, &mcfg, None)
            .is_empty());
        #[allow(clippy::reversed_empty_ranges)]
        let inverted = corpus.profile_window_threaded(5..2, &mcfg, None);
        assert!(inverted.is_empty());
    }

    #[test]
    fn cached_profiling_is_bit_identical_and_hits() {
        let corpus = Corpus::generate(&small_config());
        let mcfg = corpus.config().machine_config.clone();
        let uncached = corpus.profile_tail_threaded(0, &mcfg, Some(1));
        let cache = EvalCache::new();
        for threads in [Some(1), Some(3), None] {
            let cached = corpus.profile_tail_cached_threaded(0, &mcfg, threads, &cache);
            assert_eq!(cached.len(), uncached.len());
            for (a, b) in uncached.iter().zip(&cached) {
                assert_eq!(a.id, b.id);
                for (x, y) in a.metrics.iter().zip(&b.metrics) {
                    assert_eq!(x.to_bits(), y.to_bits(), "scenario {:?}", a.id);
                }
            }
        }
        let stats = cache.stats();
        // Second and third passes re-solve nothing.
        assert!(stats.hits >= 2 * corpus.len() as u64);
        assert!(stats.entries <= corpus.len());
    }

    #[test]
    fn evaluate_scenario_roundtrip() {
        let corpus = Corpus::generate(&small_config());
        let cfg = corpus.config().machine_config.clone();
        let id = corpus.hp_entries()[0].id;
        let perf = corpus.evaluate_scenario(id, &cfg).unwrap();
        assert!(perf.hp_normalized_perf().is_some());
        assert!(corpus.evaluate_scenario(ScenarioId(99_999), &cfg).is_none());
    }
}
