//! The colocation interference model.
//!
//! Given a [`Scenario`] and a [`MachineConfig`], this module computes each
//! instance's achieved performance and the intermediate microarchitectural
//! state (cache shares, miss rates, bandwidth, frequency, SMT pairing) that
//! the profiler turns into raw metrics.
//!
//! The model combines five first-order contention channels, each of which
//! reacts to a different Table 4 feature:
//!
//! 1. **LLC capacity sharing** — working sets compete for the (possibly
//!    CAT-restricted) LLC; per-instance share follows demand-proportional
//!    partitioning and feeds a power-law miss-ratio curve. (Feature 1)
//! 2. **Memory bandwidth & loaded latency** — total DRAM traffic throttles
//!    when it exceeds channel capacity, and loaded latency grows with
//!    utilization (an M/M/1-flavored inflation). (Feature 1, indirectly)
//! 3. **Core frequency** — a power-budget turbo model droops with active
//!    cores, bounded by the DVFS ceiling. (Feature 2)
//! 4. **SMT co-residency** — when active threads exceed physical cores,
//!    siblings share pipelines at per-job friendliness factors; with SMT
//!    off, capacity halves and excess threads timeslice. (Feature 3)
//! 5. **I/O (disk & NIC) saturation** — shared-device throttling for
//!    I/O-heavy services.
//!
//! No single raw metric predicts the combined effect — which is exactly
//! the paper's Fig. 3b observation that motivates FLARE.

use crate::machine::MachineConfig;
use crate::scenario::Scenario;
use flare_workloads::catalog;
use flare_workloads::job::JobName;
use flare_workloads::profile::JobProfile;
use serde::{Deserialize, Serialize};

/// Reference frequency at which inherent MIPS is defined (the default
/// shape's turbo ceiling).
pub const REFERENCE_FREQ_GHZ: f64 = 2.9;

/// Loaded-latency inflation strength (dimensionless).
const LATENCY_INFLATION_GAIN: f64 = 0.7;

/// Performance penalty per (latency-weighted) extra LLC miss per
/// kilo-instruction.
pub(crate) const MISS_PENALTY_PER_MPKI: f64 = 0.038;

/// Saturation constant (MB/s) above which a job counts as fully
/// I/O-dependent on the NIC.
pub(crate) const NET_DEPENDENCY_SCALE: f64 = 200.0;

/// Saturation constant (MB/s) for disk dependency.
pub(crate) const DISK_DEPENDENCY_SCALE: f64 = 150.0;

/// Achieved performance and micro-state of one instance in a colocation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InstanceOutcome {
    /// The job this instance runs.
    pub job: JobName,
    /// Achieved instruction throughput, MIPS.
    pub mips: f64,
    /// MIPS normalized by the job's inherent MIPS (the paper's
    /// performance definition, §5.1). 1.0 = as fast as running alone.
    pub normalized_perf: f64,
    /// LLC share received, MB.
    pub llc_share_mb: f64,
    /// Achieved LLC misses per kilo-instruction.
    pub llc_mpki: f64,
    /// Achieved DRAM traffic, GB/s.
    pub mem_bw_gbps: f64,
    /// Achieved core frequency, GHz.
    pub freq_ghz: f64,
    /// Multiplier from SMT pairing (1.0 = unshared core).
    pub smt_factor: f64,
    /// Multiplier from CPU timeslicing (1.0 = no oversubscription).
    pub timeslice_factor: f64,
    /// Multiplier from frequency scaling.
    pub freq_factor: f64,
    /// Multiplier from memory latency/miss penalties.
    pub mem_factor: f64,
    /// Multiplier from DRAM bandwidth throttling.
    pub bw_factor: f64,
    /// Multiplier from disk/NIC saturation.
    pub io_factor: f64,
}

/// Machine-level aggregates of a colocation evaluation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachinePerf {
    /// Per-instance outcomes, in the scenario's canonical instance order.
    pub instances: Vec<InstanceOutcome>,
    /// Fraction of physical cores with at least one active thread.
    pub core_active_fraction: f64,
    /// Total active vCPU demand (sum of per-instance busy vCPUs).
    pub active_vcpus: f64,
    /// DRAM bandwidth utilization fraction (can exceed 1 pre-throttle).
    pub dram_utilization: f64,
    /// Loaded memory latency multiplier (1.0 = unloaded).
    pub latency_inflation: f64,
    /// Achieved core frequency, GHz (uniform across the machine).
    pub freq_ghz: f64,
    /// Probability an active thread shares a core with a sibling.
    pub smt_pairing_probability: f64,
}

impl MachinePerf {
    /// Sum of achieved MIPS over High-Priority instances.
    pub fn hp_mips(&self) -> f64 {
        self.instances
            .iter()
            .filter(|o| JobName::HIGH_PRIORITY.contains(&o.job))
            .map(|o| o.mips)
            .sum()
    }

    /// Mean normalized performance over HP instances (the scenario-level
    /// performance number FLARE aggregates). `None` if the scenario has no
    /// HP instances.
    pub fn hp_normalized_perf(&self) -> Option<f64> {
        let hp: Vec<f64> = self
            .instances
            .iter()
            .filter(|o| JobName::HIGH_PRIORITY.contains(&o.job))
            .map(|o| o.normalized_perf)
            .collect();
        if hp.is_empty() {
            None
        } else {
            Some(hp.iter().sum::<f64>() / hp.len() as f64)
        }
    }

    /// Harmonic mean of HP normalized performance — the multiprogram
    /// metric of Eyerman & Eeckhout (the paper's \[27\] "alternatives"):
    /// emphasizes the *worst-treated* instance, a fairness-leaning
    /// summary. `None` if the scenario has no HP instances.
    pub fn hp_normalized_perf_harmonic(&self) -> Option<f64> {
        let hp: Vec<f64> = self
            .instances
            .iter()
            .filter(|o| JobName::HIGH_PRIORITY.contains(&o.job))
            .map(|o| o.normalized_perf)
            .collect();
        if hp.is_empty() {
            return None;
        }
        let inv_sum: f64 = hp.iter().map(|p| 1.0 / p.max(1e-12)).sum();
        Some(hp.len() as f64 / inv_sum)
    }

    /// Total HP MIPS normalized by total inherent MIPS — a
    /// throughput-weighted summary (system-level "weighted speedup"
    /// flavor): big jobs dominate. `None` if the scenario has no HP
    /// instances.
    pub fn hp_normalized_perf_weighted(&self) -> Option<f64> {
        let mut achieved = 0.0;
        let mut inherent = 0.0;
        for o in self
            .instances
            .iter()
            .filter(|o| JobName::HIGH_PRIORITY.contains(&o.job))
        {
            achieved += o.mips;
            inherent += o.mips / o.normalized_perf.max(1e-12);
        }
        (inherent > 0.0).then(|| achieved / inherent)
    }

    /// Mean normalized performance of instances of `job` in this
    /// colocation, or `None` if absent.
    pub fn job_normalized_perf(&self, job: JobName) -> Option<f64> {
        let v: Vec<f64> = self
            .instances
            .iter()
            .filter(|o| o.job == job)
            .map(|o| o.normalized_perf)
            .collect();
        if v.is_empty() {
            None
        } else {
            Some(v.iter().sum::<f64>() / v.len() as f64)
        }
    }
}

/// Demand-proportional LLC partitioning.
///
/// If the working sets all fit, everyone gets their full demand; otherwise
/// the cache is split proportionally to demand (the natural equilibrium of
/// shared-LRU caches under roughly equal access intensity).
pub fn llc_partition(demands_mb: &[f64], total_mb: f64) -> Vec<f64> {
    let total_demand: f64 = demands_mb.iter().sum();
    if total_demand <= total_mb || total_demand <= f64::EPSILON {
        demands_mb.to_vec()
    } else {
        let scale = total_mb / total_demand;
        demands_mb.iter().map(|d| d * scale).collect()
    }
}

/// SMT pairing probability: the chance an active thread shares a physical
/// core, given total active threads and core count.
///
/// With `a` active threads on `c` cores (a ≤ 2c after timeslicing), the
/// scheduler packs `a - c` pairs when `a > c`, so `2(a - c)` of the `a`
/// threads are paired.
pub fn smt_pairing_probability(active_threads: f64, cores: f64) -> f64 {
    if active_threads <= cores || active_threads <= 0.0 {
        0.0
    } else {
        let capped = active_threads.min(2.0 * cores);
        (2.0 * (capped - cores) / capped).clamp(0.0, 1.0)
    }
}

/// Loaded-latency inflation as a function of DRAM utilization: convex and
/// bounded (the knee of a queueing curve without its asymptote, since
/// bandwidth throttling caps utilization at 1).
pub fn latency_inflation(dram_utilization: f64) -> f64 {
    let u = dram_utilization.clamp(0.0, 1.0);
    1.0 + LATENCY_INFLATION_GAIN * u.powi(3)
}

/// Evaluates a colocation scenario on a machine configuration.
///
/// Returns per-instance outcomes in the scenario's canonical instance
/// order plus machine-level aggregates. An empty scenario produces an
/// idle-machine result with no instances.
///
/// # Examples
///
/// ```
/// use flare_sim::interference::evaluate;
/// use flare_sim::machine::MachineShape;
/// use flare_sim::scenario::Scenario;
/// use flare_workloads::job::JobName;
///
/// let config = MachineShape::default_shape().baseline_config();
/// let solo = Scenario::from_counts([(JobName::GraphAnalytics, 1)]);
/// let crowded = Scenario::from_counts([
///     (JobName::GraphAnalytics, 1),
///     (JobName::Mcf, 8),
/// ]);
/// let p_solo = evaluate(&solo, &config);
/// let p_crowded = evaluate(&crowded, &config);
/// // Colocation with eight mcf containers hurts Spark.
/// assert!(p_crowded.instances[0].mips < p_solo.instances[0].mips);
/// ```
pub fn evaluate(scenario: &Scenario, config: &MachineConfig) -> MachinePerf {
    crate::kernel::with_scratch(|scratch| {
        crate::kernel::evaluate_catalog(scenario, config, scratch)
    })
}

/// Evaluates a scenario at a momentary *load factor*: user demand swings
/// within a scenario's lifetime (§4.1's temporal/phase behaviour), scaling
/// each instance's busy vCPUs, memory traffic, and I/O proportionally.
/// `load = 1.0` is the scenario's average intensity ([`evaluate`]).
///
/// The factor is clamped to `[0.1, 1.5]`; CPU utilization saturates at 1.
pub fn evaluate_at_load(scenario: &Scenario, config: &MachineConfig, load: f64) -> MachinePerf {
    crate::kernel::with_scratch(|scratch| {
        crate::kernel::evaluate_at_load_scratch(scenario, config, load, scratch)
    })
}

/// The unbatched reference implementation of [`evaluate_at_load`]: resolves
/// the load-scaled catalog profile per instance through
/// [`evaluate_with_profiles`]. Kept as the in-tree differential oracle the
/// kernel path (`crate::kernel`) is byte-compared against — see
/// DESIGN.md §9.
pub fn evaluate_at_load_naive(
    scenario: &Scenario,
    config: &MachineConfig,
    load: f64,
) -> MachinePerf {
    let load = load.clamp(0.1, 1.5);
    evaluate_with_profiles(scenario, config, &|job| {
        let mut p = catalog::profile(job);
        if (load - 1.0).abs() > f64::EPSILON {
            p.cpu_util = (p.cpu_util * load).min(1.0);
            p.mem_bw_gbps *= load;
            p.net_rx_mbps *= load;
            p.net_tx_mbps *= load;
            p.disk_read_mbps *= load;
            p.disk_write_mbps *= load;
            p.syscalls_ps *= load;
        }
        p
    })
}

/// Evaluates a scenario with caller-provided job profiles instead of the
/// catalog's — the substitution hook behind stressor-based proxy replay
/// (iBench-style load generators standing in for real services, §5.1) and
/// what-if profile studies.
///
/// `profile_of` is called once per instance with the instance's job name.
pub fn evaluate_with_profiles(
    scenario: &Scenario,
    config: &MachineConfig,
    profile_of: &dyn Fn(JobName) -> JobProfile,
) -> MachinePerf {
    let instances = scenario.to_instances();
    let profiles: Vec<JobProfile> = instances.iter().map(|i| profile_of(i.job)).collect();

    let cores = config.shape.total_cores() as f64;
    let logical = config.schedulable_vcpus() as f64;

    // ---- CPU occupancy ------------------------------------------------
    let active_vcpus: f64 = profiles.iter().map(|p| 4.0 * p.cpu_util).sum();
    // Threads that can be simultaneously resident.
    let resident = active_vcpus.min(logical);
    let timeslice_global = if active_vcpus > logical {
        logical / active_vcpus
    } else {
        1.0
    };
    let pairing = if config.smt_enabled {
        smt_pairing_probability(resident, cores)
    } else {
        0.0
    };
    // Cores busy = min(resident threads, cores): threads spread over idle
    // cores first, pairing (SMT on) or queueing (SMT off) second.
    let core_active_fraction = resident.min(cores) / cores;

    // ---- Frequency -----------------------------------------------------
    let freq = config.achieved_freq_ghz(core_active_fraction);

    // ---- LLC partitioning ------------------------------------------------
    let demands: Vec<f64> = profiles.iter().map(|p| p.working_set_mb).collect();
    let shares = llc_partition(&demands, config.total_llc_mb());
    let mpkis: Vec<f64> = profiles
        .iter()
        .zip(&shares)
        .map(|(p, &s)| p.llc_mpki_at(s))
        .collect();

    // ---- DRAM bandwidth --------------------------------------------------
    // Traffic is *demand-based*: each instance's solo bandwidth scaled by
    // its LLC-miss blow-up under the current cache partition. It must NOT
    // be scaled by achieved frequency or timeslice share — doing so lets a
    // capability cut (DVFS cap, turbo droop from an added neighbor, SMT
    // timeslicing) lower the modeled traffic, deflate loaded latency, and
    // raise `mem_factor` enough to overpower the direct penalty. That
    // coupling violated the model's monotonicity invariants (adding a
    // neighbor never helps; removing capability never speeds HP jobs up) —
    // the failure the checked-in proptest regression seeds pinned. With
    // pressure a function of demand only, every contention channel is
    // monotone in neighbor count and machine capability.
    let bw_demands: Vec<f64> = profiles
        .iter()
        .zip(&mpkis)
        .map(|(p, &m)| {
            let blowup = if p.base_llc_mpki > 0.0 {
                m / p.base_llc_mpki
            } else {
                1.0
            };
            p.mem_bw_gbps * blowup
        })
        .collect();
    let total_bw_demand: f64 = bw_demands.iter().sum();
    let dram_utilization = total_bw_demand / config.shape.dram_bw_gbps;
    let bw_throttle = if dram_utilization > 1.0 {
        1.0 / dram_utilization
    } else {
        1.0
    };
    // Loaded latency grows with the *latency-critical* share of traffic:
    // streaming (prefetchable) requests batch well in the memory
    // controller, while pointer-chasing demand misses collide. A machine
    // can therefore run high DRAM utilization with modest loaded latency
    // when the traffic is stream-dominated — one reason raw DRAM
    // utilization does not predict a cache feature's impact (Fig. 3b).
    let latency_critical_bw: f64 = bw_demands
        .iter()
        .zip(&profiles)
        .map(|(&bw, p)| bw * (0.2 + 0.8 * p.latency_sensitivity))
        .sum();
    let lat_inflation = latency_inflation(latency_critical_bw / config.shape.dram_bw_gbps);

    // ---- Shared I/O devices ---------------------------------------------
    let nic_capacity_mbps = config.shape.nic_gbps * 1000.0 / 8.0;
    let total_net: f64 = profiles.iter().map(|p| p.net_rx_mbps + p.net_tx_mbps).sum();
    let net_throttle = if total_net > nic_capacity_mbps {
        nic_capacity_mbps / total_net
    } else {
        1.0
    };
    let total_disk: f64 = profiles
        .iter()
        .map(|p| p.disk_read_mbps + p.disk_write_mbps)
        .sum();
    let disk_throttle = if total_disk > config.shape.disk_mbps {
        config.shape.disk_mbps / total_disk
    } else {
        1.0
    };

    // ---- Per-instance composition -----------------------------------------
    let mut outcomes = Vec::with_capacity(instances.len());
    for ((inst, profile), (&share, &mpki)) in instances
        .iter()
        .zip(&profiles)
        .zip(shares.iter().zip(&mpkis))
    {
        let freq_factor = profile.cpu_bound_fraction * (freq / REFERENCE_FREQ_GHZ)
            + (1.0 - profile.cpu_bound_fraction);
        let smt_factor = 1.0 - pairing * (1.0 - profile.smt_friendliness);
        // Latency-weighted extra misses relative to the solo baseline.
        let effective_extra_mpki = (mpki * lat_inflation - profile.base_llc_mpki).max(0.0);
        let mem_factor = 1.0
            / (1.0 + profile.latency_sensitivity * MISS_PENALTY_PER_MPKI * effective_extra_mpki);
        // Bandwidth throttle hurts streaming jobs in proportion to how
        // much of their time is bandwidth-dependent (1 - latency_sens is a
        // decent proxy: latency-bound jobs don't saturate channels).
        let bw_dependency = (1.0 - profile.latency_sensitivity).max(0.2);
        let bw_factor = 1.0 - bw_dependency * (1.0 - bw_throttle);
        // Shared-I/O dependency saturates with the job's own traffic.
        let net_dep = (profile.net_rx_mbps + profile.net_tx_mbps)
            / ((profile.net_rx_mbps + profile.net_tx_mbps) + NET_DEPENDENCY_SCALE);
        let disk_dep = (profile.disk_read_mbps + profile.disk_write_mbps)
            / ((profile.disk_read_mbps + profile.disk_write_mbps) + DISK_DEPENDENCY_SCALE);
        let io_factor =
            (1.0 - net_dep * (1.0 - net_throttle)) * (1.0 - disk_dep * (1.0 - disk_throttle));

        let mips = profile.inherent_mips
            * freq_factor
            * smt_factor
            * timeslice_global
            * mem_factor
            * bw_factor
            * io_factor;
        outcomes.push(InstanceOutcome {
            job: inst.job,
            mips,
            normalized_perf: mips / profile.inherent_mips,
            llc_share_mb: share,
            llc_mpki: mpki,
            mem_bw_gbps: JobProfile::mem_bw_from_misses(mips, mpki),
            freq_ghz: freq,
            smt_factor,
            timeslice_factor: timeslice_global,
            freq_factor,
            mem_factor,
            bw_factor,
            io_factor,
        });
    }

    MachinePerf {
        instances: outcomes,
        core_active_fraction,
        active_vcpus,
        dram_utilization,
        latency_inflation: lat_inflation,
        freq_ghz: freq,
        smt_pairing_probability: pairing,
    }
}

/// Inherent MIPS of `job` per the paper's definition: one instance alone
/// on an empty machine with the **baseline default-shape** configuration.
///
/// Because our interference model is analytic and a solo instance on the
/// default machine experiences (almost) no contention, this is very close
/// to the catalog's `inherent_mips`, differing only by the small turbo
/// droop of one active container.
pub fn inherent_mips(job: JobName) -> f64 {
    use crate::machine::MachineShape;
    let config = MachineShape::default_shape().baseline_config();
    let solo = Scenario::from_counts([(job, 1)]);
    evaluate(&solo, &config).instances[0].mips
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feature::Feature;
    use crate::machine::MachineShape;

    fn base() -> MachineConfig {
        MachineShape::default_shape().baseline_config()
    }

    #[test]
    fn llc_partition_fits_when_room() {
        let shares = llc_partition(&[10.0, 20.0], 60.0);
        assert_eq!(shares, vec![10.0, 20.0]);
    }

    #[test]
    fn llc_partition_proportional_under_pressure() {
        let shares = llc_partition(&[10.0, 30.0], 20.0);
        assert!((shares[0] - 5.0).abs() < 1e-12);
        assert!((shares[1] - 15.0).abs() < 1e-12);
        assert!((shares.iter().sum::<f64>() - 20.0).abs() < 1e-12);
    }

    #[test]
    fn smt_pairing_edges() {
        assert_eq!(smt_pairing_probability(10.0, 24.0), 0.0);
        assert_eq!(smt_pairing_probability(24.0, 24.0), 0.0);
        assert!((smt_pairing_probability(48.0, 24.0) - 1.0).abs() < 1e-12);
        let half = smt_pairing_probability(32.0, 24.0);
        assert!((half - 0.5).abs() < 1e-12); // 2*(32-24)/32
    }

    #[test]
    fn latency_inflation_monotone_bounded() {
        assert_eq!(latency_inflation(0.0), 1.0);
        assert!(latency_inflation(0.5) < latency_inflation(1.0));
        assert_eq!(latency_inflation(2.0), latency_inflation(1.0));
    }

    #[test]
    fn solo_instance_is_near_inherent() {
        for &job in JobName::ALL {
            let solo = Scenario::from_counts([(job, 1)]);
            let perf = evaluate(&solo, &base());
            let norm = perf.instances[0].normalized_perf;
            assert!(
                norm > 0.95 && norm <= 1.0 + 1e-9,
                "{job}: solo normalized perf {norm}"
            );
        }
    }

    #[test]
    fn inherent_mips_matches_solo_evaluation() {
        let m = inherent_mips(JobName::WebSearch);
        let cat = catalog::profile(JobName::WebSearch).inherent_mips;
        assert!(m <= cat && m > cat * 0.95);
    }

    #[test]
    fn colocation_never_speeds_a_job_up() {
        let config = base();
        for &job in JobName::HIGH_PRIORITY {
            let solo = evaluate(&Scenario::from_counts([(job, 1)]), &config);
            let crowded = evaluate(
                &Scenario::from_counts([(job, 1), (JobName::Mcf, 6), (JobName::Libquantum, 4)]),
                &config,
            );
            let solo_mips = solo.instances[0].mips;
            let crowd_mips = crowded
                .instances
                .iter()
                .find(|o| o.job == job)
                .unwrap()
                .mips;
            assert!(
                crowd_mips <= solo_mips + 1e-9,
                "{job}: crowded {crowd_mips} > solo {solo_mips}"
            );
        }
    }

    #[test]
    fn cache_feature_hurts_big_working_sets_more() {
        let baseline = base();
        let small_cache = Feature::paper_feature1().apply(&baseline);
        // A cache-pressure colocation.
        let scenario = Scenario::from_counts([
            (JobName::GraphAnalytics, 3),
            (JobName::InMemoryAnalytics, 3),
            (JobName::MediaStreaming, 2),
        ]);
        let before = evaluate(&scenario, &baseline);
        let after = evaluate(&scenario, &small_cache);
        let drop = |j: JobName| {
            let b = before.job_normalized_perf(j).unwrap();
            let a = after.job_normalized_perf(j).unwrap();
            (b - a) / b
        };
        let ga_drop = drop(JobName::GraphAnalytics);
        let ms_drop = drop(JobName::MediaStreaming);
        assert!(ga_drop > ms_drop, "GA drop {ga_drop} vs MS drop {ms_drop}");
        assert!(ga_drop > 0.01);
    }

    #[test]
    fn dvfs_feature_hurts_cpu_bound_jobs_more() {
        let baseline = base();
        let capped = Feature::paper_feature2().apply(&baseline);
        let scenario = Scenario::from_counts([
            (JobName::Sjeng, 2),
            (JobName::Mcf, 2),
            (JobName::DataCaching, 2),
        ]);
        let before = evaluate(&scenario, &baseline);
        let after = evaluate(&scenario, &capped);
        let drop = |j: JobName| {
            let b = before.job_normalized_perf(j).unwrap();
            let a = after.job_normalized_perf(j).unwrap();
            (b - a) / b
        };
        assert!(drop(JobName::Sjeng) > drop(JobName::Mcf));
        assert!(drop(JobName::Sjeng) > 0.25); // 38% freq cut × 0.9 cpu-bound
    }

    #[test]
    fn smt_feature_only_hurts_loaded_machines() {
        let baseline = base();
        let smt_off = Feature::paper_feature3().apply(&baseline);
        // Light load: 2 containers, 8 vCPUs active max on 24 cores.
        let light = Scenario::from_counts([(JobName::WebServing, 2)]);
        let b = evaluate(&light, &baseline).hp_normalized_perf().unwrap();
        let a = evaluate(&light, &smt_off).hp_normalized_perf().unwrap();
        assert!((b - a).abs() / b < 0.02, "light load should barely change");

        // Full machine: 12 containers = 48 vCPUs allocated.
        let full = Scenario::from_counts([
            (JobName::WebServing, 4),
            (JobName::DataAnalytics, 4),
            (JobName::Perlbench, 4),
        ]);
        let b = evaluate(&full, &baseline).hp_normalized_perf().unwrap();
        let a = evaluate(&full, &smt_off).hp_normalized_perf().unwrap();
        assert!(
            (b - a) / b > 0.10,
            "full load should suffer: before {b} after {a}"
        );
    }

    #[test]
    fn smt_off_can_help_when_it_removes_pairing() {
        // A load that fits in 24 cores but paired under SMT-on packing
        // never happens in this model (pairing only starts past the core
        // count), so SMT-off is never *better* — verify it's never worse
        // than the pure capacity argument either: with active <= cores the
        // two configs coincide.
        let config_on = base();
        let config_off = Feature::paper_feature3().apply(&config_on);
        let light = Scenario::from_counts([(JobName::Sjeng, 5)]); // 20 active vCPUs
        let on = evaluate(&light, &config_on);
        let off = evaluate(&light, &config_off);
        for (a, b) in on.instances.iter().zip(&off.instances) {
            assert!((a.mips - b.mips).abs() / a.mips < 1e-6);
        }
    }

    #[test]
    fn network_saturation_throttles_streaming() {
        let config = base();
        // 8 media-streaming containers push ~3.6 GB/s > 1.25 GB/s NIC.
        let jam = Scenario::from_counts([(JobName::MediaStreaming, 8)]);
        let perf = evaluate(&jam, &config);
        let ms = perf.job_normalized_perf(JobName::MediaStreaming).unwrap();
        assert!(ms < 0.75, "saturated NIC should throttle MS: {ms}");
    }

    #[test]
    fn empty_scenario_is_idle_machine() {
        let perf = evaluate(&Scenario::empty(), &base());
        assert!(perf.instances.is_empty());
        assert_eq!(perf.active_vcpus, 0.0);
        assert_eq!(perf.hp_normalized_perf(), None);
        assert_eq!(perf.hp_mips(), 0.0);
    }

    #[test]
    fn performance_metric_variants_ordered_sanely() {
        let config = base();
        let s = Scenario::from_counts([
            (JobName::GraphAnalytics, 4),
            (JobName::MediaStreaming, 2),
            (JobName::Mcf, 4),
        ]);
        let perf = evaluate(&s, &config);
        let arith = perf.hp_normalized_perf().unwrap();
        let harm = perf.hp_normalized_perf_harmonic().unwrap();
        let weighted = perf.hp_normalized_perf_weighted().unwrap();
        // AM-HM inequality: harmonic <= arithmetic, equality iff uniform.
        assert!(
            harm <= arith + 1e-12,
            "harmonic {harm} > arithmetic {arith}"
        );
        assert!(harm > 0.0 && weighted > 0.0 && weighted <= 1.0 + 1e-9);
        // Empty HP set -> None for all variants.
        let lp = evaluate(&Scenario::from_counts([(JobName::Mcf, 2)]), &config);
        assert!(lp.hp_normalized_perf_harmonic().is_none());
        assert!(lp.hp_normalized_perf_weighted().is_none());
    }

    #[test]
    fn outcomes_are_finite_and_positive() {
        let config = base();
        let stress = Scenario::from_counts([
            (JobName::Mcf, 4),
            (JobName::Libquantum, 4),
            (JobName::GraphAnalytics, 4),
        ]);
        let perf = evaluate(&stress, &config);
        for o in &perf.instances {
            assert!(o.mips.is_finite() && o.mips > 0.0);
            assert!(o.normalized_perf > 0.0 && o.normalized_perf <= 1.0 + 1e-9);
            assert!(o.llc_share_mb > 0.0);
            assert!(o.llc_mpki.is_finite());
        }
    }

    /// Shared invariant body for the pinned capability regressions: the
    /// strictly capability-removing features (1: cache cut, 2: DVFS cap)
    /// must never raise mean HP performance, SMT-off gains are bounded,
    /// and a light load is SMT-insensitive — the exact property
    /// `capability_reducing_features_never_speed_up_hp` checks for
    /// arbitrary scenarios in `tests/proptest_pipeline.rs`.
    fn assert_capability_cuts_never_help(scenario: &Scenario) {
        let b = base();
        let before = evaluate(scenario, &b).hp_normalized_perf().unwrap();
        for feature in [Feature::paper_feature1(), Feature::paper_feature2()] {
            let after = evaluate(scenario, &feature.apply(&b))
                .hp_normalized_perf()
                .unwrap();
            assert!(
                after <= before + 1e-9,
                "{feature}: perf rose {before} -> {after} for {scenario:?}"
            );
        }
        let smt_off = Feature::paper_feature3().apply(&b);
        let after = evaluate(scenario, &smt_off).hp_normalized_perf().unwrap();
        assert!(
            after <= before * 1.20 + 1e-9,
            "SMT off gained >20%: {before} -> {after} for {scenario:?}"
        );
        let cores = b.shape.total_cores() as f64;
        if evaluate(scenario, &b).active_vcpus <= cores {
            assert!(
                (after - before).abs() < 1e-9,
                "light load must be SMT-insensitive: {before} vs {after}"
            );
        }
    }

    /// Pinned proptest regression (seed 67c12e9e…): adding a MediaStreaming
    /// neighbor to this mix used to *raise* GraphAnalytics' normalized
    /// perf — the extra traffic drooped turbo frequency, which (through
    /// the old rate-scaled `bw_demands`) deflated loaded latency more than
    /// the added pressure cost. Must stay monotone forever.
    #[test]
    fn regression_adding_a_neighbor_never_helps() {
        let config = base();
        let scenario = Scenario::from_counts([
            (JobName::GraphAnalytics, 3),
            (JobName::MediaStreaming, 1),
            (JobName::Perlbench, 2),
            (JobName::Libquantum, 2),
        ]);
        let bigger = Scenario::from_counts([
            (JobName::GraphAnalytics, 3),
            (JobName::MediaStreaming, 2),
            (JobName::Perlbench, 2),
            (JobName::Libquantum, 2),
        ]);
        let before_perf = evaluate(&scenario, &config);
        let after_perf = evaluate(&bigger, &config);
        for (job, _) in scenario
            .iter()
            .filter(|(j, _)| JobName::HIGH_PRIORITY.contains(j))
        {
            let before = before_perf.job_normalized_perf(job).unwrap();
            let after = after_perf.job_normalized_perf(job).unwrap();
            assert!(
                after <= before + 1e-9,
                "adding a container sped {job} up: {before} -> {after}"
            );
        }
    }

    /// Pinned proptest regression (seed b7740401…): a DVFS cap used to
    /// speed this batch-heavy mix up by shedding modeled DRAM traffic.
    #[test]
    fn regression_capability_cut_never_helps_batch_mix() {
        assert_capability_cuts_never_help(&Scenario::from_counts([
            (JobName::GraphAnalytics, 1),
            (JobName::Perlbench, 1),
            (JobName::Libquantum, 4),
            (JobName::Omnetpp, 1),
        ]));
    }

    /// Pinned proptest regression (seed e25b13de…): same invariant on the
    /// second shrunk mix, which additionally carries Mcf's latency-bound
    /// traffic.
    #[test]
    fn regression_capability_cut_never_helps_mixed_priority() {
        assert_capability_cuts_never_help(&Scenario::from_counts([
            (JobName::DataAnalytics, 1),
            (JobName::GraphAnalytics, 2),
            (JobName::Libquantum, 4),
            (JobName::Omnetpp, 1),
            (JobName::Mcf, 1),
        ]));
    }

    #[test]
    fn impact_is_not_predicted_by_mpki_alone() {
        // The Fig. 3b motivation: two scenarios with similar HP MPKI can
        // have very different Feature-1 impacts.
        let config = base();
        let small_cache = Feature::paper_feature1().apply(&config);
        // Scenario A: WSC alone (moderate mpki, all cache to itself).
        let a = Scenario::from_counts([(JobName::WebSearch, 2)]);
        // Scenario B: WSC with cache-hungry neighbors.
        let b = Scenario::from_counts([(JobName::WebSearch, 2), (JobName::Mcf, 8)]);
        let impact = |s: &Scenario| {
            let before = evaluate(s, &config)
                .job_normalized_perf(JobName::WebSearch)
                .unwrap();
            let after = evaluate(s, &small_cache)
                .job_normalized_perf(JobName::WebSearch)
                .unwrap();
            (before - after) / before
        };
        // Impacts differ substantially across colocations of the same job.
        let ia = impact(&a);
        let ib = impact(&b);
        assert!((ib - ia).abs() > 0.02, "impacts {ia} vs {ib} too similar");
    }
}
