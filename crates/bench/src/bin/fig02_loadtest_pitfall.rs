//! Fig. 2: conventional load-testing benchmarks fail to estimate the
//! in-datacenter impact of Feature 1 (cache sizing).
//!
//! For each HP service, compare the MIPS reduction measured by a
//! single-service load test against the true average across all
//! datacenter colocations (± standard deviation).

use flare_baselines::fulldc::full_datacenter_job_impact;
use flare_baselines::loadtest::load_test_impact;
use flare_bench::{banner, bar, ExperimentContext};
use flare_core::replayer::{replay_job_impact, SimTestbed};
use flare_linalg::stats;
use flare_sim::feature::Feature;
use flare_workloads::job::JobName;

fn main() {
    banner(
        "Load-testing vs in-datacenter impact of Feature 1 (MIPS reduction %)",
        "Fig. 2",
    );
    let ctx = ExperimentContext::standard();
    let feature_cfg = Feature::paper_feature1().apply(&ctx.baseline);

    println!(
        "\n  {:<5} {:>12} {:>12} {:>8} {:>10}",
        "job", "load-test %", "datacenter %", "dc σ", "deviation"
    );
    // Fig. 2's x-axis order.
    let order = ["GA", "WSV", "DA", "DS", "IA", "MS", "DC", "WSC"];
    let mut rows = Vec::new();
    for abbrev in order {
        let job: JobName = abbrev.parse().expect("paper abbreviation");
        let lt = load_test_impact(&SimTestbed, job, &ctx.baseline, &feature_cfg)
            .expect("HP job")
            .impact_pct;
        let dc = full_datacenter_job_impact(
            &ctx.corpus,
            &SimTestbed,
            job,
            &ctx.baseline,
            &feature_cfg,
            true,
        )
        .expect("job present in corpus");
        // Std-dev across scenario-level impacts for the error bar.
        let impacts: Vec<f64> = ctx
            .corpus
            .entries()
            .iter()
            .filter(|e| e.scenario.has_job(job))
            .filter_map(|e| {
                replay_job_impact(&SimTestbed, &e.scenario, job, &ctx.baseline, &feature_cfg)
            })
            .collect();
        let sd = stats::sample_std_dev(&impacts);
        rows.push((abbrev, lt, dc, sd));
    }
    let max = rows.iter().map(|r| r.1.max(r.2)).fold(0.0f64, f64::max);
    for (abbrev, lt, dc, sd) in &rows {
        println!(
            "  {:<5} {:>12.2} {:>12.2} {:>8.2} {:>9.2}pp   LT|{:<20}  DC|{:<20}",
            abbrev,
            lt,
            dc,
            sd,
            (lt - dc).abs(),
            bar(*lt, max, 20),
            bar(*dc, max, 20),
        );
    }
    let mean_dev: f64 = rows.iter().map(|r| (r.1 - r.2).abs()).sum::<f64>() / rows.len() as f64;
    println!("\nmean |load-test - datacenter| deviation: {mean_dev:.2}pp");
    println!("Paper's takeaway: the two disagree because load tests ignore colocation.");
}
