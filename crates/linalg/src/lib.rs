//! # flare-linalg
//!
//! Dense linear-algebra and statistics substrate for the FLARE
//! reproduction: matrices, symmetric eigendecomposition (a tridiagonal
//! implicit-QL kernel with the cyclic Jacobi reference kept as its
//! differential oracle — see [`kernel`]), PCA with whitening, and the
//! descriptive statistics the pipeline needs (z-scores, Pearson
//! correlation, quantiles, distribution summaries).
//!
//! Everything is implemented from scratch on `Vec<f64>` — the FLARE data
//! sizes (hundreds of scenarios × ~100 metrics) do not justify an external
//! BLAS, and an auditable, property-tested implementation is preferable for
//! a methodology paper whose numerics must be trustworthy.
//!
//! ## Example
//!
//! ```
//! use flare_linalg::{Matrix, pca::Pca};
//!
//! let rows: Vec<Vec<f64>> = (0..20)
//!     .map(|i| vec![i as f64, (2 * i) as f64, (i % 4) as f64])
//!     .collect();
//! let data = Matrix::from_rows(&rows)?;
//! let pca = Pca::fit(&data)?;
//! let k = pca.components_for_variance(0.95)?;
//! let projected = pca.transform_whitened(&data, k)?;
//! assert_eq!(projected.nrows(), 20);
//! # Ok::<(), flare_linalg::LinalgError>(())
//! ```

#![warn(missing_docs)]

pub mod eigen;
mod error;
pub mod kernel;
mod matrix;
pub mod pca;
mod sharded;
pub mod stats;

pub use error::{LinalgError, Result};
pub use matrix::Matrix;
pub use sharded::{ShardAccess, ShardStore, ShardedMatrix, SpillStats};
