//! Fig. 14: handling a new machine shape (Table 5's "Small").
//!
//! (a) A representative scenario extracted on the default shape does not
//!     reproduce on the small shape (occupancy blows past capacity).
//! (b) Re-deriving representatives *on the small shape* restores accurate
//!     per-job estimation (shown for Feature 2), while conventional
//!     load-testing still mispredicts.

use flare_baselines::fulldc::full_datacenter_job_impact;
use flare_baselines::loadtest::load_test_impact;
use flare_bench::{banner, ExperimentContext};
use flare_core::replayer::SimTestbed;
use flare_sim::datacenter::CorpusConfig;
use flare_sim::feature::Feature;
use flare_sim::machine::MachineShape;
use flare_workloads::job::JobName;

fn main() {
    banner("Handling heterogeneous machine shapes", "Fig. 14");

    // ---- (a) default-shape representatives don't fit the small shape ----
    let default_ctx = ExperimentContext::standard();
    let small_baseline = MachineShape::small_shape().baseline_config();
    let small_vcpus = small_baseline.schedulable_vcpus();
    let default_vcpus = default_ctx.baseline.schedulable_vcpus();

    println!("\n[Fig. 14a] default-shape representatives on the small shape:");
    println!(
        "  {:>7} {:>10} {:>16} {:>16}",
        "cluster", "containers", "occ @ default", "occ @ small"
    );
    let mut overflow = 0;
    let analyzer = default_ctx.flare.analyzer();
    for c in 0..analyzer.n_clusters() {
        if let Some(rep) = analyzer.representative(c) {
            let s = &default_ctx.corpus.get(rep).expect("rep in corpus").scenario;
            let occ_d = s.occupancy(default_vcpus);
            let occ_s = s.occupancy(small_vcpus);
            if occ_s > 1.0 {
                overflow += 1;
            }
            println!(
                "  {:>7} {:>10} {:>15.0}% {:>15.0}%{}",
                c,
                s.total_instances(),
                occ_d * 100.0,
                occ_s * 100.0,
                if occ_s > 1.0 {
                    "  <-- cannot be scheduled"
                } else {
                    ""
                },
            );
        }
    }
    println!(
        "\n{overflow} of {} representatives exceed the small machine's capacity:\n\
         identical scenarios cannot be reproduced across shapes (the paper's point).",
        analyzer.n_clusters()
    );

    // ---- (b) re-derive representatives on the small shape ----------------
    println!("\n[Fig. 14b] per-job estimation for Feature 2 on the SMALL shape:");
    let small_cfg = CorpusConfig {
        machine_config: small_baseline.clone(),
        ..CorpusConfig::default()
    };
    let small_ctx = ExperimentContext::with_corpus_config(&small_cfg);
    println!(
        "  (new corpus: {} scenarios; {} re-derived representatives)",
        small_ctx.corpus.len(),
        small_ctx.flare.n_representatives()
    );
    let feature = Feature::paper_feature2();
    let fc = feature.apply(&small_baseline);

    println!(
        "\n  {:<5} {:>12} {:>9} {:>13}",
        "job", "datacenter %", "FLARE %", "load-test %"
    );
    let order = ["GA", "WSV", "DA", "DS", "IA", "MS", "DC", "WSC"];
    let mut flare_errs = Vec::new();
    let mut lt_errs = Vec::new();
    for abbrev in order {
        let job: JobName = abbrev.parse().expect("paper abbreviation");
        let truth = full_datacenter_job_impact(
            &small_ctx.corpus,
            &SimTestbed,
            job,
            &small_baseline,
            &fc,
            true,
        )
        .expect("job in small corpus");
        let flare_est = small_ctx
            .flare
            .evaluate_job(job, &feature)
            .expect("estimate");
        let lt = load_test_impact(&SimTestbed, job, &small_baseline, &fc)
            .expect("HP job")
            .impact_pct;
        flare_errs.push((flare_est.impact_pct - truth).abs());
        lt_errs.push((lt - truth).abs());
        println!(
            "  {:<5} {:>12.2} {:>9.2} {:>13.2}",
            abbrev, truth, flare_est.impact_pct, lt
        );
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    println!(
        "\n  mean |error| vs small-shape datacenter: FLARE {:.2}pp, load-testing {:.2}pp",
        mean(&flare_errs),
        mean(&lt_errs)
    );
    println!("  re-derived representatives track the new shape; per-shape extraction is worth it\n  because shapes live 5-10 years through many feature upgrades (§5.5).");
}
