//! Ablation 19: out-of-core featurization (DESIGN.md §13).
//!
//! PR 8 bounded *ingest* memory by sharding the metric data plane; this
//! ablation proves the *featurize* stage now holds the same line. A
//! 10⁵-row feature store is spilled to disk behind an LRU
//! [`ShardStore`] (4 resident shards), and the whole PCA fit + whitened
//! projection runs against it while a counting global allocator tracks
//! peak live bytes. Two gates:
//!
//! 1. **Peak-allocation bound** — the featurize pass must stay under
//!    `C · shard_rows × d` transient bytes plus the model it returns
//!    (projected n×k matrix, PCA axes). In particular it must stay
//!    strictly under `n × d` bytes — the dense coalesce the old
//!    `to_matrix()` path would have allocated up front.
//! 2. **Identity** — the spill knob must be invisible: spilled and
//!    resident stores produce identical bits. The dense in-memory
//!    oracle (`Pca::fit` + `transform_whitened` over one coalesced
//!    matrix) is checked within a tight relative tolerance — the
//!    sharded fit combines per-shard moment partials in shard order,
//!    which reassociates the oracle's single running accumulation.
//!
//! Results land in `results/BENCH_ooc.json`. `--smoke` is the CI
//! variant (same gates, fewer rows).

use flare_bench::banner;
use flare_linalg::pca::Pca;
use flare_linalg::{Matrix, ShardAccess, ShardStore, ShardedMatrix};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// Counting allocator: live bytes and a resettable high-water mark.
/// Layout-exact (counts requested sizes, not allocator slack), which is
/// the right currency for a "no n×d materialization" gate.
struct CountingAlloc;

static LIVE: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc(layout) };
        if !p.is_null() {
            let live = LIVE.fetch_add(layout.size(), Ordering::Relaxed) + layout.size();
            PEAK.fetch_max(live, Ordering::Relaxed);
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) };
        LIVE.fetch_sub(layout.size(), Ordering::Relaxed);
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn live_bytes() -> usize {
    LIVE.load(Ordering::Relaxed)
}

fn reset_peak() {
    PEAK.store(LIVE.load(Ordering::Relaxed), Ordering::Relaxed);
}

fn peak_bytes() -> usize {
    PEAK.load(Ordering::Relaxed)
}

/// Deterministic synthetic feature row: `latents` correlated signals
/// mixed across `d` columns plus small per-cell jitter, so the PCA keeps
/// a handful of components (realistic post-refinement shape) instead of
/// all `d`.
fn feature_row(i: usize, d: usize, latents: usize) -> Vec<f64> {
    let signals: Vec<f64> = (0..latents)
        .map(|s| ((i as f64 * 0.0137 + s as f64) * (1.0 + s as f64 * 0.41)).sin())
        .collect();
    (0..d)
        .map(|j| {
            let mixed: f64 = signals
                .iter()
                .enumerate()
                .map(|(s, v)| v * (1.0 + ((j * (s + 2)) as f64 * 0.73).cos()))
                .sum();
            mixed * 20.0 + ((i * 31 + j * 7) as f64 * 0.193).sin() * 0.5
        })
        .collect()
}

fn build_store(n: usize, d: usize, shard_rows: usize, latents: usize) -> ShardedMatrix {
    let mut m = ShardedMatrix::new(d, shard_rows);
    m.reserve_rows(n);
    for i in 0..n {
        m.push_row(&feature_row(i, d, latents))
            .expect("row width matches");
    }
    m
}

/// The featurize loop of `stages::run_featurize`, verbatim: streaming
/// PCA fit, then per-shard whitened projection through the single-row
/// `RowProjector` kernel into a sharded n×k plane (the model output —
/// the only O(n) allocation allowed).
fn featurize<A: ShardAccess + Sync>(
    store: &A,
    variance_threshold: f64,
) -> (Pca, usize, ShardedMatrix) {
    let pca = Pca::fit_sharded(store).expect("streaming fit");
    let k = pca
        .components_for_variance(variance_threshold)
        .expect("variance threshold");
    let mut projector = pca.row_projector(k).expect("projector");
    let mut projected = ShardedMatrix::new(k, store.shard_rows());
    projected.reserve_rows(store.nrows());
    let mut out = vec![0.0; k];
    for s in 0..store.shard_count() {
        store
            .with_shard(s, |shard| {
                for i in 0..shard.nrows() {
                    projector
                        .project_whitened_into(shard.row(i), &mut out)
                        .expect("projection");
                    projected.push_row(&out).expect("width k");
                }
            })
            .expect("shard access");
    }
    (pca, k, projected)
}

/// Relative-tolerance comparison for the dense oracle: the sharded fit
/// combines per-shard moment partials in shard order, which reassociates
/// the dense oracle's single running accumulation, so multi-shard bits
/// may differ in the last few ulps.
fn assert_close<'a>(
    a: impl Iterator<Item = &'a [f64]>,
    b: impl Iterator<Item = &'a [f64]>,
    rtol: f64,
    label: &str,
) {
    for (i, (ra, rb)) in a.zip(b).enumerate() {
        assert_eq!(ra.len(), rb.len(), "{label}: row {i} width");
        for (x, y) in ra.iter().zip(rb) {
            let scale = x.abs().max(y.abs()).max(1.0);
            assert!(
                (x - y).abs() <= rtol * scale,
                "{label}: row {i} diverged beyond rtol ({x} vs {y})"
            );
        }
    }
}

fn assert_bits_equal(a: &ShardedMatrix, b: &ShardedMatrix, label: &str) {
    assert_eq!(
        (a.nrows(), a.ncols()),
        (b.nrows(), b.ncols()),
        "{label}: shape"
    );
    for (i, (ra, rb)) in a.rows_iter().zip(b.rows_iter()).enumerate() {
        for (x, y) in ra.iter().zip(rb) {
            assert_eq!(x.to_bits(), y.to_bits(), "{label}: row {i} bits diverged");
        }
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    banner(
        "Ablation: out-of-core featurization (spilled shards, streaming PCA)",
        "peak featurize allocation bounded by the shard, not by n — DESIGN.md S13",
    );

    let (n, d, shard_rows, latents) = if smoke {
        (100_000, 24, 8_192, 4)
    } else {
        (100_000, 24, 8_192, 4)
    };
    let max_resident = 4usize;
    let variance_threshold = 0.9;

    // --- Build and spill the feature store --------------------------------
    let store = build_store(n, d, shard_rows, latents);
    let shard_count = store.shard_count();
    let dir = std::env::temp_dir().join(format!("flare-abl19-{}", std::process::id()));
    let spilled =
        ShardStore::spill_to(store, &dir, max_resident).expect("spill feature store to disk");
    assert!(
        spilled.resident_shards() <= max_resident,
        "resident budget violated after spill"
    );
    println!(
        "\n  store: {n} x {d} features -> {shard_count} shards, {} resident (budget {max_resident})",
        spilled.resident_shards()
    );

    // --- Measured out-of-core featurize -----------------------------------
    let baseline = live_bytes();
    reset_peak();
    let start = Instant::now();
    let (pca, k, projected) = featurize(&spilled, variance_threshold);
    let fit_ns = start.elapsed().as_nanos();
    let peak_delta = peak_bytes().saturating_sub(baseline);
    let stats = spilled.stats();
    assert_eq!(projected.nrows(), n);
    assert!(
        spilled.resident_shards() <= max_resident,
        "resident budget violated during featurize"
    );

    // Bound: C shard-sized transients (faulted shard + per-shard transform
    // block + accumulator scratch + I/O buffers) plus the returned model
    // (projected n x k and the PCA's d x d-scale internals).
    let shard_bytes = 8 * shard_rows * d;
    let model_bytes = 8 * n * k + 8 * 6 * d * d;
    let bound = 6 * shard_bytes + model_bytes;
    let dense_bytes = 8 * n * d;
    println!(
        "  featurize: k={k} in {:.0}ms | peak +{:.2} MiB (bound {:.2} MiB, dense coalesce {:.2} MiB)",
        fit_ns as f64 / 1e6,
        peak_delta as f64 / (1 << 20) as f64,
        bound as f64 / (1 << 20) as f64,
        dense_bytes as f64 / (1 << 20) as f64
    );
    println!(
        "  spill:     {} hits, {} faults, {} evictions across the passes",
        stats.hits, stats.faults, stats.evictions
    );
    assert!(
        peak_delta <= bound,
        "featurize peak {peak_delta} B exceeds C*shard + model bound {bound} B"
    );
    assert!(
        peak_delta < dense_bytes,
        "featurize peak {peak_delta} B reaches the dense n*d coalesce {dense_bytes} B"
    );
    assert!(
        stats.faults > 0 && stats.evictions > 0,
        "a {shard_count}-shard fit under a {max_resident}-shard budget must fault and evict: {stats:?}"
    );

    // --- Dense oracle: bit-identical fit and projection --------------------
    // Rebuilt from the same generator (the spilled store stays on disk).
    let rows: Vec<Vec<f64>> = (0..n).map(|i| feature_row(i, d, latents)).collect();
    let dense = Matrix::from_rows(&rows).expect("rectangular");
    drop(rows);
    let oracle_pca = Pca::fit(&dense).expect("dense fit");
    let oracle_k = oracle_pca
        .components_for_variance(variance_threshold)
        .expect("variance threshold");
    assert_eq!(
        k, oracle_k,
        "component count diverged from the dense oracle"
    );
    for (a, b) in pca.eigenvalues().iter().zip(oracle_pca.eigenvalues()) {
        let scale = a.abs().max(b.abs()).max(1.0);
        assert!(
            (a - b).abs() <= 1e-9 * scale,
            "eigenvalue diverged from the dense oracle ({a} vs {b})"
        );
    }
    let oracle_projected = oracle_pca
        .transform_whitened(&dense, oracle_k)
        .expect("dense transform");
    assert_close(
        projected.rows_iter(),
        oracle_projected.rows_iter(),
        1e-8,
        "streamed vs dense projection",
    );

    // Spill invisibility: the same fit over a fully-resident store. This
    // one IS bitwise — residency changes where shard bytes live, never
    // what they are.
    let resident = build_store(n, d, shard_rows, latents);
    let (_, k_resident, projected_resident) = featurize(&resident, variance_threshold);
    assert_eq!(k, k_resident);
    assert_bits_equal(&projected, &projected_resident, "spilled vs resident");
    println!("  identity:  spilled == resident bit for bit; dense oracle within 1e-8");

    let spill_dir = spilled.spill_dir().to_path_buf();
    drop(spilled); // removes the store's spill directory
    assert!(
        !spill_dir.exists(),
        "spill dir should be cleaned up on drop"
    );
    let _ = std::fs::remove_dir(&dir);

    // --- Machine-readable results ----------------------------------------
    let json = format!(
        "{{\n  \"bench\": \"abl19_ooc_featurize\",\n  \"mode\": \"{mode}\",\n  \
         \"config\": {{\"n\": {n}, \"d\": {d}, \"shard_rows\": {shard_rows}, \
         \"max_resident\": {max_resident}, \"variance_threshold\": {variance_threshold}}},\n  \
         \"featurize\": {{\"k\": {k}, \"ns\": {fit_ns}, \"peak_bytes\": {peak_delta}, \
         \"bound_bytes\": {bound}, \"dense_coalesce_bytes\": {dense_bytes}}},\n  \
         \"spill\": {{\"shards\": {shard_count}, \"hits\": {hits}, \"faults\": {faults}, \
         \"evictions\": {evictions}}},\n  \
         \"spilled_bitwise_equals_resident\": true,\n  \
         \"dense_oracle_within_rtol\": 1e-8\n}}\n",
        mode = if smoke { "smoke" } else { "full" },
        hits = stats.hits,
        faults = stats.faults,
        evictions = stats.evictions,
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../results/BENCH_ooc.json");
    std::fs::write(out, &json).expect("write BENCH_ooc.json");
    println!("\nwrote {out}");

    println!(
        "\ntakeaway: featurization now streams — the PCA's moments, the fit,\n\
         and the whitened projection all walk shards that fault in from disk\n\
         under a fixed residency budget, so peak memory is a few shards plus\n\
         the model itself; spill is bit-invisible and the dense oracle agrees\n\
         to within 1e-8."
    );
}
