//! Implementation of the `flare-cli` command-line tool.
//!
//! Subcommands:
//!
//! - `collect`         — simulate the datacenter and save the scenario corpus
//! - `profile`         — materialize the corpus as a metric database (JSON)
//! - `refit`           — re-fit a saved model under new settings, reusing
//!   every pipeline stage the change does not invalidate
//! - `stream`          — feed arrival batches to a saved model with
//!   drift-aware reclustering and crash-safe checkpoints
//! - `representatives` — fit FLARE and list the representative scenarios
//! - `interpret`       — fit FLARE and print the labeled PCs
//! - `evaluate`        — fit FLARE and estimate a feature's impact
//!
//! All I/O is JSON so results compose with standard tooling. Argument
//! parsing is hand-rolled (no CLI dependency): `--key value` pairs after
//! the subcommand.

use flare_core::interpret::interpret_pcs;
use flare_core::replayer::CachedSimTestbed;
use flare_core::{ClusterCountRule, Flare, FlareConfig, StreamConfig, StreamSession};
use flare_sim::datacenter::{Corpus, CorpusConfig};
use flare_sim::feature::Feature;
use flare_sim::machine::MachineShape;
use flare_sim::scenario::Scenario;
use flare_workloads::job::JobName;
use std::collections::BTreeMap;
use std::fmt;

/// A CLI-level error with a user-facing message.
#[derive(Debug, PartialEq, Eq)]
pub struct CliError(pub String);

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for CliError {}

/// Parsed command line: subcommand + `--key value` options.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Invocation {
    /// The subcommand name.
    pub command: String,
    /// The `--key value` options, keys without the leading dashes.
    pub options: BTreeMap<String, String>,
}

/// Parses raw arguments (without the program name).
///
/// # Errors
///
/// Returns [`CliError`] for a missing subcommand, a dangling `--key`, or a
/// positional argument where an option was expected.
pub fn parse_args(args: &[String]) -> Result<Invocation, CliError> {
    let mut it = args.iter();
    let command = it
        .next()
        .ok_or_else(|| CliError("missing subcommand; try `flare-cli help`".into()))?
        .clone();
    let mut options = BTreeMap::new();
    while let Some(arg) = it.next() {
        let key = arg
            .strip_prefix("--")
            .ok_or_else(|| CliError(format!("expected --option, got `{arg}`")))?;
        let value = it
            .next()
            .ok_or_else(|| CliError(format!("option --{key} requires a value")))?;
        options.insert(key.to_string(), value.clone());
    }
    Ok(Invocation { command, options })
}

impl Invocation {
    fn get_parse<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, CliError> {
        match self.options.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| CliError(format!("invalid value `{v}` for --{key}"))),
        }
    }

    fn required(&self, key: &str) -> Result<&str, CliError> {
        self.options
            .get(key)
            .map(String::as_str)
            .ok_or_else(|| CliError(format!("missing required option --{key}")))
    }
}

/// Parses a feature specifier: `cache=<MB>`, `dvfs=<GHz>`, `smt-off`, or
/// `baseline`.
///
/// # Errors
///
/// Returns [`CliError`] for unknown specifiers or malformed numbers.
pub fn parse_feature(spec: &str) -> Result<Feature, CliError> {
    if spec == "baseline" {
        return Ok(Feature::Baseline);
    }
    if spec == "smt-off" {
        return Ok(Feature::SmtOff);
    }
    if let Some(mb) = spec.strip_prefix("cache=") {
        let llc_mb_per_socket: f64 = mb
            .parse()
            .map_err(|_| CliError(format!("invalid cache size `{mb}`")))?;
        return Ok(Feature::CacheSizing { llc_mb_per_socket });
    }
    if let Some(ghz) = spec.strip_prefix("dvfs=") {
        let freq_max_ghz: f64 = ghz
            .parse()
            .map_err(|_| CliError(format!("invalid frequency `{ghz}`")))?;
        return Ok(Feature::DvfsCap { freq_max_ghz });
    }
    Err(CliError(format!(
        "unknown feature `{spec}` (use cache=<MB>, dvfs=<GHz>, smt-off, baseline)"
    )))
}

/// Builds a corpus configuration from the invocation's options.
///
/// # Errors
///
/// Returns [`CliError`] for malformed numeric options or unknown shapes.
pub fn corpus_config_from(inv: &Invocation) -> Result<CorpusConfig, CliError> {
    let mut cfg = CorpusConfig {
        machines: inv.get_parse("machines", 8usize)?,
        days: inv.get_parse("days", 7.0f64)?,
        seed: inv.get_parse("seed", 0xF1A7Eu64)?,
        ..CorpusConfig::default()
    };
    match inv.options.get("shape").map(String::as_str) {
        None | Some("default") => {}
        Some("small") => cfg.machine_config = MachineShape::small_shape().baseline_config(),
        Some(other) => return Err(CliError(format!("unknown shape `{other}`"))),
    }
    Ok(cfg)
}

/// Builds a FLARE configuration from the invocation's options.
///
/// # Errors
///
/// Returns [`CliError`] for malformed options.
pub fn flare_config_from(inv: &Invocation) -> Result<FlareConfig, CliError> {
    let clusters: usize = inv.get_parse("clusters", 18usize)?;
    let mut config = FlareConfig {
        cluster_count: ClusterCountRule::Fixed(clusters),
        ..FlareConfig::default()
    };
    // Out-of-core featurization: `--spill-dir` turns it on (bounded
    // resident shards, cold shards on disk); the fit itself stays
    // byte-identical to the in-memory path.
    if let Some(dir) = inv.options.get("spill-dir") {
        config.scale.spill.enabled = true;
        config.scale.spill.dir = Some(std::path::PathBuf::from(dir));
    }
    if inv.options.contains_key("spill-max-resident") {
        config.scale.spill.enabled = true;
        config.scale.spill.max_resident_shards = inv.get_parse("spill-max-resident", 4usize)?;
    }
    // Readahead depth of the spill store's background prefetcher
    // (wall-clock only; 0 disables it).
    if inv.options.contains_key("spill-prefetch") {
        config.scale.spill.prefetch_depth = inv.get_parse("spill-prefetch", 1usize)?;
    }
    Ok(config)
}

fn load_corpus(inv: &Invocation) -> Result<Corpus, CliError> {
    let path = inv.required("corpus")?;
    let json =
        std::fs::read_to_string(path).map_err(|e| CliError(format!("cannot read {path}: {e}")))?;
    serde_json::from_str(&json).map_err(|e| CliError(format!("cannot parse {path}: {e}")))
}

/// Obtains a fitted instance: from `--model model.json` if present (no
/// refit), else by fitting `--corpus` on the fly.
fn load_or_fit(inv: &Invocation) -> Result<Flare, CliError> {
    if let Some(model_path) = inv.options.get("model") {
        return Flare::load(std::path::Path::new(model_path))
            .map_err(|e| CliError(format!("cannot load model {model_path}: {e}")));
    }
    let corpus = load_corpus(inv)?;
    Flare::fit(corpus, flare_config_from(inv)?).map_err(|e| CliError(format!("fit failed: {e}")))
}

/// Runs one parsed invocation, writing human-readable output to `out`.
///
/// # Errors
///
/// Returns [`CliError`] on any usage or I/O problem; pipeline errors are
/// wrapped with context.
pub fn run(inv: &Invocation, out: &mut dyn std::io::Write) -> Result<(), CliError> {
    let w = |e: std::io::Error| CliError(format!("write failure: {e}"));
    match inv.command.as_str() {
        "help" => {
            writeln!(out, "{}", HELP).map_err(w)?;
            Ok(())
        }
        "collect" => {
            let cfg = corpus_config_from(inv)?;
            let corpus = Corpus::generate(&cfg);
            let path = inv.required("out")?;
            let json = serde_json::to_string(&corpus)
                .map_err(|e| CliError(format!("serialize corpus: {e}")))?;
            std::fs::write(path, json).map_err(|e| CliError(format!("write {path}: {e}")))?;
            writeln!(
                out,
                "collected {} distinct scenarios ({} with HP jobs) -> {path}",
                corpus.len(),
                corpus.hp_entries().len()
            )
            .map_err(w)?;
            Ok(())
        }
        "profile" => {
            let corpus = load_corpus(inv)?;
            let db = corpus.to_metric_database(&corpus.config().machine_config);
            let path = inv.required("out")?;
            let json = db
                .to_json()
                .map_err(|e| CliError(format!("serialize database: {e}")))?;
            std::fs::write(path, json).map_err(|e| CliError(format!("write {path}: {e}")))?;
            writeln!(
                out,
                "profiled {} scenarios x {} raw metrics -> {path}",
                db.len(),
                db.schema().len()
            )
            .map_err(w)?;
            Ok(())
        }
        "fit" => {
            let corpus = load_corpus(inv)?;
            let flare = Flare::fit(corpus, flare_config_from(inv)?)
                .map_err(|e| CliError(format!("fit failed: {e}")))?;
            let path = inv.required("out")?;
            flare
                .save(std::path::Path::new(path))
                .map_err(|e| CliError(format!("save model: {e}")))?;
            writeln!(
                out,
                "fitted {} representatives over {} scenarios -> {path}",
                flare.n_representatives(),
                flare.corpus().len()
            )
            .map_err(w)?;
            if let Some(spill) = flare.fit_report().spill {
                writeln!(
                    out,
                    "  spill: {:.1}% hit rate ({} hits, {} faults, {} prefetched, {} evictions)",
                    spill.hit_rate() * 100.0,
                    spill.hits,
                    spill.faults,
                    spill.prefetch_hits,
                    spill.evictions
                )
                .map_err(w)?;
            }
            Ok(())
        }
        "refit" => {
            let model_path = inv.required("model")?;
            let flare = Flare::load(std::path::Path::new(model_path))
                .map_err(|e| CliError(format!("cannot load model {model_path}: {e}")))?;
            let mut config = flare.config().clone();
            if inv.options.contains_key("clusters") {
                let clusters: usize = inv.get_parse("clusters", 18usize)?;
                config.cluster_count = ClusterCountRule::Fixed(clusters);
            }
            let refitted = flare
                .refit(config)
                .map_err(|e| CliError(format!("refit failed: {e}")))?;
            let path = inv.required("out")?;
            refitted
                .save(std::path::Path::new(path))
                .map_err(|e| CliError(format!("save model: {e}")))?;
            let report = refitted.fit_report();
            writeln!(
                out,
                "refitted {} representatives -> {path}",
                refitted.n_representatives()
            )
            .map_err(w)?;
            for (stage, outcome) in report.stages() {
                writeln!(out, "  {stage:<16} {outcome:?}").map_err(w)?;
            }
            writeln!(
                out,
                "  scenarios profiled: {} of {}",
                report.scenarios_profiled,
                refitted.corpus().len()
            )
            .map_err(w)?;
            Ok(())
        }
        "representatives" => {
            let flare = load_or_fit(inv)?;
            let weights = flare.analyzer().cluster_weights(true);
            writeln!(
                out,
                "{} representative scenarios:",
                flare.n_representatives()
            )
            .map_err(w)?;
            for (c, &weight) in weights.iter().enumerate() {
                if let Some(id) = flare.analyzer().representative(c) {
                    let entry = flare.corpus().get(id).expect("rep in corpus");
                    let mix: Vec<String> = entry
                        .scenario
                        .iter()
                        .map(|(j, n)| format!("{}x{n}", j.abbrev()))
                        .collect();
                    writeln!(
                        out,
                        "  cluster {c:>2} (weight {:>5.2}%): {} = [{}]",
                        weight * 100.0,
                        id,
                        mix.join(", ")
                    )
                    .map_err(w)?;
                }
            }
            Ok(())
        }
        "interpret" => {
            let flare = load_or_fit(inv)?;
            for pc in interpret_pcs(flare.analyzer(), 5) {
                writeln!(
                    out,
                    "PC{:<2} ({:>5.2}%): {}",
                    pc.pc,
                    pc.explained_variance * 100.0,
                    pc.label
                )
                .map_err(w)?;
            }
            Ok(())
        }
        "report" => {
            let flare = load_or_fit(inv)?;
            // One evaluation cache per invocation: the feature run reuses
            // the baseline solves of any earlier run, byte-identically.
            let testbed = CachedSimTestbed::new();
            let mut evaluations = Vec::new();
            if let Some(spec) = inv.options.get("feature") {
                let feature = parse_feature(spec)?;
                let estimate = flare
                    .evaluate_on(&testbed, &feature)
                    .map_err(|e| CliError(format!("evaluation failed: {e}")))?;
                evaluations.push((feature, estimate));
            }
            let report = flare_core::report::markdown_report(&flare, &evaluations);
            match inv.options.get("out") {
                Some(path) => {
                    std::fs::write(path, &report)
                        .map_err(|e| CliError(format!("write {path}: {e}")))?;
                    writeln!(out, "report written to {path}").map_err(w)?;
                }
                None => write!(out, "{report}").map_err(w)?,
            }
            if !evaluations.is_empty() {
                let stats = testbed.stats();
                writeln!(
                    out,
                    "eval cache: {} hits, {} misses, {} evictions, {} entries across {} configs",
                    stats.hits, stats.misses, stats.evictions, stats.entries, stats.configs
                )
                .map_err(w)?;
            }
            Ok(())
        }
        "stream" => {
            let batches_path = inv.required("batches")?;
            let out_path = inv.required("out")?;
            let json = std::fs::read_to_string(batches_path)
                .map_err(|e| CliError(format!("cannot read {batches_path}: {e}")))?;
            let batches: Vec<Vec<(Scenario, u32)>> = serde_json::from_str(&json)
                .map_err(|e| CliError(format!("cannot parse {batches_path}: {e}")))?;
            let mut config = StreamConfig {
                checkpoint_dir: inv.options.get("checkpoint").map(std::path::PathBuf::from),
                ..StreamConfig::default()
            };
            config.chunk_size = inv.get_parse("chunk", config.chunk_size)?;
            config.drift_threshold = inv.get_parse("drift-threshold", config.drift_threshold)?;
            config.calibration_quantile = inv.get_parse("quantile", config.calibration_quantile)?;
            config.coverage_floor = inv.get_parse("coverage-floor", config.coverage_floor)?;
            config.max_degraded_fraction =
                inv.get_parse("max-degraded", config.max_degraded_fraction)?;
            // Resume from an existing checkpoint if one is present;
            // otherwise start a fresh session from the saved model.
            let resumable = config
                .checkpoint_dir
                .as_deref()
                .filter(|dir| dir.join("checkpoint.json").is_file());
            let mut session = match resumable {
                Some(dir) => {
                    let session = StreamSession::resume(dir, config.clone())
                        .map_err(|e| CliError(format!("cannot resume from checkpoint: {e}")))?;
                    writeln!(
                        out,
                        "resumed from checkpoint: {} batches already ingested",
                        session.cursor().batches
                    )
                    .map_err(w)?;
                    session
                }
                None => {
                    let model_path = inv.required("model")?;
                    let flare = Flare::load(std::path::Path::new(model_path))
                        .map_err(|e| CliError(format!("cannot load model {model_path}: {e}")))?;
                    StreamSession::new(flare, config.clone())
                        .map_err(|e| CliError(format!("cannot start stream: {e}")))?
                }
            };
            let done = session.cursor().batches as usize;
            for (i, batch) in batches.into_iter().enumerate().skip(done) {
                let outcome = session
                    .ingest_batch(batch)
                    .map_err(|e| CliError(format!("batch {i} failed: {e}")))?;
                let cache = session.cache_stats();
                writeln!(
                    out,
                    "  batch {:>3}: {:>3} arrived, {:>3} accepted, {:>2} quarantined, drift {:>5.2} -> {:?} (cache {} hits / {} misses)",
                    outcome.batch,
                    outcome.arrived,
                    outcome.accepted,
                    outcome.quarantined,
                    outcome.drift_fraction,
                    outcome.disposition,
                    cache.hits,
                    cache.misses
                )
                .map_err(w)?;
            }
            let cursor = session.cursor().clone();
            let model = session
                .finalize()
                .map_err(|e| CliError(format!("finalize failed: {e}")))?;
            model
                .save(std::path::Path::new(out_path))
                .map_err(|e| CliError(format!("save model: {e}")))?;
            let cache = session.cache_stats();
            writeln!(
                out,
                "streamed {} batches ({} arrivals, {} accepted, {} quarantined, {} reclusters, {} stalls; solve cache {} hits / {} misses) -> {out_path}",
                cursor.batches,
                cursor.arrivals,
                cursor.accepted,
                cursor.quarantined,
                cursor.reclusters,
                cursor.stalls,
                cache.hits,
                cache.misses
            )
            .map_err(w)?;
            Ok(())
        }
        "evaluate" => {
            let feature = parse_feature(inv.required("feature")?)?;
            let flare = load_or_fit(inv)?;
            // One shared evaluation cache for the whole invocation: the
            // per-job follow-up replays the same representatives, so its
            // baseline (and often feature) solves hit the entries the
            // all-job pass already paid for. Estimates stay byte-identical
            // to the uncached testbed.
            let testbed = CachedSimTestbed::new();
            let estimate = flare
                .evaluate_on(&testbed, &feature)
                .map_err(|e| CliError(format!("evaluation failed: {e}")))?;
            writeln!(
                out,
                "{}: estimated MIPS reduction {:.2}% ({} replays)",
                feature.label(),
                estimate.impact_pct,
                estimate.replay_count
            )
            .map_err(w)?;
            if let Some(job_spec) = inv.options.get("job") {
                let job: JobName = job_spec
                    .parse()
                    .map_err(|_| CliError(format!("unknown job `{job_spec}`")))?;
                let per_job = flare
                    .evaluate_job_on(&testbed, job, &feature)
                    .map_err(|e| CliError(format!("per-job evaluation failed: {e}")))?;
                writeln!(out, "  {job}: {:.2}%", per_job.impact_pct).map_err(w)?;
            }
            Ok(())
        }
        other => Err(CliError(format!(
            "unknown subcommand `{other}`; try `flare-cli help`"
        ))),
    }
}

/// The `help` text.
pub const HELP: &str = "flare-cli — FLARE datacenter feature evaluation

USAGE:
  flare-cli collect  --out corpus.json [--machines 8] [--days 7] [--seed N] [--shape default|small]
  flare-cli profile  --corpus corpus.json --out db.json
  flare-cli fit      --corpus corpus.json --out model.json [--clusters 18]
                     [--spill-dir dir] [--spill-max-resident 4] [--spill-prefetch 1]
  flare-cli refit    --model model.json --out model2.json [--clusters N]
  flare-cli stream   --model model.json --batches batches.json --out model2.json
                     [--checkpoint dir] [--chunk 64] [--drift-threshold 0.25]
                     [--quantile 0.95] [--coverage-floor 0.5] [--max-degraded 0.5]
  flare-cli representatives (--corpus corpus.json | --model model.json) [--clusters 18]
  flare-cli interpret       (--corpus corpus.json | --model model.json) [--clusters 18]
  flare-cli evaluate (--corpus corpus.json | --model model.json) --feature <spec> [--job DC]
  flare-cli report   (--corpus corpus.json | --model model.json) [--feature <spec>] [--out report.md]
  flare-cli help

FEATURE SPECS:
  cache=<MB>    CAT cache allocation per socket (paper Feature 1: cache=12)
  dvfs=<GHz>    maximum-frequency cap           (paper Feature 2: dvfs=1.8)
  smt-off       disable hyper-threading         (paper Feature 3)
  baseline      no change (sanity check: impact 0)";

#[cfg(test)]
mod tests {
    use super::*;

    fn args(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_basic_invocation() {
        let inv = parse_args(&args(&[
            "evaluate",
            "--corpus",
            "c.json",
            "--feature",
            "smt-off",
        ]))
        .unwrap();
        assert_eq!(inv.command, "evaluate");
        assert_eq!(inv.options["corpus"], "c.json");
        assert_eq!(inv.options["feature"], "smt-off");
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!(parse_args(&[]).is_err());
        assert!(parse_args(&args(&["collect", "stray"])).is_err());
        assert!(parse_args(&args(&["collect", "--out"])).is_err());
    }

    #[test]
    fn feature_specs() {
        assert_eq!(parse_feature("baseline").unwrap(), Feature::Baseline);
        assert_eq!(parse_feature("smt-off").unwrap(), Feature::SmtOff);
        assert_eq!(
            parse_feature("cache=12").unwrap(),
            Feature::CacheSizing {
                llc_mb_per_socket: 12.0
            }
        );
        assert_eq!(
            parse_feature("dvfs=1.8").unwrap(),
            Feature::DvfsCap { freq_max_ghz: 1.8 }
        );
        assert!(parse_feature("nonsense").is_err());
        assert!(parse_feature("cache=lots").is_err());
    }

    #[test]
    fn corpus_config_options() {
        let inv = parse_args(&args(&[
            "collect",
            "--out",
            "x.json",
            "--machines",
            "4",
            "--days",
            "2",
            "--shape",
            "small",
        ]))
        .unwrap();
        let cfg = corpus_config_from(&inv).unwrap();
        assert_eq!(cfg.machines, 4);
        assert_eq!(cfg.days, 2.0);
        assert_eq!(
            cfg.machine_config.shape.model,
            MachineShape::small_shape().model
        );
        let bad = parse_args(&args(&["collect", "--out", "x", "--shape", "huge"])).unwrap();
        assert!(corpus_config_from(&bad).is_err());
    }

    #[test]
    fn spill_flags_enable_out_of_core_fit() {
        let inv = parse_args(&args(&[
            "fit",
            "--corpus",
            "c.json",
            "--out",
            "m.json",
            "--spill-dir",
            "/tmp/spill",
            "--spill-max-resident",
            "2",
            "--spill-prefetch",
            "3",
        ]))
        .unwrap();
        let cfg = flare_config_from(&inv).unwrap();
        assert!(cfg.scale.spill.enabled);
        assert_eq!(
            cfg.scale.spill.dir.as_deref(),
            Some(std::path::Path::new("/tmp/spill"))
        );
        assert_eq!(cfg.scale.spill.max_resident_shards, 2);
        assert_eq!(cfg.scale.spill.prefetch_depth, 3);

        let plain = parse_args(&args(&["fit", "--corpus", "c.json", "--out", "m.json"])).unwrap();
        assert!(!flare_config_from(&plain).unwrap().scale.spill.enabled);
    }

    #[test]
    fn stream_requires_batches_and_out() {
        let inv = parse_args(&args(&["stream", "--model", "m.json"])).unwrap();
        let mut sink = Vec::new();
        let err = run(&inv, &mut sink).unwrap_err();
        assert!(err.0.contains("--batches"), "{err}");
        let inv = parse_args(&args(&["stream", "--batches", "b.json"])).unwrap();
        let err = run(&inv, &mut sink).unwrap_err();
        assert!(err.0.contains("--out"), "{err}");
    }

    #[test]
    fn unknown_subcommand_errors() {
        let inv = parse_args(&args(&["destroy"])).unwrap();
        let mut sink = Vec::new();
        assert!(run(&inv, &mut sink).is_err());
    }

    #[test]
    fn help_prints() {
        let inv = parse_args(&args(&["help"])).unwrap();
        let mut sink = Vec::new();
        run(&inv, &mut sink).unwrap();
        assert!(String::from_utf8(sink).unwrap().contains("USAGE"));
    }
}
